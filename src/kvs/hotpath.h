#ifndef PBS_KVS_HOTPATH_H_
#define PBS_KVS_HOTPATH_H_

#include <cstdint>

#include "dist/production.h"

namespace pbs {
namespace kvs {

/// Options for the compiled quorum hot path (RunHotPath below).
///
/// The engine reproduces the WARS quorum protocol of the per-message KVS —
/// N-replica write fan-out, commit on the W-th acknowledgment, a read probe
/// `read_offset_ms` after each commit returning the freshest of the R
/// fastest responses — as a *pass-structured* simulation: one kTick event
/// per write (which batch-samples every leg of the write AND its probe
/// read) and one kResolve event per read, instead of the 2N+2 message
/// events the general engine pays. Replica state is an apply-log ring per
/// (stream, replica) resolved retroactively against the probe's snapshot
/// times, so staleness statistics match the message-level engine while the
/// event count drops by an order of magnitude.
struct HotPathOptions {
  // Quorum configuration (paper notation): N replicas, R read / W write
  // response requirements. N is capped at 8 (per-replica state lives in
  // fixed arrays).
  int n = 3;
  int r = 1;
  int w = 1;

  /// Per-leg latency distributions (W/A/R/S). Compiled into batch samplers
  /// at startup; defaults to the paper's LNKD-SSD production fit.
  WarsDistributions legs = LnkdSsd();

  /// Closed-loop writer streams. Each stream owns one key and issues
  /// `writes_per_stream` writes `write_spacing_ms` apart (the next write
  /// additionally waits for the previous probe read to resolve).
  int num_streams = 64;
  int64_t writes_per_stream = 1000;
  double write_spacing_ms = 10.0;

  /// Probe offset after commit — the "t" of t-visibility — and the write
  /// commit timeout.
  double read_offset_ms = 1.0;
  double timeout_ms = 100.0;

  uint64_t seed = 1;

  /// Logical shards of the event loop. Streams map to shards through a
  /// consistent-hash ring over the shard ids (the same placement policy the
  /// cluster uses for keys), each shard runs its own event heap and
  /// Jump()-derived RNG sub-stream, and shards synchronize conservatively
  /// at `sync_window_ms` barriers. Results are a function of (seed,
  /// num_shards) only — NEVER of `threads`.
  int num_shards = 16;

  /// Worker threads for the sharded loop: 1 = serial, 0 = one per hardware
  /// thread. Bitwise-identical results for any value.
  int threads = 1;

  /// Conservative-sync round length in virtual ms. Any value yields the
  /// same result (shards are data-independent between barriers); shorter
  /// windows just cost more barriers.
  double sync_window_ms = 4096.0;
};

/// Aggregate outcome of a hot-path run, merged across shards in shard-id
/// order (thread-count independent).
struct HotPathResult {
  int64_t writes_started = 0;
  int64_t writes_committed = 0;
  int64_t writes_timed_out = 0;
  int64_t reads = 0;
  int64_t consistent_reads = 0;  // probe saw the stream's just-written version
  int64_t events = 0;            // kTick + kResolve events processed

  double mean_write_latency_ms = 0.0;  // mean commit latency
  double mean_read_latency_ms = 0.0;   // mean probe-read latency

  /// Order-sensitive FNV digest over every event (kind, stream, time bits,
  /// outcome bits), folded across shards in shard order. Two runs are
  /// bitwise identical iff their digests match — the determinism pins
  /// compare this across thread counts.
  uint64_t digest = 0;

  /// P(consistent) at the probe offset — the t-visibility estimate.
  double consistency() const {
    return reads == 0
               ? 1.0
               : static_cast<double>(consistent_reads) /
                     static_cast<double>(reads);
  }

  /// Total client-visible operations (committed writes + probe reads): the
  /// numerator of the ops/s headline.
  int64_t total_ops() const { return writes_committed + reads; }
};

/// Runs the compiled hot path to completion. Steady state performs no heap
/// allocation (all pools are sized during setup).
HotPathResult RunHotPath(const HotPathOptions& options);

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_HOTPATH_H_
