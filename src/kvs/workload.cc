#include "kvs/workload.h"

#include <cassert>
#include <cmath>

#include "kvs/cluster.h"

namespace pbs {
namespace kvs {
namespace {

double Zeta(int n, double theta) {
  double sum = 0.0;
  for (int i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

ZipfKeyGenerator::ZipfKeyGenerator(int num_keys, double theta)
    : num_keys_(num_keys), theta_(theta) {
  assert(num_keys >= 1);
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(num_keys, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / num_keys_, 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

Key ZipfKeyGenerator::Next(Rng& rng) const {
  if (theta_ == 0.0) return rng.NextBounded(num_keys_);
  // Gray et al.'s quick Zipf sampler, as used by YCSB.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto key = static_cast<Key>(
      num_keys_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return key >= static_cast<Key>(num_keys_) ? num_keys_ - 1 : key;
}

WorkloadOptions MakePresetOptions(WorkloadPreset preset, int operations,
                                  double mean_interarrival_ms,
                                  uint64_t seed) {
  WorkloadOptions options;
  options.operations = operations;
  options.mean_interarrival_ms = mean_interarrival_ms;
  options.num_keys = 1000;
  options.num_clients = 8;
  options.seed = seed;
  options.zipf_theta = 0.99;  // YCSB's default zipfian constant
  switch (preset) {
    case WorkloadPreset::kYcsbA:
      options.read_fraction = 0.5;
      break;
    case WorkloadPreset::kYcsbB:
      options.read_fraction = 0.95;
      break;
    case WorkloadPreset::kYcsbC:
      options.read_fraction = 1.0;
      break;
    case WorkloadPreset::kYcsbD:
      options.read_fraction = 0.95;
      options.num_keys = 100;  // concentrate on a small "latest" hot set
      break;
  }
  return options;
}

const char* PresetName(WorkloadPreset preset) {
  switch (preset) {
    case WorkloadPreset::kYcsbA:
      return "YCSB-A (update heavy)";
    case WorkloadPreset::kYcsbB:
      return "YCSB-B (read mostly)";
    case WorkloadPreset::kYcsbC:
      return "YCSB-C (read only)";
    case WorkloadPreset::kYcsbD:
      return "YCSB-D (read latest)";
  }
  return "unknown";
}

WorkloadDriver::WorkloadDriver(Cluster* cluster,
                               const WorkloadOptions& options)
    : cluster_(cluster), options_(options), rng_(options.seed),
      keys_(options.num_keys, options.zipf_theta) {
  assert(cluster != nullptr);
  assert(options.operations >= 1);
  assert(options.num_clients >= 1);
  assert(options.read_fraction >= 0.0 && options.read_fraction <= 1.0);
  for (int c = 0; c < options_.num_clients; ++c) {
    const NodeId coordinator =
        cluster_->num_replicas() + (c % cluster_->num_coordinators());
    sessions_.push_back(
        std::make_unique<ClientSession>(cluster_, coordinator, c + 1));
  }
}

void WorkloadDriver::IssueOperation() {
  const Key key = keys_.Next(rng_);
  ClientSession& session = *sessions_[rng_.NextBounded(sessions_.size())];
  const bool is_read = rng_.NextDouble() < options_.read_fraction;
  ++issued_;
  if (is_read) {
    // Staleness is judged against the newest *committed* sequence when the
    // read began — the paper's semantics: in-flight (uncommitted) newer
    // versions do not count as missed data (Definition 1's "committed
    // within k versions").
    const int64_t latest = latest_committed_[key];
    session.Read(key, [this, latest](const ReadResult& result) {
      ++completed_;
      if (!result.ok) {
        ++result_.failed_operations;
        return;
      }
      ++result_.reads_completed;
      const int64_t sequence =
          result.value.has_value() ? result.value->sequence : 0;
      result_.staleness.Record(std::max<int64_t>(0, latest - sequence));
    });
  } else {
    session.Write(key, "v", [this, key](const WriteResult& result) {
      ++completed_;
      if (!result.ok) {
        ++result_.failed_operations;
        return;
      }
      ++result_.writes_committed;
      auto& watermark = latest_committed_[key];
      watermark = std::max(watermark, result.sequence);
    });
  }
}

WorkloadResult WorkloadDriver::RunToCompletion() {
  // Schedule all Poisson arrivals up front.
  double at = 0.0;
  const double mean = options_.mean_interarrival_ms;
  for (int op = 0; op < options_.operations; ++op) {
    at += -std::log(rng_.NextOpenDouble()) * mean;
    cluster_->sim().At(at, [this]() { IssueOperation(); });
  }
  // Drain everything (arrivals, responses, timeouts). Anti-entropy
  // self-reschedules forever, so bound the run when it is on.
  if (cluster_->config().anti_entropy_interval_ms > 0.0) {
    const double horizon =
        at + cluster_->config().request_timeout_ms * 2.0 + 1000.0;
    cluster_->sim().RunUntil(horizon);
  } else {
    cluster_->sim().Run();
  }
  result_.monotonic_violations = cluster_->metrics().monotonic_read_violations;
  return result_;
}

}  // namespace kvs
}  // namespace pbs
