#ifndef PBS_KVS_RING_H_
#define PBS_KVS_RING_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace pbs {
namespace kvs {

/// Keys are 64-bit identifiers; string keys hash to one via HashKey below.
using Key = uint64_t;

/// Stable 64-bit hash for key placement (SplitMix64 finalizer).
uint64_t HashKey(Key key);

/// Consistent-hash ring with virtual nodes, the Dynamo-style mapping from
/// keys to their N-replica preference lists (Section 2.2: "typically
/// maintaining the mapping of keys to quorum systems using a
/// consistent-hashing scheme").
///
/// The ring is *elastic*: AddNode/RemoveNode change membership in place.
/// Every member owns `vnodes_per_node` tokens whose positions are pure
/// hashes of (seed, node, vnode index) — not draws from a sequential RNG —
/// so the token layout is a function of (seed, member set) alone:
///
///   * rebuilding a ring from the final membership of any add/remove
///     sequence yields bit-identical placement (deterministic from seed +
///     membership log, no RNG consumption),
///   * membership changes move the minimum of the key space: adding a node
///     only claims the ranges adjacent to its own tokens, removing a node
///     only reassigns the ranges it owned.
///
/// Node ids are arbitrary non-negative ints (the seed constructor produces
/// the dense set [0, num_nodes)). All fallible operations are Status-typed
/// and behave identically in Release builds — no assert-only validation on
/// any public path.
class ConsistentHashRing {
 public:
  /// `vnodes_per_node` tokens per physical node spread placement load;
  /// `seed` randomizes token positions deterministically. Terminates the
  /// process on invalid arguments (internal path); prefer Create() where
  /// the inputs are not already validated.
  ConsistentHashRing(int num_nodes, int vnodes_per_node, uint64_t seed);

  /// Checked construction of the dense-membership ring [0, num_nodes):
  /// InvalidArgument instead of an assert for non-positive sizes.
  static StatusOr<ConsistentHashRing> Create(int num_nodes,
                                             int vnodes_per_node,
                                             uint64_t seed);

  /// Checked construction over an explicit member set (the "replay the
  /// membership log" path). Rejects empty sets, negative ids, duplicates.
  static StatusOr<ConsistentHashRing> CreateFromMembers(
      const std::vector<int>& members, int vnodes_per_node, uint64_t seed);

  /// The first `n` distinct member nodes encountered clockwise from the
  /// key's hash position — the key's replica set, in preference order.
  /// InvalidArgument unless 1 <= n <= num_nodes() (checked in every build
  /// mode: a shrunken cluster returns an error, never a short replica set).
  StatusOr<std::vector<int>> PreferenceList(Key key, int n) const;

  /// Appends the preference list to `out` (cleared first) without
  /// allocating a fresh vector — the coordinator hot path.
  Status AppendPreferenceList(Key key, int n, std::vector<int>* out) const;

  /// Adds `node` (>= 0, not already a member) to the ring, inserting its
  /// tokens. O(tokens) for the merge.
  Status AddNode(int node);

  /// Removes a current member and its tokens. FailedPrecondition when it
  /// is the last member (an empty ring routes nothing).
  Status RemoveNode(int node);

  int num_nodes() const { return static_cast<int>(members_.size()); }
  int vnodes_per_node() const { return vnodes_per_node_; }
  uint64_t seed() const { return seed_; }

  /// Monotonically increasing membership version: 1 at construction, +1
  /// per successful AddNode/RemoveNode. Routing layers compare versions to
  /// detect stale placement decisions; starting at 1 keeps 0 free as the
  /// wire sentinel for "no version observed yet".
  uint64_t version() const { return version_; }

  /// Current members, sorted ascending.
  const std::vector<int>& members() const { return members_; }
  bool IsMember(int node) const;

  /// Fraction of the key space owned (as first preference) by each member,
  /// aligned with members(); sums to 1. Exposed to test placement balance.
  /// InvalidArgument for samples <= 0.
  StatusOr<std::vector<double>> OwnershipFractions(int samples,
                                                   uint64_t seed) const;

 private:
  struct Token {
    uint64_t position;
    int node;
  };

  // StatusOr<T> default-constructs its payload on the error path.
  friend class StatusOr<ConsistentHashRing>;
  ConsistentHashRing() = default;

  /// Token `v` of `node`: a pure hash, independent of membership order.
  uint64_t TokenPosition(int node, int v) const;
  void InsertTokensFor(int node);

  int vnodes_per_node_ = 1;
  uint64_t seed_ = 0;
  uint64_t version_ = 1;
  std::vector<int> members_;   // sorted ascending
  std::vector<Token> tokens_;  // sorted by (position, node)
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_RING_H_
