#ifndef PBS_KVS_RING_H_
#define PBS_KVS_RING_H_

#include <cstdint>
#include <vector>

namespace pbs {
namespace kvs {

/// Keys are 64-bit identifiers; string keys hash to one via HashKey below.
using Key = uint64_t;

/// Stable 64-bit hash for key placement (SplitMix64 finalizer).
uint64_t HashKey(Key key);

/// Consistent-hash ring with virtual nodes, the Dynamo-style mapping from
/// keys to their N-replica preference lists (Section 2.2: "typically
/// maintaining the mapping of keys to quorum systems using a
/// consistent-hashing scheme"). Node ids are dense: [0, num_nodes).
class ConsistentHashRing {
 public:
  /// `vnodes_per_node` tokens per physical node spread placement load;
  /// `seed` randomizes token positions deterministically.
  ConsistentHashRing(int num_nodes, int vnodes_per_node, uint64_t seed);

  /// The first `n` distinct nodes encountered clockwise from the key's hash
  /// position — the key's replica set, in preference order. n must be
  /// <= num_nodes().
  std::vector<int> PreferenceList(Key key, int n) const;

  int num_nodes() const { return num_nodes_; }

  /// Fraction of the key space owned (as first preference) by each node;
  /// sums to 1. Exposed to test placement balance.
  std::vector<double> OwnershipFractions(int samples, uint64_t seed) const;

 private:
  struct Token {
    uint64_t position;
    int node;
  };

  int num_nodes_;
  std::vector<Token> tokens_;  // sorted by position
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_RING_H_
