#ifndef PBS_KVS_SIBLINGS_H_
#define PBS_KVS_SIBLINGS_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "kvs/ring.h"
#include "kvs/version.h"

namespace pbs {
namespace kvs {

/// Dynamo's multi-version register: causally concurrent versions
/// ("siblings") accumulate until a client reconciles them with a write
/// whose vector clock dominates all of them. The quorum staleness
/// machinery in this library uses the simpler last-writer-wins register
/// (the paper's total-order footnote 2); this module provides the full
/// causal semantics for applications that need conflict *detection* rather
/// than silent LWW resolution.
class SiblingSet {
 public:
  /// Incorporates `incoming`: versions that happened-before it are pruned;
  /// if a held version dominates (or equals) it, the set is unchanged;
  /// otherwise it joins as a sibling. Returns true if the set changed.
  bool Add(const VersionedValue& incoming);

  const std::vector<VersionedValue>& versions() const { return versions_; }
  bool empty() const { return versions_.empty(); }
  /// More than one causally concurrent version is present.
  bool HasConflict() const { return versions_.size() > 1; }

  /// Default syntactic reconciliation: the merged vector clock (advanced by
  /// `writer`) carrying the LWW-newest payload and the max sequence. Real
  /// applications substitute a semantic merge (e.g. union of cart items);
  /// any reconciliation must dominate every sibling, which this one does.
  VersionedValue Reconcile(int32_t writer, double timestamp) const;

  /// Convergence helper: merges another replica's sibling set into this
  /// one (anti-entropy for causal registers). Returns true if changed.
  bool MergeFrom(const SiblingSet& other);

 private:
  std::vector<VersionedValue> versions_;
};

/// Per-node causal store: one SiblingSet per key.
class SiblingStorage {
 public:
  /// Routes through SiblingSet::Add; returns true if state changed.
  bool Put(Key key, const VersionedValue& incoming);

  /// The key's sibling set (nullptr if absent). Pointer valid until the
  /// next mutation of this storage.
  const SiblingSet* Get(Key key) const;

  size_t num_keys() const { return data_.size(); }
  /// Keys currently holding more than one sibling.
  int64_t num_conflicted_keys() const;

 private:
  std::unordered_map<Key, SiblingSet> data_;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_SIBLINGS_H_
