#ifndef PBS_KVS_FAILURE_H_
#define PBS_KVS_FAILURE_H_

#include <cstdint>
#include <vector>

#include "kvs/ring.h"
#include "sim/network.h"

namespace pbs {
namespace kvs {

class Cluster;

/// A timed fail-stop event (Section 6 "Failure modes": crashed replicas
/// behave like an N-F replica set until they recover; staleness shows up in
/// the tails).
struct FailureEvent {
  enum class Kind { kCrash, kRecover };

  double time = 0.0;
  NodeId node = 0;
  Kind kind = Kind::kCrash;
};

/// A deterministic schedule of crash/recover events, installable on a
/// cluster before (or while) it runs.
class FailureSchedule {
 public:
  void AddCrash(double time, NodeId node);
  void AddRecover(double time, NodeId node);

  const std::vector<FailureEvent>& events() const { return events_; }

  /// Schedules every event on the cluster's simulator.
  void InstallOn(Cluster* cluster) const;

  /// Generates an independent crash/repair process per replica over
  /// [0, horizon): exponential time-to-failure with mean `mtbf_ms`, then
  /// exponential repair with mean `mttr_ms`, repeating.
  static FailureSchedule RandomCrashRecover(int num_replicas,
                                            double horizon_ms, double mtbf_ms,
                                            double mttr_ms, uint64_t seed);

 private:
  std::vector<FailureEvent> events_;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_FAILURE_H_
