#ifndef PBS_KVS_FAILURE_H_
#define PBS_KVS_FAILURE_H_

#include <cstdint>
#include <vector>

#include "kvs/ring.h"
#include "sim/network.h"

namespace pbs {
namespace kvs {

class Cluster;

/// A timed fail-stop event (Section 6 "Failure modes": crashed replicas
/// behave like an N-F replica set until they recover; staleness shows up in
/// the tails).
struct FailureEvent {
  enum class Kind { kCrash, kRecover };

  double time = 0.0;
  NodeId node = 0;
  Kind kind = Kind::kCrash;
};

/// A deterministic schedule of crash/recover events, installable on a
/// cluster before (or while) it runs.
class FailureSchedule {
 public:
  void AddCrash(double time, NodeId node);
  void AddRecover(double time, NodeId node);

  const std::vector<FailureEvent>& events() const { return events_; }

  /// Schedules every event on the cluster's simulator.
  void InstallOn(Cluster* cluster) const;

  /// Generates an independent crash/repair process per replica over
  /// [0, horizon): exponential time-to-failure with mean `mtbf_ms`, then
  /// exponential repair with mean `mttr_ms`, repeating.
  static FailureSchedule RandomCrashRecover(int num_replicas,
                                            double horizon_ms, double mtbf_ms,
                                            double mttr_ms, uint64_t seed);

 private:
  std::vector<FailureEvent> events_;
};

/// One timed gray failure. Unlike FailureEvent's fail-stop crashes, these
/// model the slow-but-alive states real clusters degrade into: a node whose
/// every reply takes 10x as long, a link that drops messages in bursts or
/// delivers them twice, a node that flaps up and down faster than hint
/// delivery converges, and the one-way partition where A hears B but B never
/// hears A.
struct GrayFault {
  enum class Kind {
    kSlowNode,            // FaultProfile on every message `node` sends
    kLossyLink,           // Gilbert-Elliott loss (and/or dup) on src -> dst
    kFlappingNode,        // crash/recover cycling at up_ms/down_ms
    kAsymmetricPartition, // src -> dst blocked; dst -> src delivers
  };

  Kind kind = Kind::kSlowNode;
  double start = 0.0;
  double end = 0.0;            // fault is active over [start, end)
  NodeId node = -1;            // kSlowNode / kFlappingNode
  NodeId src = -1;             // link faults
  NodeId dst = -1;
  FaultProfile profile;        // kSlowNode / kLossyLink parameters
  double up_ms = 0.0;          // kFlappingNode duty cycle
  double down_ms = 0.0;
};

/// A deterministic schedule of gray failures, the injection side of the
/// chaos experiments. Generalizes FailureSchedule beyond crash/recover; both
/// can be installed on the same cluster. Overlapping faults on the same
/// node/link are last-writer-wins at install time (keep them disjoint for
/// predictable runs).
class FaultSchedule {
 public:
  /// Every message `node` sends over [start, end) is delayed by
  /// delay' = delay * delay_mult + delay_add_ms.
  void AddSlowNode(double start, double end, NodeId node, double delay_mult,
                   double delay_add_ms = 0.0);

  /// Installs `profile` on the directed link src -> dst over [start, end) —
  /// the general form covering burst loss, duplication, and per-link delay.
  void AddLinkFault(double start, double end, NodeId src, NodeId dst,
                    const FaultProfile& profile);

  /// Bursty (Gilbert-Elliott) loss on src -> dst: the chain enters the bad
  /// state with p_good_to_bad per message, leaves with p_bad_to_good, and
  /// drops with loss_bad while bad (loss_good while good).
  void AddLossyLink(double start, double end, NodeId src, NodeId dst,
                    double p_good_to_bad, double p_bad_to_good,
                    double loss_bad, double loss_good = 0.0);

  /// Duplicate delivery on src -> dst with the given probability.
  void AddDuplicatingLink(double start, double end, NodeId src, NodeId dst,
                          double duplicate_probability);

  /// Crash/recover cycling: starting at `start` the node is up for `up_ms`,
  /// down for `down_ms`, repeating until `end` (left up at the end).
  void AddFlappingNode(double start, double end, NodeId node, double up_ms,
                       double down_ms);

  /// One-way cut src -> dst over [start, end); dst -> src keeps delivering.
  void AddAsymmetricPartition(double start, double end, NodeId src,
                              NodeId dst);

  /// Appends an already-built fault (merging schedules).
  void Add(const GrayFault& fault) { faults_.push_back(fault); }

  const std::vector<GrayFault>& faults() const { return faults_; }

  /// Schedules installation (at fault.start) and removal (at fault.end) of
  /// every fault on the cluster's simulator and network. Each activation
  /// bumps the per-kind counters in ClusterMetrics.
  void InstallOn(Cluster* cluster) const;

  /// Generates a seeded random mix of gray failures over [0, horizon):
  /// fault arrivals are Poisson with mean spacing `mean_interarrival_ms`,
  /// each fault picks a kind (uniformly), a victim node/link among
  /// `num_replicas` replicas, and an exponential duration with mean
  /// `mean_duration_ms`. Severity knobs use representative defaults (10x
  /// slowdown, 50% bursty loss, 20% duplication, 1:1 flapping).
  static FaultSchedule RandomGrayFailures(int num_replicas,
                                          double horizon_ms,
                                          double mean_interarrival_ms,
                                          double mean_duration_ms,
                                          uint64_t seed);

 private:
  std::vector<GrayFault> faults_;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_FAILURE_H_
