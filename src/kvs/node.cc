#include "kvs/node.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "kvs/cluster.h"
#include "kvs/profiler.h"

namespace pbs {
namespace kvs {

Node::Node(Cluster* cluster, NodeId id, bool is_replica, uint64_t seed)
    : cluster_(cluster), id_(id), is_replica_(is_replica), rng_(seed) {
  assert(cluster != nullptr);
}

// ---------------------------------------------------------------------------
// Pooled operation slots
//
// Per-op coordinator state lives in deque slabs recycled through free lists;
// a FlatMap64 maps request id -> slot. Slots keep their vector/string
// capacity across reuse, so once the pools are warm the coordinator paths
// acquire and retire operations without touching the heap. Request ids are
// never reused, so a message that outlives its operation (duplicate
// delivery, late ack) simply fails the index lookup.

Node::PendingWrite* Node::FindWrite(uint64_t request_id) {
  const uint32_t* slot = write_index_.Find(request_id);
  return slot == nullptr ? nullptr : &write_pool_[*slot];
}

Node::PendingRead* Node::FindRead(uint64_t request_id) {
  const uint32_t* slot = read_index_.Find(request_id);
  return slot == nullptr ? nullptr : &read_pool_[*slot];
}

Node::PendingWrite& Node::AcquireWrite(uint64_t request_id) {
  uint32_t slot;
  if (!write_free_.empty()) {
    slot = write_free_.back();
    write_free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(write_pool_.size());
    write_pool_.emplace_back();
  }
  PendingWrite& pending = write_pool_[slot];
  pending.request_id = request_id;
  pending.slot = slot;
  pending.key = 0;
  pending.replicas.clear();
  pending.acked_mask = 0;
  pending.acks = 0;
  pending.required = 1;
  pending.handoff_retries = 0;
  pending.start_time = 0.0;
  pending.pass = WritePass::kCollect;
  pending.committed = false;
  pending.timed_out = false;
  pending.trace_id = 0;
  pending.shard = 0;
  pending.timer = TimerHandle();
  write_index_.Put(request_id, slot);
  return pending;
}

Node::PendingRead& Node::AcquireRead(uint64_t request_id) {
  uint32_t slot;
  if (!read_free_.empty()) {
    slot = read_free_.back();
    read_free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(read_pool_.size());
    read_pool_.emplace_back();
  }
  PendingRead& pending = read_pool_[slot];
  pending.request_id = request_id;
  pending.slot = slot;
  pending.key = 0;
  pending.replicas.clear();
  pending.untried.clear();
  pending.hedge_only.clear();
  pending.responses = 0;
  pending.required = 1;
  pending.pass = ReadPass::kCollect;
  pending.start_time = 0.0;
  pending.has_best = false;
  pending.has_best_all = false;
  // `all` entries beyond `responses` are stale but retained: their value
  // buffers are reused in place by the next operation in this slot.
  pending.late_sequences.clear();
  pending.trace_id = 0;
  pending.shard = 0;
  pending.timeout_timer = TimerHandle();
  pending.hedge_timer = TimerHandle();
  read_index_.Put(request_id, slot);
  return pending;
}

void Node::RetireWrite(PendingWrite& pending) {
  // The timer may already have fired (retire from within the timeout /
  // handoff chain) — Cancel is a detected no-op then.
  cluster_->sim().CancelTimer(pending.timer);
  pending.timer = TimerHandle();
  pending.value.Reset();
  pending.done = nullptr;
  write_index_.Erase(pending.request_id);
  write_free_.push_back(pending.slot);
}

void Node::RetireRead(PendingRead& pending) {
  cluster_->sim().CancelTimer(pending.timeout_timer);
  cluster_->sim().CancelTimer(pending.hedge_timer);
  pending.timeout_timer = TimerHandle();
  pending.hedge_timer = TimerHandle();
  pending.done = nullptr;
  read_index_.Erase(pending.request_id);
  read_free_.push_back(pending.slot);
}

// ---------------------------------------------------------------------------
// Coordinator: write passes

void Node::CoordinateWrite(Key key, VersionedValue value, WriteCallback done,
                           double timeout_override_ms, uint64_t trace_id,
                           uint64_t client_ring_version) {
  const KvsConfig& config = cluster_->config();
  const uint64_t request_id = cluster_->NextRequestId();
  ++cluster_->metrics().writes_started;
  if (client_ring_version != 0 &&
      client_ring_version != cluster_->ring_version()) {
    // The client routed with an out-of-date ring; the coordinator serves it
    // against current placement (forwarding) and counts the stale route.
    ++cluster_->metrics().stale_routes_forwarded;
  }

  PendingWrite& pending = AcquireWrite(request_id);
  pending.key = key;
  // The payload is copied once into a pooled arena slot; every message
  // closure below carries a 16-byte handle instead of its own copy.
  pending.value = cluster_->version_arena().Acquire(value);
  // Union of old- and new-epoch replica sets while a rebalance drains; the
  // current-ring preference list is always the prefix, so [0] is the key's
  // shard primary.
  cluster_->RoutingReplicasForInto(key, &pending.replicas);
  assert(pending.replicas.size() <= 64);  // ack bookkeeping is a bitmask
  // Pad W by the number of extra (old-epoch) targets: W + (U - N) acks out
  // of U union targets intersect every R-of-U read quorum whenever
  // R + W > N, which is what makes acknowledged writes durable across the
  // epoch switch.
  pending.required =
      config.quorum.w +
      std::max(0, static_cast<int>(pending.replicas.size()) - config.quorum.n);
  pending.shard = pending.replicas.empty() ? 0 : pending.replicas.front();
  pending.start_time = cluster_->sim().now();
  pending.trace_id = trace_id;
  pending.done = std::move(done);
  ++cluster_->metrics().shards[pending.shard].writes;

  // Sloppy quorums (Dynamo): replace suspected home replicas with the next
  // healthy nodes from the extended preference list; substitutes hold the
  // write as a hint for the home replica.
  hint_homes_.assign(pending.replicas.size(), kNoHint);
  const FailureDetector* detector = cluster_->failure_detector();
  if (config.sloppy_quorums && detector != nullptr) {
    cluster_->ExtendedReplicasForInto(key, &extended_scratch_);
    size_t next_substitute = pending.replicas.size();
    for (size_t i = 0; i < pending.replicas.size(); ++i) {
      if (!detector->IsSuspected(pending.replicas[i])) continue;
      while (next_substitute < extended_scratch_.size() &&
             detector->IsSuspected(extended_scratch_[next_substitute])) {
        ++next_substitute;
      }
      if (next_substitute >= extended_scratch_.size()) break;  // nobody left
      ++cluster_->metrics().sloppy_substitutions;
      hint_homes_[i] = pending.replicas[i];
      pending.replicas[i] = extended_scratch_[next_substitute++];
    }
  }

  // Fan out to all N targets (Figure 1); each request leg draws its own W
  // delay.
  const double now = pending.start_time;
  for (size_t i = 0; i < pending.replicas.size(); ++i) {
    const NodeId replica = pending.replicas[i];
    const NodeId hint_home = hint_homes_[i];
    // A coordinator that is itself the target serves the request locally
    // (Section 4.2 "Proxying operations").
    const double delay =
        replica == id_ ? 0.0 : config.legs.w->Sample(rng_);
    if (cluster_->leg_profiler() != nullptr && replica != id_) {
      cluster_->leg_profiler()->Record(LegProfiler::Leg::kWriteRequest,
                                       delay);
    }
    Node* target = &cluster_->node(replica);
    // A dropped request leaves the timeout armed; hinted handoff (if on)
    // re-delivers from there.
    double effective_delay = delay;
    const bool delivered = cluster_->network().SendWithDelay(
        id_, replica, delay,
        [target, key, ref = pending.value, coordinator = id_, request_id,
         hint_home, trace_id]() {
          target->HandleWriteRequest(key, *ref, coordinator, request_id,
                                     /*is_repair=*/false, hint_home, trace_id);
        },
        &effective_delay);
    if (trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = trace_id,
          .kind = delivered ? obs::TraceEventKind::kLegSend
                            : obs::TraceEventKind::kLegDrop,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = delivered ? now + effective_delay : now,
          .a = pending.value->sequence});
    }
  }
  const double timeout = timeout_override_ms > 0.0 ? timeout_override_ms
                                                   : config.request_timeout_ms;
  pending.timer = cluster_->sim().ScheduleTimer(
      timeout, [this, request_id]() { OnWriteTimeout(request_id); });
}

void Node::OnWriteAck(uint64_t request_id, NodeId replica) {
  PendingWrite* slot = FindWrite(request_id);
  if (slot == nullptr) return;  // already retired
  PendingWrite& pending = *slot;
  for (size_t i = 0; i < pending.replicas.size(); ++i) {
    if (pending.replicas[i] != replica) continue;
    const uint64_t bit = uint64_t{1} << i;
    if ((pending.acked_mask & bit) != 0) {
      // Duplicate delivery (network duplication or a handoff re-send that
      // raced the original): never count the same replica toward W twice.
      ++cluster_->metrics().duplicate_acks_suppressed;
      return;
    }
    pending.acked_mask |= bit;
    ++pending.acks;
    break;
  }
  const double now = cluster_->sim().now();
  if (pending.trace_id != 0) {
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = pending.trace_id,
        .kind = obs::TraceEventKind::kAck,
        .leg = obs::WarsLeg::kA,
        .src = replica,
        .dst = id_,
        .t_start = now,
        .t_end = now,
        .a = pending.acks});
  }
  if (!pending.committed && pending.acks >= pending.required) {
    // Commit pass: the W-th distinct ack arrived before the timeout.
    pending.committed = true;
    WriteResult result;
    result.ok = true;
    result.status = Status::Ok();
    result.trace_id = pending.trace_id;
    result.sequence = pending.value->sequence;
    result.commit_time = now;
    result.latency_ms = result.commit_time - pending.start_time;
    result.ring_version = cluster_->ring_version();
    cluster_->metrics().write_latency.Record(result.latency_ms);
    cluster_->metrics().shards[pending.shard].write_latency.Record(
        result.latency_ms);
    cluster_->RecordCommit(pending.key, result.sequence, now);
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kReturn,
          .leg = obs::WarsLeg::kA,
          .src = replica,
          .dst = id_,
          .t_start = now,
          .t_end = now,
          .a = result.sequence,
          .b = pending.required});
    }
    if (pending.done) pending.done(result);
  }
  if (pending.acks == static_cast<int>(pending.replicas.size())) {
    RetireWrite(pending);
  }
}

void Node::OnWriteTimeout(uint64_t request_id) {
  PendingWrite* slot = FindWrite(request_id);
  if (slot == nullptr) return;  // fully acknowledged already
  PendingWrite& pending = *slot;
  if (!pending.committed && !pending.timed_out) {
    pending.timed_out = true;
    ++cluster_->metrics().writes_failed;
    if (pending.trace_id != 0) {
      const double now = cluster_->sim().now();
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kTimeout,
          .leg = obs::WarsLeg::kA,
          .src = id_,
          .t_start = now,
          .t_end = now,
          .a = pending.acks,
          .b = pending.required});
    }
    WriteResult failed;
    failed.status = Status::TimedOut("write: no W acks before the timeout");
    failed.trace_id = pending.trace_id;
    failed.sequence = pending.value->sequence;
    failed.ring_version = cluster_->ring_version();
    if (pending.done) pending.done(failed);
  }
  if (cluster_->config().hinted_handoff) {
    pending.pass = WritePass::kHandoff;
    ResendUnacked(request_id);
  } else {
    RetireWrite(pending);
  }
}

void Node::ResendUnacked(uint64_t request_id) {
  PendingWrite* slot = FindWrite(request_id);
  if (slot == nullptr) return;
  PendingWrite& pending = *slot;
  assert(pending.pass == WritePass::kHandoff);
  const KvsConfig& config = cluster_->config();

  // Hinted handoff (Section 6 "recovery semantics"): keep re-delivering the
  // write to unacknowledged replicas until they accept it or the retry
  // budget runs out.
  bool any_unacked = false;
  const double now = cluster_->sim().now();
  for (size_t i = 0; i < pending.replicas.size(); ++i) {
    if ((pending.acked_mask >> i) & 1) continue;
    any_unacked = true;
    const NodeId replica = pending.replicas[i];
    const double delay = config.legs.w->Sample(rng_);
    Node* target = &cluster_->node(replica);
    const Key key = pending.key;
    ++cluster_->metrics().hinted_handoffs_sent;
    double effective_delay = delay;
    const bool delivered = cluster_->network().SendWithDelay(
        id_, replica, delay,
        [target, key, ref = pending.value, coordinator = id_, request_id,
         trace_id = pending.trace_id]() {
          target->HandleWriteRequest(key, *ref, coordinator, request_id,
                                     /*is_repair=*/false, Node::kNoHint,
                                     trace_id);
        },
        &effective_delay);
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = delivered ? obs::TraceEventKind::kLegSend
                            : obs::TraceEventKind::kLegDrop,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = delivered ? now + effective_delay : now,
          .a = pending.value->sequence});
    }
  }
  if (!any_unacked) {
    RetireWrite(pending);
    return;
  }
  // Capped exponential backoff with deterministic jitter in [0.5, 1): the
  // first re-send waits ~backoff_base, then doubles up to backoff_max, so a
  // long outage costs O(log) retries instead of a fixed-rate storm.
  const int retries = pending.handoff_retries;
  if (++pending.handoff_retries >= config.hinted_handoff_max_retries) {
    RetireWrite(pending);
    return;
  }
  const double backoff =
      std::min(config.hinted_handoff_backoff_max_ms,
               config.hinted_handoff_backoff_base_ms *
                   std::pow(2.0, static_cast<double>(retries)));
  const double jitter = 0.5 + 0.5 * rng_.NextDouble();
  pending.timer = cluster_->sim().ScheduleTimer(
      backoff * jitter, [this, request_id]() { ResendUnacked(request_id); });
}

// ---------------------------------------------------------------------------
// Coordinator: read passes

void Node::CoordinateRead(Key key, ReadCallback done, int required_override,
                          double timeout_override_ms, uint64_t trace_id,
                          uint64_t client_ring_version) {
  const KvsConfig& config = cluster_->config();
  const uint64_t request_id = cluster_->NextRequestId();
  ++cluster_->metrics().reads_started;
  if (client_ring_version != 0 &&
      client_ring_version != cluster_->ring_version()) {
    ++cluster_->metrics().stale_routes_forwarded;
  }

  PendingRead& pending = AcquireRead(request_id);
  pending.key = key;
  // Union routing during rebalance; current-ring prefix, [0] = primary.
  cluster_->RoutingReplicasForInto(key, &pending.replicas);
  pending.shard = pending.replicas.empty() ? 0 : pending.replicas.front();
  ++cluster_->metrics().shards[pending.shard].reads;
  pending.required =
      required_override > 0
          ? std::min(required_override,
                     static_cast<int>(pending.replicas.size()))
          : cluster_->EffectiveReadQuorumFor(key);
  if (config.read_fanout == ReadFanout::kQuorumOnly) {
    // Voldemort-style: contact only a uniformly random R-subset. The
    // uncontacted remainder becomes the hedge pool.
    for (int i = 0; i < pending.required; ++i) {
      const size_t j =
          i + rng_.NextBounded(pending.replicas.size() - i);
      std::swap(pending.replicas[i], pending.replicas[j]);
    }
    pending.untried.assign(pending.replicas.begin() + pending.required,
                           pending.replicas.end());
    pending.replicas.resize(pending.required);
  }
  pending.start_time = cluster_->sim().now();
  pending.trace_id = trace_id;
  pending.done = std::move(done);
  for (NodeId replica : pending.replicas) {
    SendReadRequest(key, replica, request_id, trace_id, /*is_hedge=*/false);
  }
  const double timeout = timeout_override_ms > 0.0 ? timeout_override_ms
                                                   : config.request_timeout_ms;
  pending.timeout_timer = cluster_->sim().ScheduleTimer(
      timeout, [this, request_id]() { OnReadTimeout(request_id); });
  if (config.hedge.enabled) {
    // Rapid read protection: if R responses have not assembled by the
    // hedging delay, re-issue the read (see OnHedgeDeadline). The delay is
    // either pinned or derived from the per-leg latency quantiles.
    double hedge_delay = config.hedge.delay_ms;
    if (hedge_delay <= 0.0) {
      hedge_delay = config.legs.r->Quantile(config.hedge.quantile) +
                    config.legs.s->Quantile(config.hedge.quantile);
    }
    if (hedge_delay < timeout) {
      pending.hedge_timer = cluster_->sim().ScheduleTimer(
          hedge_delay, [this, request_id]() { OnHedgeDeadline(request_id); });
    }
  }
}

void Node::SendReadRequest(Key key, NodeId replica, uint64_t request_id,
                           uint64_t trace_id, bool is_hedge) {
  const KvsConfig& config = cluster_->config();
  const double delay = replica == id_ ? 0.0 : config.legs.r->Sample(rng_);
  if (cluster_->leg_profiler() != nullptr && replica != id_) {
    cluster_->leg_profiler()->Record(LegProfiler::Leg::kReadRequest, delay);
  }
  Node* target = &cluster_->node(replica);
  // A dropped request leaves the hedge/timeout timers armed.
  double effective_delay = delay;
  const bool delivered = cluster_->network().SendWithDelay(
      id_, replica, delay,
      [target, key, coordinator = id_, request_id, trace_id]() {
        target->HandleReadRequest(key, coordinator, request_id, trace_id);
      },
      &effective_delay);
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = delivered ? obs::TraceEventKind::kLegSend
                          : obs::TraceEventKind::kLegDrop,
        .leg = obs::WarsLeg::kR,
        .src = id_,
        .dst = replica,
        .t_start = now,
        .t_end = delivered ? now + effective_delay : now,
        .b = is_hedge ? 1 : 0});
  }
}

void Node::OnHedgeDeadline(uint64_t request_id) {
  PendingRead* slot = FindRead(request_id);
  if (slot == nullptr) return;  // collection already finished
  PendingRead& pending = *slot;
  if (pending.returned()) return;  // R assembled in time: nothing to protect
  const KvsConfig& config = cluster_->config();
  const double now = cluster_->sim().now();
  int budget = std::max(1, config.hedge.max_per_read);
  // Prefer preference-list replicas never contacted (the kQuorumOnly
  // leftover pool): a fresh replica dodges whatever is slowing the original
  // targets. Fall back to re-sending to contacted-but-silent replicas,
  // which only helps when the *message* was lost rather than the replica
  // slow — both re-issues are deduplicated per replica on response.
  while (budget > 0 && !pending.untried.empty()) {
    const NodeId replica = pending.untried.front();
    pending.untried.erase(pending.untried.begin());
    pending.replicas.push_back(replica);
    pending.hedge_only.push_back(replica);
    ++cluster_->metrics().hedged_reads_sent;
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kHedge,
          .leg = obs::WarsLeg::kR,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = now,
          .a = 1});
    }
    SendReadRequest(pending.key, replica, request_id, pending.trace_id,
                    /*is_hedge=*/true);
    --budget;
  }
  for (size_t i = 0; budget > 0 && i < pending.replicas.size(); ++i) {
    const NodeId replica = pending.replicas[i];
    bool responded = false;
    for (int r = 0; r < pending.responses; ++r) {
      if (pending.all[r].replica == replica) {
        responded = true;
        break;
      }
    }
    if (responded) continue;
    if (std::find(pending.hedge_only.begin(), pending.hedge_only.end(),
                  replica) != pending.hedge_only.end()) {
      continue;  // just hedged to it above
    }
    ++cluster_->metrics().hedged_reads_sent;
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kHedge,
          .leg = obs::WarsLeg::kR,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = now,
          .a = 0});
    }
    SendReadRequest(pending.key, replica, request_id, pending.trace_id,
                    /*is_hedge=*/true);
    --budget;
  }
}

void Node::OnReadResponse(uint64_t request_id, NodeId replica,
                          std::optional<VersionedValue> value) {
  OnReadResponseValue(request_id, replica,
                      value.has_value() ? &*value : nullptr);
}

void Node::OnReadResponseValue(uint64_t request_id, NodeId replica,
                               const VersionedValue* value) {
  PendingRead* slot = FindRead(request_id);
  if (slot == nullptr) return;
  PendingRead& pending = *slot;
  // Dedup by replica: a hedge re-issue or a network-duplicated message can
  // make the same replica answer twice, and a second response must never
  // count toward R (or be double-counted by read repair / the staleness
  // detector).
  for (int i = 0; i < pending.responses; ++i) {
    if (pending.all[i].replica == replica) {
      ++cluster_->metrics().duplicate_responses_suppressed;
      return;
    }
  }
  if (pending.responses == static_cast<int>(pending.all.size())) {
    pending.all.emplace_back();
  }
  ReadResponse& entry = pending.all[pending.responses++];
  entry.replica = replica;
  entry.has_value = value != nullptr;
  if (value != nullptr) entry.value = *value;  // buffers reused in place

  if (pending.trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = pending.trace_id,
        .kind = obs::TraceEventKind::kResponse,
        .leg = obs::WarsLeg::kS,
        .src = replica,
        .dst = id_,
        .t_start = now,
        .t_end = now,
        .a = value != nullptr ? value->sequence : 0,
        .b = value != nullptr ? 1 : 0});
  }

  if (value != nullptr) {
    if (!pending.has_best_all || value->NewerThan(pending.best_all)) {
      pending.best_all = *value;
      pending.has_best_all = true;
    }
  }

  if (!pending.returned()) {
    // Still assembling the first R responses.
    if (value != nullptr &&
        (!pending.has_best || value->NewerThan(pending.best))) {
      pending.best = *value;
      pending.has_best = true;
    }
    if (pending.responses >= pending.required) {
      ReturnRead(pending, replica);
    }
  } else {
    // A late response (after the client already got its answer).
    pending.late_sequences.push_back(value != nullptr ? value->sequence : 0);
  }

  MaybeFinishReadCollection(pending);
}

void Node::ReturnRead(PendingRead& pending, NodeId replica) {
  // Return pass: hand the freshest of the first R responses to the client
  // and switch the op to late collection.
  pending.pass = ReadPass::kLateCollect;
  if (std::find(pending.hedge_only.begin(), pending.hedge_only.end(),
                replica) != pending.hedge_only.end()) {
    // The response that completed R came from a replica only a hedge
    // contacted: the hedge saved this read's latency.
    ++cluster_->metrics().hedged_reads_won;
  }
  ReadResult result;
  result.ok = true;
  result.status = Status::Ok();
  result.trace_id = pending.trace_id;
  result.start_time = pending.start_time;
  result.latency_ms = cluster_->sim().now() - pending.start_time;
  if (pending.has_best) result.value = pending.best;
  result.required = pending.required;
  result.ring_version = cluster_->ring_version();
  cluster_->metrics().read_latency.Record(result.latency_ms);
  cluster_->metrics().shards[pending.shard].read_latency.Record(
      result.latency_ms);
  cluster_->RecordReadOutcome(pending.key,
                              pending.has_best ? pending.best.sequence : 0,
                              pending.start_time);
  if (pending.trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = pending.trace_id,
        .kind = obs::TraceEventKind::kReturn,
        .leg = obs::WarsLeg::kS,
        .src = replica,
        .dst = id_,
        .t_start = now,
        .t_end = now,
        .a = pending.has_best ? pending.best.sequence : 0,
        .b = pending.required});
  }
  if (pending.done) pending.done(result);
}

void Node::MaybeFinishReadCollection(PendingRead& pending) {
  if (pending.responses < static_cast<int>(pending.replicas.size())) return;
  CloseReadCollection(pending);
}

void Node::CloseReadCollection(PendingRead& pending) {
  // Close pass: every replica answered (or the timeout sealed the window) —
  // fire the detector hook, repair stale replicas, retire the slot.
  if (cluster_->late_read_hook()) {
    LateReadInfo info;
    info.returned_sequence = pending.has_best ? pending.best.sequence : 0;
    info.read_start_time = pending.start_time;
    info.late_response_sequences = pending.late_sequences;
    info.key = pending.key;
    info.shard = pending.shard;
    cluster_->late_read_hook()(info);
  }
  if (cluster_->config().read_repair) SendReadRepairs(pending);
  RetireRead(pending);
}

void Node::SendReadRepairs(const PendingRead& pending) {
  if (!pending.has_best_all) return;
  const KvsConfig& config = cluster_->config();
  const VersionedValue& freshest = pending.best_all;
  // One arena slot shared by every repair leg of this read.
  const VersionRef freshest_ref = cluster_->version_arena().Acquire(freshest);
  const double now = cluster_->sim().now();
  for (int i = 0; i < pending.responses; ++i) {
    const ReadResponse& entry = pending.all[i];
    const bool stale =
        !entry.has_value || freshest.NewerThan(entry.value);
    if (!stale) continue;
    const NodeId replica = entry.replica;
    const double delay = config.legs.w->Sample(rng_);
    Node* target = &cluster_->node(replica);
    const Key key = pending.key;
    ++cluster_->metrics().read_repairs_sent;
    // Fire-and-forget: anti-entropy eventually covers a dropped repair.
    double effective_delay = delay;
    const bool delivered = cluster_->network().SendWithDelay(
        id_, replica, delay,
        [target, key, ref = freshest_ref, coordinator = id_,
         trace_id = pending.trace_id]() {
          target->HandleWriteRequest(key, *ref, coordinator,
                                     /*request_id=*/0, /*is_repair=*/true,
                                     Node::kNoHint, trace_id);
        },
        &effective_delay);
    if (pending.trace_id != 0) {
      obs::Tracer& tracer = cluster_->tracer();
      tracer.Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kRepair,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = now,
          .a = freshest.sequence,
          .b = entry.has_value ? entry.value.sequence : 0});
      tracer.Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = delivered ? obs::TraceEventKind::kLegSend
                            : obs::TraceEventKind::kLegDrop,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = delivered ? now + effective_delay : now,
          .a = freshest.sequence,
          .b = 1});
    }
  }
}

void Node::OnReadTimeout(uint64_t request_id) {
  PendingRead* slot = FindRead(request_id);
  if (slot == nullptr) return;
  PendingRead& pending = *slot;
  if (!pending.returned()) {
    // Timeout pass: fewer than R distinct responses before the deadline.
    pending.pass = ReadPass::kLateCollect;
    ++cluster_->metrics().reads_failed;
    if (pending.trace_id != 0) {
      const double now = cluster_->sim().now();
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kTimeout,
          .leg = obs::WarsLeg::kS,
          .src = id_,
          .t_start = now,
          .t_end = now,
          .a = pending.responses,
          .b = pending.required});
    }
    ReadResult result;
    result.ok = false;
    result.status = Status::TimedOut("read: fewer than R responses");
    result.trace_id = pending.trace_id;
    result.start_time = pending.start_time;
    result.latency_ms = cluster_->sim().now() - pending.start_time;
    result.required = pending.required;
    result.ring_version = cluster_->ring_version();
    if (pending.done) pending.done(result);
  }
  // Close the collection window with whatever arrived.
  CloseReadCollection(pending);
}

// ---------------------------------------------------------------------------
// Replica handlers

void Node::HandleWriteRequest(Key key, const VersionedValue& value,
                              NodeId coordinator, uint64_t request_id,
                              bool is_repair, NodeId hint_home,
                              uint64_t trace_id) {
  if (!alive_) return;  // fail-stop: crashed nodes drop everything
  assert(is_replica_);
  if (hint_home != kNoHint && hint_home != id_) {
    // Sloppy-quorum substitute: park the value for the home replica instead
    // of serving it (hinted values are not in this node's read path).
    StoreHint(key, hint_home, value);
  } else {
    storage_.Put(key, value);
  }
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = obs::TraceEventKind::kReplicaServe,
        .leg = obs::WarsLeg::kW,
        .src = id_,
        .t_start = now,
        .t_end = now,
        .a = value.sequence,
        .b = is_repair ? 1 : 0});
  }
  if (is_repair) return;  // repairs are fire-and-forget
  const double delay =
      coordinator == id_ ? 0.0 : cluster_->config().legs.a->Sample(rng_);
  if (cluster_->leg_profiler() != nullptr && coordinator != id_) {
    cluster_->leg_profiler()->Record(LegProfiler::Leg::kWriteAck, delay);
  }
  Node* target = &cluster_->node(coordinator);
  // A dropped ack leaves the coordinator's write timeout armed.
  double effective_delay = delay;
  const bool delivered = cluster_->network().SendWithDelay(
      id_, coordinator, delay,
      [target, request_id, replica = id_]() {
        target->OnWriteAck(request_id, replica);
      },
      &effective_delay);
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = delivered ? obs::TraceEventKind::kLegSend
                          : obs::TraceEventKind::kLegDrop,
        .leg = obs::WarsLeg::kA,
        .src = id_,
        .dst = coordinator,
        .t_start = now,
        .t_end = delivered ? now + effective_delay : now,
        .a = value.sequence});
  }
}

void Node::StoreHint(Key key, NodeId home, const VersionedValue& value) {
  hints_.push_back(Hint{key, home, value});
  ++cluster_->metrics().hints_stored;
  if (!hint_task_scheduled_) {
    hint_task_scheduled_ = true;
    (void)cluster_->sim().ScheduleTimer(
        cluster_->config().hint_delivery_interval_ms,
        [this]() { DeliverHints(); });
  }
}

void Node::DeliverHints() {
  hint_task_scheduled_ = false;
  if (!alive_) {
    // A crashed substitute retries once it recovers and the task refires.
    if (!hints_.empty()) {
      hint_task_scheduled_ = true;
      (void)cluster_->sim().ScheduleTimer(
          cluster_->config().hint_delivery_interval_ms,
          [this]() { DeliverHints(); });
    }
    return;
  }
  const FailureDetector* detector = cluster_->failure_detector();
  // In-place compaction: undeliverable hints slide forward (order
  // preserved), delivered ones are forwarded and dropped.
  size_t kept = 0;
  for (size_t i = 0; i < hints_.size(); ++i) {
    Hint& hint = hints_[i];
    if (detector != nullptr && detector->IsSuspected(hint.home)) {
      if (kept != i) hints_[kept] = std::move(hint);
      ++kept;
      continue;
    }
    // Forward to the home replica as a fire-and-forget replication write.
    const double delay = cluster_->config().legs.w->Sample(rng_);
    Node* target = &cluster_->node(hint.home);
    ++cluster_->metrics().hints_delivered;
    // Fire-and-forget: an undelivered hint stays queued until the next pass.
    (void)cluster_->network().SendWithDelay(
        id_, hint.home, delay,
        [target, key = hint.key,
         ref = cluster_->version_arena().Acquire(hint.value),
         from = id_]() {
          target->HandleWriteRequest(key, *ref, from, /*request_id=*/0,
                                     /*is_repair=*/true);
        });
  }
  hints_.resize(kept);
  if (!hints_.empty()) {
    hint_task_scheduled_ = true;
    (void)cluster_->sim().ScheduleTimer(
        cluster_->config().hint_delivery_interval_ms,
        [this]() { DeliverHints(); });
  }
}

void Node::HandleReadRequest(Key key, NodeId coordinator, uint64_t request_id,
                             uint64_t trace_id) {
  if (!alive_) return;
  assert(is_replica_);
  const VersionedValue* stored = storage_.Find(key);
  const int64_t held_sequence = stored != nullptr ? stored->sequence : 0;
  const double delay =
      coordinator == id_ ? 0.0 : cluster_->config().legs.s->Sample(rng_);
  if (cluster_->leg_profiler() != nullptr && coordinator != id_) {
    cluster_->leg_profiler()->Record(LegProfiler::Leg::kReadResponse, delay);
  }
  Node* target = &cluster_->node(coordinator);
  VersionRef ref;
  if (stored != nullptr) ref = cluster_->version_arena().Acquire(*stored);
  // A dropped response leaves the coordinator's hedge/timeout timers armed.
  double effective_delay = delay;
  const bool delivered = cluster_->network().SendWithDelay(
      id_, coordinator, delay,
      [target, request_id, replica = id_, ref = std::move(ref)]() {
        target->OnReadResponseValue(request_id, replica,
                                    ref ? &*ref : nullptr);
      },
      &effective_delay);
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    obs::Tracer& tracer = cluster_->tracer();
    tracer.Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = obs::TraceEventKind::kReplicaServe,
        .leg = obs::WarsLeg::kR,
        .src = id_,
        .t_start = now,
        .t_end = now,
        .a = held_sequence});
    tracer.Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = delivered ? obs::TraceEventKind::kLegSend
                          : obs::TraceEventKind::kLegDrop,
        .leg = obs::WarsLeg::kS,
        .src = id_,
        .dst = coordinator,
        .t_start = now,
        .t_end = delivered ? now + effective_delay : now,
        .a = held_sequence});
  }
}

}  // namespace kvs
}  // namespace pbs
