#include "kvs/node.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "kvs/cluster.h"
#include "kvs/profiler.h"

namespace pbs {
namespace kvs {

Node::Node(Cluster* cluster, NodeId id, bool is_replica, uint64_t seed)
    : cluster_(cluster), id_(id), is_replica_(is_replica), rng_(seed) {
  assert(cluster != nullptr);
}

// ---------------------------------------------------------------------------
// Coordinator: writes

void Node::CoordinateWrite(Key key, VersionedValue value, WriteCallback done,
                           double timeout_override_ms, uint64_t trace_id,
                           uint64_t client_ring_version) {
  const KvsConfig& config = cluster_->config();
  const uint64_t request_id = cluster_->NextRequestId();
  ++cluster_->metrics().writes_started;
  if (client_ring_version != 0 &&
      client_ring_version != cluster_->ring_version()) {
    // The client routed with an out-of-date ring; the coordinator serves it
    // against current placement (forwarding) and counts the stale route.
    ++cluster_->metrics().stale_routes_forwarded;
  }

  PendingWrite pending;
  pending.key = key;
  pending.value = std::move(value);
  // Union of old- and new-epoch replica sets while a rebalance drains; the
  // current-ring preference list is always the prefix, so [0] is the key's
  // shard primary.
  pending.replicas = cluster_->RoutingReplicasFor(key);
  // Pad W by the number of extra (old-epoch) targets: W + (U - N) acks out
  // of U union targets intersect every R-of-U read quorum whenever
  // R + W > N, which is what makes acknowledged writes durable across the
  // epoch switch.
  pending.required =
      config.quorum.w +
      std::max(0, static_cast<int>(pending.replicas.size()) - config.quorum.n);
  pending.shard = pending.replicas.empty() ? 0 : pending.replicas.front();
  pending.start_time = cluster_->sim().now();
  pending.trace_id = trace_id;
  pending.done = std::move(done);
  ++cluster_->metrics().shards[pending.shard].writes;

  // Sloppy quorums (Dynamo): replace suspected home replicas with the next
  // healthy nodes from the extended preference list; substitutes hold the
  // write as a hint for the home replica.
  std::vector<NodeId> hint_homes(pending.replicas.size(), kNoHint);
  const FailureDetector* detector = cluster_->failure_detector();
  if (config.sloppy_quorums && detector != nullptr) {
    const std::vector<NodeId> extended = cluster_->ExtendedReplicasFor(key);
    size_t next_substitute = pending.replicas.size();
    for (size_t i = 0; i < pending.replicas.size(); ++i) {
      if (!detector->IsSuspected(pending.replicas[i])) continue;
      while (next_substitute < extended.size() &&
             detector->IsSuspected(extended[next_substitute])) {
        ++next_substitute;
      }
      if (next_substitute >= extended.size()) break;  // nobody left to sub
      ++cluster_->metrics().sloppy_substitutions;
      hint_homes[i] = pending.replicas[i];
      pending.replicas[i] = extended[next_substitute++];
    }
  }

  pending.acked.assign(pending.replicas.size(), false);
  // Fan out to all N targets (Figure 1); each request leg draws its own W
  // delay.
  const double now = pending.start_time;
  for (size_t i = 0; i < pending.replicas.size(); ++i) {
    const NodeId replica = pending.replicas[i];
    const NodeId hint_home = hint_homes[i];
    // A coordinator that is itself the target serves the request locally
    // (Section 4.2 "Proxying operations").
    const double delay =
        replica == id_ ? 0.0 : config.legs.w->Sample(rng_);
    if (cluster_->leg_profiler() != nullptr && replica != id_) {
      cluster_->leg_profiler()->Record(LegProfiler::Leg::kWriteRequest,
                                       delay);
    }
    Node* target = &cluster_->node(replica);
    const VersionedValue& payload = pending.value;
    // A dropped request leaves the timeout armed; hinted handoff (if on)
    // re-delivers from there.
    double effective_delay = delay;
    const bool delivered = cluster_->network().SendWithDelay(
        id_, replica, delay,
        [target, key, payload, coordinator = id_, request_id, hint_home,
         trace_id]() {
          target->HandleWriteRequest(key, payload, coordinator, request_id,
                                     /*is_repair=*/false, hint_home, trace_id);
        },
        &effective_delay);
    if (trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = trace_id,
          .kind = delivered ? obs::TraceEventKind::kLegSend
                            : obs::TraceEventKind::kLegDrop,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = delivered ? now + effective_delay : now,
          .a = pending.value.sequence});
    }
  }
  pending_writes_.emplace(request_id, std::move(pending));
  const double timeout = timeout_override_ms > 0.0 ? timeout_override_ms
                                                   : config.request_timeout_ms;
  cluster_->sim().Schedule(timeout,
                           [this, request_id]() {
                             OnWriteTimeout(request_id);
                           });
}

void Node::OnWriteAck(uint64_t request_id, NodeId replica) {
  const auto it = pending_writes_.find(request_id);
  if (it == pending_writes_.end()) return;  // already cleaned up
  PendingWrite& pending = it->second;
  for (size_t i = 0; i < pending.replicas.size(); ++i) {
    if (pending.replicas[i] != replica) continue;
    if (pending.acked[i]) {
      // Duplicate delivery (network duplication or a handoff re-send that
      // raced the original): never count the same replica toward W twice.
      ++cluster_->metrics().duplicate_acks_suppressed;
      return;
    }
    pending.acked[i] = true;
    ++pending.acks;
    break;
  }
  const double now = cluster_->sim().now();
  if (pending.trace_id != 0) {
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = pending.trace_id,
        .kind = obs::TraceEventKind::kAck,
        .leg = obs::WarsLeg::kA,
        .src = replica,
        .dst = id_,
        .t_start = now,
        .t_end = now,
        .a = pending.acks});
  }
  if (!pending.committed && pending.acks >= pending.required) {
    pending.committed = true;
    WriteResult result;
    result.ok = true;
    result.status = Status::Ok();
    result.trace_id = pending.trace_id;
    result.sequence = pending.value.sequence;
    result.commit_time = now;
    result.latency_ms = result.commit_time - pending.start_time;
    result.ring_version = cluster_->ring_version();
    cluster_->metrics().write_latency.Record(result.latency_ms);
    cluster_->metrics().shards[pending.shard].write_latency.Record(
        result.latency_ms);
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kReturn,
          .leg = obs::WarsLeg::kA,
          .src = replica,
          .dst = id_,
          .t_start = now,
          .t_end = now,
          .a = result.sequence,
          .b = pending.required});
    }
    if (pending.done) pending.done(result);
  }
  if (pending.acks == static_cast<int>(pending.replicas.size())) {
    pending_writes_.erase(it);
  }
}

void Node::OnWriteTimeout(uint64_t request_id) {
  const auto it = pending_writes_.find(request_id);
  if (it == pending_writes_.end()) return;  // fully acknowledged already
  PendingWrite& pending = it->second;
  if (!pending.committed && !pending.timed_out) {
    pending.timed_out = true;
    ++cluster_->metrics().writes_failed;
    if (pending.trace_id != 0) {
      const double now = cluster_->sim().now();
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kTimeout,
          .leg = obs::WarsLeg::kA,
          .src = id_,
          .t_start = now,
          .t_end = now,
          .a = pending.acks,
          .b = pending.required});
    }
    WriteResult failed;
    failed.status = Status::TimedOut("write: no W acks before the timeout");
    failed.trace_id = pending.trace_id;
    failed.sequence = pending.value.sequence;
    failed.ring_version = cluster_->ring_version();
    if (pending.done) pending.done(failed);
  }
  if (cluster_->config().hinted_handoff) {
    ResendUnacked(request_id);
  } else {
    pending_writes_.erase(it);
  }
}

void Node::ResendUnacked(uint64_t request_id) {
  const auto it = pending_writes_.find(request_id);
  if (it == pending_writes_.end()) return;
  PendingWrite& pending = it->second;
  const KvsConfig& config = cluster_->config();

  // Hinted handoff (Section 6 "recovery semantics"): keep re-delivering the
  // write to unacknowledged replicas until they accept it or the retry
  // budget runs out.
  bool any_unacked = false;
  const double now = cluster_->sim().now();
  for (size_t i = 0; i < pending.replicas.size(); ++i) {
    if (pending.acked[i]) continue;
    any_unacked = true;
    const NodeId replica = pending.replicas[i];
    const double delay = config.legs.w->Sample(rng_);
    Node* target = &cluster_->node(replica);
    const Key key = pending.key;
    const VersionedValue& payload = pending.value;
    ++cluster_->metrics().hinted_handoffs_sent;
    double effective_delay = delay;
    const bool delivered = cluster_->network().SendWithDelay(
        id_, replica, delay,
        [target, key, payload, coordinator = id_, request_id,
         trace_id = pending.trace_id]() {
          target->HandleWriteRequest(key, payload, coordinator, request_id,
                                     /*is_repair=*/false, Node::kNoHint,
                                     trace_id);
        },
        &effective_delay);
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = delivered ? obs::TraceEventKind::kLegSend
                            : obs::TraceEventKind::kLegDrop,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = delivered ? now + effective_delay : now,
          .a = payload.sequence});
    }
  }
  if (!any_unacked) {
    pending_writes_.erase(it);
    return;
  }
  // Capped exponential backoff with deterministic jitter in [0.5, 1): the
  // first re-send waits ~backoff_base, then doubles up to backoff_max, so a
  // long outage costs O(log) retries instead of a fixed-rate storm.
  const int retries = pending.handoff_retries;
  if (++pending.handoff_retries >= config.hinted_handoff_max_retries) {
    pending_writes_.erase(it);
    return;
  }
  const double backoff =
      std::min(config.hinted_handoff_backoff_max_ms,
               config.hinted_handoff_backoff_base_ms *
                   std::pow(2.0, static_cast<double>(retries)));
  const double jitter = 0.5 + 0.5 * rng_.NextDouble();
  cluster_->sim().Schedule(backoff * jitter,
                           [this, request_id]() {
                             ResendUnacked(request_id);
                           });
}

// ---------------------------------------------------------------------------
// Coordinator: reads

void Node::CoordinateRead(Key key, ReadCallback done, int required_override,
                          double timeout_override_ms, uint64_t trace_id,
                          uint64_t client_ring_version) {
  const KvsConfig& config = cluster_->config();
  const uint64_t request_id = cluster_->NextRequestId();
  ++cluster_->metrics().reads_started;
  if (client_ring_version != 0 &&
      client_ring_version != cluster_->ring_version()) {
    ++cluster_->metrics().stale_routes_forwarded;
  }

  PendingRead pending;
  pending.key = key;
  // Union routing during rebalance; current-ring prefix, [0] = primary.
  pending.replicas = cluster_->RoutingReplicasFor(key);
  pending.shard = pending.replicas.empty() ? 0 : pending.replicas.front();
  ++cluster_->metrics().shards[pending.shard].reads;
  pending.required =
      required_override > 0
          ? std::min(required_override,
                     static_cast<int>(pending.replicas.size()))
          : config.quorum.r;
  if (config.read_fanout == ReadFanout::kQuorumOnly) {
    // Voldemort-style: contact only a uniformly random R-subset. The
    // uncontacted remainder becomes the hedge pool.
    for (int i = 0; i < pending.required; ++i) {
      const size_t j =
          i + rng_.NextBounded(pending.replicas.size() - i);
      std::swap(pending.replicas[i], pending.replicas[j]);
    }
    pending.untried.assign(pending.replicas.begin() + pending.required,
                           pending.replicas.end());
    pending.replicas.resize(pending.required);
  }
  pending.start_time = cluster_->sim().now();
  pending.trace_id = trace_id;
  pending.done = std::move(done);
  for (NodeId replica : pending.replicas) {
    SendReadRequest(key, replica, request_id, trace_id, /*is_hedge=*/false);
  }
  pending_reads_.emplace(request_id, std::move(pending));
  const double timeout = timeout_override_ms > 0.0 ? timeout_override_ms
                                                   : config.request_timeout_ms;
  cluster_->sim().Schedule(timeout,
                           [this, request_id]() { OnReadTimeout(request_id); });
  if (config.hedge.enabled) {
    // Rapid read protection: if R responses have not assembled by the
    // hedging delay, re-issue the read (see OnHedgeDeadline). The delay is
    // either pinned or derived from the per-leg latency quantiles.
    double hedge_delay = config.hedge.delay_ms;
    if (hedge_delay <= 0.0) {
      hedge_delay = config.legs.r->Quantile(config.hedge.quantile) +
                    config.legs.s->Quantile(config.hedge.quantile);
    }
    if (hedge_delay < timeout) {
      cluster_->sim().Schedule(
          hedge_delay, [this, request_id]() { OnHedgeDeadline(request_id); });
    }
  }
}

void Node::SendReadRequest(Key key, NodeId replica, uint64_t request_id,
                           uint64_t trace_id, bool is_hedge) {
  const KvsConfig& config = cluster_->config();
  const double delay = replica == id_ ? 0.0 : config.legs.r->Sample(rng_);
  if (cluster_->leg_profiler() != nullptr && replica != id_) {
    cluster_->leg_profiler()->Record(LegProfiler::Leg::kReadRequest, delay);
  }
  Node* target = &cluster_->node(replica);
  // A dropped request leaves the hedge/timeout timers armed.
  double effective_delay = delay;
  const bool delivered = cluster_->network().SendWithDelay(
      id_, replica, delay,
      [target, key, coordinator = id_, request_id, trace_id]() {
        target->HandleReadRequest(key, coordinator, request_id, trace_id);
      },
      &effective_delay);
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = delivered ? obs::TraceEventKind::kLegSend
                          : obs::TraceEventKind::kLegDrop,
        .leg = obs::WarsLeg::kR,
        .src = id_,
        .dst = replica,
        .t_start = now,
        .t_end = delivered ? now + effective_delay : now,
        .b = is_hedge ? 1 : 0});
  }
}

void Node::OnHedgeDeadline(uint64_t request_id) {
  const auto it = pending_reads_.find(request_id);
  if (it == pending_reads_.end()) return;  // collection already finished
  PendingRead& pending = it->second;
  if (pending.returned) return;  // R assembled in time: nothing to protect
  const KvsConfig& config = cluster_->config();
  const double now = cluster_->sim().now();
  int budget = std::max(1, config.hedge.max_per_read);
  // Prefer preference-list replicas never contacted (the kQuorumOnly
  // leftover pool): a fresh replica dodges whatever is slowing the original
  // targets. Fall back to re-sending to contacted-but-silent replicas,
  // which only helps when the *message* was lost rather than the replica
  // slow — both re-issues are deduplicated per replica on response.
  while (budget > 0 && !pending.untried.empty()) {
    const NodeId replica = pending.untried.front();
    pending.untried.erase(pending.untried.begin());
    pending.replicas.push_back(replica);
    pending.hedge_only.push_back(replica);
    ++cluster_->metrics().hedged_reads_sent;
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kHedge,
          .leg = obs::WarsLeg::kR,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = now,
          .a = 1});
    }
    SendReadRequest(pending.key, replica, request_id, pending.trace_id,
                    /*is_hedge=*/true);
    --budget;
  }
  for (size_t i = 0; budget > 0 && i < pending.replicas.size(); ++i) {
    const NodeId replica = pending.replicas[i];
    bool responded = false;
    for (const auto& [r, value] : pending.all) {
      if (r == replica) {
        responded = true;
        break;
      }
    }
    if (responded) continue;
    if (std::find(pending.hedge_only.begin(), pending.hedge_only.end(),
                  replica) != pending.hedge_only.end()) {
      continue;  // just hedged to it above
    }
    ++cluster_->metrics().hedged_reads_sent;
    if (pending.trace_id != 0) {
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kHedge,
          .leg = obs::WarsLeg::kR,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = now,
          .a = 0});
    }
    SendReadRequest(pending.key, replica, request_id, pending.trace_id,
                    /*is_hedge=*/true);
    --budget;
  }
}

void Node::OnReadResponse(uint64_t request_id, NodeId replica,
                          std::optional<VersionedValue> value) {
  const auto it = pending_reads_.find(request_id);
  if (it == pending_reads_.end()) return;
  PendingRead& pending = it->second;
  // Dedup by replica: a hedge re-issue or a network-duplicated message can
  // make the same replica answer twice, and a second response must never
  // count toward R (or be double-counted by read repair / the staleness
  // detector).
  for (const auto& entry : pending.all) {
    if (entry.first == replica) {
      ++cluster_->metrics().duplicate_responses_suppressed;
      return;
    }
  }
  ++pending.responses;
  pending.all.emplace_back(replica, value);

  if (pending.trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = pending.trace_id,
        .kind = obs::TraceEventKind::kResponse,
        .leg = obs::WarsLeg::kS,
        .src = replica,
        .dst = id_,
        .t_start = now,
        .t_end = now,
        .a = value.has_value() ? value->sequence : 0,
        .b = value.has_value() ? 1 : 0});
  }

  if (value.has_value()) {
    if (!pending.best_all.has_value() ||
        value->NewerThan(*pending.best_all)) {
      pending.best_all = value;
    }
  }

  if (!pending.returned) {
    // Still assembling the first R responses.
    if (value.has_value() &&
        (!pending.best.has_value() || value->NewerThan(*pending.best))) {
      pending.best = value;
    }
    if (pending.responses >= pending.required) {
      pending.returned = true;
      if (std::find(pending.hedge_only.begin(), pending.hedge_only.end(),
                    replica) != pending.hedge_only.end()) {
        // The response that completed R came from a replica only a hedge
        // contacted: the hedge saved this read's latency.
        ++cluster_->metrics().hedged_reads_won;
      }
      ReadResult result;
      result.ok = true;
      result.status = Status::Ok();
      result.trace_id = pending.trace_id;
      result.start_time = pending.start_time;
      result.latency_ms = cluster_->sim().now() - pending.start_time;
      result.value = pending.best;
      result.required = pending.required;
      result.ring_version = cluster_->ring_version();
      cluster_->metrics().read_latency.Record(result.latency_ms);
      cluster_->metrics().shards[pending.shard].read_latency.Record(
          result.latency_ms);
      if (pending.trace_id != 0) {
        const double now = cluster_->sim().now();
        cluster_->tracer().Record(obs::TraceEvent{
            .trace_id = pending.trace_id,
            .kind = obs::TraceEventKind::kReturn,
            .leg = obs::WarsLeg::kS,
            .src = replica,
            .dst = id_,
            .t_start = now,
            .t_end = now,
            .a = pending.best.has_value() ? pending.best->sequence : 0,
            .b = pending.required});
      }
      if (pending.done) pending.done(result);
    }
  } else {
    // A late response (after the client already got its answer).
    pending.late_sequences.push_back(value ? value->sequence : 0);
  }

  MaybeFinishReadCollection(request_id, pending);
}

void Node::MaybeFinishReadCollection(uint64_t request_id,
                                     PendingRead& pending) {
  if (pending.responses < static_cast<int>(pending.replicas.size())) return;
  // Every replica has answered: fire the detector hook and read repair.
  if (cluster_->late_read_hook()) {
    LateReadInfo info;
    info.returned_sequence =
        pending.best.has_value() ? pending.best->sequence : 0;
    info.read_start_time = pending.start_time;
    info.late_response_sequences = pending.late_sequences;
    info.key = pending.key;
    info.shard = pending.shard;
    cluster_->late_read_hook()(info);
  }
  if (cluster_->config().read_repair) SendReadRepairs(pending);
  pending_reads_.erase(request_id);
}

void Node::SendReadRepairs(const PendingRead& pending) {
  if (!pending.best_all.has_value()) return;
  const KvsConfig& config = cluster_->config();
  const VersionedValue& freshest = *pending.best_all;
  const double now = cluster_->sim().now();
  for (const auto& [replica, value] : pending.all) {
    const bool stale =
        !value.has_value() || freshest.NewerThan(*value);
    if (!stale) continue;
    const double delay = config.legs.w->Sample(rng_);
    Node* target = &cluster_->node(replica);
    const Key key = pending.key;
    ++cluster_->metrics().read_repairs_sent;
    // Fire-and-forget: anti-entropy eventually covers a dropped repair.
    double effective_delay = delay;
    const bool delivered = cluster_->network().SendWithDelay(
        id_, replica, delay,
        [target, key, freshest, coordinator = id_,
         trace_id = pending.trace_id]() {
          target->HandleWriteRequest(key, freshest, coordinator,
                                     /*request_id=*/0, /*is_repair=*/true,
                                     Node::kNoHint, trace_id);
        },
        &effective_delay);
    if (pending.trace_id != 0) {
      obs::Tracer& tracer = cluster_->tracer();
      tracer.Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kRepair,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = now,
          .a = freshest.sequence,
          .b = value.has_value() ? value->sequence : 0});
      tracer.Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = delivered ? obs::TraceEventKind::kLegSend
                            : obs::TraceEventKind::kLegDrop,
          .leg = obs::WarsLeg::kW,
          .src = id_,
          .dst = replica,
          .t_start = now,
          .t_end = delivered ? now + effective_delay : now,
          .a = freshest.sequence,
          .b = 1});
    }
  }
}

void Node::OnReadTimeout(uint64_t request_id) {
  const auto it = pending_reads_.find(request_id);
  if (it == pending_reads_.end()) return;
  PendingRead& pending = it->second;
  if (!pending.returned) {
    pending.returned = true;
    ++cluster_->metrics().reads_failed;
    if (pending.trace_id != 0) {
      const double now = cluster_->sim().now();
      cluster_->tracer().Record(obs::TraceEvent{
          .trace_id = pending.trace_id,
          .kind = obs::TraceEventKind::kTimeout,
          .leg = obs::WarsLeg::kS,
          .src = id_,
          .t_start = now,
          .t_end = now,
          .a = pending.responses,
          .b = pending.required});
    }
    ReadResult result;
    result.ok = false;
    result.status = Status::TimedOut("read: fewer than R responses");
    result.trace_id = pending.trace_id;
    result.start_time = pending.start_time;
    result.latency_ms = cluster_->sim().now() - pending.start_time;
    result.required = pending.required;
    result.ring_version = cluster_->ring_version();
    if (pending.done) pending.done(result);
  }
  // Close the collection window with whatever arrived.
  if (cluster_->late_read_hook()) {
    LateReadInfo info;
    info.returned_sequence =
        pending.best.has_value() ? pending.best->sequence : 0;
    info.read_start_time = pending.start_time;
    info.late_response_sequences = pending.late_sequences;
    info.key = pending.key;
    info.shard = pending.shard;
    cluster_->late_read_hook()(info);
  }
  if (cluster_->config().read_repair) SendReadRepairs(pending);
  pending_reads_.erase(it);
}

// ---------------------------------------------------------------------------
// Replica handlers

void Node::HandleWriteRequest(Key key, const VersionedValue& value,
                              NodeId coordinator, uint64_t request_id,
                              bool is_repair, NodeId hint_home,
                              uint64_t trace_id) {
  if (!alive_) return;  // fail-stop: crashed nodes drop everything
  assert(is_replica_);
  if (hint_home != kNoHint && hint_home != id_) {
    // Sloppy-quorum substitute: park the value for the home replica instead
    // of serving it (hinted values are not in this node's read path).
    StoreHint(key, hint_home, value);
  } else {
    storage_.Put(key, value);
  }
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = obs::TraceEventKind::kReplicaServe,
        .leg = obs::WarsLeg::kW,
        .src = id_,
        .t_start = now,
        .t_end = now,
        .a = value.sequence,
        .b = is_repair ? 1 : 0});
  }
  if (is_repair) return;  // repairs are fire-and-forget
  const double delay =
      coordinator == id_ ? 0.0 : cluster_->config().legs.a->Sample(rng_);
  if (cluster_->leg_profiler() != nullptr && coordinator != id_) {
    cluster_->leg_profiler()->Record(LegProfiler::Leg::kWriteAck, delay);
  }
  Node* target = &cluster_->node(coordinator);
  // A dropped ack leaves the coordinator's write timeout armed.
  double effective_delay = delay;
  const bool delivered = cluster_->network().SendWithDelay(
      id_, coordinator, delay,
      [target, request_id, replica = id_]() {
        target->OnWriteAck(request_id, replica);
      },
      &effective_delay);
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = delivered ? obs::TraceEventKind::kLegSend
                          : obs::TraceEventKind::kLegDrop,
        .leg = obs::WarsLeg::kA,
        .src = id_,
        .dst = coordinator,
        .t_start = now,
        .t_end = delivered ? now + effective_delay : now,
        .a = value.sequence});
  }
}

void Node::StoreHint(Key key, NodeId home, const VersionedValue& value) {
  hints_.push_back(Hint{key, home, value});
  ++cluster_->metrics().hints_stored;
  if (!hint_task_scheduled_) {
    hint_task_scheduled_ = true;
    cluster_->sim().Schedule(cluster_->config().hint_delivery_interval_ms,
                             [this]() { DeliverHints(); });
  }
}

void Node::DeliverHints() {
  hint_task_scheduled_ = false;
  if (!alive_) {
    // A crashed substitute retries once it recovers and the task refires.
    if (!hints_.empty()) {
      hint_task_scheduled_ = true;
      cluster_->sim().Schedule(cluster_->config().hint_delivery_interval_ms,
                               [this]() { DeliverHints(); });
    }
    return;
  }
  const FailureDetector* detector = cluster_->failure_detector();
  std::vector<Hint> remaining;
  for (Hint& hint : hints_) {
    if (detector != nullptr && detector->IsSuspected(hint.home)) {
      remaining.push_back(std::move(hint));
      continue;
    }
    // Forward to the home replica as a fire-and-forget replication write.
    const double delay = cluster_->config().legs.w->Sample(rng_);
    Node* target = &cluster_->node(hint.home);
    ++cluster_->metrics().hints_delivered;
    // Fire-and-forget: an undelivered hint stays queued until the next pass.
    (void)cluster_->network().SendWithDelay(
        id_, hint.home, delay,
        [target, key = hint.key, value = std::move(hint.value),
         from = id_]() {
          target->HandleWriteRequest(key, value, from, /*request_id=*/0,
                                     /*is_repair=*/true);
        });
  }
  hints_ = std::move(remaining);
  if (!hints_.empty()) {
    hint_task_scheduled_ = true;
    cluster_->sim().Schedule(cluster_->config().hint_delivery_interval_ms,
                             [this]() { DeliverHints(); });
  }
}

void Node::HandleReadRequest(Key key, NodeId coordinator, uint64_t request_id,
                             uint64_t trace_id) {
  if (!alive_) return;
  assert(is_replica_);
  std::optional<VersionedValue> value = storage_.Get(key);
  const int64_t held_sequence = value.has_value() ? value->sequence : 0;
  const double delay =
      coordinator == id_ ? 0.0 : cluster_->config().legs.s->Sample(rng_);
  if (cluster_->leg_profiler() != nullptr && coordinator != id_) {
    cluster_->leg_profiler()->Record(LegProfiler::Leg::kReadResponse, delay);
  }
  Node* target = &cluster_->node(coordinator);
  // A dropped response leaves the coordinator's hedge/timeout timers armed.
  double effective_delay = delay;
  const bool delivered = cluster_->network().SendWithDelay(
      id_, coordinator, delay,
      [target, request_id, replica = id_, value = std::move(value)]() {
        target->OnReadResponse(request_id, replica, value);
      },
      &effective_delay);
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    obs::Tracer& tracer = cluster_->tracer();
    tracer.Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = obs::TraceEventKind::kReplicaServe,
        .leg = obs::WarsLeg::kR,
        .src = id_,
        .t_start = now,
        .t_end = now,
        .a = held_sequence});
    tracer.Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = delivered ? obs::TraceEventKind::kLegSend
                          : obs::TraceEventKind::kLegDrop,
        .leg = obs::WarsLeg::kS,
        .src = id_,
        .dst = coordinator,
        .t_start = now,
        .t_end = delivered ? now + effective_delay : now,
        .a = held_sequence});
  }
}

}  // namespace kvs
}  // namespace pbs
