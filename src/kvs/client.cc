#include "kvs/client.h"

#include <algorithm>
#include <utility>

#include "core/closed_form.h"
#include "kvs/cluster.h"

namespace pbs {
namespace kvs {

ClientSession::ClientSession(Cluster* cluster, NodeId coordinator,
                             int32_t client_id)
    : cluster_(cluster), coordinator_(coordinator), client_id_(client_id) {}

void ClientSession::Write(Key key, std::string value, WriteCallback done) {
  VersionedValue versioned;
  versioned.sequence = cluster_->NextSequenceFor(key);
  versioned.stamp.timestamp = cluster_->sim().now();
  versioned.stamp.writer = client_id_;
  versioned.value = std::move(value);
  versioned.clock.Increment(client_id_);
  cluster_->node(coordinator_)
      .CoordinateWrite(key, std::move(versioned), std::move(done));
}

double ClientSession::ReadRatePerMs(Key key) const {
  const auto it = read_rates_.find(key);
  return it == read_rates_.end()
             ? 0.0
             : it->second.EventsPerMs(cluster_->sim().now());
}

double ClientSession::PredictedMonotonicViolationProbability(Key key) const {
  const double gamma_cr = ReadRatePerMs(key);
  const double gamma_gw = cluster_->WriteRatePerMsFor(key);
  if (gamma_cr <= 0.0 || gamma_gw < 0.0) return 0.0;
  return MonotonicReadsViolationProbability(cluster_->config().quorum,
                                            gamma_gw, gamma_cr);
}

void ClientSession::MultiRead(const std::vector<Key>& keys,
                              MultiReadCallback done) {
  if (keys.empty()) {
    if (done) done(MultiReadResult{true, 0.0, {}});
    return;
  }
  struct State {
    size_t outstanding;
    MultiReadResult result;
    MultiReadCallback done;
  };
  auto state = std::make_shared<State>();
  state->outstanding = keys.size();
  state->result.ok = true;
  state->result.results.resize(keys.size());
  state->done = std::move(done);
  for (size_t i = 0; i < keys.size(); ++i) {
    Read(keys[i], [state, i](const ReadResult& r) {
      state->result.results[i] = r;
      state->result.ok = state->result.ok && r.ok;
      state->result.latency_ms =
          std::max(state->result.latency_ms, r.latency_ms);
      if (--state->outstanding == 0 && state->done) {
        state->done(state->result);
      }
    });
  }
}

void ClientSession::Read(Key key, ReadCallback done) {
  ++reads_issued_;
  read_rates_.try_emplace(key).first->second.Record(cluster_->sim().now());
  cluster_->node(coordinator_)
      .CoordinateRead(key, [this, key, done = std::move(done)](
                               const ReadResult& result) {
        if (result.ok) {
          const int64_t sequence =
              result.value.has_value() ? result.value->sequence : 0;
          auto [it, inserted] = last_read_sequence_.try_emplace(key, 0);
          if (sequence < it->second) {
            ++monotonic_violations_;
            ++cluster_->metrics().monotonic_read_violations;
          } else {
            it->second = sequence;
          }
          ++cluster_->metrics().session_reads;
        }
        if (done) done(result);
      });
}

}  // namespace kvs
}  // namespace pbs
