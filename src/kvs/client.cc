#include "kvs/client.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/closed_form.h"
#include "kvs/cluster.h"

namespace pbs {
namespace kvs {

ClientSession::ClientSession(Cluster* cluster, NodeId coordinator,
                             int32_t client_id)
    : cluster_(cluster),
      coordinator_(coordinator),
      client_id_(client_id),
      retry_rng_(cluster->config().seed ^ 0xC11E47ULL ^
                 (static_cast<uint64_t>(client_id) << 32)) {}

void ClientSession::Write(Key key, std::string value, WriteCallback done) {
  VersionedValue versioned;
  versioned.sequence = cluster_->NextSequenceFor(key);
  versioned.stamp.timestamp = cluster_->sim().now();
  versioned.stamp.writer = client_id_;
  versioned.value = std::move(value);
  versioned.clock.Increment(client_id_);
  const double now = cluster_->sim().now();
  const uint64_t trace_id =
      cluster_->tracer().StartOp(/*is_write=*/true, key, coordinator_, now);
  StartWriteAttempt(key, std::move(versioned), std::move(done), /*attempt=*/1,
                    now, trace_id);
}

double ClientSession::AttemptTimeoutMs(double op_start) const {
  const RetryOptions& policy = cluster_->config().retry;
  if (policy.deadline_ms <= 0.0) return 0.0;  // configured timeout applies
  const double remaining =
      policy.deadline_ms - (cluster_->sim().now() - op_start);
  // Attempts only start with budget left, but clamp anyway so a zero
  // override never silently falls back to the configured timeout.
  return std::min(cluster_->config().request_timeout_ms,
                  std::max(remaining, 1e-9));
}

double ClientSession::NextRetryDelayMs(int attempt, double op_start,
                                       bool* deadline_limited) {
  const RetryOptions& policy = cluster_->config().retry;
  if (attempt >= policy.max_attempts) return -1.0;
  const double backoff =
      std::min(policy.backoff_max_ms,
               policy.backoff_base_ms *
                   std::pow(2.0, static_cast<double>(attempt - 1)));
  const double delay = backoff * (0.5 + 0.5 * retry_rng_.NextDouble());
  if (policy.deadline_ms > 0.0) {
    const double elapsed = cluster_->sim().now() - op_start;
    if (elapsed + delay >= policy.deadline_ms) {
      ++cluster_->metrics().client_deadline_misses;
      if (deadline_limited != nullptr) *deadline_limited = true;
      return -1.0;  // waiting out the backoff would blow the budget
    }
  }
  return delay;
}

void ClientSession::StartWriteAttempt(Key key, VersionedValue value,
                                      WriteCallback done, int attempt,
                                      double op_start, uint64_t trace_id) {
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = obs::TraceEventKind::kAttempt,
        .src = coordinator_,
        .t_start = now,
        .t_end = now,
        .a = attempt});
  }
  // Keep a copy for a potential retry; re-sending the same sequence is
  // idempotent at the replicas (last-write-wins on the version order).
  VersionedValue payload = value;
  cluster_->node(coordinator_)
      .CoordinateWrite(
          key, std::move(payload),
          [this, key, value = std::move(value), done = std::move(done),
           attempt, op_start, trace_id](const WriteResult& r) mutable {
            WriteResult result = r;
            result.attempts = attempt;
            result.trace_id = trace_id;
            if (!result.ok) {
              bool deadline_limited = false;
              const double delay =
                  NextRetryDelayMs(attempt, op_start, &deadline_limited);
              if (delay >= 0.0) {
                ++cluster_->metrics().client_write_retries;
                if (trace_id != 0) {
                  const double now = cluster_->sim().now();
                  cluster_->tracer().Record(obs::TraceEvent{
                      .trace_id = trace_id,
                      .kind = obs::TraceEventKind::kBackoff,
                      .src = coordinator_,
                      .t_start = now,
                      .t_end = now + delay,
                      .a = attempt});
                }
                (void)cluster_->sim().ScheduleTimer(
                    delay, [this, key, value = std::move(value),
                            done = std::move(done), attempt, op_start,
                            trace_id]() mutable {
                      StartWriteAttempt(key, std::move(value), std::move(done),
                                        attempt + 1, op_start, trace_id);
                    });
                return;
              }
              if (deadline_limited) {
                result.status = Status::DeadlineExceeded(
                    "write: retry deadline budget exhausted");
              }
            }
            // Client-visible latency spans every attempt and backoff.
            result.latency_ms = cluster_->sim().now() - op_start;
            if (trace_id != 0) {
              const double now = cluster_->sim().now();
              cluster_->tracer().Record(obs::TraceEvent{
                  .trace_id = trace_id,
                  .kind = obs::TraceEventKind::kOpEnd,
                  .src = coordinator_,
                  .t_start = op_start,
                  .t_end = now,
                  .a = static_cast<int64_t>(result.status.code()),
                  .b = result.sequence});
            }
            if (result.ring_version > known_ring_version_) {
              known_ring_version_ = result.ring_version;
            }
            if (done) done(result);
          },
          AttemptTimeoutMs(op_start), trace_id, known_ring_version_);
}

double ClientSession::ReadRatePerMs(Key key) const {
  const auto it = read_rates_.find(key);
  return it == read_rates_.end()
             ? 0.0
             : it->second.EventsPerMs(cluster_->sim().now());
}

double ClientSession::PredictedMonotonicViolationProbability(Key key) const {
  const double gamma_cr = ReadRatePerMs(key);
  const double gamma_gw = cluster_->WriteRatePerMsFor(key);
  if (gamma_cr <= 0.0 || gamma_gw < 0.0) return 0.0;
  return MonotonicReadsViolationProbability(cluster_->config().quorum,
                                            gamma_gw, gamma_cr);
}

void ClientSession::MultiRead(const std::vector<Key>& keys,
                              MultiReadCallback done) {
  if (keys.empty()) {
    if (done) done(MultiReadResult{true, 0.0, {}});
    return;
  }
  struct State {
    size_t outstanding;
    MultiReadResult result;
    MultiReadCallback done;
  };
  auto state = std::make_shared<State>();
  state->outstanding = keys.size();
  state->result.ok = true;
  state->result.results.resize(keys.size());
  state->done = std::move(done);
  for (size_t i = 0; i < keys.size(); ++i) {
    Read(keys[i], [state, i](const ReadResult& r) {
      state->result.results[i] = r;
      state->result.ok = state->result.ok && r.ok;
      state->result.latency_ms =
          std::max(state->result.latency_ms, r.latency_ms);
      if (--state->outstanding == 0 && state->done) {
        state->done(state->result);
      }
    });
  }
}

void ClientSession::Read(Key key, ReadCallback done) {
  ++reads_issued_;
  const double now = cluster_->sim().now();
  read_rates_.try_emplace(key).first->second.Record(now);
  const uint64_t trace_id =
      cluster_->tracer().StartOp(/*is_write=*/false, key, coordinator_, now);
  StartReadAttempt(key, std::move(done), /*attempt=*/1, now, trace_id);
}

void ClientSession::StartReadAttempt(Key key, ReadCallback done, int attempt,
                                     double op_start, uint64_t trace_id) {
  const KvsConfig& config = cluster_->config();
  int required_override = 0;
  if (attempt > 1 && config.retry.downgrade_reads) {
    // Shed one response requirement per retry (R, R-1, ..., 1): trade
    // consistency for availability once the full quorum proved unreachable.
    required_override = std::max(1, config.quorum.r - (attempt - 1));
  }
  if (trace_id != 0) {
    const double now = cluster_->sim().now();
    cluster_->tracer().Record(obs::TraceEvent{
        .trace_id = trace_id,
        .kind = obs::TraceEventKind::kAttempt,
        .src = coordinator_,
        .t_start = now,
        .t_end = now,
        .a = attempt,
        .b = required_override});
  }
  cluster_->node(coordinator_)
      .CoordinateRead(
          key,
          [this, key, done = std::move(done), attempt, op_start,
           required_override, trace_id](const ReadResult& r) mutable {
            ReadResult result = r;
            result.attempts = attempt;
            result.trace_id = trace_id;
            if (!result.ok) {
              bool deadline_limited = false;
              const double delay =
                  NextRetryDelayMs(attempt, op_start, &deadline_limited);
              if (delay >= 0.0) {
                ++cluster_->metrics().client_read_retries;
                if (trace_id != 0) {
                  const double now = cluster_->sim().now();
                  cluster_->tracer().Record(obs::TraceEvent{
                      .trace_id = trace_id,
                      .kind = obs::TraceEventKind::kBackoff,
                      .src = coordinator_,
                      .t_start = now,
                      .t_end = now + delay,
                      .a = attempt});
                }
                (void)cluster_->sim().ScheduleTimer(
                    delay,
                    [this, key, done = std::move(done), attempt, op_start,
                     trace_id]() mutable {
                      StartReadAttempt(key, std::move(done), attempt + 1,
                                       op_start, trace_id);
                    });
                return;
              }
              if (deadline_limited) {
                result.status = Status::DeadlineExceeded(
                    "read: retry deadline budget exhausted");
              }
            }
            if (result.ok && required_override > 0 &&
                required_override < cluster_->config().quorum.r) {
              result.downgraded = true;
              result.status = Status::Downgraded(
                  "read: retry accepted fewer than the configured R");
              ++cluster_->metrics().consistency_downgrades;
            }
            result.latency_ms = cluster_->sim().now() - op_start;
            if (trace_id != 0) {
              const double now = cluster_->sim().now();
              cluster_->tracer().Record(obs::TraceEvent{
                  .trace_id = trace_id,
                  .kind = obs::TraceEventKind::kOpEnd,
                  .src = coordinator_,
                  .t_start = op_start,
                  .t_end = now,
                  .a = static_cast<int64_t>(result.status.code()),
                  .b = cluster_->LatestSequenceFor(key)});
            }
            FinishRead(key, result, done);
          },
          required_override, AttemptTimeoutMs(op_start), trace_id,
          known_ring_version_);
}

void ClientSession::FinishRead(Key key, const ReadResult& result,
                               ReadCallback& done) {
  if (result.ring_version > known_ring_version_) {
    known_ring_version_ = result.ring_version;
  }
  if (result.ok) {
    const int64_t sequence =
        result.value.has_value() ? result.value->sequence : 0;
    auto [it, inserted] = last_read_sequence_.try_emplace(key, 0);
    if (sequence < it->second) {
      // Downgraded reads are *not* exempt: a stale answer accepted under
      // R=1 still violates the session guarantee and is counted honestly.
      ++monotonic_violations_;
      ++cluster_->metrics().monotonic_read_violations;
    } else {
      it->second = sequence;
    }
    ++cluster_->metrics().session_reads;
  }
  if (done) done(result);
}

}  // namespace kvs
}  // namespace pbs
