#include "kvs/cluster.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "core/backend.h"
#include "dist/empirical.h"
#include "kvs/anti_entropy.h"
#include "kvs/migration.h"
#include "util/stats.h"

namespace pbs {
namespace kvs {
namespace {

// Monitor fit bounds (see Cluster::RefreshMonitorPrediction): the fit
// stabilizes on a doubling schedule until every leg holds
// min_leg_samples * kMonitorFitStabilizeFactor samples, then freezes; each
// refit sorts at most kMonitorFitSampleCap samples per leg.
constexpr size_t kMonitorFitStabilizeFactor = 16;
constexpr size_t kMonitorFitSampleCap = 8192;

// Per-leg ring capacity for the telemetry-owned LegProfiler. Comfortably
// above kMonitorFitSampleCap (fits only read the newest samples) while
// keeping recording O(1) with bounded memory on long runs.
constexpr size_t kMonitorProfilerSampleCap = 16384;

// Type-7 interpolated quantile via selection — same arithmetic as
// util/stats.h QuantileSorted on the same data (bitwise identical result),
// but O(n) instead of the full sort the telemetry tick would otherwise pay
// per window. Scrambles `v`.
double QuantileSelect(std::vector<double>& v, double q) {
  const size_t n = v.size();
  if (q <= 0.0) return *std::min_element(v.begin(), v.end());
  if (q >= 1.0) return *std::max_element(v.begin(), v.end());
  const double pos = q * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(lo), v.end());
  const double at_lo = v[lo];
  if (frac == 0.0 || lo + 1 >= n) return at_lo;
  const double at_hi =
      *std::min_element(v.begin() + static_cast<ptrdiff_t>(lo) + 1, v.end());
  return at_lo + frac * (at_hi - at_lo);
}

}  // namespace

Status KvsConfig::Validate() const {
  const Status quorum_status = ValidateQuorumConfig(quorum);
  if (!quorum_status.ok()) return quorum_status;
  if (!legs.w || !legs.a || !legs.r || !legs.s) {
    return Status::InvalidArgument(
        "all four WARS leg distributions must be set (legs.w/a/r/s)");
  }
  if (num_coordinators < 1) {
    return Status::InvalidArgument("num_coordinators must be >= 1");
  }
  if (num_storage_nodes != 0 && num_storage_nodes < quorum.n) {
    return Status::InvalidArgument(
        "num_storage_nodes must be 0 (= N) or >= quorum.n");
  }
  if (vnodes_per_node < 1) {
    return Status::InvalidArgument("vnodes_per_node must be >= 1");
  }
  if (request_timeout_ms <= 0.0) {
    return Status::InvalidArgument("request_timeout_ms must be > 0");
  }
  if (anti_entropy_interval_ms < 0.0) {
    return Status::InvalidArgument("anti_entropy_interval_ms must be >= 0");
  }
  const Status hedge_status = hedge.Validate();
  if (!hedge_status.ok()) return hedge_status;
  const Status retry_status = retry.Validate();
  if (!retry_status.ok()) return retry_status;
  const Status rebalance_status = rebalance.Validate();
  if (!rebalance_status.ok()) return rebalance_status;
  const Status sla_status = sla.Validate();
  if (!sla_status.ok()) return sla_status;
  const Status controller_status = controller.Validate();
  if (!controller_status.ok()) return controller_status;
  if (controller.enabled && !sla.enabled()) {
    return Status::InvalidArgument(
        "controller.enabled requires a declared sla (fresh_probability > 0)");
  }
  if (obs.monitor_enabled && !sla.enabled()) {
    return Status::InvalidArgument(
        "obs.monitor_enabled requires a declared sla (fresh_probability > 0) "
        "to measure freshness against");
  }
  return obs.Validate();
}

Cluster::Cluster(const KvsConfig& config)
    : config_(config),
      num_storage_nodes_(config.num_storage_nodes > 0
                             ? config.num_storage_nodes
                             : config.quorum.n),
      ring_(num_storage_nodes_, config.vnodes_per_node,
            config.seed ^ 0x9E37),
      anti_entropy_rng_(config.seed ^ 0xAE0AE0),
      mix_rng_(config.seed ^ 0x3C0F1B),
      membership_rng_(config.seed ^ 0xE1A57C) {
  assert(config_.quorum.IsValid());
  assert(num_storage_nodes_ >= config_.quorum.n);
  assert(config_.num_coordinators >= 1);
  assert(config_.legs.w && config_.legs.a && config_.legs.r &&
         config_.legs.s);

  tracer_.Configure(config_.obs);
  read_mix_.n = config_.quorum.n;
  read_mix_.r_lo = config_.quorum.r;
  read_mix_.r_hi = config_.quorum.r;
  read_mix_.w = config_.quorum.w;
  read_mix_.mix = 0.0;
  // Freshness classification runs for the controller and/or the drift
  // monitor; both require a declared SLA (Validate enforces this for the
  // pbs::Config path). The commit rings size off ControllerOptions, whose
  // defaults hold even when only the monitor wants measurement.
  freshness_enabled_ =
      (config_.controller.enabled ||
       (config_.obs.monitor_enabled && config_.obs.telemetry_window_ms > 0.0)) &&
      config_.sla.enabled();
  if (freshness_enabled_) {
    const int classes = config_.controller.num_key_classes;
    commit_rings_.assign(classes, {});
    for (auto& ring : commit_rings_) {
      ring.assign(config_.controller.freshness_window, CommitRecord{});
    }
    commit_ring_next_.assign(classes, 0);
    fresh_by_class_.assign(classes, 0);
    stale_by_class_.assign(classes, 0);
  }
  Rng master(config_.seed);
  network_ = std::make_unique<Network>(&sim_, master.Next());
  const int total = num_replicas() + num_coordinators();
  nodes_.reserve(total);
  for (NodeId id = 0; id < total; ++id) {
    const bool is_replica = id < num_replicas();
    nodes_.push_back(
        std::make_unique<Node>(this, id, is_replica, master.Next()));
  }
}

Cluster::~Cluster() = default;

std::vector<NodeId> Cluster::ReplicasFor(Key key) const {
  StatusOr<std::vector<int>> list =
      ring_.PreferenceList(key, config_.quorum.n);
  // Membership operations refuse to shrink the ring below quorum.n, so the
  // checked ring path cannot fail here; the guard keeps a Release build
  // from ever routing to a short replica set if that invariant breaks.
  assert(list.ok());
  if (!list.ok()) return {};
  return std::move(list.value());
}

std::vector<NodeId> Cluster::RoutingReplicasFor(Key key) const {
  std::vector<NodeId> out;
  RoutingReplicasForInto(key, &out);
  return out;
}

void Cluster::RoutingReplicasForInto(Key key, std::vector<NodeId>* out) const {
  const Status current = ring_.AppendPreferenceList(key, config_.quorum.n, out);
  assert(current.ok());
  if (!current.ok()) out->clear();
  if (previous_rings_.empty()) return;
  for (const ConsistentHashRing& old_ring : previous_rings_) {
    if (!old_ring.AppendPreferenceList(key, config_.quorum.n,
                                       &routing_scratch_)
             .ok()) {
      continue;
    }
    for (int node : routing_scratch_) {
      if (std::find(out->begin(), out->end(), node) == out->end()) {
        out->push_back(node);
      }
    }
  }
}

StatusOr<NodeId> Cluster::AddStorageNode() {
  ConsistentHashRing snapshot = ring_;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const Status added = ring_.AddNode(id);
  if (!added.ok()) return added;
  nodes_.push_back(std::make_unique<Node>(this, id, /*is_replica=*/true,
                                          membership_rng_.Next()));
  ++metrics_.nodes_joined;
  joining_.push_back(id);
  LogMembership(id, NodeState::kJoining);
  BeginRebalance(std::move(snapshot));
  return id;
}

Status Cluster::RemoveStorageNode(NodeId id) {
  if (!ring_.IsMember(id)) {
    return Status::NotFound("cluster: node " + std::to_string(id) +
                            " is not a storage member");
  }
  if (ring_.num_nodes() - 1 < config_.quorum.n) {
    return Status::FailedPrecondition(
        "cluster: removing node " + std::to_string(id) + " would leave " +
        std::to_string(ring_.num_nodes() - 1) +
        " storage members, fewer than N=" +
        std::to_string(config_.quorum.n));
  }
  ConsistentHashRing snapshot = ring_;
  const Status removed = ring_.RemoveNode(id);
  if (!removed.ok()) return removed;
  ++metrics_.nodes_removed;
  leaving_.push_back(id);
  LogMembership(id, NodeState::kLeaving);
  BeginRebalance(std::move(snapshot));
  return Status::Ok();
}

void Cluster::BeginRebalance(ConsistentHashRing snapshot) {
  ++metrics_.rebalances_started;
  previous_rings_.push_back(std::move(snapshot));
  if (migrator_ == nullptr) {
    migrator_ = std::make_unique<Migrator>(this, config_.seed ^ 0x316A70);
  }
  migrator_->OnMembershipChange(previous_rings_.back());
}

void Cluster::OnMigrationDelivered(NodeId dst) {
  ++metrics_.migration_transfers_delivered;
  ++metrics_.shards[dst].migration_keys_received;
}

void Cluster::OnRebalanceDrained() {
  if (previous_rings_.empty()) return;  // already settled
  // Overlapping membership changes drain together: completions match starts.
  metrics_.rebalances_completed +=
      static_cast<int64_t>(previous_rings_.size());
  previous_rings_.clear();
  for (NodeId id : joining_) LogMembership(id, NodeState::kActive);
  joining_.clear();
  for (NodeId id : leaving_) {
    LogMembership(id, NodeState::kRemoved);
    if (config_.rebalance.decommission_removed) nodes_[id]->Crash();
  }
  leaving_.clear();
}

void Cluster::LogMembership(NodeId node, NodeState state) {
  MembershipEvent event;
  event.time_ms = sim_.now();
  event.node = node;
  event.state = state;
  event.ring_version = ring_.version();
  membership_log_.push_back(event);
  if (membership_hook_) membership_hook_(event);
}

int64_t Cluster::NextSequenceFor(Key key) {
  write_rates_.try_emplace(key).first->second.Record(sim_.now());
  return ++sequence_counters_[key];
}

double Cluster::WriteRatePerMsFor(Key key) const {
  const auto it = write_rates_.find(key);
  return it == write_rates_.end() ? 0.0
                                  : it->second.EventsPerMs(sim_.now());
}

int64_t Cluster::LatestSequenceFor(Key key) const {
  const auto it = sequence_counters_.find(key);
  return it == sequence_counters_.end() ? 0 : it->second;
}

std::vector<NodeId> Cluster::ExtendedReplicasFor(Key key) const {
  std::vector<NodeId> out;
  ExtendedReplicasForInto(key, &out);
  return out;
}

void Cluster::ExtendedReplicasForInto(Key key,
                                      std::vector<NodeId>* out) const {
  const int extended =
      std::min(ring_.num_nodes(),
               config_.quorum.n + std::max(0, config_.sloppy_extra));
  const Status status = ring_.AppendPreferenceList(key, extended, out);
  assert(status.ok());
  if (!status.ok()) out->clear();
}

Status Cluster::UpdateQuorum(int r, int w) {
  QuorumConfig updated = config_.quorum;
  updated.r = r;
  updated.w = w;
  const Status valid = ValidateQuorumConfig(updated);
  if (!valid.ok()) return valid;
  config_.quorum = updated;
  return Status::Ok();
}

void Cluster::UpdateLegs(const WarsDistributions& legs) {
  assert(legs.w && legs.a && legs.r && legs.s);
  config_.legs = legs;
}

Status Cluster::UpdateReadMix(int r_lo, int r_hi, double probability) {
  if (r_lo < 1 || r_hi < r_lo || r_hi > config_.quorum.n) {
    return Status::InvalidArgument(
        "read mix: need 1 <= r_lo <= r_hi <= n, got r_lo=" +
        std::to_string(r_lo) + " r_hi=" + std::to_string(r_hi));
  }
  if (probability < 0.0 || probability > 1.0) {
    return Status::InvalidArgument("read mix: probability must be in [0, 1]");
  }
  read_mix_.n = config_.quorum.n;
  read_mix_.r_lo = r_lo;
  read_mix_.r_hi = r_hi;
  read_mix_.w = config_.quorum.w;
  read_mix_.mix = probability;
  mixing_active_ = read_mix_.mixing();
  if (!mixing_active_) {
    // Degenerate mix: collapse to the fixed quorum so the read path stays
    // draw-free. probability == 1 pins r_lo, anything else pins r_hi
    // (r_lo == r_hi makes the two identical).
    const int fixed_r = probability >= 1.0 ? r_lo : r_hi;
    return UpdateQuorum(fixed_r, config_.quorum.w);
  }
  return Status::Ok();
}

Status Cluster::UpdateHedge(const HedgeOptions& hedge) {
  const Status valid = hedge.Validate();
  if (!valid.ok()) return valid;
  config_.hedge = hedge;
  return Status::Ok();
}

Status Cluster::UpdateRetry(const RetryOptions& retry) {
  const Status valid = retry.Validate();
  if (!valid.ok()) return valid;
  config_.retry = retry;
  return Status::Ok();
}

int Cluster::EffectiveReadQuorumFor(Key key) {
  (void)key;  // mixing is cluster-wide; classes only scope measurement
  if (!mixing_active_) return config_.quorum.r;
  if (mix_rng_.NextDouble() < read_mix_.mix) {
    ++metrics_.mixed_reads_lo;
    return read_mix_.r_lo;
  }
  ++metrics_.mixed_reads_hi;
  return read_mix_.r_hi;
}

void Cluster::RecordCommit(Key key, int64_t sequence, double commit_time) {
  if (!freshness_enabled_) return;
  const int cls =
      static_cast<int>(key % static_cast<Key>(commit_rings_.size()));
  auto& ring = commit_rings_[cls];
  int& next = commit_ring_next_[cls];
  ring[next] = CommitRecord{key, sequence, commit_time};
  next = (next + 1) % static_cast<int>(ring.size());
}

void Cluster::RecordReadOutcome(Key key, int64_t returned_sequence,
                                double read_start_time) {
  if (!freshness_enabled_) return;
  const int cls =
      static_cast<int>(key % static_cast<Key>(commit_rings_.size()));
  // Stale beyond the SLA bound t iff some version of `key` newer than the
  // returned one committed at least t before the read started — i.e. a
  // read issued t after that commit still missed it. Bounded by the ring
  // depth: honest for the harness's hot-key probe stream, a documented
  // approximation for long-tailed key spaces.
  const double cutoff = read_start_time - config_.sla.staleness_bound_ms;
  bool stale = false;
  for (const CommitRecord& rec : commit_rings_[cls]) {
    if (rec.sequence == 0 || rec.key != key) continue;
    if (rec.sequence > returned_sequence && rec.commit_time <= cutoff) {
      stale = true;
      break;
    }
  }
  if (stale) {
    ++stale_by_class_[cls];
    ++metrics_.reads_stale_measured;
  } else {
    ++fresh_by_class_[cls];
    ++metrics_.reads_fresh_measured;
  }
}

void Cluster::StartFailureDetector() {
  if (failure_detector_ != nullptr) return;
  if (config_.failure_detector == KvsConfig::FailureDetectorKind::kPhiAccrual) {
    PhiAccrualFailureDetector::Options options;
    options.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    options.threshold = config_.phi_threshold;
    options.window_size = config_.phi_window_size;
    options.min_std_ms = config_.phi_min_std_ms;
    options.max_silence_intervals = config_.phi_max_silence_intervals;
    failure_detector_ = std::make_unique<PhiAccrualFailureDetector>(
        this, options, config_.seed ^ 0xFDFDFD);
  } else {
    HeartbeatFailureDetector::Options options;
    options.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    options.suspect_timeout_ms = config_.suspect_timeout_ms;
    failure_detector_ = std::make_unique<HeartbeatFailureDetector>(
        this, options, config_.seed ^ 0xFDFDFD);
  }
  failure_detector_->Start();
}

template <typename Fn>
void Cluster::ForEachCounter(Fn&& fn) const {
  const ClusterMetrics& m = metrics_;
  const struct {
    const char* name;
    int64_t value;
  } counters[] = {
      {"kvs/reads_started", m.reads_started},
      {"kvs/reads_failed", m.reads_failed},
      {"kvs/writes_started", m.writes_started},
      {"kvs/writes_failed", m.writes_failed},
      {"kvs/read_repairs_sent", m.read_repairs_sent},
      {"kvs/hinted_handoffs_sent", m.hinted_handoffs_sent},
      {"kvs/sloppy_substitutions", m.sloppy_substitutions},
      {"kvs/hints_stored", m.hints_stored},
      {"kvs/hints_delivered", m.hints_delivered},
      {"kvs/anti_entropy_rounds", m.anti_entropy_rounds},
      {"kvs/anti_entropy_values_shipped", m.anti_entropy_values_shipped},
      {"kvs/monotonic_read_violations", m.monotonic_read_violations},
      {"kvs/session_reads", m.session_reads},
      {"kvs/hedged_reads_sent", m.hedged_reads_sent},
      {"kvs/hedged_reads_won", m.hedged_reads_won},
      {"kvs/duplicate_responses_suppressed", m.duplicate_responses_suppressed},
      {"kvs/duplicate_acks_suppressed", m.duplicate_acks_suppressed},
      {"kvs/client_read_retries", m.client_read_retries},
      {"kvs/client_write_retries", m.client_write_retries},
      {"kvs/client_deadline_misses", m.client_deadline_misses},
      {"kvs/consistency_downgrades", m.consistency_downgrades},
      {"kvs/fault_slow_node_activations", m.fault_slow_node_activations},
      {"kvs/fault_lossy_link_activations", m.fault_lossy_link_activations},
      {"kvs/fault_flapping_activations", m.fault_flapping_activations},
      {"kvs/fault_asymmetric_partition_activations",
       m.fault_asymmetric_partition_activations},
      {"kvs/nodes_joined", m.nodes_joined},
      {"kvs/nodes_removed", m.nodes_removed},
      {"kvs/rebalances_started", m.rebalances_started},
      {"kvs/rebalances_completed", m.rebalances_completed},
      {"kvs/migration_keys_examined", m.migration_keys_examined},
      {"kvs/migration_transfers_sent", m.migration_transfers_sent},
      {"kvs/migration_transfers_delivered", m.migration_transfers_delivered},
      {"kvs/migration_transfers_dropped", m.migration_transfers_dropped},
      {"kvs/migration_transfer_retries", m.migration_transfer_retries},
      {"kvs/stale_routes_forwarded", m.stale_routes_forwarded},
      {"kvs/controller_epochs", m.controller_epochs},
      {"kvs/controller_steps", m.controller_steps},
      {"kvs/controller_rollbacks", m.controller_rollbacks},
      {"kvs/controller_holds", m.controller_holds},
      {"kvs/reads_fresh_measured", m.reads_fresh_measured},
      {"kvs/reads_stale_measured", m.reads_stale_measured},
      {"kvs/mixed_reads_lo", m.mixed_reads_lo},
      {"kvs/mixed_reads_hi", m.mixed_reads_hi},
      {"kvs/ring_version", static_cast<int64_t>(ring_.version())},
      {"kvs/storage_members", static_cast<int64_t>(ring_.num_nodes())},
      {"net/messages_sent", network_->messages_sent()},
      {"net/messages_dropped", network_->messages_dropped()},
      {"net/messages_duplicated", network_->messages_duplicated()},
      {"sim/events_processed",
       static_cast<int64_t>(sim_.events_processed())},
      {"sim/max_queue_depth", static_cast<int64_t>(sim_.max_queue_depth())},
      {"obs/ops_seen", static_cast<int64_t>(tracer_.ops_seen())},
      {"obs/ops_sampled", static_cast<int64_t>(tracer_.ops_sampled())},
      {"obs/trace_events_overwritten",
       static_cast<int64_t>(tracer_.events_overwritten())},
  };
  for (const auto& counter : counters) {
    fn(std::string_view(counter.name), counter.value);
  }
  // Per-shard attribution, keyed by primary owner: "kvs/shard/<id>/...".
  // m.shards is an ordered map, so visit order is deterministic.
  for (const auto& [shard, sm] : m.shards) {
    const std::string prefix = "kvs/shard/" + std::to_string(shard) + "/";
    fn(std::string_view(prefix + "reads"), sm.reads);
    fn(std::string_view(prefix + "writes"), sm.writes);
    fn(std::string_view(prefix + "migration_keys_received"),
       sm.migration_keys_received);
  }
}

void Cluster::ExportCounters(obs::Registry* out) const {
  assert(out != nullptr);
  ForEachCounter([out](std::string_view name, int64_t value) {
    out->counter(std::string(name)).Add(value);
  });
}

void Cluster::ExportMetrics(obs::Registry* out) const {
  assert(out != nullptr);
  ExportCounters(out);
  const ClusterMetrics& m = metrics_;
  obs::LogHistogram& reads = out->histogram("kvs/read_latency_ms");
  for (double sample : m.read_latency.samples()) reads.Record(sample);
  obs::LogHistogram& writes = out->histogram("kvs/write_latency_ms");
  for (double sample : m.write_latency.samples()) writes.Record(sample);
  for (const auto& [shard, sm] : m.shards) {
    const std::string prefix = "kvs/shard/" + std::to_string(shard) + "/";
    obs::LogHistogram& shard_reads = out->histogram(prefix + "read_latency_ms");
    for (double sample : sm.read_latency.samples()) shard_reads.Record(sample);
    obs::LogHistogram& shard_writes =
        out->histogram(prefix + "write_latency_ms");
    for (double sample : sm.write_latency.samples()) {
      shard_writes.Record(sample);
    }
  }
  if (monitor_ != nullptr) monitor_->ExportTo(out);
  if (leg_profiler_ != nullptr) leg_profiler_->ExportTo(out);
}

obs::MetricsSnapshotHeader Cluster::MetricsHeader() const {
  obs::MetricsSnapshotHeader header;
  header.predictor_backend = predictor_backend_;
  header.predictor_note = predictor_note_;
  header.active_decision_id = active_decision_id_;
  header.snapshot_time_ms = sim_.now();
  return header;
}

void Cluster::StartTelemetry() {
  if (telemetry_started_ || config_.obs.telemetry_window_ms <= 0.0) return;
  telemetry_started_ = true;
  timeseries_ =
      std::make_unique<obs::TimeSeries>(config_.obs.timeseries_capacity);
  if (config_.obs.monitor_enabled) {
    // The kvs layer owns the SLA; the monitor gets its clauses as plain
    // numbers (obs sits below core and cannot see SlaTarget).
    obs::MonitorOptions options = config_.obs.monitor;
    options.sla_fresh_probability = config_.sla.fresh_probability;
    options.sla_read_p99_ms = config_.sla.read_p99_ms;
    monitor_ = std::make_unique<obs::ConsistencyMonitor>(options);
    if (leg_profiler_ == nullptr) {
      // Ring-capped: the monitor's fits only read the newest samples, so
      // the owned profiler never needs unbounded history (an externally
      // attached profiler keeps whatever policy its owner chose).
      telemetry_profiler_ =
          std::make_unique<LegProfiler>(kMonitorProfilerSampleCap);
      leg_profiler_ = telemetry_profiler_.get();
    }
  }
  sim_.ScheduleTimer(config_.obs.telemetry_window_ms,
                     [this]() { TelemetryTick(); });
}

void Cluster::RefreshMonitorPrediction() {
  const LegProfiler* profiler = leg_profiler_;
  if (profiler == nullptr) return;
  using Leg = LegProfiler::Leg;
  const std::array<size_t, LegProfiler::kNumLegs> counts = {
      profiler->count(Leg::kWriteRequest), profiler->count(Leg::kWriteAck),
      profiler->count(Leg::kReadRequest), profiler->count(Leg::kReadResponse)};
  const int64_t min_samples = config_.obs.monitor.min_leg_samples;
  for (size_t count : counts) {
    if (static_cast<int64_t>(count) < min_samples) return;  // keep last fit
  }
  const MixedQuorum active =
      mixing_active_ ? read_mix_
                     : MixedQuorum{config_.quorum.n, config_.quorum.r,
                                   config_.quorum.r, config_.quorum.w, 0.0};
  bool stale_fit =
      !monitor_prediction_valid_ || !(active == monitor_fit_quorum_);
  if (!stale_fit) {
    // Refit on a doubling schedule while the fit is still stabilizing, then
    // FREEZE it (until the active quorum changes): the frozen pre-fault fit
    // is the stable reference mid-run drift is scored against, and the
    // whole run pays O(log) refits instead of one per window.
    const size_t stabilize_cap =
        static_cast<size_t>(min_samples) * kMonitorFitStabilizeFactor;
    for (int leg = 0; leg < LegProfiler::kNumLegs; ++leg) {
      if (monitor_fit_counts_[leg] < stabilize_cap &&
          counts[leg] >= 2 * monitor_fit_counts_[leg]) {
        stale_fit = true;
        break;
      }
    }
  }
  if (!stale_fit) return;

  // Fit on the newest samples only (bounded sort cost per refit; the legs
  // are stationary pre-fault, which is the only regime refits run in).
  const auto fit_leg = [profiler](Leg leg) {
    const std::vector<double>& all = profiler->samples(leg);
    const size_t take = std::min(all.size(), kMonitorFitSampleCap);
    return Empirical(std::vector<double>(all.end() - take, all.end()));
  };
  WarsDistributions fitted;
  fitted.name = "monitor-fit";
  fitted.w = fit_leg(Leg::kWriteRequest);
  fitted.a = fit_leg(Leg::kWriteAck);
  fitted.r = fit_leg(Leg::kReadRequest);
  fitted.s = fit_leg(Leg::kReadResponse);
  MixedQuorumPredictor::Options options;
  // Always the analytic backend: RNG-free, so the monitor never perturbs
  // seeded runs. The grid is deliberately coarse — drift tolerances are
  // 15% freshness / 75% relative p99, far wider than a 1024-bin
  // auto-scaled grid's error — keeping a refit well under a millisecond.
  options.backend = PredictorBackend::kAnalytic;
  options.read_fanout = config_.read_fanout;
  options.exec.threads = 1;
  options.grid = AnalyticGridOptions{/*max_ms=*/2000.0, /*bins=*/1024,
                                     /*auto_max=*/true};
  const MixedQuorumPredictor predictor(
      config_.sla, MakeIidModel(fitted, config_.quorum.n), active, options);
  monitor_prediction_ = predictor.Evaluate(active, /*seed=*/0);
  monitor_prediction_valid_ = true;
  monitor_fit_quorum_ = active;
  monitor_fit_counts_ = counts;
  if (predictor_backend_.empty() || active_decision_id_ < 0) {
    // Provenance: the controller's epoch predictor wins when one runs;
    // otherwise the monitor's fit is the run's predictor of record.
    predictor_backend_ = PredictorBackendName(predictor.backend());
    predictor_note_ = predictor.note();
  }
}

void Cluster::TelemetryTick() {
  const double window_ms = config_.obs.telemetry_window_ms;
  const int64_t window_id = telemetry_window_index_++;
  const double start_ms = static_cast<double>(window_id) * window_ms;
  const double end_ms = sim_.now();

  // Consume the window's new latency samples exactly once: record them
  // straight into the window's delta histograms (exact min/max, no dense
  // cumulative rebuild) and keep the slice bounds for the monitor's
  // quantiles. Empty slices record nothing, matching RegistryDelta's
  // drop-quiet-instruments semantics.
  const auto& read_samples = metrics_.read_latency.samples();
  const auto& write_samples = metrics_.write_latency.samples();
  const size_t read_begin = telemetry_read_seen_;
  const size_t write_begin = telemetry_write_seen_;
  telemetry_read_seen_ = read_samples.size();
  telemetry_write_seen_ = write_samples.size();

  obs::Registry delta;
  if (read_samples.size() > read_begin) {
    obs::LogHistogram& hist = delta.histogram("kvs/read_latency_ms");
    for (size_t i = read_begin; i < read_samples.size(); ++i) {
      hist.Record(read_samples[i]);
    }
  }
  if (write_samples.size() > write_begin) {
    obs::LogHistogram& hist = delta.histogram("kvs/write_latency_ms");
    for (size_t i = write_begin; i < write_samples.size(); ++i) {
      hist.Record(write_samples[i]);
    }
  }

  if (monitor_ != nullptr) {
    obs::WindowSample sample;
    sample.window_id = window_id;
    sample.start_ms = start_ms;
    sample.end_ms = end_ms;
    sample.reads = static_cast<int64_t>(read_samples.size() - read_begin);
    if (sample.reads > 0) {
      std::vector<double> window(read_samples.begin() + read_begin,
                                 read_samples.end());
      sample.read_p50_ms = QuantileSelect(window, 0.50);
      sample.read_p99_ms = QuantileSelect(window, 0.99);
    }
    sample.fresh = metrics_.reads_fresh_measured - telemetry_fresh_seen_;
    sample.stale = metrics_.reads_stale_measured - telemetry_stale_seen_;
    sample.failed = metrics_.reads_failed - telemetry_failed_seen_;
    sample.hedges = metrics_.hedged_reads_sent - telemetry_hedges_seen_;
    sample.retries = metrics_.client_read_retries - telemetry_retries_seen_;
    telemetry_fresh_seen_ = metrics_.reads_fresh_measured;
    telemetry_stale_seen_ = metrics_.reads_stale_measured;
    telemetry_failed_seen_ = metrics_.reads_failed;
    telemetry_hedges_seen_ = metrics_.hedged_reads_sent;
    telemetry_retries_seen_ = metrics_.client_read_retries;
    RefreshMonitorPrediction();
    if (monitor_prediction_valid_) {
      sample.predicted_valid = true;
      sample.predicted_fresh = monitor_prediction_.fresh_probability;
      sample.predicted_p99_ms = monitor_prediction_.read_p99_ms;
    }
    monitor_->ObserveWindow(sample);
    // Monitor counter deltas by hand (ObserveWindow appended exactly one
    // window sample and possibly new alerts), mirroring what
    // ConsistencyMonitor::ExportTo would contribute to a cumulative diff.
    // Counted after ObserveWindow so an alert raised in window k lands in
    // window k's delta.
    delta.counter("obs/monitor_windows").value = 1;
    const auto& alerts = monitor_->alerts();
    if (alerts.size() > telemetry_alerts_seen_) {
      delta.counter("obs/monitor_alerts").value =
          static_cast<int64_t>(alerts.size() - telemetry_alerts_seen_);
      for (size_t i = telemetry_alerts_seen_; i < alerts.size(); ++i) {
        delta
            .counter(std::string("obs/alerts/") +
                     obs::AlertKindName(alerts[i].kind))
            .value += 1;
      }
      telemetry_alerts_seen_ = alerts.size();
    }
  }

  // Counters: diff a flat value snapshot against the previous tick. The
  // steady state (registry shape unchanged) is one string compare plus one
  // integer compare per row with zero allocations for unmoved counters;
  // shape churn (a shard appearing mid-run) drops into a by-name recovery
  // pass for the tail. Per-shard and per-leg *histograms* deliberately stay
  // out of the windowed series (DESIGN.md §13).
  {
    std::vector<std::string>& names = telemetry_counter_names_;
    std::vector<int64_t>& prev = telemetry_counter_prev_;
    std::vector<std::string> fresh_names;
    std::vector<int64_t> fresh_values;
    size_t row = 0;
    bool aligned = true;
    ForEachCounter([&](std::string_view name, int64_t value) {
      if (aligned && row < names.size() && names[row] == name) {
        if (value != prev[row]) {
          delta.counter(names[row]).value = value - prev[row];
          prev[row] = value;
        }
        ++row;
        return;
      }
      aligned = false;
      fresh_names.emplace_back(name);
      fresh_values.push_back(value);
    });
    if (!aligned) {
      // The rows beyond the matched prefix re-key by name: vanished names
      // are forgotten, new names baseline at 0.
      std::map<std::string_view, int64_t> old;
      for (size_t i = row; i < names.size(); ++i) old.emplace(names[i], prev[i]);
      for (size_t i = 0; i < fresh_names.size(); ++i) {
        const auto it = old.find(fresh_names[i]);
        const int64_t before = it != old.end() ? it->second : 0;
        if (fresh_values[i] != before) {
          delta.counter(fresh_names[i]).value = fresh_values[i] - before;
        }
      }
      names.resize(row);
      prev.resize(row);
      for (size_t i = 0; i < fresh_names.size(); ++i) {
        names.push_back(std::move(fresh_names[i]));
        prev.push_back(fresh_values[i]);
      }
    } else if (row < names.size()) {
      names.resize(row);
      prev.resize(row);
    }
  }

  timeseries_->AdvanceDelta(window_id, start_ms, end_ms, std::move(delta));

  sim_.ScheduleTimer(window_ms, [this]() { TelemetryTick(); });
}

void Cluster::StartAntiEntropy() {
  if (config_.anti_entropy_interval_ms <= 0.0) return;
  sim_.Schedule(config_.anti_entropy_interval_ms, [this]() {
    RunAntiEntropyTick(this, &anti_entropy_rng_);
  });
}

}  // namespace kvs
}  // namespace pbs
