#include "kvs/cluster.h"

#include <algorithm>
#include <cassert>

#include "kvs/anti_entropy.h"

namespace pbs {
namespace kvs {

Cluster::Cluster(const KvsConfig& config)
    : config_(config),
      num_storage_nodes_(config.num_storage_nodes > 0
                             ? config.num_storage_nodes
                             : config.quorum.n),
      ring_(num_storage_nodes_, config.vnodes_per_node,
            config.seed ^ 0x9E37),
      anti_entropy_rng_(config.seed ^ 0xAE0AE0) {
  assert(config_.quorum.IsValid());
  assert(num_storage_nodes_ >= config_.quorum.n);
  assert(config_.num_coordinators >= 1);
  assert(config_.legs.w && config_.legs.a && config_.legs.r &&
         config_.legs.s);

  Rng master(config_.seed);
  network_ = std::make_unique<Network>(&sim_, master.Next());
  const int total = num_nodes();
  nodes_.reserve(total);
  for (NodeId id = 0; id < total; ++id) {
    const bool is_replica = id < num_replicas();
    nodes_.push_back(
        std::make_unique<Node>(this, id, is_replica, master.Next()));
  }
}

std::vector<NodeId> Cluster::ReplicasFor(Key key) const {
  return ring_.PreferenceList(key, config_.quorum.n);
}

int64_t Cluster::NextSequenceFor(Key key) {
  write_rates_.try_emplace(key).first->second.Record(sim_.now());
  return ++sequence_counters_[key];
}

double Cluster::WriteRatePerMsFor(Key key) const {
  const auto it = write_rates_.find(key);
  return it == write_rates_.end() ? 0.0
                                  : it->second.EventsPerMs(sim_.now());
}

int64_t Cluster::LatestSequenceFor(Key key) const {
  const auto it = sequence_counters_.find(key);
  return it == sequence_counters_.end() ? 0 : it->second;
}

std::vector<NodeId> Cluster::ExtendedReplicasFor(Key key) const {
  const int extended = std::min(
      num_storage_nodes_, config_.quorum.n + std::max(0, config_.sloppy_extra));
  return ring_.PreferenceList(key, extended);
}

Status Cluster::UpdateQuorum(int r, int w) {
  QuorumConfig updated = config_.quorum;
  updated.r = r;
  updated.w = w;
  const Status valid = ValidateQuorumConfig(updated);
  if (!valid.ok()) return valid;
  config_.quorum = updated;
  return Status::Ok();
}

void Cluster::UpdateLegs(const WarsDistributions& legs) {
  assert(legs.w && legs.a && legs.r && legs.s);
  config_.legs = legs;
}

void Cluster::StartFailureDetector() {
  if (failure_detector_ != nullptr) return;
  if (config_.failure_detector == KvsConfig::FailureDetectorKind::kPhiAccrual) {
    PhiAccrualFailureDetector::Options options;
    options.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    options.threshold = config_.phi_threshold;
    options.window_size = config_.phi_window_size;
    options.min_std_ms = config_.phi_min_std_ms;
    failure_detector_ = std::make_unique<PhiAccrualFailureDetector>(
        this, options, config_.seed ^ 0xFDFDFD);
  } else {
    HeartbeatFailureDetector::Options options;
    options.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    options.suspect_timeout_ms = config_.suspect_timeout_ms;
    failure_detector_ = std::make_unique<HeartbeatFailureDetector>(
        this, options, config_.seed ^ 0xFDFDFD);
  }
  failure_detector_->Start();
}

void Cluster::StartAntiEntropy() {
  if (config_.anti_entropy_interval_ms <= 0.0) return;
  sim_.Schedule(config_.anti_entropy_interval_ms, [this]() {
    RunAntiEntropyTick(this, &anti_entropy_rng_);
  });
}

}  // namespace kvs
}  // namespace pbs
