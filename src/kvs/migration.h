#ifndef PBS_KVS_MIGRATION_H_
#define PBS_KVS_MIGRATION_H_

#include <cstdint>
#include <deque>
#include <map>

#include "kvs/ring.h"
#include "sim/network.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

class Cluster;

/// Background data migration for elastic membership changes.
///
/// When a node joins or leaves the ring, every key whose preference list
/// changed must reach its new owners before the old epoch can be retired.
/// The Migrator computes, per membership change, the set of (key, source,
/// destination) transfers — a destination is any *new-epoch* replica that
/// was not already a replica in the old epoch — and streams them out in
/// paced batches per source node (RebalanceOptions::stream_interval_ms /
/// max_keys_per_batch), so migration competes gently with foreground
/// traffic.
///
/// Transfers travel over the simulated network as repair-style write legs
/// and apply through the normal last-writer-wins storage path, so a
/// migrated value can never clobber a newer foreground write. Values are
/// re-read from the source's storage at send time (freshest version wins).
/// A transfer the network drops retries up to max_transfer_retries times;
/// beyond that it is abandoned to preference-list-scoped anti-entropy and
/// counted in migration_transfers_dropped. While any transfer is
/// outstanding the cluster routes operations to the union of old- and
/// new-epoch replica sets, which is what makes the handoff lossless for
/// acknowledged writes.
///
/// Determinism: batch pacing is driven by the simulator clock, per-transfer
/// network delays sample from the Migrator's own seeded stream in queue
/// order, and queues are ordered maps keyed by source id — the whole
/// process is a pure function of (seed, membership-op order, sim state).
class Migrator {
 public:
  Migrator(Cluster* cluster, uint64_t seed);

  /// Enqueues the transfers implied by the membership change from
  /// `old_ring` to the cluster's *current* ring and starts (or extends) the
  /// per-source streams. Call immediately after mutating the cluster ring.
  void OnMembershipChange(const ConsistentHashRing& old_ring);

  /// Transfers dispatched but not yet applied or abandoned.
  int64_t outstanding() const { return outstanding_; }

  /// True while any transfer is queued or in flight.
  bool active() const;

  /// @internal Delivery bookkeeping (bound into network callbacks).
  void NoteDelivered();

 private:
  struct Transfer {
    Key key = 0;
    NodeId src = 0;
    NodeId dst = 0;
    int attempts = 0;
  };

  /// Ships up to max_keys_per_batch transfers from `src`'s queue, then
  /// reschedules itself after stream_interval_ms until the queue drains.
  void PumpStream(NodeId src);

  /// Sends one transfer; re-queues it on a network drop (bounded retries).
  void Dispatch(Transfer transfer);

  /// Fires Cluster::OnRebalanceDrained once everything ran dry.
  void MaybeFinishRebalance();

  Cluster* cluster_;
  Rng rng_;
  std::map<NodeId, std::deque<Transfer>> queues_;  // ordered: deterministic
  std::map<NodeId, bool> stream_scheduled_;
  int64_t outstanding_ = 0;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_MIGRATION_H_
