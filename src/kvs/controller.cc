#include "kvs/controller.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>

#include "core/backend.h"
#include "dist/empirical.h"
#include "kvs/cluster.h"
#include "obs/json.h"
#include "util/stats.h"

namespace pbs {
namespace kvs {

namespace {

// FNV-1a 64-bit, folded over raw bytes.
inline uint64_t FnvFold(uint64_t hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

inline uint64_t FnvInt(uint64_t hash, int64_t value) {
  return FnvFold(hash, &value, sizeof(value));
}

inline uint64_t FnvDouble(uint64_t hash, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvFold(hash, &bits, sizeof(bits));
}

}  // namespace

ConsistencyController::ConsistencyController(Cluster* cluster)
    : cluster_(cluster), sla_(cluster->config().sla) {
  assert(cluster_->config().controller.enabled);
  assert(sla_.enabled());
}

void ConsistencyController::Start() {
  if (started_) return;
  started_ = true;
  if (cluster_->leg_profiler() == nullptr) {
    cluster_->set_leg_profiler(&owned_profiler_);
  }
  // Initial configuration enters the history as decision 0 so every traced
  // read — including ones before the first control tick — joins to a
  // record.
  Decision initial;
  initial.id = 0;
  initial.epoch = 0;
  initial.time_ms = cluster_->sim().now();
  initial.action = "initial";
  const KnobState knobs = CurrentKnobs();
  initial.quorum = knobs.quorum;
  initial.hedge_enabled = knobs.hedge_enabled;
  initial.hedge_quantile = knobs.hedge_quantile;
  initial.retry_attempts = knobs.retry_attempts;
  initial.retry_deadline_ms = knobs.retry_deadline_ms;
  AppendHistory(initial);
  cluster_->set_active_decision_id(0);
  cluster_->sim().ScheduleTimer(cluster_->config().controller.epoch_ms,
                                [this]() { Tick(); });
}

ConsistencyController::KnobState ConsistencyController::CurrentKnobs() const {
  const KvsConfig& config = cluster_->config();
  KnobState knobs;
  if (cluster_->read_mix().mixing()) {
    knobs.quorum = cluster_->read_mix();
  } else {
    knobs.quorum = MixedQuorum{config.quorum.n, config.quorum.r,
                               config.quorum.r, config.quorum.w, 0.0};
  }
  knobs.hedge_enabled = config.hedge.enabled;
  knobs.hedge_quantile = config.hedge.quantile;
  knobs.retry_attempts = config.retry.max_attempts;
  knobs.retry_deadline_ms = config.retry.deadline_ms;
  return knobs;
}

ConsistencyController::Measurement ConsistencyController::MeasureWindow() {
  Measurement m;
  const auto& samples = cluster_->metrics().read_latency.samples();
  m.reads = static_cast<int64_t>(samples.size() - read_latency_seen_);
  if (m.reads > 0) {
    std::vector<double> window(samples.begin() + read_latency_seen_,
                               samples.end());
    std::sort(window.begin(), window.end());
    m.read_p99_ms = QuantileSorted(window, 0.99);
  }
  int64_t fresh = 0, stale = 0;
  const int classes = cluster_->config().controller.num_key_classes;
  for (int c = 0; c < classes; ++c) {
    fresh += cluster_->FreshReads(c);
    stale += cluster_->StaleReads(c);
  }
  const int64_t fresh_delta = fresh - fresh_seen_;
  const int64_t stale_delta = stale - stale_seen_;
  if (fresh_delta + stale_delta > 0) {
    m.fresh_fraction = static_cast<double>(fresh_delta) /
                       static_cast<double>(fresh_delta + stale_delta);
  }
  m.failed_reads = cluster_->metrics().reads_failed - reads_failed_seen_;

  read_latency_seen_ = samples.size();
  fresh_seen_ = fresh;
  stale_seen_ = stale;
  reads_failed_seen_ = cluster_->metrics().reads_failed;
  return m;
}

ReplicaLatencyModelPtr ConsistencyController::SenseModel() const {
  const KvsConfig& config = cluster_->config();
  const LegProfiler* profiler = cluster_->leg_profiler();
  const int min_samples = config.controller.min_leg_samples;
  using Leg = LegProfiler::Leg;
  if (profiler != nullptr &&
      static_cast<int>(profiler->count(Leg::kWriteRequest)) >= min_samples &&
      static_cast<int>(profiler->count(Leg::kWriteAck)) >= min_samples &&
      static_cast<int>(profiler->count(Leg::kReadRequest)) >= min_samples &&
      static_cast<int>(profiler->count(Leg::kReadResponse)) >= min_samples) {
    WarsDistributions fitted;
    fitted.name = "controller-fit";
    fitted.w = Empirical(profiler->samples(Leg::kWriteRequest));
    fitted.a = Empirical(profiler->samples(Leg::kWriteAck));
    fitted.r = Empirical(profiler->samples(Leg::kReadRequest));
    fitted.s = Empirical(profiler->samples(Leg::kReadResponse));
    return MakeIidModel(fitted, config.quorum.n);
  }
  return MakeIidModel(config.legs, config.quorum.n);
}

MixedQuorumPredictor ConsistencyController::MakeEpochPredictor(
    const ReplicaLatencyModelPtr& model, const MixedQuorum& current) const {
  const KvsConfig& config = cluster_->config();
  MixedQuorumPredictor::Options options;
  options.backend = config.controller.backend;
  options.trials = config.controller.trials_per_eval;
  options.read_fanout = config.read_fanout;
  // Serial inner evaluation: the controller already runs inside a (possibly
  // campaign-parallel) trial, and a serial WARS run is trivially
  // deterministic regardless of the outer thread count.
  options.exec.threads = 1;
  options.grid = AnalyticGridOptions{config.controller.grid_max_ms,
                                     config.controller.grid_bins,
                                     config.controller.grid_auto_max};
  return MixedQuorumPredictor(sla_, model, current, options);
}

MixedQuorumEvaluation ConsistencyController::Predict(
    const MixedQuorum& quorum, const MixedQuorumPredictor& predictor,
    uint64_t salt) const {
  const KvsConfig& config = cluster_->config();
  const uint64_t seed = (config.seed ^ 0xADA947ULL) +
                        static_cast<uint64_t>(epoch_) * 1000003ULL +
                        salt * 10007ULL;
  return predictor.Evaluate(quorum, seed);
}

void ConsistencyController::Actuate(const KnobState& next) {
  const KvsConfig& config = cluster_->config();
  if (next.quorum.w != config.quorum.w) {
    const Status status = cluster_->UpdateQuorum(config.quorum.r,
                                                 next.quorum.w);
    assert(status.ok());
    (void)status;
  }
  const Status mix_status = cluster_->UpdateReadMix(
      next.quorum.r_lo, next.quorum.r_hi, next.quorum.mix);
  assert(mix_status.ok());
  (void)mix_status;
  if (next.hedge_enabled != config.hedge.enabled ||
      next.hedge_quantile != config.hedge.quantile) {
    HedgeOptions hedge = config.hedge;
    hedge.enabled = next.hedge_enabled;
    hedge.quantile = next.hedge_quantile;
    const Status status = cluster_->UpdateHedge(hedge);
    assert(status.ok());
    (void)status;
  }
  if (next.retry_attempts != config.retry.max_attempts ||
      next.retry_deadline_ms != config.retry.deadline_ms) {
    RetryOptions retry = config.retry;
    retry.max_attempts = next.retry_attempts;
    retry.deadline_ms = next.retry_deadline_ms;
    const Status status = cluster_->UpdateRetry(retry);
    assert(status.ok());
    (void)status;
  }
}

void ConsistencyController::AppendHistory(const Decision& decision) {
  obs::AdaptationRecord record;
  record.decision_id = decision.id;
  record.epoch = decision.epoch;
  record.valid_from_ms = decision.time_ms;
  record.r_lo = decision.quorum.r_lo;
  record.r_hi = decision.quorum.r_hi;
  record.mix = decision.quorum.mix;
  record.w = decision.quorum.w;
  record.hedge_enabled = decision.hedge_enabled;
  record.hedge_quantile = decision.hedge_quantile;
  record.retry_max_attempts = decision.retry_attempts;
  record.retry_deadline_ms = decision.retry_deadline_ms;
  config_history_.push_back(record);
}

void ConsistencyController::Tick() {
  const ControllerOptions& opts = cluster_->config().controller;
  ++epoch_;
  ++cluster_->metrics().controller_epochs;
  const Measurement m = MeasureWindow();

  // The window just measured is the one the previous decision's chosen arm
  // governed: backfill its outcome so the candidate audit pairs every
  // prediction with what actually happened.
  if (!decisions_.empty()) {
    Decision& previous = decisions_.back();
    previous.outcome_fresh = m.fresh_fraction;
    previous.outcome_p99_ms = m.read_p99_ms;
    previous.outcome_reads = m.reads;
  }

  Decision decision;
  decision.id = static_cast<int64_t>(decisions_.size()) + 1;
  decision.epoch = epoch_;
  decision.time_ms = cluster_->sim().now();
  decision.measured_fresh = m.fresh_fraction;
  decision.measured_p99_ms = m.read_p99_ms;
  decision.measured_reads = m.reads;

  KnobState current = CurrentKnobs();
  const bool measured_fresh_violation =
      m.fresh_fraction >= 0.0 && m.fresh_fraction < sla_.fresh_probability;
  const bool measured_latency_violation =
      m.reads > 0 && m.read_p99_ms > sla_.read_p99_ms;

  const auto finalize = [&](const KnobState& state) {
    decision.quorum = state.quorum;
    decision.hedge_enabled = state.hedge_enabled;
    decision.hedge_quantile = state.hedge_quantile;
    decision.retry_attempts = state.retry_attempts;
    decision.retry_deadline_ms = state.retry_deadline_ms;
    decisions_.push_back(decision);
    cluster_->set_active_decision_id(decision.id);
    cluster_->sim().ScheduleTimer(opts.epoch_ms, [this]() { Tick(); });
  };
  const auto actuate_step = [&](const KnobState& next,
                                const std::string& action) {
    pre_step_ = current;
    step_armed_ = true;
    last_step_action_ = action;
    Actuate(next);
    ++cluster_->metrics().controller_steps;
    decision.action = action;
    AppendHistory([&] {
      Decision d = decision;
      d.quorum = next.quorum;
      d.hedge_enabled = next.hedge_enabled;
      d.hedge_quantile = next.hedge_quantile;
      d.retry_attempts = next.retry_attempts;
      d.retry_deadline_ms = next.retry_deadline_ms;
      return d;
    }());
    finalize(next);
  };

  // 1. Rollback: the previous step promised feasibility; if the measured
  // window disagrees beyond the tolerance, revert it and cool down.
  if (step_armed_) {
    step_armed_ = false;
    const double tol = opts.rollback_tolerance;
    const bool fresh_broken =
        m.fresh_fraction >= 0.0 &&
        m.fresh_fraction < sla_.fresh_probability * (1.0 - tol);
    const bool latency_broken =
        m.reads > 0 && m.read_p99_ms > sla_.read_p99_ms * (1.0 + tol);
    if (fresh_broken || latency_broken) {
      Actuate(pre_step_);
      current = pre_step_;
      cooldown_ = opts.cooldown_epochs;
      ++cluster_->metrics().controller_rollbacks;
      decision.action = "rollback:" + last_step_action_;
      AppendHistory([&] {
        Decision d = decision;
        d.quorum = current.quorum;
        d.hedge_enabled = current.hedge_enabled;
        d.hedge_quantile = current.hedge_quantile;
        d.retry_attempts = current.retry_attempts;
        d.retry_deadline_ms = current.retry_deadline_ms;
        return d;
      }());
      finalize(current);
      return;
    }
  }

  // 2. Cooldown: sit out the epochs after a rollback.
  if (cooldown_ > 0) {
    --cooldown_;
    ++cluster_->metrics().controller_holds;
    decision.action = "cooldown";
    finalize(current);
    return;
  }

  // 3. Tail/availability relief ladder: when the *measured* read p99 is
  // over budget — or reads are failing outright (timeouts leave no latency
  // sample, so a dead replica shows up as failures, not p99) — spend this
  // epoch's one step on tail tolerance rather than a quorum move. Hedging
  // attacks both without widening the staleness exposure (the guarded-step
  // invariant): the hedge recruits an untried replica, rescuing reads whose
  // quorum subset landed on the degraded node.
  const bool needs_tail_relief =
      (measured_latency_violation || m.failed_reads > 0) &&
      !measured_fresh_violation;
  if (needs_tail_relief && !current.hedge_enabled) {
    KnobState next = current;
    next.hedge_enabled = true;
    actuate_step(next, "hedge_on");
    return;
  }

  // 4. Availability relief: reads still failing with the hedge already on —
  // grant a retry budget (bounded; deadline caps the added tail).
  if (m.failed_reads > 0 && current.retry_attempts < 3) {
    KnobState next = current;
    next.retry_attempts = current.retry_attempts + 1;
    if (next.retry_deadline_ms <= 0.0) {
      next.retry_deadline_ms = 3.0 * cluster_->config().request_timeout_ms;
    }
    actuate_step(next, "retry+");
    return;
  }

  // 5. Hedge ladder, second rung: p99 still over budget — tighten the
  // hedge trigger quantile stepwise (floor 0.5: at the median the second
  // request is no longer a hedge but a duplicate).
  if (measured_latency_violation && !measured_fresh_violation &&
      current.hedge_enabled &&
      current.hedge_quantile - opts.hedge_quantile_step > 0.5) {
    KnobState next = current;
    next.hedge_quantile -= opts.hedge_quantile_step;
    actuate_step(next, "hedge_tighten");
    return;
  }

  // 6. Quorum predictor: re-fit legs, re-run WARS on the incumbent and its
  // one-knob-step neighbors, and switch under hysteresis.
  const ReplicaLatencyModelPtr model = SenseModel();
  const MixedQuorumPredictor predictor =
      MakeEpochPredictor(model, current.quorum);
  const MixedQuorumEvaluation incumbent_eval =
      Predict(current.quorum, predictor, /*salt=*/0);
  decision.predicted_fresh = incumbent_eval.fresh_probability;
  decision.predicted_p99_ms = incumbent_eval.read_p99_ms;
  decision.predicted_feasible = incumbent_eval.feasible;
  cluster_->set_predictor_provenance(
      PredictorBackendName(predictor.backend()), predictor.note());
  {
    Decision::CandidateOutcome incumbent;
    incumbent.action = "incumbent";
    incumbent.quorum = current.quorum;
    incumbent.predicted_fresh = incumbent_eval.fresh_probability;
    incumbent.predicted_p99_ms = incumbent_eval.read_p99_ms;
    incumbent.predicted_feasible = incumbent_eval.feasible;
    decision.candidates.push_back(std::move(incumbent));
  }

  struct Candidate {
    const char* action;
    MixedQuorum quorum;
  };
  const MixedQuorum& q = current.quorum;
  std::vector<Candidate> candidates;
  if (q.mixing()) {
    candidates.push_back(
        {"mix+", {q.n, q.r_lo, q.r_hi, q.w,
                  std::min(1.0, q.mix + opts.mix_step)}});
    candidates.push_back(
        {"mix-", {q.n, q.r_lo, q.r_hi, q.w,
                  std::max(0.0, q.mix - opts.mix_step)}});
    if (q.r_lo > 1) {
      candidates.push_back({"r_lo-", {q.n, q.r_lo - 1, q.r_hi, q.w, q.mix}});
    }
    if (q.r_lo + 1 <= q.r_hi) {
      candidates.push_back({"r_lo+", {q.n, q.r_lo + 1, q.r_hi, q.w, q.mix}});
    }
    if (q.r_hi < q.n) {
      candidates.push_back({"r_hi+", {q.n, q.r_lo, q.r_hi + 1, q.w, q.mix}});
    }
    if (q.r_hi - 1 >= q.r_lo) {
      candidates.push_back({"r_hi-", {q.n, q.r_lo, q.r_hi - 1, q.w, q.mix}});
    }
  } else {
    // Fixed quorum at R = r_hi: lattice moves, plus "start mixing a faster
    // R = r_hi - 1 into the stream" as the fractional entry point.
    if (q.r_hi < q.n) {
      candidates.push_back(
          {"r_hi+", {q.n, q.r_hi + 1, q.r_hi + 1, q.w, 0.0}});
    }
    if (q.r_hi > 1) {
      candidates.push_back(
          {"r_hi-", {q.n, q.r_hi - 1, q.r_hi - 1, q.w, 0.0}});
      candidates.push_back(
          {"mix+", {q.n, q.r_hi - 1, q.r_hi, q.w, opts.mix_step}});
    }
  }
  if (q.w < q.n) {
    candidates.push_back({"w+", {q.n, q.r_lo, q.r_hi, q.w + 1, q.mix}});
  }
  if (q.w > 1) {
    candidates.push_back({"w-", {q.n, q.r_lo, q.r_hi, q.w - 1, q.mix}});
  }

  const char* best_action = nullptr;
  MixedQuorum best_quorum = q;
  MixedQuorumEvaluation best_eval = incumbent_eval;
  size_t best_index = 0;  // into decision.candidates; 0 = incumbent
  uint64_t salt = 1;
  for (const Candidate& candidate : candidates) {
    if (candidate.quorum == q) continue;
    const MixedQuorumEvaluation eval =
        Predict(candidate.quorum, predictor, salt++);
    {
      Decision::CandidateOutcome arm;
      arm.action = candidate.action;
      arm.quorum = candidate.quorum;
      arm.predicted_fresh = eval.fresh_probability;
      arm.predicted_p99_ms = eval.read_p99_ms;
      arm.predicted_feasible = eval.feasible;
      decision.candidates.push_back(std::move(arm));
    }
    bool better;
    if (eval.feasible != best_eval.feasible) {
      better = eval.feasible;
    } else if (eval.feasible) {
      better = eval.read_p99_ms < best_eval.read_p99_ms;
    } else {
      // Both miss the SLA: freshness first (it is the harder clause to buy
      // back), then latency.
      better = eval.fresh_probability > best_eval.fresh_probability ||
               (eval.fresh_probability == best_eval.fresh_probability &&
                eval.read_p99_ms < best_eval.read_p99_ms);
    }
    if (better) {
      best_action = candidate.action;
      best_quorum = candidate.quorum;
      best_eval = eval;
      best_index = decision.candidates.size() - 1;
    }
  }

  // Hysteresis: a measured SLA violation disqualifies the incumbent from
  // its hold advantage; otherwise a feasible incumbent only yields to a
  // clearly better challenger.
  const bool incumbent_ok = incumbent_eval.feasible &&
                            !measured_fresh_violation &&
                            !measured_latency_violation;
  bool switch_now = false;
  if (best_action != nullptr) {
    if (!incumbent_ok && (best_eval.feasible ||
                          best_eval.fresh_probability >
                              incumbent_eval.fresh_probability)) {
      switch_now = true;
    } else if (incumbent_ok && best_eval.feasible &&
               best_eval.read_p99_ms <
                   opts.switch_improvement_factor *
                       incumbent_eval.read_p99_ms) {
      switch_now = true;
    }
  }
  if (switch_now) {
    decision.predicted_fresh = best_eval.fresh_probability;
    decision.predicted_p99_ms = best_eval.read_p99_ms;
    decision.predicted_feasible = best_eval.feasible;
    decision.candidates[best_index].chosen = true;
    KnobState next = current;
    next.quorum = best_quorum;
    actuate_step(next, best_action);
    return;
  }

  ++cluster_->metrics().controller_holds;
  decision.candidates[0].chosen = true;  // hold: the incumbent arm won
  decision.action = "hold";
  finalize(current);
}

uint64_t ConsistencyController::DecisionDigest() const {
  uint64_t hash = 14695981039346656037ULL;
  for (const Decision& d : decisions_) {
    hash = FnvInt(hash, d.id);
    hash = FnvInt(hash, d.epoch);
    hash = FnvDouble(hash, d.time_ms);
    hash = FnvFold(hash, d.action.data(), d.action.size());
    hash = FnvInt(hash, d.quorum.n);
    hash = FnvInt(hash, d.quorum.r_lo);
    hash = FnvInt(hash, d.quorum.r_hi);
    hash = FnvInt(hash, d.quorum.w);
    hash = FnvDouble(hash, d.quorum.mix);
    hash = FnvInt(hash, d.hedge_enabled ? 1 : 0);
    hash = FnvDouble(hash, d.hedge_quantile);
    hash = FnvInt(hash, d.retry_attempts);
    hash = FnvDouble(hash, d.retry_deadline_ms);
    hash = FnvDouble(hash, d.predicted_fresh);
    hash = FnvDouble(hash, d.predicted_p99_ms);
    hash = FnvInt(hash, d.predicted_feasible ? 1 : 0);
    hash = FnvDouble(hash, d.measured_fresh);
    hash = FnvDouble(hash, d.measured_p99_ms);
    hash = FnvInt(hash, d.measured_reads);
  }
  return hash;
}

std::string DecisionsJsonl(
    const std::vector<ConsistencyController::Decision>& decisions) {
  std::ostringstream out;
  for (const ConsistencyController::Decision& d : decisions) {
    out << "{\"type\":\"decision\",\"id\":" << d.id << ",\"epoch\":" << d.epoch
        << ",\"time_ms\":" << obs::JsonNumber(d.time_ms)
        << ",\"action\":" << obs::JsonString(d.action)
        << ",\"r_lo\":" << d.quorum.r_lo << ",\"r_hi\":" << d.quorum.r_hi
        << ",\"mix\":" << obs::JsonNumber(d.quorum.mix)
        << ",\"w\":" << d.quorum.w
        << ",\"hedge_enabled\":" << (d.hedge_enabled ? "true" : "false")
        << ",\"hedge_quantile\":" << obs::JsonNumber(d.hedge_quantile)
        << ",\"retry_attempts\":" << d.retry_attempts
        << ",\"predicted_fresh\":" << obs::JsonNumber(d.predicted_fresh)
        << ",\"predicted_p99_ms\":" << obs::JsonNumber(d.predicted_p99_ms)
        << ",\"predicted_feasible\":"
        << (d.predicted_feasible ? "true" : "false")
        << ",\"measured_fresh\":" << obs::JsonNumber(d.measured_fresh)
        << ",\"measured_p99_ms\":" << obs::JsonNumber(d.measured_p99_ms)
        << ",\"measured_reads\":" << d.measured_reads
        << ",\"outcome_fresh\":" << obs::JsonNumber(d.outcome_fresh)
        << ",\"outcome_p99_ms\":" << obs::JsonNumber(d.outcome_p99_ms)
        << ",\"outcome_reads\":" << d.outcome_reads << ",\"candidates\":[";
    for (size_t i = 0; i < d.candidates.size(); ++i) {
      const ConsistencyController::Decision::CandidateOutcome& c =
          d.candidates[i];
      if (i > 0) out << ",";
      out << "{\"action\":" << obs::JsonString(c.action)
          << ",\"r_lo\":" << c.quorum.r_lo << ",\"r_hi\":" << c.quorum.r_hi
          << ",\"mix\":" << obs::JsonNumber(c.quorum.mix)
          << ",\"w\":" << c.quorum.w
          << ",\"predicted_fresh\":" << obs::JsonNumber(c.predicted_fresh)
          << ",\"predicted_p99_ms\":" << obs::JsonNumber(c.predicted_p99_ms)
          << ",\"predicted_feasible\":"
          << (c.predicted_feasible ? "true" : "false")
          << ",\"chosen\":" << (c.chosen ? "true" : "false") << "}";
    }
    out << "]}\n";
  }
  return out.str();
}

}  // namespace kvs
}  // namespace pbs
