#ifndef PBS_KVS_VERSION_H_
#define PBS_KVS_VERSION_H_

#include <cstdint>
#include <string>

#include "util/small_vector.h"

namespace pbs {
namespace kvs {

/// Relationship between two causal histories.
enum class CausalOrder { kEqual, kBefore, kAfter, kConcurrent };

/// Vector clock (Lamport/Fidge-Mattern), the causal-ordering mechanism the
/// paper's footnote 2 cites for establishing a total ordering of versions
/// (combined with a commutative merge). Dynamo attaches one of these to each
/// object version.
///
/// Entries live in a node-id-sorted SmallVector: real clocks carry one or
/// two writer entries (a session writes through one coordinator), so the
/// previous std::map paid a heap node per entry on every version copy the
/// replication fan-out made. Inline entries make VersionedValue copies
/// allocation-free on the hot path.
class VectorClock {
 public:
  struct Entry {
    int32_t node = 0;
    int64_t count = 0;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.node == b.node && a.count == b.count;
    }
  };

  /// Advances this clock's entry for `node_id` by one.
  void Increment(int node_id);

  /// Component count (number of nodes that ever incremented).
  size_t size() const { return entries_.size(); }

  int64_t EntryFor(int node_id) const;

  /// Causal comparison: kBefore means *this happened before* `other`.
  CausalOrder Compare(const VectorClock& other) const;

  /// Pointwise maximum — the commutative merge for conflict resolution.
  static VectorClock Merge(const VectorClock& a, const VectorClock& b);

  std::string ToString() const;

  bool operator==(const VectorClock& other) const {
    return entries_ == other.entries_;
  }

 private:
  SmallVector<Entry, 2> entries_;  // sorted by node id
};

/// Last-writer-wins stamp providing the *total* order the quorum read path
/// needs when picking "the most recent value" among replica responses:
/// ordered by wall-clock timestamp, writer id breaking ties.
struct VersionStamp {
  double timestamp = 0.0;
  int32_t writer = 0;

  friend bool operator<(const VersionStamp& a, const VersionStamp& b) {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.writer < b.writer;
  }
  friend bool operator==(const VersionStamp& a, const VersionStamp& b) {
    return a.timestamp == b.timestamp && a.writer == b.writer;
  }
};

/// A replicated object version. `sequence` is the global total-order rank
/// assigned by the writing client (1, 2, 3, ...); the staleness metrics are
/// defined over it ("k versions stale"). `stamp` drives replica-side
/// supersession and read-side freshest-wins; `clock` carries causal
/// metadata for conflict detection.
struct VersionedValue {
  int64_t sequence = 0;
  VersionStamp stamp;
  std::string value;
  VectorClock clock;

  /// True when this version supersedes `other` under the LWW total order.
  bool NewerThan(const VersionedValue& other) const {
    return other.stamp < stamp;
  }
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_VERSION_H_
