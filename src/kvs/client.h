#ifndef PBS_KVS_CLIENT_H_
#define PBS_KVS_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kvs/node.h"
#include "kvs/rates.h"
#include "kvs/ring.h"

namespace pbs {
namespace kvs {

class Cluster;

/// A client session bound to one coordinator ("sticky" routing unless the
/// caller rebinds). Sessions assign write version metadata (global per-key
/// sequence, LWW stamp, vector clock entry) and track the monotonic-reads
/// session guarantee (Section 3.2): a read that returns an older version
/// than this session previously saw for the key counts as a violation.
class ClientSession {
 public:
  ClientSession(Cluster* cluster, NodeId coordinator, int32_t client_id);

  /// Issues a write through the session's coordinator. `done` may be null.
  void Write(Key key, std::string value, WriteCallback done = nullptr);

  /// Issues a read; monotonicity is checked before `done` runs.
  void Read(Key key, ReadCallback done = nullptr);

  /// Outcome of a multi-key read-only operation (Section 6 "Multi-key
  /// operations"): per-key results aligned with the requested keys.
  struct MultiReadResult {
    bool ok = false;  // every per-key read succeeded
    double latency_ms = 0.0;  // slowest constituent read
    std::vector<ReadResult> results;
  };
  using MultiReadCallback = std::function<void(const MultiReadResult&)>;

  /// Reads all `keys` in parallel through this session's coordinator and
  /// invokes `done` once every constituent read finished. Each key hits its
  /// own independent quorum, so the all-fresh probability follows the
  /// product rule of core/multikey.h.
  void MultiRead(const std::vector<Key>& keys, MultiReadCallback done);

  /// Re-binds the session to a different coordinator (breaking stickiness —
  /// useful to demonstrate why sticky routing helps monotonic reads).
  void set_coordinator(NodeId coordinator) { coordinator_ = coordinator; }
  NodeId coordinator() const { return coordinator_; }

  int64_t reads_issued() const { return reads_issued_; }
  int64_t monotonic_violations() const { return monotonic_violations_; }

  /// This session's measured read rate for `key` in reads/ms (gamma_cr of
  /// Equation 3); 0 until two reads have been observed.
  double ReadRatePerMs(Key key) const;

  /// Live Equation 3 prediction: the probability this session's *next*
  /// read of `key` violates monotonic reads, computed from the measured
  /// global write rate and this session's measured read rate ("by
  /// measuring their distribution, we can calculate an expected value" —
  /// Section 3.2). Conservative for expanding quorums. Returns 0 when
  /// either rate is still unmeasured.
  double PredictedMonotonicViolationProbability(Key key) const;

 private:
  Cluster* cluster_;
  NodeId coordinator_;
  int32_t client_id_;
  int64_t reads_issued_ = 0;
  int64_t monotonic_violations_ = 0;
  std::unordered_map<Key, int64_t> last_read_sequence_;
  std::unordered_map<Key, RateEstimator> read_rates_;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_CLIENT_H_
