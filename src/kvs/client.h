#ifndef PBS_KVS_CLIENT_H_
#define PBS_KVS_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kvs/node.h"
#include "kvs/rates.h"
#include "kvs/ring.h"
#include "kvs/version.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

class Cluster;

/// A client session bound to one coordinator ("sticky" routing unless the
/// caller rebinds). Sessions assign write version metadata (global per-key
/// sequence, LWW stamp, vector clock entry) and track the monotonic-reads
/// session guarantee (Section 3.2): a read that returns an older version
/// than this session previously saw for the key counts as a violation.
///
/// When KvsConfig::retry allows more than one attempt, failed operations
/// retry with capped exponential backoff and deterministic jitter until the
/// per-operation deadline budget runs out; each attempt's coordinator
/// timeout is clipped to the remaining budget. Results carry the attempt
/// count, client-visible latency spans all attempts, and (for reads with
/// RetryOptions::downgrade_reads) a `downgraded` flag plus a kDowngraded
/// status when a retry accepted fewer than the configured R responses.
/// Exhausting the deadline yields kDeadlineExceeded; a plain quorum miss
/// yields kTimedOut.
///
/// The session is the tracing entry point: each operation consults the
/// cluster's Tracer (counter-based sampling, zero RNG draws) and threads
/// the resulting trace id through every coordinator attempt, so hedges,
/// retries and repairs all attribute to one causal trace.
class ClientSession {
 public:
  ClientSession(Cluster* cluster, NodeId coordinator, int32_t client_id);

  /// Issues a write through the session's coordinator. `done` may be null.
  void Write(Key key, std::string value, WriteCallback done = nullptr);

  /// Issues a read; monotonicity is checked before `done` runs.
  void Read(Key key, ReadCallback done = nullptr);

  /// Outcome of a multi-key read-only operation (Section 6 "Multi-key
  /// operations"): per-key results aligned with the requested keys.
  struct MultiReadResult {
    bool ok = false;  // every per-key read succeeded
    double latency_ms = 0.0;  // slowest constituent read
    std::vector<ReadResult> results;
  };
  using MultiReadCallback = std::function<void(const MultiReadResult&)>;

  /// Reads all `keys` in parallel through this session's coordinator and
  /// invokes `done` once every constituent read finished. Each key hits its
  /// own independent quorum, so the all-fresh probability follows the
  /// product rule of core/multikey.h.
  void MultiRead(const std::vector<Key>& keys, MultiReadCallback done);

  /// Re-binds the session to a different coordinator (breaking stickiness —
  /// useful to demonstrate why sticky routing helps monotonic reads).
  void set_coordinator(NodeId coordinator) { coordinator_ = coordinator; }
  NodeId coordinator() const { return coordinator_; }

  int64_t reads_issued() const { return reads_issued_; }
  int64_t monotonic_violations() const { return monotonic_violations_; }

  /// Latest cluster ring version this session has observed (0 until a first
  /// operation completes). Every operation carries it to the coordinator,
  /// which counts ops routed with an out-of-date version as
  /// stale_routes_forwarded — the ring-version-aware routing handshake.
  uint64_t known_ring_version() const { return known_ring_version_; }

  /// This session's measured read rate for `key` in reads/ms (gamma_cr of
  /// Equation 3); 0 until two reads have been observed.
  double ReadRatePerMs(Key key) const;

  /// Live Equation 3 prediction: the probability this session's *next*
  /// read of `key` violates monotonic reads, computed from the measured
  /// global write rate and this session's measured read rate ("by
  /// measuring their distribution, we can calculate an expected value" —
  /// Section 3.2). Conservative for expanding quorums. Returns 0 when
  /// either rate is still unmeasured.
  double PredictedMonotonicViolationProbability(Key key) const;

 private:
  void StartWriteAttempt(Key key, VersionedValue value, WriteCallback done,
                         int attempt, double op_start, uint64_t trace_id);
  void StartReadAttempt(Key key, ReadCallback done, int attempt,
                        double op_start, uint64_t trace_id);
  /// Per-attempt coordinator timeout: the configured request timeout
  /// clipped to the remaining deadline budget (0 = use the configured
  /// timeout unchanged).
  double AttemptTimeoutMs(double op_start) const;
  /// Backoff before the next attempt (capped exponential, jitter in
  /// [0.5, 1)), or a negative value when the operation must fail now
  /// (attempts exhausted, or the backoff would blow the deadline — the
  /// latter counts a client_deadline_miss and sets *deadline_limited so
  /// the caller reports kDeadlineExceeded instead of kTimedOut).
  double NextRetryDelayMs(int attempt, double op_start,
                          bool* deadline_limited);
  /// Monotonic-reads accounting + the user callback.
  void FinishRead(Key key, const ReadResult& result, ReadCallback& done);

  Cluster* cluster_;
  NodeId coordinator_;
  int32_t client_id_;
  Rng retry_rng_;
  uint64_t known_ring_version_ = 0;
  int64_t reads_issued_ = 0;
  int64_t monotonic_violations_ = 0;
  std::unordered_map<Key, int64_t> last_read_sequence_;
  std::unordered_map<Key, RateEstimator> read_rates_;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_CLIENT_H_
