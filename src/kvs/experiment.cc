#include "kvs/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "core/staleness_detector.h"
#include "kvs/client.h"
#include "kvs/failure.h"
#include "kvs/profiler.h"
#include "obs/exporters.h"
#include "obs/monitor.h"
#include "obs/timeseries.h"

namespace pbs {
namespace kvs {

double StalenessExperimentResult::ProbConsistentAt(double t) const {
  for (const auto& point : t_visibility) {
    if (point.t == t) return point.ProbConsistent();
  }
  assert(false && "offset was not probed");
  return 0.0;
}

namespace {

StalenessExperimentResult RunStalenessExperimentImpl(
    const StalenessExperimentOptions& options,
    const FailureSchedule* failures, const FaultSchedule* faults = nullptr) {
  assert(options.writes >= 1);
  assert(!options.read_offsets_ms.empty());

  KvsConfig config = options.cluster;
  config.num_coordinators = 2;  // [0]: writer proxy, [1]: reader proxy
  config.seed = options.seed;
  Cluster cluster(config);
  LegProfiler leg_profiler;
  if (options.profile_legs) cluster.set_leg_profiler(&leg_profiler);
  std::unique_ptr<ConsistencyController> controller;
  if (config.controller.enabled) {
    controller = std::make_unique<ConsistencyController>(&cluster);
    controller->Start();
  }
  // Telemetry tick is read-only (registry deltas off the timer wheel), so
  // starting it cannot change the run's operation outcomes; off, it is a
  // strict no-op and the event stream is bitwise identical to pre-telemetry
  // builds.
  cluster.StartTelemetry();
  cluster.StartAntiEntropy();
  if (config.sloppy_quorums) cluster.StartFailureDetector();
  if (failures != nullptr) failures->InstallOn(&cluster);
  if (faults != nullptr) faults->InstallOn(&cluster);

  const Key key = 0;
  ClientSession writer(&cluster, cluster.coordinator(0).id(), /*client_id=*/1);
  ClientSession reader(&cluster, cluster.coordinator(1).id(), /*client_id=*/2);

  StalenessExperimentResult result;
  ConsistencyByOffset by_offset;

  // Commit-time oracle for the Section 4.3 detector: commit_times[seq-1] is
  // the absolute commit time of version seq, or a negative sentinel while
  // uncommitted.
  std::vector<double> commit_times(options.writes + 1, -1.0);
  StalenessDetector detector([&commit_times](int64_t version) {
    if (version <= 0 ||
        version > static_cast<int64_t>(commit_times.size())) {
      return -1.0;
    }
    return commit_times[version - 1];
  });
  cluster.set_late_read_hook([&detector](const LateReadInfo& info) {
    ReadObservation observation;
    observation.returned_version = info.returned_sequence;
    observation.read_start_time = info.read_start_time;
    observation.late_response_versions = info.late_response_sequences;
    detector.Observe(observation);
  });

  // Schedule the write stream. Each commit launches the probe reads.
  for (int i = 1; i <= options.writes; ++i) {
    const double start = static_cast<double>(i) * options.write_spacing_ms;
    cluster.sim().At(start, [&, i]() {
      writer.Write(key, "v" + std::to_string(i),
                   [&, i](const WriteResult& write_result) {
        if (!write_result.ok) return;  // timed out; no probes for it
        commit_times[i - 1] = write_result.commit_time;
        result.write_latencies.push_back(write_result.latency_ms);
        for (double offset : options.read_offsets_ms) {
          cluster.sim().Schedule(offset, [&, i, offset]() {
            // Newest version committed by now; scan down from the newest
            // issued (normally terminates in one or two steps because only
            // the most recent write can still be in flight).
            const int64_t latest_committed = [&]() {
              for (int64_t v = cluster.LatestSequenceFor(key); v >= 1; --v) {
                if (commit_times[v - 1] >= 0.0 &&
                    commit_times[v - 1] <= cluster.sim().now()) {
                  return v;
                }
              }
              return static_cast<int64_t>(0);
            }();
            reader.Read(key, [&, i, offset, latest_committed](
                                 const ReadResult& read_result) {
              if (!read_result.ok) return;
              result.read_latencies.push_back(read_result.latency_ms);
              const int64_t sequence = read_result.value.has_value()
                                           ? read_result.value->sequence
                                           : 0;
              // Consistent for offset t of write i if the read saw version
              // i or anything newer.
              by_offset.Record(offset, sequence >= i);
              result.version_staleness.Record(
                  std::max<int64_t>(0, latest_committed - sequence));
            });
          });
        }
      });
    });
  }

  // Drain. Anti-entropy reschedules forever, so always bound the run: the
  // last write starts at writes * spacing; probes finish within the largest
  // offset + timeout.
  const double max_offset = *std::max_element(options.read_offsets_ms.begin(),
                                              options.read_offsets_ms.end());
  const double horizon = static_cast<double>(options.writes + 1) *
                             options.write_spacing_ms +
                         max_offset + 3.0 * config.request_timeout_ms;
  cluster.sim().RunUntil(horizon);

  result.t_visibility = by_offset.Points();
  result.detector_stale = detector.stale();
  result.detector_false_positives = detector.false_positives();
  result.detector_consistent = detector.consistent();
  result.final_metrics = cluster.metrics();
  result.network_messages = cluster.network().messages_sent();
  result.network_messages_dropped = cluster.network().messages_dropped();
  result.network_messages_duplicated = cluster.network().messages_duplicated();
  cluster.ExportMetrics(&result.registry);
  result.metrics_header = cluster.MetricsHeader();
  if (cluster.tracer().enabled()) result.trace = cluster.tracer().Snapshot();
  if (controller != nullptr) {
    result.controller_decisions = controller->decisions();
    result.controller_history = controller->config_history();
    result.controller_digest = controller->DecisionDigest();
  }
  if (cluster.timeseries() != nullptr) {
    // Move, not copy: the cluster is torn down right after this block, and
    // a full-capacity series of dense-histogram windows is tens of MB.
    result.timeseries = std::move(*cluster.mutable_timeseries());
    std::string telemetry = obs::TimeSeriesJsonl(
        result.timeseries, config.obs.telemetry_window_ms);
    if (cluster.monitor() != nullptr) {
      result.monitor_samples = cluster.monitor()->samples();
      result.monitor_alerts = cluster.monitor()->alerts();
      telemetry += obs::MonitorJsonl(*cluster.monitor());
    }
    if (controller != nullptr) {
      telemetry += DecisionsJsonl(result.controller_decisions);
    }
    result.telemetry_jsonl = std::move(telemetry);
  }
  return result;
}

}  // namespace

StalenessExperimentResult RunStalenessExperiment(
    const StalenessExperimentOptions& options) {
  return RunStalenessExperimentImpl(options, nullptr);
}

StalenessExperimentResult RunStalenessExperimentWithFailures(
    const StalenessExperimentOptions& options,
    const FailureSchedule& failures) {
  return RunStalenessExperimentImpl(options, &failures);
}

StalenessExperimentResult RunStalenessExperimentWithFaults(
    const StalenessExperimentOptions& options, const FaultSchedule& faults,
    const FailureSchedule* failures) {
  return RunStalenessExperimentImpl(options, failures, &faults);
}

namespace {

/// Digest of one experiment run; latency pools ride along (outside the
/// summary) so campaign-level quantiles can be recomputed exactly.
ChaosSummary Summarize(const StalenessExperimentOptions& options,
                       const StalenessExperimentResult& run,
                       std::vector<double>* read_pool,
                       std::vector<double>* write_pool) {
  ChaosSummary s;
  const ClusterMetrics& m = run.final_metrics;
  s.reads_started = m.reads_started;
  s.reads_failed = m.reads_failed;
  s.writes_started = m.writes_started;
  s.writes_failed = m.writes_failed;
  s.hedged_reads_sent = m.hedged_reads_sent;
  s.hedged_reads_won = m.hedged_reads_won;
  s.duplicate_responses_suppressed = m.duplicate_responses_suppressed;
  s.duplicate_acks_suppressed = m.duplicate_acks_suppressed;
  s.client_read_retries = m.client_read_retries;
  s.client_write_retries = m.client_write_retries;
  s.client_deadline_misses = m.client_deadline_misses;
  s.consistency_downgrades = m.consistency_downgrades;
  s.monotonic_read_violations = m.monotonic_read_violations;
  s.messages_dropped = run.network_messages_dropped;
  s.messages_duplicated = run.network_messages_duplicated;
  s.fault_activations =
      m.fault_slow_node_activations + m.fault_lossy_link_activations +
      m.fault_flapping_activations + m.fault_asymmetric_partition_activations;

  std::vector<double> reads = run.read_latencies;
  std::sort(reads.begin(), reads.end());
  std::vector<double> writes = run.write_latencies;
  std::sort(writes.begin(), writes.end());
  if (!reads.empty()) {
    s.read_p50 = QuantileSorted(reads, 0.50);
    s.read_p99 = QuantileSorted(reads, 0.99);
    s.read_p999 = QuantileSorted(reads, 0.999);
    s.read_max = reads.back();
  }
  if (!writes.empty()) {
    s.write_p50 = QuantileSorted(writes, 0.50);
    s.write_p99 = QuantileSorted(writes, 0.99);
    s.write_p999 = QuantileSorted(writes, 0.999);
  }

  s.probe_offsets_ms = options.read_offsets_ms;
  s.probe_trials.assign(s.probe_offsets_ms.size(), 0);
  s.probe_consistent.assign(s.probe_offsets_ms.size(), 0);
  for (const auto& point : run.t_visibility) {
    for (size_t i = 0; i < s.probe_offsets_ms.size(); ++i) {
      if (point.t == s.probe_offsets_ms[i]) {
        s.probe_trials[i] = point.trials;
        s.probe_consistent[i] = point.consistent;
        break;
      }
    }
  }

  if (read_pool != nullptr) {
    read_pool->insert(read_pool->end(), run.read_latencies.begin(),
                      run.read_latencies.end());
  }
  if (write_pool != nullptr) {
    write_pool->insert(write_pool->end(), run.write_latencies.begin(),
                       run.write_latencies.end());
  }
  return s;
}

}  // namespace

ChaosCampaignResult RunChaosTrials(const ChaosTrialOptions& options,
                                   const PbsExecutionOptions& exec) {
  assert(options.trials >= 1);
  const int64_t trials = options.trials;
  const int64_t num_chunks = NumChunks(trials, exec);
  std::vector<Rng> streams = MakeJumpStreams(Rng(options.seed), num_chunks);

  const double max_offset =
      *std::max_element(options.experiment.read_offsets_ms.begin(),
                        options.experiment.read_offsets_ms.end());
  const double horizon =
      static_cast<double>(options.experiment.writes + 1) *
          options.experiment.write_spacing_ms +
      max_offset + 3.0 * options.experiment.cluster.request_timeout_ms;

  struct TrialOutput {
    ChaosSummary summary;
    std::vector<double> read_latencies;
    std::vector<double> write_latencies;
    obs::Registry registry;
  };
  std::vector<TrialOutput> outputs(trials);

  ParallelFor(trials, exec,
              [&](int64_t chunk_index, int64_t begin, int64_t end) {
                Rng& stream = streams[chunk_index];
                for (int64_t t = begin; t < end; ++t) {
                  // Two sequential draws per trial from the chunk's
                  // sub-stream: the workload seed and the fault seed.
                  const uint64_t workload_seed = stream.Next();
                  const uint64_t fault_seed = stream.Next();
                  StalenessExperimentOptions experiment = options.experiment;
                  experiment.seed = workload_seed;
                  StalenessExperimentResult run;
                  if (options.inject_faults) {
                    const FaultSchedule faults =
                        FaultSchedule::RandomGrayFailures(
                            experiment.cluster.quorum.n, horizon,
                            options.fault_mean_interarrival_ms,
                            options.fault_mean_duration_ms, fault_seed);
                    run = RunStalenessExperimentWithFaults(experiment, faults);
                  } else {
                    run = RunStalenessExperiment(experiment);
                  }
                  TrialOutput& out = outputs[t];
                  out.summary = Summarize(experiment, run,
                                          &out.read_latencies,
                                          &out.write_latencies);
                  out.registry = std::move(run.registry);
                }
              });

  ChaosCampaignResult result;
  result.trials.reserve(trials);
  std::vector<double> read_pool;
  std::vector<double> write_pool;
  obs::Registry campaign_registry;
  ChaosSummary& pooled = result.pooled;
  pooled.probe_offsets_ms = options.experiment.read_offsets_ms;
  pooled.probe_trials.assign(pooled.probe_offsets_ms.size(), 0);
  pooled.probe_consistent.assign(pooled.probe_offsets_ms.size(), 0);
  for (TrialOutput& out : outputs) {  // trial order: deterministic merge
    const ChaosSummary& s = out.summary;
    pooled.reads_started += s.reads_started;
    pooled.reads_failed += s.reads_failed;
    pooled.writes_started += s.writes_started;
    pooled.writes_failed += s.writes_failed;
    pooled.hedged_reads_sent += s.hedged_reads_sent;
    pooled.hedged_reads_won += s.hedged_reads_won;
    pooled.duplicate_responses_suppressed += s.duplicate_responses_suppressed;
    pooled.duplicate_acks_suppressed += s.duplicate_acks_suppressed;
    pooled.client_read_retries += s.client_read_retries;
    pooled.client_write_retries += s.client_write_retries;
    pooled.client_deadline_misses += s.client_deadline_misses;
    pooled.consistency_downgrades += s.consistency_downgrades;
    pooled.monotonic_read_violations += s.monotonic_read_violations;
    pooled.messages_dropped += s.messages_dropped;
    pooled.messages_duplicated += s.messages_duplicated;
    pooled.fault_activations += s.fault_activations;
    for (size_t i = 0; i < pooled.probe_offsets_ms.size(); ++i) {
      pooled.probe_trials[i] += s.probe_trials[i];
      pooled.probe_consistent[i] += s.probe_consistent[i];
    }
    read_pool.insert(read_pool.end(), out.read_latencies.begin(),
                     out.read_latencies.end());
    write_pool.insert(write_pool.end(), out.write_latencies.begin(),
                      out.write_latencies.end());
    campaign_registry.Merge(out.registry);
    result.trials.push_back(std::move(out.summary));
  }
  result.metrics_jsonl = obs::MetricsJsonl(campaign_registry);
  std::sort(read_pool.begin(), read_pool.end());
  std::sort(write_pool.begin(), write_pool.end());
  if (!read_pool.empty()) {
    pooled.read_p50 = QuantileSorted(read_pool, 0.50);
    pooled.read_p99 = QuantileSorted(read_pool, 0.99);
    pooled.read_p999 = QuantileSorted(read_pool, 0.999);
    pooled.read_max = read_pool.back();
  }
  if (!write_pool.empty()) {
    pooled.write_p50 = QuantileSorted(write_pool, 0.50);
    pooled.write_p99 = QuantileSorted(write_pool, 0.99);
    pooled.write_p999 = QuantileSorted(write_pool, 0.999);
  }
  return result;
}

ControllerCampaignResult RunControllerTrials(
    const ControllerTrialOptions& options, const PbsExecutionOptions& exec) {
  assert(options.trials >= 1);
  const int64_t trials = options.trials;
  const int64_t num_chunks = NumChunks(trials, exec);
  std::vector<Rng> streams = MakeJumpStreams(Rng(options.seed), num_chunks);

  const double max_offset =
      *std::max_element(options.experiment.read_offsets_ms.begin(),
                        options.experiment.read_offsets_ms.end());
  const double horizon =
      static_cast<double>(options.experiment.writes + 1) *
          options.experiment.write_spacing_ms +
      max_offset + 3.0 * options.experiment.cluster.request_timeout_ms;

  struct TrialOutput {
    ControllerCampaignSummary summary;
    std::vector<double> read_latencies;
    std::vector<double> write_latencies;
  };
  std::vector<TrialOutput> outputs(trials);

  ParallelFor(trials, exec,
              [&](int64_t chunk_index, int64_t begin, int64_t end) {
                Rng& stream = streams[chunk_index];
                for (int64_t t = begin; t < end; ++t) {
                  // Same two sequential draws per trial as RunChaosTrials
                  // (workload then fault seed), whether or not a fault
                  // factory is installed — the draw count per trial is
                  // fixed.
                  const uint64_t workload_seed = stream.Next();
                  const uint64_t fault_seed = stream.Next();
                  StalenessExperimentOptions experiment = options.experiment;
                  experiment.seed = workload_seed;
                  StalenessExperimentResult run;
                  if (options.faults) {
                    const FaultSchedule faults =
                        options.faults(horizon, fault_seed);
                    run = RunStalenessExperimentWithFaults(experiment, faults);
                  } else {
                    run = RunStalenessExperiment(experiment);
                  }
                  TrialOutput& out = outputs[t];
                  out.summary.chaos = Summarize(experiment, run,
                                                &out.read_latencies,
                                                &out.write_latencies);
                  out.summary.decision_digest = run.controller_digest;
                  out.summary.decisions =
                      static_cast<int64_t>(run.controller_decisions.size());
                  out.summary.steps = run.final_metrics.controller_steps;
                  out.summary.rollbacks =
                      run.final_metrics.controller_rollbacks;
                  out.summary.reads_fresh_measured =
                      run.final_metrics.reads_fresh_measured;
                  out.summary.reads_stale_measured =
                      run.final_metrics.reads_stale_measured;
                  out.summary.monitor_windows =
                      static_cast<int64_t>(run.monitor_samples.size());
                  out.summary.monitor_alerts =
                      static_cast<int64_t>(run.monitor_alerts.size());
                  if (!run.telemetry_jsonl.empty()) {
                    uint64_t hash = 14695981039346656037ULL;
                    for (const char ch : run.telemetry_jsonl) {
                      hash ^= static_cast<unsigned char>(ch);
                      hash *= 1099511628211ULL;
                    }
                    out.summary.telemetry_digest = hash;
                  }
                  if (!run.controller_history.empty()) {
                    const obs::AdaptationRecord& last =
                        run.controller_history.back();
                    out.summary.final_r_lo = last.r_lo;
                    out.summary.final_r_hi = last.r_hi;
                    out.summary.final_w = last.w;
                    out.summary.final_mix = last.mix;
                    out.summary.final_hedge = last.hedge_enabled;
                    out.summary.final_hedge_quantile = last.hedge_quantile;
                    out.summary.final_retry_attempts =
                        last.retry_max_attempts;
                  }
                }
              });

  ControllerCampaignResult result;
  result.trials.reserve(trials);
  std::vector<double> read_pool;
  std::vector<double> write_pool;
  ChaosSummary& pooled = result.pooled;
  pooled.probe_offsets_ms = options.experiment.read_offsets_ms;
  pooled.probe_trials.assign(pooled.probe_offsets_ms.size(), 0);
  pooled.probe_consistent.assign(pooled.probe_offsets_ms.size(), 0);
  uint64_t digest = 14695981039346656037ULL;
  uint64_t telemetry_digest = 14695981039346656037ULL;
  for (TrialOutput& out : outputs) {  // trial order: deterministic merge
    const ChaosSummary& s = out.summary.chaos;
    pooled.reads_started += s.reads_started;
    pooled.reads_failed += s.reads_failed;
    pooled.writes_started += s.writes_started;
    pooled.writes_failed += s.writes_failed;
    pooled.hedged_reads_sent += s.hedged_reads_sent;
    pooled.hedged_reads_won += s.hedged_reads_won;
    pooled.duplicate_responses_suppressed += s.duplicate_responses_suppressed;
    pooled.duplicate_acks_suppressed += s.duplicate_acks_suppressed;
    pooled.client_read_retries += s.client_read_retries;
    pooled.client_write_retries += s.client_write_retries;
    pooled.client_deadline_misses += s.client_deadline_misses;
    pooled.consistency_downgrades += s.consistency_downgrades;
    pooled.monotonic_read_violations += s.monotonic_read_violations;
    pooled.messages_dropped += s.messages_dropped;
    pooled.messages_duplicated += s.messages_duplicated;
    pooled.fault_activations += s.fault_activations;
    for (size_t i = 0; i < pooled.probe_offsets_ms.size(); ++i) {
      pooled.probe_trials[i] += s.probe_trials[i];
      pooled.probe_consistent[i] += s.probe_consistent[i];
    }
    read_pool.insert(read_pool.end(), out.read_latencies.begin(),
                     out.read_latencies.end());
    write_pool.insert(write_pool.end(), out.write_latencies.begin(),
                      out.write_latencies.end());
    for (int bit = 0; bit < 64; bit += 8) {
      digest ^= (out.summary.decision_digest >> bit) & 0xFF;
      digest *= 1099511628211ULL;
    }
    for (int bit = 0; bit < 64; bit += 8) {
      telemetry_digest ^= (out.summary.telemetry_digest >> bit) & 0xFF;
      telemetry_digest *= 1099511628211ULL;
    }
    result.trials.push_back(std::move(out.summary));
  }
  result.pooled_digest = digest;
  result.pooled_telemetry_digest = telemetry_digest;
  std::sort(read_pool.begin(), read_pool.end());
  std::sort(write_pool.begin(), write_pool.end());
  if (!read_pool.empty()) {
    pooled.read_p50 = QuantileSorted(read_pool, 0.50);
    pooled.read_p99 = QuantileSorted(read_pool, 0.99);
    pooled.read_p999 = QuantileSorted(read_pool, 0.999);
    pooled.read_max = read_pool.back();
  }
  if (!write_pool.empty()) {
    pooled.write_p50 = QuantileSorted(write_pool, 0.50);
    pooled.write_p99 = QuantileSorted(write_pool, 0.99);
    pooled.write_p999 = QuantileSorted(write_pool, 0.999);
  }
  return result;
}

}  // namespace kvs
}  // namespace pbs
