#include "kvs/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/staleness_detector.h"
#include "kvs/client.h"
#include "kvs/failure.h"

namespace pbs {
namespace kvs {

double StalenessExperimentResult::ProbConsistentAt(double t) const {
  for (const auto& point : t_visibility) {
    if (point.t == t) return point.ProbConsistent();
  }
  assert(false && "offset was not probed");
  return 0.0;
}

namespace {

StalenessExperimentResult RunStalenessExperimentImpl(
    const StalenessExperimentOptions& options,
    const FailureSchedule* failures) {
  assert(options.writes >= 1);
  assert(!options.read_offsets_ms.empty());

  KvsConfig config = options.cluster;
  config.num_coordinators = 2;  // [0]: writer proxy, [1]: reader proxy
  config.seed = options.seed;
  Cluster cluster(config);
  cluster.StartAntiEntropy();
  if (config.sloppy_quorums) cluster.StartFailureDetector();
  if (failures != nullptr) failures->InstallOn(&cluster);

  const Key key = 0;
  ClientSession writer(&cluster, cluster.coordinator(0).id(), /*client_id=*/1);
  ClientSession reader(&cluster, cluster.coordinator(1).id(), /*client_id=*/2);

  StalenessExperimentResult result;
  ConsistencyByOffset by_offset;

  // Commit-time oracle for the Section 4.3 detector: commit_times[seq-1] is
  // the absolute commit time of version seq, or a negative sentinel while
  // uncommitted.
  std::vector<double> commit_times(options.writes + 1, -1.0);
  StalenessDetector detector([&commit_times](int64_t version) {
    if (version <= 0 ||
        version > static_cast<int64_t>(commit_times.size())) {
      return -1.0;
    }
    return commit_times[version - 1];
  });
  cluster.set_late_read_hook([&detector](const LateReadInfo& info) {
    ReadObservation observation;
    observation.returned_version = info.returned_sequence;
    observation.read_start_time = info.read_start_time;
    observation.late_response_versions = info.late_response_sequences;
    detector.Observe(observation);
  });

  // Schedule the write stream. Each commit launches the probe reads.
  for (int i = 1; i <= options.writes; ++i) {
    const double start = static_cast<double>(i) * options.write_spacing_ms;
    cluster.sim().At(start, [&, i]() {
      writer.Write(key, "v" + std::to_string(i),
                   [&, i](const WriteResult& write_result) {
        if (!write_result.ok) return;  // timed out; no probes for it
        commit_times[i - 1] = write_result.commit_time;
        result.write_latencies.push_back(write_result.latency_ms);
        for (double offset : options.read_offsets_ms) {
          cluster.sim().Schedule(offset, [&, i, offset]() {
            // Newest version committed by now; scan down from the newest
            // issued (normally terminates in one or two steps because only
            // the most recent write can still be in flight).
            const int64_t latest_committed = [&]() {
              for (int64_t v = cluster.LatestSequenceFor(key); v >= 1; --v) {
                if (commit_times[v - 1] >= 0.0 &&
                    commit_times[v - 1] <= cluster.sim().now()) {
                  return v;
                }
              }
              return static_cast<int64_t>(0);
            }();
            reader.Read(key, [&, i, offset, latest_committed](
                                 const ReadResult& read_result) {
              if (!read_result.ok) return;
              result.read_latencies.push_back(read_result.latency_ms);
              const int64_t sequence = read_result.value.has_value()
                                           ? read_result.value->sequence
                                           : 0;
              // Consistent for offset t of write i if the read saw version
              // i or anything newer.
              by_offset.Record(offset, sequence >= i);
              result.version_staleness.Record(
                  std::max<int64_t>(0, latest_committed - sequence));
            });
          });
        }
      });
    });
  }

  // Drain. Anti-entropy reschedules forever, so always bound the run: the
  // last write starts at writes * spacing; probes finish within the largest
  // offset + timeout.
  const double max_offset = *std::max_element(options.read_offsets_ms.begin(),
                                              options.read_offsets_ms.end());
  const double horizon = static_cast<double>(options.writes + 1) *
                             options.write_spacing_ms +
                         max_offset + 3.0 * config.request_timeout_ms;
  cluster.sim().RunUntil(horizon);

  result.t_visibility = by_offset.Points();
  result.detector_stale = detector.stale();
  result.detector_false_positives = detector.false_positives();
  result.detector_consistent = detector.consistent();
  result.final_metrics = cluster.metrics();
  result.network_messages = cluster.network().messages_sent();
  return result;
}

}  // namespace

StalenessExperimentResult RunStalenessExperiment(
    const StalenessExperimentOptions& options) {
  return RunStalenessExperimentImpl(options, nullptr);
}

StalenessExperimentResult RunStalenessExperimentWithFailures(
    const StalenessExperimentOptions& options,
    const FailureSchedule& failures) {
  return RunStalenessExperimentImpl(options, &failures);
}

}  // namespace kvs
}  // namespace pbs
