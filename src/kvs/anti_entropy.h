#ifndef PBS_KVS_ANTI_ENTROPY_H_
#define PBS_KVS_ANTI_ENTROPY_H_

#include "kvs/ring.h"
#include "sim/network.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

class Cluster;

/// One gossip synchronization round between replicas `a` and `b`: each side
/// ships to the other every version the peer is missing or holds stale
/// (the observable effect of a Merkle-tree exchange, Section 4.2 of the
/// paper). Values travel through the network with write-request delays and
/// apply via the normal last-writer-wins Put, so in-flight operations
/// interleave correctly. Crashed endpoints skip the round.
void SyncReplicaPair(Cluster* cluster, NodeId a, NodeId b, Rng& rng);

/// One tick of the periodic process: every live *current ring member* syncs
/// with one uniformly random other member, and only values whose current
/// preference list contains the receiver are shipped (per-shard scoping on
/// the elastic ring). Reschedules itself with the cluster's configured
/// interval (callers start it once via Cluster::StartAntiEntropy).
void RunAntiEntropyTick(Cluster* cluster, Rng* rng);

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_ANTI_ENTROPY_H_
