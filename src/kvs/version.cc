#include "kvs/version.h"

#include <algorithm>

namespace pbs {
namespace kvs {

namespace {

/// First entry with node >= node_id (entries are sorted by node).
template <typename Vec>
auto LowerBound(Vec& entries, int32_t node_id) {
  return std::lower_bound(entries.begin(), entries.end(), node_id,
                          [](const auto& entry, int32_t node) {
                            return entry.node < node;
                          });
}

}  // namespace

void VectorClock::Increment(int node_id) {
  auto it = LowerBound(entries_, node_id);
  if (it != entries_.end() && it->node == node_id) {
    ++it->count;
    return;
  }
  const size_t at = static_cast<size_t>(it - entries_.begin());
  entries_.emplace_back();
  std::move_backward(entries_.begin() + at, entries_.end() - 1,
                     entries_.end());
  entries_[at] = Entry{node_id, 1};
}

int64_t VectorClock::EntryFor(int node_id) const {
  const auto it = LowerBound(entries_, node_id);
  return it != entries_.end() && it->node == node_id ? it->count : 0;
}

CausalOrder VectorClock::Compare(const VectorClock& other) const {
  bool some_less = false;   // some component of *this < other
  bool some_greater = false;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() || b != other.entries_.end()) {
    int64_t va = 0;
    int64_t vb = 0;
    if (b == other.entries_.end() ||
        (a != entries_.end() && a->node < b->node)) {
      va = a->count;
      ++a;
    } else if (a == entries_.end() || b->node < a->node) {
      vb = b->count;
      ++b;
    } else {
      va = a->count;
      vb = b->count;
      ++a;
      ++b;
    }
    if (va < vb) some_less = true;
    if (va > vb) some_greater = true;
  }
  if (some_less && some_greater) return CausalOrder::kConcurrent;
  if (some_less) return CausalOrder::kBefore;
  if (some_greater) return CausalOrder::kAfter;
  return CausalOrder::kEqual;
}

VectorClock VectorClock::Merge(const VectorClock& a, const VectorClock& b) {
  // Sorted two-pointer merge keeping the pointwise maximum.
  VectorClock merged;
  merged.entries_.reserve(a.entries_.size() + b.entries_.size());
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() || ib != b.entries_.end()) {
    if (ib == b.entries_.end() ||
        (ia != a.entries_.end() && ia->node < ib->node)) {
      merged.entries_.push_back(*ia++);
    } else if (ia == a.entries_.end() || ib->node < ia->node) {
      merged.entries_.push_back(*ib++);
    } else {
      merged.entries_.push_back(Entry{ia->node, std::max(ia->count,
                                                         ib->count)});
      ++ia;
      ++ib;
    }
  }
  return merged;
}

std::string VectorClock::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Entry& entry : entries_) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(entry.node) + ":" + std::to_string(entry.count);
  }
  return out + "}";
}

}  // namespace kvs
}  // namespace pbs
