#include "kvs/version.h"

namespace pbs {
namespace kvs {

void VectorClock::Increment(int node_id) { ++entries_[node_id]; }

int64_t VectorClock::EntryFor(int node_id) const {
  const auto it = entries_.find(node_id);
  return it == entries_.end() ? 0 : it->second;
}

CausalOrder VectorClock::Compare(const VectorClock& other) const {
  bool some_less = false;   // some component of *this < other
  bool some_greater = false;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() || b != other.entries_.end()) {
    int64_t va = 0;
    int64_t vb = 0;
    if (b == other.entries_.end() ||
        (a != entries_.end() && a->first < b->first)) {
      va = a->second;
      ++a;
    } else if (a == entries_.end() || b->first < a->first) {
      vb = b->second;
      ++b;
    } else {
      va = a->second;
      vb = b->second;
      ++a;
      ++b;
    }
    if (va < vb) some_less = true;
    if (va > vb) some_greater = true;
  }
  if (some_less && some_greater) return CausalOrder::kConcurrent;
  if (some_less) return CausalOrder::kBefore;
  if (some_greater) return CausalOrder::kAfter;
  return CausalOrder::kEqual;
}

VectorClock VectorClock::Merge(const VectorClock& a, const VectorClock& b) {
  VectorClock merged = a;
  for (const auto& [node, count] : b.entries_) {
    auto& slot = merged.entries_[node];
    if (count > slot) slot = count;
  }
  return merged;
}

std::string VectorClock::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [node, count] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(node) + ":" + std::to_string(count);
  }
  return out + "}";
}

}  // namespace kvs
}  // namespace pbs
