#ifndef PBS_KVS_RATES_H_
#define PBS_KVS_RATES_H_

#include <cstddef>
#include <deque>

namespace pbs {
namespace kvs {

/// Sliding-window event-rate estimator. Section 3.2 of the paper predicts
/// monotonic-reads consistency from the global per-key write rate (gamma_gw)
/// and a client's per-key read rate (gamma_cr): "In practice, we may not
/// know these exact rates, but, by measuring their distribution, we can
/// calculate an expected value." This is that measurement: the rate over
/// the last `window_capacity` events, decaying toward zero when events
/// stop.
class RateEstimator {
 public:
  explicit RateEstimator(size_t window_capacity = 64);

  /// Records one event at virtual time `now` (ms, non-decreasing).
  void Record(double now);

  /// Estimated events per millisecond as of `now`: (k-1) events over the
  /// window span, where the span extends to `now` so the estimate decays
  /// when the stream goes quiet. 0 with fewer than two events.
  double EventsPerMs(double now) const;

  size_t count() const { return timestamps_.size(); }

 private:
  size_t capacity_;
  std::deque<double> timestamps_;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_RATES_H_
