#ifndef PBS_KVS_OPTIONS_H_
#define PBS_KVS_OPTIONS_H_

#include <string>

#include "core/backend.h"
#include "util/status.h"

namespace pbs {

/// Hedged reads (Cassandra's "rapid read protection"): if a read has not
/// assembled R responses within the hedging delay, the coordinator re-issues
/// it — to preference-list replicas it has not tried yet (kQuorumOnly
/// fan-out), or as a second attempt to the replicas that have not answered
/// (kAllN). Responses are deduplicated per replica, so R-counting and read
/// repair stay correct. The delay defaults to the `quantile` of the
/// request+response leg round trip (sum of the two legs' quantiles — an
/// upper bound, which only makes hedging slightly lazier); set delay_ms > 0
/// to pin it explicitly.
struct HedgeOptions {
  bool enabled = false;
  double quantile = 0.99;
  double delay_ms = 0.0;   // 0 = derive from `quantile`
  int max_per_read = 2;    // extra request legs per hedge wave

  Status Validate() const {
    if (quantile <= 0.0 || quantile >= 1.0) {
      return Status::InvalidArgument(
          "hedge.quantile must be in (0, 1), got " + std::to_string(quantile));
    }
    if (delay_ms < 0.0) {
      return Status::InvalidArgument("hedge.delay_ms must be >= 0");
    }
    if (max_per_read < 1) {
      return Status::InvalidArgument("hedge.max_per_read must be >= 1");
    }
    return Status::Ok();
  }
};

/// Client-side retry policy (consumed by ClientSession): failed operations
/// retry with capped exponential backoff and deterministic jitter while a
/// per-operation deadline budget lasts. `downgrade_reads` lets a retried
/// read accept fewer responses (R, R-1, ..., 1) — trading consistency for
/// availability under gray failures; such results carry
/// StatusCode::kDowngraded so staleness accounting stays honest.
struct RetryOptions {
  int max_attempts = 1;  // 1 = no retries
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 1000.0;
  double deadline_ms = 0.0;  // per-operation budget; 0 = unbounded
  bool downgrade_reads = false;

  Status Validate() const {
    if (max_attempts < 1) {
      return Status::InvalidArgument("retry.max_attempts must be >= 1");
    }
    if (backoff_base_ms < 0.0 || backoff_max_ms < 0.0) {
      return Status::InvalidArgument("retry backoff must be >= 0");
    }
    if (backoff_max_ms < backoff_base_ms) {
      return Status::InvalidArgument(
          "retry.backoff_max_ms must be >= retry.backoff_base_ms");
    }
    if (deadline_ms < 0.0) {
      return Status::InvalidArgument("retry.deadline_ms must be >= 0");
    }
    return Status::Ok();
  }
};

/// Elastic-membership rebalancing: when a storage node joins or leaves the
/// consistent-hash ring, background migration streams transfer the affected
/// key ranges from their old owners to their new owners in paced batches,
/// while coordinators fan operations out to the *union* of old- and
/// new-epoch replica sets so no acknowledged write becomes unreadable
/// mid-rebalance. Transfers travel as write-request legs; a dropped
/// transfer retries up to `max_transfer_retries` times before being left to
/// preference-list-scoped anti-entropy.
struct RebalanceOptions {
  /// Pause between consecutive migration batches from one source node.
  double stream_interval_ms = 25.0;

  /// Values shipped per batch per source node (paces migration load
  /// against foreground traffic).
  int max_keys_per_batch = 64;

  /// Re-sends for transfers the network dropped before handing the range
  /// over to anti-entropy repair.
  int max_transfer_retries = 3;

  /// Crash removed nodes once their data has fully drained (process
  /// decommission). Leave false to keep them around as cold spares.
  bool decommission_removed = true;

  Status Validate() const {
    if (stream_interval_ms <= 0.0) {
      return Status::InvalidArgument(
          "rebalance.stream_interval_ms must be > 0");
    }
    if (max_keys_per_batch < 1) {
      return Status::InvalidArgument(
          "rebalance.max_keys_per_batch must be >= 1");
    }
    if (max_transfer_retries < 0) {
      return Status::InvalidArgument(
          "rebalance.max_transfer_retries must be >= 0");
    }
    return Status::Ok();
  }
};

/// Closed-loop consistency controller (PCAP-style, see DESIGN.md §11): an
/// in-cluster control task that, every `epoch_ms`, re-fits the per-leg
/// latency distributions from observed samples, re-runs the WARS predictor
/// against the declared SlaTarget, and actuates at most one guarded knob
/// step (read-quorum mix probability, r_lo/r_hi/W lattice moves, hedge
/// quantile, retry budget) on the live cluster — with measurement-driven
/// rollback when the predictor's promise is not borne out.
struct ControllerOptions {
  bool enabled = false;

  /// Control epoch: sense + predict + actuate once per this many sim-ms.
  double epoch_ms = 2000.0;

  /// Key classes (key % num_key_classes) tracked separately for freshness
  /// accounting. Quorum actuation is currently cluster-wide; classes keep
  /// the measurement honest for skewed workloads.
  int num_key_classes = 1;

  /// Observed leg samples required before the controller trusts an
  /// empirical re-fit; below this it predicts from the configured legs.
  int min_leg_samples = 64;

  /// WARS Monte Carlo budget per candidate per epoch (controller
  /// evaluations run serially inside the cluster for determinism, so this
  /// is deliberately far below AdaptiveControllerOptions::trials_per_eval).
  int trials_per_eval = 1200;

  /// Hysteresis, as in AdaptiveControllerOptions: a challenger must beat
  /// the incumbent's predicted read p99 by this factor when both meet the
  /// SLA.
  double switch_improvement_factor = 0.9;

  /// Mix-probability step per epoch (McKenzie fractional quorums).
  double mix_step = 0.25;

  /// Hedge-quantile step per epoch when latency needs tightening.
  double hedge_quantile_step = 0.04;

  /// Commit-ring depth per key class for freshness measurement.
  int freshness_window = 8;

  /// Measured-vs-predicted disagreement tolerance before rolling back the
  /// previous step (fractional: 0.1 = measured may be 10% worse than the
  /// SLA bound the predictor promised).
  double rollback_tolerance = 0.1;

  /// Epochs to hold after a rollback before trying another step.
  int cooldown_epochs = 2;

  /// Engine behind the per-epoch quorum predictor (DESIGN.md §12).
  /// kMonteCarlo (default) keeps the historical WARS trial runs — decision
  /// streams and their digests are bitwise unchanged. kAnalytic evaluates
  /// candidates on one scenario grid built from the sensed legs each epoch
  /// (no RNG, so runs are trivially thread-count deterministic). kAuto
  /// spot-checks analytic-vs-MC on the incumbent each epoch and falls back
  /// when the sensed distributions break the independence assumptions.
  PredictorBackend backend = PredictorBackend::kMonteCarlo;

  /// Analytic grid shape (kAnalytic / kAuto): uniform bins over
  /// [0, grid_max_ms). Coarse by design — the controller compares
  /// candidates, so grid bias common to all of them cancels. With
  /// grid_auto_max (the default) grid_max_ms is only a cap: the grid
  /// shrinks to the sensed legs' tail scale (AnalyticGridOptions::auto_max)
  /// so fast fleets get proportionally finer resolution.
  double grid_max_ms = 2000.0;
  int grid_bins = 8000;
  bool grid_auto_max = true;

  Status Validate() const {
    if (epoch_ms <= 0.0) {
      return Status::InvalidArgument("controller.epoch_ms must be > 0");
    }
    if (num_key_classes < 1) {
      return Status::InvalidArgument(
          "controller.num_key_classes must be >= 1");
    }
    if (min_leg_samples < 2) {
      return Status::InvalidArgument(
          "controller.min_leg_samples must be >= 2");
    }
    if (trials_per_eval < 1) {
      return Status::InvalidArgument(
          "controller.trials_per_eval must be >= 1");
    }
    if (switch_improvement_factor <= 0.0 ||
        switch_improvement_factor > 1.0) {
      return Status::InvalidArgument(
          "controller.switch_improvement_factor must be in (0, 1]");
    }
    if (mix_step <= 0.0 || mix_step > 1.0) {
      return Status::InvalidArgument(
          "controller.mix_step must be in (0, 1]");
    }
    if (hedge_quantile_step <= 0.0 || hedge_quantile_step >= 1.0) {
      return Status::InvalidArgument(
          "controller.hedge_quantile_step must be in (0, 1)");
    }
    if (freshness_window < 1) {
      return Status::InvalidArgument(
          "controller.freshness_window must be >= 1");
    }
    if (rollback_tolerance < 0.0) {
      return Status::InvalidArgument(
          "controller.rollback_tolerance must be >= 0");
    }
    if (cooldown_epochs < 0) {
      return Status::InvalidArgument(
          "controller.cooldown_epochs must be >= 0");
    }
    const Status grid =
        AnalyticGridOptions{grid_max_ms, grid_bins, grid_auto_max}.Validate();
    if (!grid.ok()) {
      return Status::InvalidArgument("controller." + grid.message());
    }
    return Status::Ok();
  }
};

}  // namespace pbs

#endif  // PBS_KVS_OPTIONS_H_
