#ifndef PBS_KVS_OPTIONS_H_
#define PBS_KVS_OPTIONS_H_

#include <string>

#include "util/status.h"

namespace pbs {

/// Hedged reads (Cassandra's "rapid read protection"): if a read has not
/// assembled R responses within the hedging delay, the coordinator re-issues
/// it — to preference-list replicas it has not tried yet (kQuorumOnly
/// fan-out), or as a second attempt to the replicas that have not answered
/// (kAllN). Responses are deduplicated per replica, so R-counting and read
/// repair stay correct. The delay defaults to the `quantile` of the
/// request+response leg round trip (sum of the two legs' quantiles — an
/// upper bound, which only makes hedging slightly lazier); set delay_ms > 0
/// to pin it explicitly.
struct HedgeOptions {
  bool enabled = false;
  double quantile = 0.99;
  double delay_ms = 0.0;   // 0 = derive from `quantile`
  int max_per_read = 2;    // extra request legs per hedge wave

  Status Validate() const {
    if (quantile <= 0.0 || quantile >= 1.0) {
      return Status::InvalidArgument(
          "hedge.quantile must be in (0, 1), got " + std::to_string(quantile));
    }
    if (delay_ms < 0.0) {
      return Status::InvalidArgument("hedge.delay_ms must be >= 0");
    }
    if (max_per_read < 1) {
      return Status::InvalidArgument("hedge.max_per_read must be >= 1");
    }
    return Status::Ok();
  }
};

/// Client-side retry policy (consumed by ClientSession): failed operations
/// retry with capped exponential backoff and deterministic jitter while a
/// per-operation deadline budget lasts. `downgrade_reads` lets a retried
/// read accept fewer responses (R, R-1, ..., 1) — trading consistency for
/// availability under gray failures; such results carry
/// StatusCode::kDowngraded so staleness accounting stays honest.
struct RetryOptions {
  int max_attempts = 1;  // 1 = no retries
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 1000.0;
  double deadline_ms = 0.0;  // per-operation budget; 0 = unbounded
  bool downgrade_reads = false;

  Status Validate() const {
    if (max_attempts < 1) {
      return Status::InvalidArgument("retry.max_attempts must be >= 1");
    }
    if (backoff_base_ms < 0.0 || backoff_max_ms < 0.0) {
      return Status::InvalidArgument("retry backoff must be >= 0");
    }
    if (backoff_max_ms < backoff_base_ms) {
      return Status::InvalidArgument(
          "retry.backoff_max_ms must be >= retry.backoff_base_ms");
    }
    if (deadline_ms < 0.0) {
      return Status::InvalidArgument("retry.deadline_ms must be >= 0");
    }
    return Status::Ok();
  }
};

/// Elastic-membership rebalancing: when a storage node joins or leaves the
/// consistent-hash ring, background migration streams transfer the affected
/// key ranges from their old owners to their new owners in paced batches,
/// while coordinators fan operations out to the *union* of old- and
/// new-epoch replica sets so no acknowledged write becomes unreadable
/// mid-rebalance. Transfers travel as write-request legs; a dropped
/// transfer retries up to `max_transfer_retries` times before being left to
/// preference-list-scoped anti-entropy.
struct RebalanceOptions {
  /// Pause between consecutive migration batches from one source node.
  double stream_interval_ms = 25.0;

  /// Values shipped per batch per source node (paces migration load
  /// against foreground traffic).
  int max_keys_per_batch = 64;

  /// Re-sends for transfers the network dropped before handing the range
  /// over to anti-entropy repair.
  int max_transfer_retries = 3;

  /// Crash removed nodes once their data has fully drained (process
  /// decommission). Leave false to keep them around as cold spares.
  bool decommission_removed = true;

  Status Validate() const {
    if (stream_interval_ms <= 0.0) {
      return Status::InvalidArgument(
          "rebalance.stream_interval_ms must be > 0");
    }
    if (max_keys_per_batch < 1) {
      return Status::InvalidArgument(
          "rebalance.max_keys_per_batch must be >= 1");
    }
    if (max_transfer_retries < 0) {
      return Status::InvalidArgument(
          "rebalance.max_transfer_retries must be >= 0");
    }
    return Status::Ok();
  }
};

}  // namespace pbs

#endif  // PBS_KVS_OPTIONS_H_
