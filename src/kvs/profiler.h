#ifndef PBS_KVS_PROFILER_H_
#define PBS_KVS_PROFILER_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "dist/production.h"
#include "obs/registry.h"
#include "util/status.h"

namespace pbs {
namespace kvs {

/// Online WARS leg profiler (Section 5.5: "these latency distributions are
/// easily collected, but ... are not currently collected in production").
/// Attached to a Cluster, it records every one-way message delay on the
/// four quorum-operation legs; the recorded samples convert into empirical
/// WARS distributions that drive the predictor — the measure-online,
/// predict-offline loop the paper proposes for SLA tooling.
class LegProfiler {
 public:
  enum class Leg : int {
    kWriteRequest = 0,  // W: coordinator -> replica
    kWriteAck = 1,      // A: replica -> coordinator
    kReadRequest = 2,   // R: coordinator -> replica
    kReadResponse = 3,  // S: replica -> coordinator
  };
  static constexpr int kNumLegs = 4;

  /// `max_samples_per_leg` == 0 (the default) retains every sample — the
  /// historical behavior the controller's fits and their determinism pins
  /// rely on. A positive cap turns each leg into a ring of the newest
  /// samples: recording becomes an O(1) overwrite with bounded memory (the
  /// telemetry monitor's owned profiler uses this; its fits only ever read
  /// the newest few thousand samples anyway). samples() order is then
  /// rotated, which no consumer cares about (fits sort).
  explicit LegProfiler(size_t max_samples_per_leg = 0)
      : cap_(max_samples_per_leg) {}

  void Record(Leg leg, double delay_ms);

  /// Total samples *observed* on the leg (== stored when uncapped).
  size_t count(Leg leg) const { return observed_[static_cast<int>(leg)]; }
  const std::vector<double>& samples(Leg leg) const {
    return samples_[static_cast<int>(leg)];
  }

  /// Builds samplable WARS distributions (empirical) from the recordings.
  /// Fails if any leg has no samples yet.
  StatusOr<WarsDistributions> ToWarsDistributions(std::string name) const;

  /// Exports per-leg delay histograms ("legs/w_ms", "legs/a_ms",
  /// "legs/r_ms", "legs/s_ms") and sample counters into `out` — the
  /// cluster-measured side of the leg-by-leg WARS attribution in
  /// bench/sec52_validation.
  void ExportTo(obs::Registry* out) const;

 private:
  size_t cap_ = 0;  // 0: unbounded
  std::array<std::vector<double>, kNumLegs> samples_;
  std::array<size_t, kNumLegs> observed_{};  // totals, beyond the cap
  std::array<size_t, kNumLegs> write_{};     // ring cursor when capped
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_PROFILER_H_
