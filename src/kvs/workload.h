#ifndef PBS_KVS_WORKLOAD_H_
#define PBS_KVS_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kvs/client.h"
#include "kvs/metrics.h"
#include "kvs/ring.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

class Cluster;

/// Zipfian key popularity (YCSB-style): key ranks follow a Zipf law with
/// parameter theta in [0, 1); theta = 0 degenerates to uniform. The
/// "hot key" skew matters for staleness because the paper's per-key quorum
/// systems see per-key write rates (Section 3.2's gamma_gw).
class ZipfKeyGenerator {
 public:
  ZipfKeyGenerator(int num_keys, double theta);

  /// Next key in [0, num_keys); rank 0 is hottest.
  Key Next(Rng& rng) const;

  int num_keys() const { return num_keys_; }

 private:
  int num_keys_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// Open-loop workload: operations arrive as a Poisson process, each a read
/// or a write on a Zipf-distributed key, issued through a client session
/// pinned to a round-robin coordinator.
struct WorkloadOptions {
  int num_keys = 100;
  double zipf_theta = 0.0;       // 0 = uniform
  double read_fraction = 0.9;    // remainder are writes
  double mean_interarrival_ms = 1.0;
  int operations = 10000;
  int num_clients = 4;
  uint64_t seed = 1234;
};

/// Aggregate workload outcome, including empirical version staleness (how
/// many versions behind the latest issued sequence each read returned).
struct WorkloadResult {
  int64_t reads_completed = 0;
  int64_t writes_committed = 0;
  int64_t failed_operations = 0;
  int64_t monotonic_violations = 0;
  VersionStalenessHistogram staleness;
};

/// YCSB-style workload presets (Cooper et al.'s benchmark mixes, the
/// de-facto vocabulary for key-value store evaluation):
///   A — update heavy (50/50 read/write, zipfian),
///   B — read mostly (95/5, zipfian),
///   C — read only (100/0, zipfian),
///   D — read latest (95/5; approximated here by high skew on a small
///       hot set, since our generator has no insertion ordering).
enum class WorkloadPreset { kYcsbA, kYcsbB, kYcsbC, kYcsbD };

/// Builds options for a preset with the given operation count and mean
/// arrival spacing; all presets use 1000 keys and 8 clients.
WorkloadOptions MakePresetOptions(WorkloadPreset preset, int operations,
                                  double mean_interarrival_ms,
                                  uint64_t seed = 1234);

const char* PresetName(WorkloadPreset preset);

/// Drives a cluster with the configured workload. Schedules every arrival
/// up front, then the caller runs the simulator (RunToCompletion drives it
/// and gathers results).
class WorkloadDriver {
 public:
  WorkloadDriver(Cluster* cluster, const WorkloadOptions& options);

  /// Schedules all arrivals, runs the simulation until every scheduled
  /// operation completed or timed out, and returns the results.
  WorkloadResult RunToCompletion();

 private:
  void IssueOperation();

  Cluster* cluster_;
  WorkloadOptions options_;
  Rng rng_;
  ZipfKeyGenerator keys_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;
  WorkloadResult result_;
  std::unordered_map<Key, int64_t> latest_committed_;  // per-key watermark
  int issued_ = 0;
  int completed_ = 0;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_WORKLOAD_H_
