#include "kvs/rebalance_experiment.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "kvs/client.h"
#include "obs/exporters.h"
#include "util/stats.h"

namespace pbs {
namespace kvs {

Status RebalanceRunOptions::Validate() const {
  Status status = cluster.Validate();
  if (!status.ok()) return status;
  if (keys < 1) return Status::InvalidArgument("rebalance.keys must be >= 1");
  if (writes < 1) {
    return Status::InvalidArgument("rebalance.writes must be >= 1");
  }
  if (write_spacing_ms <= 0.0) {
    return Status::InvalidArgument("rebalance.write_spacing_ms must be > 0");
  }
  if (read_offset_ms < 0.0) {
    return Status::InvalidArgument("rebalance.read_offset_ms must be >= 0");
  }
  if (join_nodes < 0 || remove_nodes < 0) {
    return Status::InvalidArgument(
        "rebalance.join_nodes / remove_nodes must be >= 0");
  }
  if (churn_at_fraction <= 0.0 || churn_at_fraction >= 1.0) {
    return Status::InvalidArgument(
        "rebalance.churn_at_fraction must be in (0, 1)");
  }
  return Status::Ok();
}

namespace {

/// Phase of a probe read relative to the membership churn.
enum class Phase { kBefore, kDuring, kAfter };

void RecordProbe(RebalancePhaseStats* stats, int64_t expected,
                 int64_t observed) {
  ++stats->reads;
  if (observed < expected) {
    ++stats->stale_reads;
    stats->version_lag += expected - observed;
  }
}

/// |current \ previous| for two preference lists (n is small: linear scan).
int NewAssignments(const std::vector<int>& previous,
                   const std::vector<int>& current) {
  int moved = 0;
  for (int node : current) {
    if (std::find(previous.begin(), previous.end(), node) == previous.end()) {
      ++moved;
    }
  }
  return moved;
}

}  // namespace

RebalanceRunSummary RunRebalanceExperiment(const RebalanceRunOptions& options,
                                           obs::Registry* registry) {
  assert(options.Validate().ok());

  KvsConfig config = options.cluster;
  config.num_coordinators = 2;  // [0]: writer proxy, [1]: reader proxy
  config.seed = options.seed;
  Cluster cluster(config);
  cluster.StartAntiEntropy();

  ClientSession writer(&cluster, cluster.coordinator(0).id(), /*client_id=*/1);
  ClientSession reader(&cluster, cluster.coordinator(1).id(), /*client_id=*/2);

  RebalanceRunSummary summary;
  const int n = config.quorum.n;

  // Highest acknowledged sequence per key (index key-1); the freshness
  // oracle for probe reads and the zero-loss verification pass.
  std::vector<int64_t> max_acked(options.keys, 0);

  bool churn_fired = false;
  // Pre-churn ring snapshot (for the moved-fraction measurement) and the
  // membership sizes either side of the churn.
  std::vector<ConsistentHashRing> pre_ring;
  int members_before = cluster.num_storage_members();

  const auto phase_now = [&]() {
    if (!churn_fired) return Phase::kBefore;
    return cluster.rebalance_active() ? Phase::kDuring : Phase::kAfter;
  };
  const auto stats_for = [&](Phase phase) -> RebalancePhaseStats* {
    switch (phase) {
      case Phase::kBefore: return &summary.before;
      case Phase::kDuring: return &summary.during;
      default: return &summary.after;
    }
  };

  // The write stream: key i cycles round-robin, each ack launches one probe
  // read at the configured offset.
  for (int i = 1; i <= options.writes; ++i) {
    const double start = static_cast<double>(i) * options.write_spacing_ms;
    const Key key = static_cast<Key>(1 + (i - 1) % options.keys);
    cluster.sim().At(start, [&, i, key]() {
      writer.Write(key, "v" + std::to_string(i),
                   [&, key](const WriteResult& write_result) {
        if (!write_result.ok) {
          ++summary.writes_failed;
          return;
        }
        ++summary.writes_acked;
        max_acked[key - 1] = std::max(max_acked[key - 1],
                                      write_result.sequence);
        cluster.sim().Schedule(options.read_offset_ms, [&, key]() {
          // Freshness target and shard primary captured at probe start.
          const int64_t expected = max_acked[key - 1];
          const std::vector<NodeId> route = cluster.RoutingReplicasFor(key);
          const NodeId shard = route.empty() ? 0 : route.front();
          reader.Read(key, [&, key, expected, shard](
                               const ReadResult& read_result) {
            if (!read_result.ok) {
              ++summary.probe_reads_failed;
              return;
            }
            const int64_t observed = read_result.value.has_value()
                                         ? read_result.value->sequence
                                         : 0;
            RecordProbe(stats_for(phase_now()), expected, observed);
            RecordProbe(&summary.per_shard[shard], expected, observed);
          });
        });
      });
    });
  }

  // The churn point: joins and removals fire at the *same instant*, so their
  // rebalances overlap (union routing spans three placement epochs while
  // both drain). The offset keeps the churn instant off the op-issuance and
  // result-resolution grid (multiples of spacing/2 under point-mass legs):
  // a result resolving at the same instant as the membership change would
  // already carry the new ring version, and the clients would never issue a
  // request with a stale one.
  const int churn_index = std::clamp(
      static_cast<int>(options.writes * options.churn_at_fraction), 1,
      options.writes);
  const double churn_time =
      (static_cast<double>(churn_index) + 0.625) * options.write_spacing_ms;
  if (options.join_nodes > 0 || options.remove_nodes > 0) {
    cluster.sim().At(churn_time, [&]() {
      churn_fired = true;
      pre_ring.push_back(cluster.ring());
      members_before = cluster.num_storage_members();
      // Victims come from the pre-churn membership (highest ids first), so
      // removals always drain genuinely-owned data, never a just-joined
      // empty node.
      const std::vector<int> victims = cluster.StorageMembers();
      for (int j = 0; j < options.join_nodes; ++j) {
        const StatusOr<NodeId> added = cluster.AddStorageNode();
        assert(added.ok());
        (void)added;
      }
      for (int r = 0; r < options.remove_nodes; ++r) {
        if (r >= static_cast<int>(victims.size())) break;
        const Status removed = cluster.RemoveStorageNode(
            victims[victims.size() - 1 - static_cast<size_t>(r)]);
        assert(removed.ok());
        (void)removed;
      }
    });
  }

  // Drain the workload, then keep stepping until every rebalance settles
  // (migration streams pace themselves; bound the wait regardless).
  double horizon = static_cast<double>(options.writes + 1) *
                       options.write_spacing_ms +
                   options.read_offset_ms + 3.0 * config.request_timeout_ms;
  cluster.sim().RunUntil(horizon);
  const double drain_step =
      std::max(4.0 * config.rebalance.stream_interval_ms, 100.0);
  for (int step = 0; step < 1000 && cluster.rebalance_active(); ++step) {
    horizon += drain_step;
    cluster.sim().RunUntil(horizon);
  }

  // Zero-loss verification: read every written key back through the settled
  // ring; an acked write whose verification read comes back older (or not at
  // all) is lost.
  for (int k = 0; k < options.keys; ++k) {
    if (max_acked[k] == 0) continue;
    const Key key = static_cast<Key>(k + 1);
    cluster.sim().Schedule(static_cast<double>(k), [&, key]() {
      const int64_t expected = max_acked[key - 1];
      reader.Read(key, [&, expected](const ReadResult& read_result) {
        const int64_t observed =
            read_result.ok && read_result.value.has_value()
                ? read_result.value->sequence
                : 0;
        if (observed < expected) ++summary.lost_acked_writes;
      });
    });
  }
  cluster.sim().RunUntil(horizon + static_cast<double>(options.keys) +
                         3.0 * config.request_timeout_ms);

  // Membership / migration counters.
  const ClusterMetrics& m = cluster.metrics();
  summary.nodes_joined = m.nodes_joined;
  summary.nodes_removed = m.nodes_removed;
  summary.rebalances_started = m.rebalances_started;
  summary.rebalances_completed = m.rebalances_completed;
  summary.migration_transfers_sent = m.migration_transfers_sent;
  summary.migration_transfers_delivered = m.migration_transfers_delivered;
  summary.migration_transfers_dropped = m.migration_transfers_dropped;
  summary.stale_routes_forwarded = m.stale_routes_forwarded;
  summary.final_ring_version = cluster.ring_version();
  summary.final_storage_members = cluster.num_storage_members();

  // Key movement vs. the consistent-hashing minimum. moved_fraction counts
  // changed (key, replica-slot) assignments over the workload's key
  // population; the theoretical minimum for adding A into S1 members and
  // removing D from S0 is A/S1 + D/S0 of all assignments.
  if (!pre_ring.empty()) {
    int moved = 0;
    int compared = 0;
    for (int k = 0; k < options.keys; ++k) {
      const Key key = static_cast<Key>(k + 1);
      const StatusOr<std::vector<int>> old_list =
          pre_ring.front().PreferenceList(key, n);
      const StatusOr<std::vector<int>> new_list =
          cluster.ring().PreferenceList(key, n);
      if (!old_list.ok() || !new_list.ok()) continue;
      moved += NewAssignments(old_list.value(), new_list.value());
      compared += n;
    }
    if (compared > 0) {
      summary.moved_fraction =
          static_cast<double>(moved) / static_cast<double>(compared);
    }
    const int members_after = cluster.num_storage_members();
    summary.theoretical_min_fraction =
        static_cast<double>(options.join_nodes) /
            static_cast<double>(members_after) +
        static_cast<double>(options.remove_nodes) /
            static_cast<double>(members_before);
  }

  // Migration equivalence: the mutated ring must place every workload key
  // exactly like a fresh ring rebuilt from (seed, final membership) — the
  // deterministic-rebuild contract of the membership log.
  summary.placement_matches_fresh_ring = [&]() {
    const StatusOr<ConsistentHashRing> fresh =
        ConsistentHashRing::CreateFromMembers(cluster.StorageMembers(),
                                              config.vnodes_per_node,
                                              config.seed ^ 0x9E37);
    if (!fresh.ok()) return false;
    for (int k = 0; k < options.keys; ++k) {
      const Key key = static_cast<Key>(k + 1);
      const StatusOr<std::vector<int>> live =
          cluster.ring().PreferenceList(key, n);
      const StatusOr<std::vector<int>> rebuilt =
          fresh.value().PreferenceList(key, n);
      if (!live.ok() || !rebuilt.ok()) return false;
      if (live.value() != rebuilt.value()) return false;
    }
    return true;
  }();

  if (registry != nullptr) cluster.ExportMetrics(registry);
  return summary;
}

RebalanceCampaignResult RunRebalanceTrials(const RebalanceTrialOptions& options,
                                           const PbsExecutionOptions& exec) {
  assert(options.trials >= 1);
  const int64_t trials = options.trials;
  const int64_t num_chunks = NumChunks(trials, exec);
  std::vector<Rng> streams = MakeJumpStreams(Rng(options.seed), num_chunks);

  struct TrialOutput {
    RebalanceRunSummary summary;
    obs::Registry registry;
  };
  std::vector<TrialOutput> outputs(trials);

  ParallelFor(trials, exec,
              [&](int64_t chunk_index, int64_t begin, int64_t end) {
                Rng& stream = streams[chunk_index];
                for (int64_t t = begin; t < end; ++t) {
                  // One draw per trial from the chunk's sub-stream: the
                  // trial's experiment seed. Fixed consumption keeps the
                  // campaign bitwise identical at any thread count.
                  const uint64_t trial_seed = stream.Next();
                  RebalanceRunOptions run = options.run;
                  run.seed = trial_seed;
                  TrialOutput& out = outputs[t];
                  out.summary = RunRebalanceExperiment(run, &out.registry);
                }
              });

  RebalanceCampaignResult result;
  result.trials.reserve(trials);
  obs::Registry campaign_registry;
  for (TrialOutput& out : outputs) {  // trial order: deterministic merge
    const RebalanceRunSummary& s = out.summary;
    result.before.reads += s.before.reads;
    result.before.stale_reads += s.before.stale_reads;
    result.before.version_lag += s.before.version_lag;
    result.during.reads += s.during.reads;
    result.during.stale_reads += s.during.stale_reads;
    result.during.version_lag += s.during.version_lag;
    result.after.reads += s.after.reads;
    result.after.stale_reads += s.after.stale_reads;
    result.after.version_lag += s.after.version_lag;
    result.lost_acked_writes += s.lost_acked_writes;
    campaign_registry.Merge(out.registry);
    result.trials.push_back(std::move(out.summary));
  }
  result.metrics_jsonl = obs::MetricsJsonl(campaign_registry);
  return result;
}

}  // namespace kvs
}  // namespace pbs
