#include "kvs/metrics.h"

#include <algorithm>

namespace pbs {
namespace kvs {

double LatencyRecorder::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return QuantileSorted(sorted, q);
}

void ConsistencyByOffset::Record(double t, bool consistent) {
  Point& point = by_offset_[t];
  point.t = t;
  ++point.trials;
  if (consistent) ++point.consistent;
  ++total_trials_;
}

std::vector<ConsistencyByOffset::Point> ConsistencyByOffset::Points() const {
  std::vector<Point> points;
  points.reserve(by_offset_.size());
  for (const auto& [t, point] : by_offset_) points.push_back(point);
  return points;
}

void VersionStalenessHistogram::Record(int64_t versions_stale) {
  ++counts_[versions_stale];
  ++total_;
}

double VersionStalenessHistogram::ProbStalerThan(int64_t k) const {
  if (total_ == 0) return 0.0;
  int64_t staler = 0;
  for (const auto& [staleness, count] : counts_) {
    if (staleness >= k) staler += count;
  }
  return static_cast<double>(staler) / static_cast<double>(total_);
}

}  // namespace kvs
}  // namespace pbs
