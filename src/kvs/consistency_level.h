#ifndef PBS_KVS_CONSISTENCY_LEVEL_H_
#define PBS_KVS_CONSISTENCY_LEVEL_H_

#include <string>

#include "core/quorum_config.h"
#include "util/status.h"

namespace pbs {
namespace kvs {

/// Cassandra-style per-operation consistency levels (Section 2.3 of the
/// paper surveys these: "a majority of users do writes at consistency level
/// [W=1]"). Each level resolves to a response count given the replication
/// factor N.
enum class ConsistencyLevel {
  kOne,     // 1 response
  kTwo,     // 2 responses
  kThree,   // 3 responses
  kQuorum,  // floor(N/2) + 1 responses
  kAll,     // N responses
};

/// Number of replica responses the level requires at replication factor n.
/// Fails when the level demands more replicas than exist (e.g. THREE at
/// N=2).
StatusOr<int> ResponsesFor(ConsistencyLevel level, int n);

/// Builds the quorum configuration for (read level, write level) at
/// replication factor n — the bridge from Cassandra-style settings to every
/// PBS predictor in this library.
StatusOr<QuorumConfig> MakeQuorumConfig(int n, ConsistencyLevel read_level,
                                        ConsistencyLevel write_level);

std::string ToString(ConsistencyLevel level);

/// True when the (read, write) level pair guarantees strict quorum
/// intersection at replication factor n (e.g. QUORUM/QUORUM, ONE/ALL).
bool IsStrictCombination(int n, ConsistencyLevel read_level,
                         ConsistencyLevel write_level);

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_CONSISTENCY_LEVEL_H_
