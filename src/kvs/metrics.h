#ifndef PBS_KVS_METRICS_H_
#define PBS_KVS_METRICS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/latency.h"
#include "sim/network.h"
#include "util/stats.h"

namespace pbs {
namespace kvs {

/// Collects raw operation latencies and converts them to a LatencyProfile.
class LatencyRecorder {
 public:
  void Record(double latency_ms) { samples_.push_back(latency_ms); }
  size_t count() const { return samples_.size(); }

  /// Pre-sizes the sample buffer; benchmarks and allocation-audit tests use
  /// this so steady-state Record calls never grow the vector.
  void Reserve(size_t n) { samples_.reserve(n); }
  const std::vector<double>& samples() const { return samples_; }

  /// Sorted percentile view; requires at least one sample.
  LatencyProfile ToProfile() const { return LatencyProfile(samples_); }

  /// Interpolated (type-7) quantile of the recorded samples, delegating to
  /// util/stats.h::QuantileSorted — the one quantile definition this repo
  /// standardizes on, so bench CSVs, metrics exports and LatencyProfile
  /// percentiles cannot disagree (the deliberate exception is the
  /// nearest-rank CeilProbabilityRank inside core/tvisibility, which needs
  /// an achieved-probability guarantee, not an interpolated estimate).
  /// Empty-safe: returns 0 with no samples instead of asserting.
  double Quantile(double q) const;

 private:
  std::vector<double> samples_;
};

/// Empirical t-visibility: (offset t, consistent?) observations grouped by
/// the probed offset. The Section 5.2 harness reads at a fixed grid of
/// offsets after each write commit, so grouping by exact offset is lossless.
class ConsistencyByOffset {
 public:
  struct Point {
    double t = 0.0;
    int64_t trials = 0;
    int64_t consistent = 0;

    double ProbConsistent() const {
      return trials == 0
                 ? 1.0
                 : static_cast<double>(consistent) /
                       static_cast<double>(trials);
    }
  };

  void Record(double t, bool consistent);

  /// Points sorted by t.
  std::vector<Point> Points() const;

  int64_t total_trials() const { return total_trials_; }

 private:
  std::map<double, Point> by_offset_;
  int64_t total_trials_ = 0;
};

/// Histogram over "how many versions stale was this read" (0 = fresh).
class VersionStalenessHistogram {
 public:
  void Record(int64_t versions_stale);

  int64_t total() const { return total_; }
  /// P(staleness >= k).
  double ProbStalerThan(int64_t k) const;
  /// Observed staleness counts, sparse (staleness -> count).
  const std::map<int64_t, int64_t>& counts() const { return counts_; }

 private:
  std::map<int64_t, int64_t> counts_;
  int64_t total_ = 0;
};

/// Per-shard operation counters, keyed by the shard's primary owner (the
/// first node of the key's current-ring preference list). Shards are the
/// unit the elastic cluster measures PBS at: during a rebalance the set of
/// primaries changes, and these counters attribute traffic — and staleness,
/// via the audit path — to the shard that served it.
struct ShardMetrics {
  int64_t reads = 0;               // coordinated reads routed to this shard
  int64_t writes = 0;              // coordinated writes routed to this shard
  int64_t migration_keys_received = 0;  // values applied from migration
  LatencyRecorder read_latency;
  LatencyRecorder write_latency;
};

/// Cluster-wide operation counters and latency recorders.
struct ClusterMetrics {
  LatencyRecorder read_latency;
  LatencyRecorder write_latency;
  int64_t reads_started = 0;
  int64_t reads_failed = 0;
  int64_t writes_started = 0;
  int64_t writes_failed = 0;
  int64_t read_repairs_sent = 0;
  int64_t hinted_handoffs_sent = 0;
  int64_t sloppy_substitutions = 0;
  int64_t hints_stored = 0;
  int64_t hints_delivered = 0;
  int64_t anti_entropy_rounds = 0;
  int64_t anti_entropy_values_shipped = 0;
  int64_t monotonic_read_violations = 0;
  int64_t session_reads = 0;

  // Hedged reads (rapid read protection).
  int64_t hedged_reads_sent = 0;  // hedge request legs dispatched
  int64_t hedged_reads_won = 0;   // reads completed by a hedge-only replica

  // Response deduplication (duplicate delivery and hedge re-sends must not
  // double-count one replica toward R / W).
  int64_t duplicate_responses_suppressed = 0;
  int64_t duplicate_acks_suppressed = 0;

  // Client-side retry with backoff under a deadline budget.
  int64_t client_read_retries = 0;
  int64_t client_write_retries = 0;
  int64_t client_deadline_misses = 0;
  int64_t consistency_downgrades = 0;  // reads retried at a reduced R

  // Gray-fault injection: activations per fault kind (FaultSchedule).
  int64_t fault_slow_node_activations = 0;
  int64_t fault_lossy_link_activations = 0;
  int64_t fault_flapping_activations = 0;
  int64_t fault_asymmetric_partition_activations = 0;

  // Elastic membership and data migration (ring rebalances).
  int64_t nodes_joined = 0;
  int64_t nodes_removed = 0;
  int64_t rebalances_started = 0;
  int64_t rebalances_completed = 0;
  int64_t migration_keys_examined = 0;   // (key, source) pairs scanned
  int64_t migration_transfers_sent = 0;  // transfer messages dispatched
  int64_t migration_transfers_delivered = 0;
  int64_t migration_transfers_dropped = 0;  // gave up after retries
  int64_t migration_transfer_retries = 0;
  int64_t stale_routes_forwarded = 0;  // ops carrying an old ring version

  // Closed-loop consistency controller (ROADMAP item 3).
  int64_t controller_epochs = 0;     // control ticks executed
  int64_t controller_steps = 0;      // knob changes actuated
  int64_t controller_rollbacks = 0;  // steps reverted on measured violation
  int64_t controller_holds = 0;      // epochs that kept the incumbent
  int64_t reads_fresh_measured = 0;  // reads within the SLA staleness bound
  int64_t reads_stale_measured = 0;  // reads beyond it
  int64_t mixed_reads_lo = 0;        // fractional-mix reads drawn at r_lo
  int64_t mixed_reads_hi = 0;        // fractional-mix reads drawn at r_hi

  // Per-shard attribution, keyed by primary owner node id (ordered map so
  // exports and merges are deterministic).
  std::map<NodeId, ShardMetrics> shards;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_METRICS_H_
