#ifndef PBS_KVS_CONTROLLER_H_
#define PBS_KVS_CONTROLLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "kvs/profiler.h"
#include "obs/exporters.h"
#include "sim/network.h"

namespace pbs {
namespace kvs {

class Cluster;

/// Closed-loop consistency controller (ROADMAP item 3; DESIGN.md §11): a
/// PCAP-style control task running *inside* the simulated cluster that
/// steers the live read/write quorum — including McKenzie-style fractional
/// mixing — plus the hedge and retry budgets toward the declared
/// KvsConfig::sla, under drifting latency and gray failures.
///
/// Each control epoch:
///   1. SENSE   — re-fit the four WARS leg distributions from the delays
///                the cluster's LegProfiler observed so far (dist/empirical
///                fits; the configured legs are the prior until
///                min_leg_samples per leg have accrued), and difference the
///                measured freshness counters and read-latency recorder
///                over the epoch window.
///   2. ROLLBACK— if the previous epoch actuated a step whose predictor
///                said "feasible" but the *measured* window violates the
///                SLA beyond rollback_tolerance, revert the step and hold
///                for cooldown_epochs.
///   3. PREDICT — re-run the WARS engine (core/adaptive's
///                EvaluateMixedQuorum) on the incumbent knob state and its
///                one-knob-step neighbors: mix +/- mix_step, r_lo +/- 1,
///                r_hi +/- 1, w +/- 1. Candidates that meet both SLA
///                clauses are preferred; ties break toward the lowest
///                predicted read p99, and a feasible incumbent is only
///                abandoned for a challenger that beats it by
///                switch_improvement_factor (hysteresis, as in
///                AdaptiveConfigController).
///   4. ACTUATE — apply at most ONE guarded knob change through the
///                cluster's Update* APIs. Every candidate differs from the
///                incumbent in exactly one knob, so no single decision can
///                widen the staleness exposure and the latency budget at
///                the same time. When the measured read p99 is over budget
///                the latency-relief ladder (enable hedging, then tighten
///                its quantile; grant a retry budget after failed reads)
///                takes the slot instead of a quorum move.
///
/// Determinism: the controller runs on the single-threaded simulator, its
/// WARS evaluations run with exec.threads = 1, and it consumes no RNG of
/// its own (the per-read mix draw comes from the cluster's dedicated
/// salted stream, consumed only while mixing is active) — so campaign
/// runs embedding a controller stay bitwise identical at any thread
/// count, and controller-off runs reproduce feature-absent draw
/// sequences. See DESIGN.md §11 for the full contract.
class ConsistencyController {
 public:
  /// One control decision, appended per epoch (kept for export/digesting).
  struct Decision {
    int64_t id = 0;          // monotonically increasing, 1-based
    int64_t epoch = 0;       // control tick index, 1-based
    double time_ms = 0.0;    // sim time the decision was taken
    // What happened: "hold" (keep incumbent), "cooldown", a knob step
    // ("mix+", "mix-", "r_lo+", "r_lo-", "r_hi+", "r_hi-", "w+", "w-",
    // "hedge_on", "hedge_tighten", "retry+"), or "rollback:<knob>".
    std::string action;
    // Knob state after the decision.
    MixedQuorum quorum;
    bool hedge_enabled = false;
    double hedge_quantile = 0.0;
    int retry_attempts = 1;
    double retry_deadline_ms = 0.0;
    // Predictor outputs for the chosen state (NaN-free; 0 when the epoch
    // skipped prediction, e.g. cooldown holds).
    double predicted_fresh = 0.0;
    double predicted_p99_ms = 0.0;
    bool predicted_feasible = false;
    // Measured over the preceding epoch window (-1 fresh fraction when the
    // window had no measured reads).
    double measured_fresh = -1.0;
    double measured_p99_ms = 0.0;
    int64_t measured_reads = 0;

    /// One arm of the per-epoch candidate audit (explainability): the
    /// incumbent plus every one-knob neighbor the predictor evaluated, with
    /// its predicted clauses and whether it was the arm actuated. Empty for
    /// epochs that skipped prediction (cooldown and relief-ladder steps).
    struct CandidateOutcome {
      std::string action;  // "incumbent" or the knob-step name
      MixedQuorum quorum;
      double predicted_fresh = 0.0;
      double predicted_p99_ms = 0.0;
      bool predicted_feasible = false;
      bool chosen = false;

      friend bool operator==(const CandidateOutcome&,
                             const CandidateOutcome&) = default;
    };
    std::vector<CandidateOutcome> candidates;

    // Measured outcome of the chosen arm over the FOLLOWING epoch window,
    // backfilled by the next Tick (-1 fresh fraction until then, or when no
    // reads landed). Candidates and outcomes are audit-only: DecisionDigest
    // deliberately excludes them so existing determinism pins stay valid.
    double outcome_fresh = -1.0;
    double outcome_p99_ms = 0.0;
    int64_t outcome_reads = 0;

    friend bool operator==(const Decision&, const Decision&) = default;
  };

  /// Reads sla/controller policy from cluster->config(). The cluster must
  /// outlive the controller. If no LegProfiler is attached yet the
  /// controller attaches (and owns) one so sensing has a source.
  explicit ConsistencyController(Cluster* cluster);

  /// Schedules the periodic control tick (idempotent). The task
  /// reschedules itself forever; bound the run with RunUntil.
  void Start();

  const std::vector<Decision>& decisions() const { return decisions_; }

  /// Configuration history for the staleness-audit join: one record per
  /// actuation (plus the initial state at time 0), sorted by
  /// valid_from_ms.
  const std::vector<obs::AdaptationRecord>& config_history() const {
    return config_history_;
  }

  /// FNV-1a digest over the full decision stream (ids, actions, knob
  /// states, predictor and measurement scalars bit-exactly). Two runs with
  /// equal digests made identical decisions at identical times.
  uint64_t DecisionDigest() const;

 private:
  struct KnobState {
    MixedQuorum quorum;
    bool hedge_enabled = false;
    double hedge_quantile = 0.99;
    int retry_attempts = 1;
    double retry_deadline_ms = 0.0;
  };
  struct Measurement {
    int64_t reads = 0;
    double fresh_fraction = -1.0;  // -1: no measured reads in the window
    double read_p99_ms = 0.0;
    int64_t failed_reads = 0;
  };

  void Tick();
  Measurement MeasureWindow();
  /// Leg re-fit: empirical WARS model from profiler samples, or the
  /// configured legs while any leg is starved.
  ReplicaLatencyModelPtr SenseModel() const;
  /// Builds the epoch's evaluation engine over the sensed model, probing
  /// `current` (controller.backend selects MC / analytic / auto; under the
  /// default kMonteCarlo this is a plain pass-through to
  /// EvaluateMixedQuorum, keeping decision streams bitwise unchanged).
  MixedQuorumPredictor MakeEpochPredictor(const ReplicaLatencyModelPtr& model,
                                          const MixedQuorum& current) const;
  MixedQuorumEvaluation Predict(const MixedQuorum& quorum,
                                const MixedQuorumPredictor& predictor,
                                uint64_t salt) const;
  /// Applies `next` to the live cluster (only the knobs that differ).
  void Actuate(const KnobState& next);
  void AppendHistory(const Decision& decision);
  KnobState CurrentKnobs() const;

  Cluster* cluster_;
  SlaTarget sla_;
  LegProfiler owned_profiler_;
  bool started_ = false;
  int64_t epoch_ = 0;
  int cooldown_ = 0;

  // Rollback arming: the knob state before the last actuated step and the
  // predictor's promise for the step, checked against the next window.
  bool step_armed_ = false;
  KnobState pre_step_;
  std::string last_step_action_;

  // Epoch-window baselines (counter snapshots at the last tick).
  size_t read_latency_seen_ = 0;
  int64_t fresh_seen_ = 0;
  int64_t stale_seen_ = 0;
  int64_t reads_failed_seen_ = 0;

  std::vector<Decision> decisions_;
  std::vector<obs::AdaptationRecord> config_history_;
};

/// Serializes a decision stream as JSONL "decision" typed lines, each with
/// its inline "candidates" array — appendable after the time-series and
/// monitor exports so one telemetry artifact carries the controller's
/// per-epoch candidate audit (consumed by obs::RenderDashboardHtml and
/// tools/pbs_report.py). Byte-deterministic.
std::string DecisionsJsonl(
    const std::vector<ConsistencyController::Decision>& decisions);

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_CONTROLLER_H_
