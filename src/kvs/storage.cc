#include "kvs/storage.h"

namespace pbs {
namespace kvs {

bool ReplicaStorage::Put(Key key, const VersionedValue& incoming) {
  auto [it, inserted] = data_.try_emplace(key, incoming);
  if (inserted) {
    ++writes_applied_;
    return true;
  }
  if (incoming.NewerThan(it->second)) {
    // Preserve causal metadata across supersession (commutative merge).
    VectorClock merged = VectorClock::Merge(it->second.clock, incoming.clock);
    it->second = incoming;
    it->second.clock = std::move(merged);
    ++writes_applied_;
    return true;
  }
  return false;
}

std::optional<VersionedValue> ReplicaStorage::Get(Key key) const {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

const VersionedValue* ReplicaStorage::Find(Key key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? nullptr : &it->second;
}

void ReplicaStorage::ForEach(
    const std::function<void(Key, const VersionedValue&)>& fn) const {
  for (const auto& [key, value] : data_) fn(key, value);
}

}  // namespace kvs
}  // namespace pbs
