#ifndef PBS_KVS_CLUSTER_H_
#define PBS_KVS_CLUSTER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/adaptive.h"
#include "core/quorum_config.h"
#include "core/wars.h"
#include "dist/production.h"
#include "kvs/failure_detector.h"
#include "kvs/metrics.h"
#include "kvs/node.h"
#include "kvs/options.h"
#include "kvs/profiler.h"
#include "kvs/rates.h"
#include "kvs/ring.h"
#include "kvs/version_arena.h"
#include "obs/exporters.h"
#include "obs/monitor.h"
#include "obs/options.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbs {
namespace kvs {

class Migrator;

/// Configuration of a simulated Dynamo-style cluster.
struct KvsConfig {
  /// Replication parameters: N storage replicas, first-W-acks commit,
  /// first-R-responses read.
  QuorumConfig quorum;

  /// One-way message delay distributions per WARS leg (w: write request,
  /// a: write ack, r: read request, s: read response).
  WarsDistributions legs;

  /// Dedicated non-storage coordinator nodes (Dynamo-style proxies). Client
  /// operations enter through these; ids follow the replica ids.
  int num_coordinators = 1;

  /// Read repair (Section 4.2): after a read's late responses arrive, the
  /// coordinator asynchronously rewrites stale replicas with the freshest
  /// version it saw.
  bool read_repair = false;

  /// Gossip anti-entropy (Merkle-exchange stand-in): every interval each
  /// replica syncs with one random peer. 0 disables.
  double anti_entropy_interval_ms = 0.0;

  /// Hinted handoff: a write coordinator that misses acknowledgments by the
  /// timeout keeps re-sending the write to the unacknowledged replicas.
  /// Re-sends back off exponentially from `backoff_base` doubling up to
  /// `backoff_max`, each delay scaled by a deterministic jitter factor in
  /// [0.5, 1) drawn from the coordinator's seeded stream — so a fleet of
  /// stalled writes does not re-synchronize into retry storms, and runs
  /// stay reproducible.
  bool hinted_handoff = false;
  double hinted_handoff_backoff_base_ms = 50.0;
  double hinted_handoff_backoff_max_ms = 2000.0;
  int hinted_handoff_max_retries = 20;

  /// Read fan-out policy (Section 2.3): Dynamo sends reads to all N and
  /// keeps the first R responses; Voldemort (kQuorumOnly) sends to a random
  /// R-subset and waits for all of it — fewer messages, no late responses
  /// (so no read repair or staleness detection), higher read latency.
  ReadFanout read_fanout = ReadFanout::kAllN;

  /// Coordinator-side operation timeout.
  double request_timeout_ms = 10000.0;

  /// Hedged reads (rapid read protection); see pbs::HedgeOptions.
  HedgeOptions hedge;

  /// Client-side retry policy (consumed by ClientSession); see
  /// pbs::RetryOptions.
  RetryOptions retry;

  /// Deprecated alias for the pre-Config nested policy name; new code
  /// should spell pbs::RetryOptions.
  using ClientRetryPolicy = RetryOptions;

  /// Observability: causal op tracing policy (see obs/options.h). RNG
  /// neutral — enabling tracing never changes a seeded run's results.
  ObsOptions obs;

  /// Elastic-membership rebalancing policy (migration pacing, transfer
  /// retries, decommission-on-drain); see pbs::RebalanceOptions.
  RebalanceOptions rebalance;

  /// Virtual tokens per node on the consistent-hash ring.
  int vnodes_per_node = 16;

  /// Storage nodes in the cluster; each key's home replica set is the
  /// first N of its ring preference list. 0 means exactly N nodes (the
  /// minimal deployment used by most experiments). Must be >= quorum.n.
  int num_storage_nodes = 0;

  /// Dynamo-style sloppy quorums: when the heartbeat detector suspects a
  /// home replica, the write coordinator substitutes the next healthy node
  /// from the extended preference list; the substitute holds the write as a
  /// *hint* and forwards it to the home replica once it looks alive again.
  /// Requires StartFailureDetector() and extra storage nodes to substitute
  /// from (num_storage_nodes > quorum.n, or sloppy_extra falls back to
  /// whatever exists).
  bool sloppy_quorums = false;
  int sloppy_extra = 2;            // substitutes considered beyond N
  double hint_delivery_interval_ms = 100.0;

  /// Failure detection (used by sloppy quorums; also available standalone
  /// via Cluster::StartFailureDetector). kHeartbeat suspects after a fixed
  /// silence; kPhiAccrual accrues suspicion from the empirical pong
  /// inter-arrival distribution (threshold/window/floor below).
  enum class FailureDetectorKind { kHeartbeat, kPhiAccrual };
  FailureDetectorKind failure_detector = FailureDetectorKind::kHeartbeat;
  double heartbeat_interval_ms = 100.0;
  double suspect_timeout_ms = 400.0;   // kHeartbeat
  double phi_threshold = 8.0;          // kPhiAccrual: suspect at φ >= this
  int phi_window_size = 128;
  double phi_min_std_ms = 2.0;
  // kPhiAccrual silence backstop in heartbeat intervals (<= 0 disables);
  // bounds detection of nodes silent from t = 0 or after a poisoned window.
  double phi_max_silence_intervals = 25.0;

  /// Declared consistency/latency SLA the closed-loop controller steers
  /// toward (pbs::SlaTarget; disabled by default). Freshness measurement
  /// and the controller both key off this.
  SlaTarget sla;

  /// Closed-loop consistency controller policy (pbs::ControllerOptions;
  /// disabled by default). When enabled the experiment harness runs a
  /// kvs::ConsistencyController inside the cluster.
  ControllerOptions controller;

  uint64_t seed = 42;

  /// Full structural validation, Status-returning (the pbs::Config path to
  /// constructing clusters without tripping the constructor asserts):
  /// quorum shape, leg distributions present, node counts, hedge/retry/obs
  /// sub-options.
  Status Validate() const;
};

/// A complete simulated cluster: replicas + coordinators + network + ring +
/// metrics, driven by one discrete-event Simulator. This is the stand-in for
/// the modified Cassandra deployment of Section 5.2.
class Cluster {
 public:
  /// Lifecycle of a storage node on the elastic ring. Joining/leaving nodes
  /// are ring members/ex-members with a rebalance still draining; kActive /
  /// kRemoved are the settled states.
  enum class NodeState { kJoining, kActive, kLeaving, kRemoved };

  /// One entry of the membership log: (virtual time, node, new state, ring
  /// version after the change). Replaying the log's member set through
  /// ConsistentHashRing::CreateFromMembers rebuilds placement bit-exactly.
  struct MembershipEvent {
    double time_ms = 0.0;
    NodeId node = 0;
    NodeState state = NodeState::kActive;
    uint64_t ring_version = 0;
  };
  using MembershipHook = std::function<void(const MembershipEvent&)>;

  explicit Cluster(const KvsConfig& config);
  ~Cluster();

  // Not movable: nodes hold back-pointers.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const KvsConfig& config() const { return config_; }
  Simulator& sim() { return sim_; }
  Network& network() { return *network_; }
  ClusterMetrics& metrics() { return metrics_; }
  const ClusterMetrics& metrics() const { return metrics_; }

  /// Storage nodes the cluster *started* with (>= quorum.n). Fixed for the
  /// cluster's lifetime: node ids [0, num_replicas()) are the initial
  /// replicas and coordinator ids follow them, so this anchors the id
  /// layout even after elastic joins/removals. For the current ring
  /// membership use StorageMembers().
  int num_replicas() const { return num_storage_nodes_; }
  int num_coordinators() const { return config_.num_coordinators; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  Node& node(NodeId id) { return *nodes_[id]; }
  /// i-th storage replica (i in [0, N)).
  Node& replica(int i) { return *nodes_[i]; }
  /// i-th dedicated coordinator (i in [0, num_coordinators())).
  Node& coordinator(int i) { return *nodes_[num_replicas() + i]; }

  /// The key's N-replica home preference list from the consistent-hash
  /// ring.
  std::vector<NodeId> ReplicasFor(Key key) const;

  /// The extended preference list (home replicas + up to sloppy_extra
  /// substitutes), used by sloppy-quorum writes.
  std::vector<NodeId> ExtendedReplicasFor(Key key) const;

  /// Replica set coordinators fan out to: the current-ring preference list
  /// (always the prefix, so `[0]` is the key's primary/shard owner),
  /// extended with old-epoch replicas while any rebalance is draining.
  /// Routing through the *union* of epochs is what keeps every acknowledged
  /// write readable mid-rebalance: a write lands on enough of both replica
  /// sets, and a read quorum over the union must intersect it.
  std::vector<NodeId> RoutingReplicasFor(Key key) const;

  /// Allocation-free variants of the replica-list queries: `out` is cleared
  /// and refilled, so a caller that reuses the same vector (the coordinator
  /// hot path keeps one per pooled operation slot) pays no allocation once
  /// its capacity has warmed up.
  void RoutingReplicasForInto(Key key, std::vector<NodeId>* out) const;
  void ExtendedReplicasForInto(Key key, std::vector<NodeId>* out) const;

  /// Pooled payload slots shared by every coordinator on this cluster: write
  /// fan-out, read responses and read repair carry VersionRef handles
  /// through their message closures instead of copying VersionedValue into
  /// each capture. See kvs/version_arena.h for the lifetime rules.
  VersionArena& version_arena() { return version_arena_; }

  // -- Elastic membership (ROADMAP item 1) ----------------------------------

  /// Adds a brand-new storage node to the ring and starts a background
  /// rebalance streaming its newly owned ranges to it. Returns the new
  /// node's id (ids continue past the coordinators; the initial id layout
  /// is untouched). The node starts in NodeState::kJoining and becomes
  /// kActive once the rebalance drains.
  StatusOr<NodeId> AddStorageNode();

  /// Removes a storage node from the ring and starts a background rebalance
  /// draining its ranges to their new owners. The node keeps serving
  /// (NodeState::kLeaving) until the drain completes, then is marked
  /// kRemoved — and decommissioned (fail-stop) when
  /// rebalance.decommission_removed is set. Errors: NotFound for a node
  /// that is not a current ring member (coordinators included),
  /// FailedPrecondition when removal would leave fewer members than
  /// quorum.n.
  Status RemoveStorageNode(NodeId id);

  /// Current storage membership of the ring, sorted ascending.
  const std::vector<int>& StorageMembers() const { return ring_.members(); }
  int num_storage_members() const { return ring_.num_nodes(); }

  /// Current ring version (1 at construction, +1 per membership change; 0
  /// is the wire sentinel for "client has not observed a version yet").
  /// Clients cache it; coordinators count ops carrying an older version as
  /// stale_routes_forwarded.
  uint64_t ring_version() const { return ring_.version(); }

  /// True while at least one membership change is still migrating data
  /// (union routing in effect).
  bool rebalance_active() const { return !previous_rings_.empty(); }

  /// Read-only view of the ring (placement policy inspection).
  const ConsistentHashRing& ring() const { return ring_; }

  /// Every membership transition so far, in virtual-time order.
  const std::vector<MembershipEvent>& membership_log() const {
    return membership_log_;
  }

  /// Observer invoked synchronously on each membership transition (node
  /// state events). May be null.
  void set_membership_hook(MembershipHook hook) {
    membership_hook_ = std::move(hook);
  }

  /// @internal Migration bookkeeping (called by Migrator): a transfer was
  /// applied at `dst` / the active rebalance fully drained.
  void OnMigrationDelivered(NodeId dst);
  void OnRebalanceDrained();
  Migrator* migrator() { return migrator_.get(); }

  /// Starts the configured failure detector (idempotent; see
  /// KvsConfig::failure_detector for the heartbeat/φ-accrual choice). The
  /// detector task reschedules itself forever: drive the simulation with
  /// RunUntil.
  void StartFailureDetector();
  FailureDetector* failure_detector() { return failure_detector_.get(); }

  /// Live reconfiguration (Section 6 "Variable configurations"): changes
  /// the read/write response requirements for operations *started after*
  /// this call (in-flight operations keep the quorum they began with). N is
  /// fixed at construction. Returns InvalidArgument for out-of-range sizes.
  Status UpdateQuorum(int r, int w);

  /// Live latency-regime change: subsequent message legs sample from
  /// `legs`. Models environment drift (e.g. a disk->SSD migration) for the
  /// adaptive-controller loop.
  void UpdateLegs(const WarsDistributions& legs);

  // -- Closed-loop controller actuation (ROADMAP item 3) --------------------

  /// McKenzie-style fractional read quorums: reads started after this call
  /// use R = `r_lo` with probability `probability`, else R = `r_hi`
  /// (in-flight reads keep theirs). Degenerate calls (r_lo == r_hi, or
  /// probability 0/1) collapse to a fixed R and consume no RNG draws on the
  /// read path — preserving the RNG-consumption contract for runs that
  /// never actually mix. Returns InvalidArgument for out-of-range sizes.
  Status UpdateReadMix(int r_lo, int r_hi, double probability);

  /// Current mixed-quorum state (n/w mirror the live config).
  const MixedQuorum& read_mix() const { return read_mix_; }

  /// Live hedge-policy change: reads started after this call derive their
  /// hedge delay from the new options.
  Status UpdateHedge(const HedgeOptions& hedge);

  /// Live retry-policy change: client attempts started after this call
  /// consume the new budget (ClientSession reads the policy per attempt).
  Status UpdateRetry(const RetryOptions& retry);

  /// The R requirement for a read of `key` starting now: the configured
  /// quorum.r, or a mix draw when fractional mixing is active. Counted in
  /// metrics as mixed_reads_lo/hi while mixing.
  int EffectiveReadQuorumFor(Key key);

  /// Freshness measurement for the controller (active only when
  /// config.controller.enabled and config.sla is set; otherwise free).
  /// RecordCommit logs (key, sequence, commit time) into the key class's
  /// fixed commit ring; RecordReadOutcome classifies a finished read as
  /// fresh/stale within the SLA's staleness bound against that ring.
  void RecordCommit(Key key, int64_t sequence, double commit_time);
  void RecordReadOutcome(Key key, int64_t returned_sequence,
                         double read_start_time);

  /// Measured fresh/stale read counts per key class (cumulative; the
  /// controller differences them per epoch).
  int64_t FreshReads(int key_class) const {
    return fresh_by_class_[key_class];
  }
  int64_t StaleReads(int key_class) const {
    return stale_by_class_[key_class];
  }

  /// Monotonically increasing request identifier.
  uint64_t NextRequestId() { return next_request_id_++; }

  /// Next version sequence number for `key` (1, 2, 3, ...). Sequences give
  /// every key a global total version order — the "k versions" axis of the
  /// staleness metrics. (The simulation is single-threaded, so a cluster-
  /// side counter stands in for whatever ordering mechanism — coordinator
  /// designation, consensus — a real deployment would use.) Also feeds the
  /// per-key write-rate estimator (Section 3.2's gamma_gw).
  int64_t NextSequenceFor(Key key);

  /// Measured global write rate for `key` in writes/ms (gamma_gw of
  /// Equation 3); 0 until two writes have been observed.
  double WriteRatePerMsFor(Key key) const;

  /// Highest sequence handed out for `key` so far.
  int64_t LatestSequenceFor(Key key) const;

  /// Observer invoked once per read after late responses are collected
  /// (feeds the Section 4.3 staleness detector). May be null.
  void set_late_read_hook(LateReadHook hook) {
    late_read_hook_ = std::move(hook);
  }
  const LateReadHook& late_read_hook() const { return late_read_hook_; }

  /// Optional online WARS leg profiler (Section 5.5 "measure online"); the
  /// cluster records every quorum-operation message delay into it. Not
  /// owned; must outlive the cluster or be reset to null.
  void set_leg_profiler(LegProfiler* profiler) { leg_profiler_ = profiler; }
  LegProfiler* leg_profiler() const { return leg_profiler_; }

  /// Starts the periodic anti-entropy process (no-op when the configured
  /// interval is 0).
  void StartAntiEntropy();

  /// The cluster's causal operation tracer (configured from config.obs at
  /// construction; disabled tracers cost one branch per record site).
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  /// Exports every cluster-level instrument into `out` under stable names:
  /// ClusterMetrics counters ("kvs/..."), operation latency histograms,
  /// network traffic ("net/..."), simulator progress ("sim/...") and, when
  /// a LegProfiler is attached, per-leg delay histograms ("legs/...").
  /// Deterministic given a deterministic run.
  void ExportMetrics(obs::Registry* out) const;

  // -- Streaming telemetry (DESIGN.md §13) ----------------------------------

  /// Starts the windowed time-series cut (and, when obs.monitor_enabled,
  /// the live predictor-drift monitor). No-op when obs.telemetry_window_ms
  /// is 0; idempotent otherwise. The tick reschedules itself forever, is
  /// driven off the timer wheel, reads only counters (never the RNG), and
  /// costs O(new samples in the window) — so telemetry-on runs produce the
  /// same operation outcomes as telemetry-off runs.
  void StartTelemetry();

  /// The telemetry ring / monitor; null until StartTelemetry ran on a
  /// config that enables them.
  const obs::TimeSeries* timeseries() const { return timeseries_.get(); }
  /// Mutable access for end-of-run harvesting (the experiment harness moves
  /// the series out instead of deep-copying dense-histogram windows).
  obs::TimeSeries* mutable_timeseries() { return timeseries_.get(); }
  const obs::ConsistencyMonitor* monitor() const { return monitor_.get(); }

  /// Snapshot provenance: the controller (or the monitor's analytic fit)
  /// records which predictor backend answered last and which decision is in
  /// force; MetricsHeader composes them for the metrics-JSONL "meta" line.
  void set_active_decision_id(int64_t id) { active_decision_id_ = id; }
  int64_t active_decision_id() const { return active_decision_id_; }
  void set_predictor_provenance(const std::string& backend,
                                const std::string& note) {
    predictor_backend_ = backend;
    predictor_note_ = note;
  }
  obs::MetricsSnapshotHeader MetricsHeader() const;

 private:
  /// Visits every exported counter in a fixed order (the static cluster
  /// table, then per-shard rows in shard order) as fn(name, value). The
  /// single source of truth behind both ExportCounters and the telemetry
  /// tick's flat snapshot diff. Instantiated only in cluster.cc.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const;

  /// The counter subset of ExportMetrics (cluster, per-shard, network,
  /// simulator, tracer). The expensive histogram rebuilds stay in
  /// ExportMetrics.
  void ExportCounters(obs::Registry* out) const;

  /// One telemetry window: measure the monitor sample from counter deltas,
  /// refresh the cached analytic prediction if the fit went stale, cut a
  /// cumulative-registry delta into the time-series ring, reschedule.
  void TelemetryTick();
  void RefreshMonitorPrediction();
  /// Appends `state` for `node` to the membership log and fires the hook.
  void LogMembership(NodeId node, NodeState state);

  /// Records the pre-change ring snapshot and kicks the migrator.
  void BeginRebalance(ConsistentHashRing snapshot);

  KvsConfig config_;
  int num_storage_nodes_;
  Simulator sim_;
  std::unique_ptr<Network> network_;
  ConsistentHashRing ring_;
  std::unique_ptr<FailureDetector> failure_detector_;
  std::vector<std::unique_ptr<Node>> nodes_;
  ClusterMetrics metrics_;
  obs::Tracer tracer_;
  LateReadHook late_read_hook_;
  LegProfiler* leg_profiler_ = nullptr;
  uint64_t next_request_id_ = 1;
  VersionArena version_arena_;
  // Scratch for RoutingReplicasForInto's previous-ring walk; mutable because
  // the query is logically const and the simulation is single-threaded.
  mutable std::vector<int> routing_scratch_;
  std::unordered_map<Key, int64_t> sequence_counters_;
  std::unordered_map<Key, RateEstimator> write_rates_;
  Rng anti_entropy_rng_;

  // Closed-loop controller state. The mix RNG is a dedicated salted stream
  // consumed only while fractional mixing is active, so controller-off (and
  // mix-inactive) runs reproduce the feature-absent draw sequences bitwise.
  MixedQuorum read_mix_;
  bool mixing_active_ = false;
  Rng mix_rng_;
  struct CommitRecord {
    Key key = 0;
    int64_t sequence = 0;
    double commit_time = 0.0;
  };
  std::vector<std::vector<CommitRecord>> commit_rings_;  // per key class
  std::vector<int> commit_ring_next_;
  std::vector<int64_t> fresh_by_class_;
  std::vector<int64_t> stale_by_class_;
  bool freshness_enabled_ = false;

  // Elastic membership state. `previous_rings_` holds the pre-change
  // snapshot of every membership change whose migration is still draining
  // (overlapping changes stack; all cleared together when the migrator runs
  // dry). Seeds for nodes created after construction come from
  // membership_rng_, so elastic runs stay deterministic in (seed,
  // membership-op order) without perturbing the construction-time draws.
  std::unique_ptr<Migrator> migrator_;
  std::vector<ConsistentHashRing> previous_rings_;
  std::vector<NodeId> joining_;
  std::vector<NodeId> leaving_;
  std::vector<MembershipEvent> membership_log_;
  MembershipHook membership_hook_;
  Rng membership_rng_;

  // Streaming telemetry state (DESIGN.md §13). A tick is O(samples in the
  // window): counters diff as flat value snapshots against the previous cut
  // (one integer compare per row in the steady state), and the window's op
  // histograms are recorded directly from the window's latency slices.
  // Per-shard and per-leg histograms are deliberately excluded from the
  // windowed series.
  bool telemetry_started_ = false;
  std::unique_ptr<obs::TimeSeries> timeseries_;
  std::unique_ptr<obs::ConsistencyMonitor> monitor_;
  std::unique_ptr<LegProfiler> telemetry_profiler_;  // owned fallback source
  int64_t telemetry_window_index_ = 0;
  size_t telemetry_read_seen_ = 0;
  size_t telemetry_write_seen_ = 0;
  int64_t telemetry_fresh_seen_ = 0;
  int64_t telemetry_stale_seen_ = 0;
  int64_t telemetry_failed_seen_ = 0;
  int64_t telemetry_hedges_seen_ = 0;
  int64_t telemetry_retries_seen_ = 0;
  size_t telemetry_alerts_seen_ = 0;
  std::vector<std::string> telemetry_counter_names_;  // flat snapshot rows
  std::vector<int64_t> telemetry_counter_prev_;       // parallel values

  // Cached analytic prediction for the monitor: refit only when the active
  // quorum changed or any leg's sample count grew >= 25% past the last fit,
  // so a mid-run fault moves the measured side immediately while the
  // prediction keeps reflecting the pre-fault fit — which is exactly what
  // makes drift detectable.
  bool monitor_prediction_valid_ = false;
  MixedQuorumEvaluation monitor_prediction_;
  MixedQuorum monitor_fit_quorum_;
  std::array<size_t, LegProfiler::kNumLegs> monitor_fit_counts_{};

  // Snapshot provenance (MetricsHeader).
  std::string predictor_backend_;
  std::string predictor_note_;
  int64_t active_decision_id_ = -1;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_CLUSTER_H_
