#include "kvs/siblings.h"

#include <algorithm>

namespace pbs {
namespace kvs {

bool SiblingSet::Add(const VersionedValue& incoming) {
  // Reject if any held version dominates or equals the incoming one.
  for (const VersionedValue& held : versions_) {
    const CausalOrder order = incoming.clock.Compare(held.clock);
    if (order == CausalOrder::kBefore || order == CausalOrder::kEqual) {
      return false;
    }
  }
  // Prune everything the incoming version dominates.
  const size_t before = versions_.size();
  versions_.erase(
      std::remove_if(versions_.begin(), versions_.end(),
                     [&incoming](const VersionedValue& held) {
                       return held.clock.Compare(incoming.clock) ==
                              CausalOrder::kBefore;
                     }),
      versions_.end());
  versions_.push_back(incoming);
  (void)before;
  return true;
}

VersionedValue SiblingSet::Reconcile(int32_t writer,
                                     double timestamp) const {
  VersionedValue merged;
  merged.stamp = {timestamp, writer};
  const VersionedValue* newest = nullptr;  // LWW payload among the siblings
  for (const VersionedValue& held : versions_) {
    merged.clock = VectorClock::Merge(merged.clock, held.clock);
    merged.sequence = std::max(merged.sequence, held.sequence);
    if (newest == nullptr || newest->stamp < held.stamp) newest = &held;
  }
  if (newest != nullptr) merged.value = newest->value;
  // The reconciliation is a new event by `writer`, so it strictly dominates
  // every sibling.
  merged.clock.Increment(writer);
  return merged;
}

bool SiblingSet::MergeFrom(const SiblingSet& other) {
  bool changed = false;
  for (const VersionedValue& version : other.versions_) {
    changed = Add(version) || changed;
  }
  return changed;
}

bool SiblingStorage::Put(Key key, const VersionedValue& incoming) {
  return data_[key].Add(incoming);
}

const SiblingSet* SiblingStorage::Get(Key key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? nullptr : &it->second;
}

int64_t SiblingStorage::num_conflicted_keys() const {
  int64_t conflicted = 0;
  for (const auto& [key, set] : data_) {
    if (set.HasConflict()) ++conflicted;
  }
  return conflicted;
}

}  // namespace kvs
}  // namespace pbs
