#ifndef PBS_KVS_REBALANCE_EXPERIMENT_H_
#define PBS_KVS_REBALANCE_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kvs/cluster.h"
#include "obs/registry.h"
#include "util/parallel.h"

namespace pbs {
namespace kvs {

/// One elastic-rebalance experiment: a sharded cluster takes a steady
/// write-then-probe workload while storage nodes join and leave the ring
/// mid-run (concurrent churn), and the harness measures
///
///   * client-observed <k,t>-staleness split into before / during / after
///     rebalance phases, fleet-wide and per shard,
///   * whether any *acknowledged* write became unreadable (the zero-loss
///     criterion: every key is read back after the churn settles and its
///     returned version is compared against the highest acked sequence),
///   * how much of the key space actually moved vs. the theoretical
///     minimum for the membership delta, and
///   * migration-equivalence: post-rebalance placement must be bit-identical
///     to a fresh ring built from the final membership.
struct RebalanceRunOptions {
  /// Cluster configuration; num_storage_nodes is the pre-churn ring size.
  KvsConfig cluster;

  /// Distinct keys in the workload (keys are 1..keys).
  int keys = 128;

  /// Total writes, issued round-robin over the keys.
  int writes = 600;

  /// Time between consecutive write starts.
  double write_spacing_ms = 5.0;

  /// Probe read issued this long after each write commits.
  double read_offset_ms = 10.0;

  /// Nodes added / removed when the churn point is reached. Both fire at
  /// the same instant, so the join's and the removal's rebalances overlap
  /// (concurrent churn on purpose).
  int join_nodes = 1;
  int remove_nodes = 1;

  /// Churn fires when this fraction of the writes has been issued.
  double churn_at_fraction = 0.4;

  uint64_t seed = 99;

  Status Validate() const;
};

/// <k,t>-staleness counters for one phase (or one shard within a phase).
/// A probe read is stale when it returns a version older than the highest
/// sequence acknowledged for its key at read start; version_lag sums how
/// many versions behind the stale reads were (the k axis).
struct RebalancePhaseStats {
  int64_t reads = 0;
  int64_t stale_reads = 0;
  int64_t version_lag = 0;

  double StaleFraction() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(stale_reads) /
                            static_cast<double>(reads);
  }

  friend bool operator==(const RebalancePhaseStats&,
                         const RebalancePhaseStats&) = default;
};

/// Deterministic summary of one rebalance run (defaulted operator== pins
/// bitwise thread-count determinism in tests).
struct RebalanceRunSummary {
  int64_t writes_acked = 0;
  int64_t writes_failed = 0;
  int64_t probe_reads_failed = 0;

  /// Acked writes whose final verification read returned an older version
  /// (the acceptance criterion demands 0).
  int64_t lost_acked_writes = 0;

  /// Fleet-wide staleness by phase (during = rebalance_active() at the
  /// probe's completion).
  RebalancePhaseStats before;
  RebalancePhaseStats during;
  RebalancePhaseStats after;

  /// Per-shard staleness, keyed by the shard's primary owner at probe time.
  std::map<NodeId, RebalancePhaseStats> per_shard;

  // Membership / migration counters (from ClusterMetrics).
  int64_t nodes_joined = 0;
  int64_t nodes_removed = 0;
  int64_t rebalances_started = 0;
  int64_t rebalances_completed = 0;
  int64_t migration_transfers_sent = 0;
  int64_t migration_transfers_delivered = 0;
  int64_t migration_transfers_dropped = 0;
  int64_t stale_routes_forwarded = 0;
  uint64_t final_ring_version = 0;
  int final_storage_members = 0;

  /// Fraction of (key, replica-slot) assignments that changed across the
  /// churn, and the theoretical minimum fraction for that membership delta
  /// (added/S_after + removed/S_before). Minimal-movement acceptance:
  /// moved_fraction <= 1.5 * theoretical_min_fraction.
  double moved_fraction = 0.0;
  double theoretical_min_fraction = 0.0;

  /// Post-churn placement equals a fresh ring built from the final
  /// membership (deterministic rebuild from seed + membership log).
  bool placement_matches_fresh_ring = false;

  friend bool operator==(const RebalanceRunSummary&,
                         const RebalanceRunSummary&) = default;
};

/// Runs one seeded rebalance experiment (terminates the process on invalid
/// options via assert; Validate() first on untrusted input). When `registry`
/// is non-null the cluster's full instrument export (including the per-shard
/// "kvs/shard/..." series) is written into it.
RebalanceRunSummary RunRebalanceExperiment(const RebalanceRunOptions& options,
                                           obs::Registry* registry = nullptr);

/// A campaign of independent seeded trials.
struct RebalanceTrialOptions {
  RebalanceRunOptions run;
  int64_t trials = 4;
  uint64_t seed = 1234;  // campaign seed (per-trial seeds derive from it)
};

struct RebalanceCampaignResult {
  std::vector<RebalanceRunSummary> trials;

  /// Trial-order pooled phase stats.
  RebalancePhaseStats before;
  RebalancePhaseStats during;
  RebalancePhaseStats after;
  int64_t lost_acked_writes = 0;

  /// Deterministic JSONL export of the pooled per-trial metrics registries.
  std::string metrics_jsonl;

  friend bool operator==(const RebalanceCampaignResult&,
                         const RebalanceCampaignResult&) = default;
};

/// Runs `options.trials` independent rebalance experiments under the
/// (seed, chunk_size) parallel determinism contract: results are bitwise
/// identical for any thread count at a fixed chunk_size (each trial draws a
/// fixed number of values from its chunk's jump stream and trials merge in
/// trial order).
RebalanceCampaignResult RunRebalanceTrials(const RebalanceTrialOptions& options,
                                           const PbsExecutionOptions& exec);

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_REBALANCE_EXPERIMENT_H_
