#include "kvs/anti_entropy.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "kvs/cluster.h"

namespace pbs {
namespace kvs {
namespace {

/// Ships every version `from` holds that `to` is missing or holds stale —
/// scoped to keys `to` actually replicates: on an elastic ring a peer is
/// only responsible for the keys whose current preference list contains it,
/// so shipping anything else would spread data outside its shard. (In the
/// minimal deployment where every node replicates every key, the scope
/// check passes for all keys and behavior is unchanged.)
void ShipNewer(Cluster* cluster, Node& from, Node& to, Rng& rng) {
  const KvsConfig& config = cluster->config();
  const int n = config.quorum.n;
  std::vector<int> preference;
  std::vector<std::pair<Key, VersionedValue>> to_ship;
  from.storage().ForEach([&](Key key, const VersionedValue& value) {
    const auto peer_value = to.storage().Get(key);
    if (peer_value.has_value() && !value.NewerThan(*peer_value)) return;
    if (!cluster->ring().AppendPreferenceList(key, n, &preference).ok()) {
      return;
    }
    if (std::find(preference.begin(), preference.end(), to.id()) ==
        preference.end()) {
      return;  // `to` is not a replica of this key's shard
    }
    to_ship.emplace_back(key, value);
  });
  for (auto& [key, value] : to_ship) {
    const double delay = config.legs.w->Sample(rng);
    Node* target = &to;
    ++cluster->metrics().anti_entropy_values_shipped;
    // Fire-and-forget: a dropped shipment is retried next sync round.
    (void)cluster->network().SendWithDelay(
        from.id(), to.id(), delay,
        [target, key, value, from_id = from.id()]() {
          target->HandleWriteRequest(key, value, from_id, /*request_id=*/0,
                                     /*is_repair=*/true);
        });
  }
}

}  // namespace

void SyncReplicaPair(Cluster* cluster, NodeId a, NodeId b, Rng& rng) {
  assert(cluster != nullptr);
  assert(a != b);
  Node& node_a = cluster->node(a);
  Node& node_b = cluster->node(b);
  if (!node_a.alive() || !node_b.alive()) return;
  ++cluster->metrics().anti_entropy_rounds;
  ShipNewer(cluster, node_a, node_b, rng);
  ShipNewer(cluster, node_b, node_a, rng);
}

void RunAntiEntropyTick(Cluster* cluster, Rng* rng) {
  assert(cluster != nullptr);
  assert(rng != nullptr);
  // Current ring membership (not the construction-time node count): joined
  // nodes take part in gossip, removed nodes stop being picked. On a static
  // ring members() is exactly [0, num_replicas()), so the draw sequence is
  // unchanged from the fixed-membership implementation.
  const std::vector<int>& members = cluster->StorageMembers();
  const int n = static_cast<int>(members.size());
  if (n >= 2) {
    for (int i = 0; i < n; ++i) {
      // Pick a uniformly random peer != i (one NextBounded draw per member
      // per tick — fixed RNG consumption given the membership log).
      int peer = static_cast<int>(rng->NextBounded(n - 1));
      if (peer >= i) ++peer;
      SyncReplicaPair(cluster, members[i], members[peer], *rng);
    }
  }
  const double interval = cluster->config().anti_entropy_interval_ms;
  assert(interval > 0.0);
  cluster->sim().Schedule(interval, [cluster, rng]() {
    RunAntiEntropyTick(cluster, rng);
  });
}

}  // namespace kvs
}  // namespace pbs
