#include "kvs/profiler.h"

#include "dist/empirical.h"

namespace pbs {
namespace kvs {

void LegProfiler::Record(Leg leg, double delay_ms) {
  samples_[static_cast<int>(leg)].push_back(delay_ms);
}

StatusOr<WarsDistributions> LegProfiler::ToWarsDistributions(
    std::string name) const {
  for (const auto& leg_samples : samples_) {
    if (leg_samples.empty()) {
      return Status::FailedPrecondition(
          "leg profiler has no samples for at least one WARS leg");
    }
  }
  WarsDistributions dists;
  dists.name = std::move(name);
  dists.w = Empirical(samples_[static_cast<int>(Leg::kWriteRequest)]);
  dists.a = Empirical(samples_[static_cast<int>(Leg::kWriteAck)]);
  dists.r = Empirical(samples_[static_cast<int>(Leg::kReadRequest)]);
  dists.s = Empirical(samples_[static_cast<int>(Leg::kReadResponse)]);
  return dists;
}

}  // namespace kvs
}  // namespace pbs
