#include "kvs/profiler.h"

#include "dist/empirical.h"

namespace pbs {
namespace kvs {

void LegProfiler::Record(Leg leg, double delay_ms) {
  const int i = static_cast<int>(leg);
  ++observed_[i];
  std::vector<double>& samples = samples_[i];
  if (cap_ == 0 || samples.size() < cap_) {
    samples.push_back(delay_ms);
    return;
  }
  samples[write_[i]] = delay_ms;
  if (++write_[i] == cap_) write_[i] = 0;
}

StatusOr<WarsDistributions> LegProfiler::ToWarsDistributions(
    std::string name) const {
  for (const auto& leg_samples : samples_) {
    if (leg_samples.empty()) {
      return Status::FailedPrecondition(
          "leg profiler has no samples for at least one WARS leg");
    }
  }
  WarsDistributions dists;
  dists.name = std::move(name);
  dists.w = Empirical(samples_[static_cast<int>(Leg::kWriteRequest)]);
  dists.a = Empirical(samples_[static_cast<int>(Leg::kWriteAck)]);
  dists.r = Empirical(samples_[static_cast<int>(Leg::kReadRequest)]);
  dists.s = Empirical(samples_[static_cast<int>(Leg::kReadResponse)]);
  return dists;
}

void LegProfiler::ExportTo(obs::Registry* out) const {
  static constexpr const char* kHistogramNames[kNumLegs] = {
      "legs/w_ms", "legs/a_ms", "legs/r_ms", "legs/s_ms"};
  static constexpr const char* kCounterNames[kNumLegs] = {
      "legs/w_samples", "legs/a_samples", "legs/r_samples", "legs/s_samples"};
  for (int leg = 0; leg < kNumLegs; ++leg) {
    obs::LogHistogram& histogram = out->histogram(kHistogramNames[leg]);
    for (double sample : samples_[leg]) histogram.Record(sample);
    out->counter(kCounterNames[leg])
        .Add(static_cast<int64_t>(observed_[leg]));
  }
}

}  // namespace kvs
}  // namespace pbs
