#include "kvs/migration.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "kvs/cluster.h"
#include "kvs/metrics.h"
#include "kvs/node.h"

namespace pbs {
namespace kvs {

Migrator::Migrator(Cluster* cluster, uint64_t seed)
    : cluster_(cluster), rng_(seed) {}

bool Migrator::active() const {
  if (outstanding_ > 0) return true;
  for (const auto& [src, queue] : queues_) {
    if (!queue.empty()) return true;
  }
  return false;
}

void Migrator::OnMembershipChange(const ConsistentHashRing& old_ring) {
  const int n = cluster_->config().quorum.n;
  ClusterMetrics& metrics = cluster_->metrics();
  // Donors are the old epoch's members: a joining node holds nothing yet,
  // and a leaving node must drain what it holds.
  std::vector<int> old_pref;
  std::vector<int> new_pref;
  for (int src : old_ring.members()) {
    Node& donor = cluster_->node(src);
    // Snapshot + sort the donor's keys so transfer order (and therefore
    // delay-stream consumption) is independent of hash-map layout.
    std::vector<Key> keys;
    keys.reserve(donor.storage().num_keys());
    donor.storage().ForEach(
        [&keys](Key key, const VersionedValue&) { keys.push_back(key); });
    std::sort(keys.begin(), keys.end());
    for (Key key : keys) {
      ++metrics.migration_keys_examined;
      if (!old_ring.AppendPreferenceList(key, n, &old_pref).ok()) continue;
      if (!cluster_->ring().AppendPreferenceList(key, n, &new_pref).ok()) {
        continue;
      }
      for (int dst : new_pref) {
        if (dst == src) continue;
        if (std::find(old_pref.begin(), old_pref.end(), dst) !=
            old_pref.end()) {
          continue;  // was already a replica: old epoch covers it
        }
        queues_[src].push_back(Transfer{key, src, dst, 0});
      }
    }
  }
  // Start a paced stream per source with a pending queue. An immediate
  // first pump keeps "no data to move" rebalances from waiting a full
  // stream interval to finish.
  for (auto& [src, queue] : queues_) {
    if (queue.empty() || stream_scheduled_[src]) continue;
    stream_scheduled_[src] = true;
    const NodeId source = src;
    cluster_->sim().Schedule(0.0, [this, source]() { PumpStream(source); });
  }
  MaybeFinishRebalance();
}

void Migrator::PumpStream(NodeId src) {
  auto it = queues_.find(src);
  if (it == queues_.end() || it->second.empty()) {
    stream_scheduled_[src] = false;
    MaybeFinishRebalance();
    return;
  }
  std::deque<Transfer>& queue = it->second;
  const int batch = cluster_->config().rebalance.max_keys_per_batch;
  for (int i = 0; i < batch && !queue.empty(); ++i) {
    Transfer transfer = queue.front();
    queue.pop_front();
    Dispatch(transfer);
  }
  if (queue.empty()) {
    stream_scheduled_[src] = false;
    MaybeFinishRebalance();
    return;
  }
  cluster_->sim().Schedule(cluster_->config().rebalance.stream_interval_ms,
                           [this, src]() { PumpStream(src); });
}

void Migrator::Dispatch(Transfer transfer) {
  ClusterMetrics& metrics = cluster_->metrics();
  Node& donor = cluster_->node(transfer.src);
  // Re-read at send time: a foreground write since enqueue ships the newer
  // version; a key the donor no longer holds has nothing to transfer.
  const std::optional<VersionedValue> value =
      donor.storage().Get(transfer.key);
  if (!value.has_value() || !donor.alive()) {
    // A crashed donor cannot stream; anti-entropy picks up the slack.
    ++metrics.migration_transfers_dropped;
    MaybeFinishRebalance();
    return;
  }
  ++metrics.migration_transfers_sent;
  ++outstanding_;
  const double delay =
      cluster_->config().legs.w->Sample(rng_);
  Node* receiver = &cluster_->node(transfer.dst);
  const Key key = transfer.key;
  const NodeId src = transfer.src;
  const VersionedValue shipped = *value;
  const bool sent = cluster_->network().SendWithDelay(
      transfer.src, transfer.dst, delay,
      [this, receiver, key, shipped, src]() {
        // Repair-style apply: LWW storage keeps newer foreground writes.
        receiver->HandleWriteRequest(key, shipped, src, /*request_id=*/0,
                                     /*is_repair=*/true);
        cluster_->OnMigrationDelivered(receiver->id());
        NoteDelivered();
      });
  if (!sent) {
    --outstanding_;
    if (transfer.attempts <
        cluster_->config().rebalance.max_transfer_retries) {
      ++metrics.migration_transfer_retries;
      ++transfer.attempts;
      queues_[transfer.src].push_back(transfer);
      if (!stream_scheduled_[transfer.src]) {
        stream_scheduled_[transfer.src] = true;
        const NodeId source = transfer.src;
        cluster_->sim().Schedule(
            cluster_->config().rebalance.stream_interval_ms,
            [this, source]() { PumpStream(source); });
      }
    } else {
      ++metrics.migration_transfers_dropped;
      MaybeFinishRebalance();
    }
  }
}

void Migrator::NoteDelivered() {
  assert(outstanding_ > 0);
  --outstanding_;
  MaybeFinishRebalance();
}

void Migrator::MaybeFinishRebalance() {
  if (active()) return;
  cluster_->OnRebalanceDrained();
}

}  // namespace kvs
}  // namespace pbs
