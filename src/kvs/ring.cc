#include "kvs/ring.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace pbs {
namespace kvs {

uint64_t HashKey(Key key) {
  // SplitMix64 finalizer: full-avalanche 64-bit mix.
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t ConsistentHashRing::TokenPosition(int node, int v) const {
  // Two chained avalanche mixes over (seed, node, vnode). Pure function:
  // the same (seed, node, v) always lands on the same position, whatever
  // the membership history — the property minimal movement rests on.
  const uint64_t a = HashKey(seed_ ^ (static_cast<uint64_t>(node) *
                                      0xD6E8FEB86659FD93ULL));
  return HashKey(a + 0x2545F4914F6CDD1DULL * (static_cast<uint64_t>(v) + 1));
}

void ConsistentHashRing::InsertTokensFor(int node) {
  for (int v = 0; v < vnodes_per_node_; ++v) {
    tokens_.push_back(Token{TokenPosition(node, v), node});
  }
  std::sort(tokens_.begin(), tokens_.end(),
            [](const Token& a, const Token& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.node < b.node;
            });
}

ConsistentHashRing::ConsistentHashRing(int num_nodes, int vnodes_per_node,
                                       uint64_t seed) {
  assert(num_nodes >= 1);
  assert(vnodes_per_node >= 1);
  vnodes_per_node_ = vnodes_per_node < 1 ? 1 : vnodes_per_node;
  seed_ = seed;
  members_.reserve(num_nodes < 1 ? 1 : num_nodes);
  for (int node = 0; node < num_nodes; ++node) members_.push_back(node);
  if (members_.empty()) members_.push_back(0);  // release-mode safety net
  tokens_.reserve(members_.size() * static_cast<size_t>(vnodes_per_node_));
  for (int node : members_) {
    for (int v = 0; v < vnodes_per_node_; ++v) {
      tokens_.push_back(Token{TokenPosition(node, v), node});
    }
  }
  std::sort(tokens_.begin(), tokens_.end(),
            [](const Token& a, const Token& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.node < b.node;
            });
}

StatusOr<ConsistentHashRing> ConsistentHashRing::Create(int num_nodes,
                                                        int vnodes_per_node,
                                                        uint64_t seed) {
  if (num_nodes < 1) {
    return Status::InvalidArgument("ring: num_nodes must be >= 1, got " +
                                   std::to_string(num_nodes));
  }
  if (vnodes_per_node < 1) {
    return Status::InvalidArgument(
        "ring: vnodes_per_node must be >= 1, got " +
        std::to_string(vnodes_per_node));
  }
  return ConsistentHashRing(num_nodes, vnodes_per_node, seed);
}

StatusOr<ConsistentHashRing> ConsistentHashRing::CreateFromMembers(
    const std::vector<int>& members, int vnodes_per_node, uint64_t seed) {
  if (members.empty()) {
    return Status::InvalidArgument("ring: member set must not be empty");
  }
  if (vnodes_per_node < 1) {
    return Status::InvalidArgument(
        "ring: vnodes_per_node must be >= 1, got " +
        std::to_string(vnodes_per_node));
  }
  std::vector<int> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() < 0) {
    return Status::InvalidArgument("ring: node ids must be >= 0");
  }
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("ring: duplicate node id in member set");
  }
  ConsistentHashRing ring;
  ring.vnodes_per_node_ = vnodes_per_node;
  ring.seed_ = seed;
  ring.members_ = std::move(sorted);
  ring.tokens_.reserve(ring.members_.size() *
                       static_cast<size_t>(vnodes_per_node));
  for (int node : ring.members_) {
    for (int v = 0; v < vnodes_per_node; ++v) {
      ring.tokens_.push_back(Token{ring.TokenPosition(node, v), node});
    }
  }
  std::sort(ring.tokens_.begin(), ring.tokens_.end(),
            [](const Token& a, const Token& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.node < b.node;
            });
  return ring;
}

bool ConsistentHashRing::IsMember(int node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

Status ConsistentHashRing::AddNode(int node) {
  if (node < 0) {
    return Status::InvalidArgument("ring: node ids must be >= 0, got " +
                                   std::to_string(node));
  }
  if (IsMember(node)) {
    return Status::FailedPrecondition("ring: node " + std::to_string(node) +
                                      " is already a member");
  }
  members_.insert(std::lower_bound(members_.begin(), members_.end(), node),
                  node);
  InsertTokensFor(node);
  ++version_;
  return Status::Ok();
}

Status ConsistentHashRing::RemoveNode(int node) {
  if (!IsMember(node)) {
    return Status::NotFound("ring: node " + std::to_string(node) +
                            " is not a member");
  }
  if (members_.size() == 1) {
    return Status::FailedPrecondition(
        "ring: cannot remove the last member (node " + std::to_string(node) +
        ")");
  }
  members_.erase(std::lower_bound(members_.begin(), members_.end(), node));
  tokens_.erase(std::remove_if(tokens_.begin(), tokens_.end(),
                               [node](const Token& t) {
                                 return t.node == node;
                               }),
                tokens_.end());
  ++version_;
  return Status::Ok();
}

Status ConsistentHashRing::AppendPreferenceList(Key key, int n,
                                                std::vector<int>* out) const {
  assert(out != nullptr);
  out->clear();
  if (n < 1 || n > num_nodes()) {
    return Status::InvalidArgument(
        "ring: preference list size " + std::to_string(n) +
        " out of range [1, " + std::to_string(num_nodes()) + "]");
  }
  const uint64_t h = HashKey(key);
  // First token at or after h (wrapping).
  size_t start = std::lower_bound(tokens_.begin(), tokens_.end(), h,
                                  [](const Token& t, uint64_t value) {
                                    return t.position < value;
                                  }) -
                 tokens_.begin();
  out->reserve(n);
  for (size_t step = 0;
       step < tokens_.size() && static_cast<int>(out->size()) < n; ++step) {
    const Token& token = tokens_[(start + step) % tokens_.size()];
    // n is a small replication factor: a linear containment scan beats a
    // membership bitmap over arbitrary node ids.
    if (std::find(out->begin(), out->end(), token.node) == out->end()) {
      out->push_back(token.node);
    }
  }
  if (static_cast<int>(out->size()) != n) {
    // Unreachable while every member holds >= 1 token; checked (not
    // asserted) so a release build can never hand out a short replica set.
    out->clear();
    return Status::FailedPrecondition(
        "ring: walk produced fewer than n distinct members");
  }
  return Status::Ok();
}

StatusOr<std::vector<int>> ConsistentHashRing::PreferenceList(Key key,
                                                              int n) const {
  std::vector<int> result;
  const Status status = AppendPreferenceList(key, n, &result);
  if (!status.ok()) return status;
  return result;
}

StatusOr<std::vector<double>> ConsistentHashRing::OwnershipFractions(
    int samples, uint64_t seed) const {
  if (samples <= 0) {
    return Status::InvalidArgument("ring: samples must be > 0, got " +
                                   std::to_string(samples));
  }
  Rng rng(seed);
  std::vector<int64_t> counts(members_.size(), 0);
  std::vector<int> primary;
  for (int i = 0; i < samples; ++i) {
    const Status status = AppendPreferenceList(rng.Next(), 1, &primary);
    if (!status.ok()) return status;
    const auto it = std::lower_bound(members_.begin(), members_.end(),
                                     primary.front());
    ++counts[it - members_.begin()];
  }
  std::vector<double> fractions(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    fractions[i] =
        static_cast<double>(counts[i]) / static_cast<double>(samples);
  }
  return fractions;
}

}  // namespace kvs
}  // namespace pbs
