#include "kvs/ring.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace pbs {
namespace kvs {

uint64_t HashKey(Key key) {
  // SplitMix64 finalizer: full-avalanche 64-bit mix.
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ConsistentHashRing::ConsistentHashRing(int num_nodes, int vnodes_per_node,
                                       uint64_t seed)
    : num_nodes_(num_nodes) {
  assert(num_nodes >= 1);
  assert(vnodes_per_node >= 1);
  Rng rng(seed);
  tokens_.reserve(static_cast<size_t>(num_nodes) * vnodes_per_node);
  for (int node = 0; node < num_nodes; ++node) {
    for (int v = 0; v < vnodes_per_node; ++v) {
      tokens_.push_back(Token{rng.Next(), node});
    }
  }
  std::sort(tokens_.begin(), tokens_.end(),
            [](const Token& a, const Token& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.node < b.node;
            });
}

std::vector<int> ConsistentHashRing::PreferenceList(Key key, int n) const {
  assert(n >= 1 && n <= num_nodes_);
  const uint64_t h = HashKey(key);
  // First token at or after h (wrapping).
  size_t start = std::lower_bound(tokens_.begin(), tokens_.end(), h,
                                  [](const Token& t, uint64_t value) {
                                    return t.position < value;
                                  }) -
                 tokens_.begin();
  std::vector<int> result;
  result.reserve(n);
  std::vector<bool> seen(num_nodes_, false);
  for (size_t step = 0; step < tokens_.size() && static_cast<int>(
                                                     result.size()) < n;
       ++step) {
    const Token& token = tokens_[(start + step) % tokens_.size()];
    if (!seen[token.node]) {
      seen[token.node] = true;
      result.push_back(token.node);
    }
  }
  assert(static_cast<int>(result.size()) == n);
  return result;
}

std::vector<double> ConsistentHashRing::OwnershipFractions(
    int samples, uint64_t seed) const {
  assert(samples > 0);
  Rng rng(seed);
  std::vector<int64_t> counts(num_nodes_, 0);
  for (int i = 0; i < samples; ++i) {
    ++counts[PreferenceList(rng.Next(), 1).front()];
  }
  std::vector<double> fractions(num_nodes_);
  for (int node = 0; node < num_nodes_; ++node) {
    fractions[node] =
        static_cast<double>(counts[node]) / static_cast<double>(samples);
  }
  return fractions;
}

}  // namespace kvs
}  // namespace pbs
