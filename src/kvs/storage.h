#ifndef PBS_KVS_STORAGE_H_
#define PBS_KVS_STORAGE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "kvs/ring.h"
#include "kvs/version.h"

namespace pbs {
namespace kvs {

/// A replica's local versioned store. Writes apply last-writer-wins
/// supersession: an incoming version replaces the stored one only if it is
/// newer under the VersionStamp total order, which makes replica state
/// convergent regardless of message arrival order (the property quorum
/// expansion and anti-entropy rely on).
class ReplicaStorage {
 public:
  /// Applies `incoming`; returns true if the store changed (the incoming
  /// version was new or newer).
  bool Put(Key key, const VersionedValue& incoming);

  /// The stored version, if any.
  std::optional<VersionedValue> Get(Key key) const;

  /// Borrowed pointer to the stored version (nullptr when absent). The hot
  /// read path uses this to avoid copying the value before the network send
  /// captures it; the pointer is invalidated by the next Put.
  const VersionedValue* Find(Key key) const;

  size_t num_keys() const { return data_.size(); }

  /// Iterates all (key, version) pairs; used by anti-entropy exchange.
  void ForEach(
      const std::function<void(Key, const VersionedValue&)>& fn) const;

  /// Total number of Put calls that changed state (applied writes).
  int64_t writes_applied() const { return writes_applied_; }

 private:
  std::unordered_map<Key, VersionedValue> data_;
  int64_t writes_applied_ = 0;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_STORAGE_H_
