#ifndef PBS_KVS_VERSION_ARENA_H_
#define PBS_KVS_VERSION_ARENA_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "kvs/version.h"

namespace pbs {
namespace kvs {

class VersionRef;

/// Refcounted slab of VersionedValue slots — the payload store of the
/// coordinator hot path. A write's fan-out used to copy the full
/// VersionedValue (string + clock) into every per-leg message closure;
/// with the arena, the payload is copied once into a pooled slot and the
/// closures carry a 16-byte VersionRef instead. Slots recycle through a
/// free list and keep their string/clock capacity, so steady-state
/// Acquire/release performs no allocation (for payloads within the
/// retained capacity; larger values grow the slot's buffers once).
///
/// Lifetime rule: a slot lives exactly as long as some VersionRef points at
/// it — the pending-op record holds one ref for the operation's lifetime
/// and every in-flight message closure holds its own, so a payload stays
/// valid until the last duplicate delivery has fired even if the operation
/// record was already retired. Single-threaded by design, like the
/// simulator that drives it.
class VersionArena {
 public:
  /// Copies `value` into a pooled slot and returns the owning handle.
  VersionRef Acquire(const VersionedValue& value);

  /// Live (referenced) slots; for tests and leak auditing.
  size_t live() const { return live_; }
  /// Total slots ever created (high-water mark of concurrent payloads).
  size_t capacity() const { return slots_.size(); }

 private:
  friend class VersionRef;

  struct Slot {
    VersionedValue value;
    int32_t refs = 0;
  };

  void AddRef(uint32_t index) { ++slots_[index].refs; }

  void Release(uint32_t index) {
    Slot& slot = slots_[index];
    assert(slot.refs > 0);
    if (--slot.refs == 0) {
      free_.push_back(index);
      --live_;
    }
  }

  // Deque, not vector: Acquire during an outstanding dereference must not
  // relocate live slots (a replica handler holds a payload reference while
  // acquiring its own response slot).
  std::deque<Slot> slots_;
  std::vector<uint32_t> free_;
  size_t live_ = 0;
};

/// Shared handle to an arena slot. Copy = refcount bump; destruction
/// releases. Nothrow-movable and 16 bytes, so message closures carrying one
/// stay inside UniqueFunction's inline storage.
class VersionRef {
 public:
  VersionRef() = default;

  VersionRef(const VersionRef& other) noexcept
      : arena_(other.arena_), index_(other.index_) {
    if (arena_ != nullptr) arena_->AddRef(index_);
  }

  VersionRef(VersionRef&& other) noexcept
      : arena_(other.arena_), index_(other.index_) {
    other.arena_ = nullptr;
  }

  VersionRef& operator=(const VersionRef& other) noexcept {
    if (this != &other) {
      Reset();
      arena_ = other.arena_;
      index_ = other.index_;
      if (arena_ != nullptr) arena_->AddRef(index_);
    }
    return *this;
  }

  VersionRef& operator=(VersionRef&& other) noexcept {
    if (this != &other) {
      Reset();
      arena_ = other.arena_;
      index_ = other.index_;
      other.arena_ = nullptr;
    }
    return *this;
  }

  ~VersionRef() { Reset(); }

  explicit operator bool() const { return arena_ != nullptr; }

  const VersionedValue& operator*() const {
    assert(arena_ != nullptr);
    return arena_->slots_[index_].value;
  }
  const VersionedValue* operator->() const { return &**this; }

  void Reset() noexcept {
    if (arena_ != nullptr) {
      arena_->Release(index_);
      arena_ = nullptr;
    }
  }

 private:
  friend class VersionArena;
  VersionRef(VersionArena* arena, uint32_t index)
      : arena_(arena), index_(index) {}

  VersionArena* arena_ = nullptr;
  uint32_t index_ = 0;
};

inline VersionRef VersionArena::Acquire(const VersionedValue& value) {
  uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  // Field-wise assignment reuses the retained string buffer and inline
  // clock entries instead of reallocating.
  slot.value.sequence = value.sequence;
  slot.value.stamp = value.stamp;
  slot.value.value.assign(value.value);
  slot.value.clock = value.clock;
  slot.refs = 1;
  ++live_;
  return VersionRef(this, index);
}

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_VERSION_ARENA_H_
