#include "kvs/hotpath.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "dist/sampler.h"
#include "kvs/ring.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {
namespace {

constexpr int kMaxN = 8;      // replica fan-out cap (fixed per-stream arrays)
constexpr int kLogSize = 8;   // apply-log ring entries per (stream, replica)
constexpr int kBatch = 4096;  // leg samples drawn per refill

// -- Event plumbing ---------------------------------------------------------
//
// Two event kinds per operation pair: kTick issues a write (and samples its
// probe read), kResolve retires the probe. Events order by (time, sequence)
// with a per-shard sequence counter, matching the simulator's FIFO
// tie-break.

enum Kind : uint32_t { kTick = 0, kResolve = 1 };

struct Event {
  double time;
  uint32_t seq;
  uint32_t packed;  // kind in the low 4 bits, local stream index above
};

constexpr uint32_t Pack(Kind kind, uint32_t stream) {
  return static_cast<uint32_t>(kind) | (stream << 4);
}

/// 4-ary implicit min-heap over (time, seq) — flatter than binary, so the
/// pop path touches ~half the cache lines. Capacity is reserved at setup;
/// steady state never allocates.
class EventHeap {
 public:
  void Reserve(size_t n) { heap_.reserve(n); }
  bool empty() const { return heap_.empty(); }
  const Event& Top() const { return heap_[0]; }

  void Push(double time, uint32_t seq, uint32_t packed) {
    heap_.push_back(Event{time, seq, packed});
    size_t i = heap_.size() - 1;
    const Event e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (Less(heap_[parent], e)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  Event Pop() {
    const Event top = heap_[0];
    const Event last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      size_t i = 0;
      const size_t n = heap_.size();
      for (;;) {
        const size_t child = (i << 2) + 1;
        if (child >= n) break;
        size_t best = child;
        const size_t end = std::min(child + 4, n);
        for (size_t j = child + 1; j < end; ++j) {
          if (Less(heap_[j], heap_[best])) best = j;
        }
        if (!Less(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

 private:
  static bool Less(const Event& a, const Event& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  std::vector<Event> heap_;
};

/// Batched leg sampler: refills kBatch draws at a time through the
/// devirtualized CompiledSampler kernels instead of one virtual call per
/// message leg.
struct LegBuffer {
  const CompiledSampler* sampler = nullptr;
  std::vector<double> buf;
  size_t pos = 0;

  void Init(const CompiledSampler* s) {
    sampler = s;
    buf.resize(kBatch);
    pos = buf.size();
  }

  double Draw(Rng& rng) {
    if (pos == buf.size()) {
      sampler->SampleBatch(rng, buf.data(), static_cast<int>(buf.size()));
      pos = 0;
    }
    return buf[pos++];
  }
};

/// Per-(stream, replica) apply log: the pending (apply time, sequence)
/// entries not yet folded into `base`. The probe read resolves "what had
/// this replica applied at snapshot time t" retroactively against this ring
/// — the trick that removes per-message replica events entirely.
struct ApplyLog {
  double t[kLogSize];
  int64_t q[kLogSize];
  int64_t base = 0;  // max sequence known applied before every t[] entry
  int n = 0;
};

struct Stream {
  uint32_t gid = 0;  // global stream id (shard-layout independent)
  int64_t write_idx = 0;
  int64_t writes_left = 0;
  double read_start = 0.0;
  double snap_time[kMaxN];
  double resp_arr[kMaxN];
  ApplyLog log[kMaxN];
};

/// One logical shard of the event loop: its own heap, sequence counter,
/// RNG sub-stream, sample buffers, and the streams the ring assigned to it.
/// Shards share nothing mutable, which is what makes the conservative
/// barrier synchronization below trivially correct and the whole run
/// bitwise independent of the thread count.
struct Shard {
  EventHeap heap;
  uint32_t seq = 0;
  Rng rng{1};
  LegBuffer leg_w, leg_a, leg_r, leg_s;
  std::vector<Stream> streams;

  int64_t writes_started = 0;
  int64_t writes_committed = 0;
  int64_t writes_timed_out = 0;
  int64_t reads = 0;
  int64_t consistent_reads = 0;
  int64_t events = 0;
  double write_latency_sum = 0.0;
  double read_latency_sum = 0.0;
  uint64_t digest = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ull;  // FNV-1a prime
  return h;
}

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

/// Folds every apply-log entry with apply time <= `now` into `base`, then —
/// if the ring is still full — conservatively folds the oldest pending
/// entry (a write whose apply time is in the future gets treated as
/// applied; with kLogSize=8 and closed-loop spacing this is vanishingly
/// rare and biases *toward* consistency by at most one probe).
void CompactLog(ApplyLog& log, double now) {
  int kept = 0;
  for (int j = 0; j < log.n; ++j) {
    if (log.t[j] <= now) {
      if (log.q[j] > log.base) log.base = log.q[j];
    } else {
      log.t[kept] = log.t[j];
      log.q[kept] = log.q[j];
      ++kept;
    }
  }
  log.n = kept;
  if (log.n == kLogSize) {
    if (log.q[0] > log.base) log.base = log.q[0];
    for (int j = 1; j < log.n; ++j) {
      log.t[j - 1] = log.t[j];
      log.q[j - 1] = log.q[j];
    }
    --log.n;
  }
}

/// kTick pass: issue stream's next write — sample all N (W, A) legs at
/// once, commit at the W-th smallest round trip, and when the write
/// commits, sample the probe read's N (R, S) legs and schedule its resolve.
void TickPass(Shard& shard, Stream& st, double now,
              const HotPathOptions& options, uint32_t local) {
  ++shard.writes_started;
  ++st.write_idx;

  double ack[kMaxN];
  for (int i = 0; i < options.n; ++i) {
    const double wd = shard.leg_w.Draw(shard.rng);
    const double ad = shard.leg_a.Draw(shard.rng);
    ApplyLog& log = st.log[i];
    if (log.n == kLogSize) CompactLog(log, now);
    log.t[log.n] = now + wd;
    log.q[log.n] = st.write_idx;
    ++log.n;
    ack[i] = wd + ad;
  }
  // W-th smallest acknowledgment round trip = commit latency.
  double sorted[kMaxN];
  std::copy(ack, ack + options.n, sorted);
  std::sort(sorted, sorted + options.n);
  const double commit_delta = sorted[options.w - 1];

  double resolve_time = -1.0;
  if (commit_delta <= options.timeout_ms) {
    ++shard.writes_committed;
    shard.write_latency_sum += commit_delta;
    st.read_start = now + commit_delta + options.read_offset_ms;
    for (int i = 0; i < options.n; ++i) {
      const double rd = shard.leg_r.Draw(shard.rng);
      const double sd = shard.leg_s.Draw(shard.rng);
      st.snap_time[i] = st.read_start + rd;  // replica snapshot instant
      st.resp_arr[i] = rd + sd;
      sorted[i] = rd + sd;
    }
    std::sort(sorted, sorted + options.n);
    resolve_time = st.read_start + sorted[options.r - 1];
    shard.heap.Push(resolve_time, shard.seq++, Pack(kResolve, local));
  } else {
    ++shard.writes_timed_out;
  }

  if (--st.writes_left > 0) {
    // Closed-loop pacing: fixed spacing, but never lap an unresolved probe
    // (its per-stream snapshot state is single-buffered).
    double next = now + options.write_spacing_ms;
    if (resolve_time > next) next = resolve_time;
    shard.heap.Push(next, shard.seq++, Pack(kTick, local));
  }
  shard.digest = Mix(shard.digest, Pack(kTick, st.gid));
  shard.digest = Mix(shard.digest, Bits(now));
  shard.digest = Mix(shard.digest, Bits(commit_delta));
}

/// kResolve pass: the probe read returns. Its answer is the freshest
/// version among the R fastest responders, each resolved retroactively
/// against that replica's apply log at the replica's snapshot instant.
void ResolvePass(Shard& shard, Stream& st, double now,
                 const HotPathOptions& options) {
  uint32_t taken = 0;
  int64_t got = 0;
  for (int k = 0; k < options.r; ++k) {
    int best = -1;
    for (int i = 0; i < options.n; ++i) {
      if ((taken >> i) & 1u) continue;
      if (best < 0 || st.resp_arr[i] < st.resp_arr[best]) best = i;
    }
    taken |= 1u << best;
    const ApplyLog& log = st.log[best];
    int64_t seen = log.base;
    for (int j = 0; j < log.n; ++j) {
      if (log.t[j] <= st.snap_time[best] && log.q[j] > seen) seen = log.q[j];
    }
    if (seen > got) got = seen;
  }
  ++shard.reads;
  shard.read_latency_sum += now - st.read_start;
  if (got >= st.write_idx) ++shard.consistent_reads;
  shard.digest = Mix(shard.digest, Pack(kResolve, st.gid));
  shard.digest = Mix(shard.digest, Bits(now));
  shard.digest = Mix(shard.digest, static_cast<uint64_t>(got));
}

/// Runs one shard's loop up to the conservative-sync barrier: every event
/// with time <= `window_end` fires, in (time, seq) order.
void RunShardUntil(Shard& shard, double window_end,
                   const HotPathOptions& options) {
  while (!shard.heap.empty() && shard.heap.Top().time <= window_end) {
    const Event e = shard.heap.Pop();
    ++shard.events;
    Stream& st = shard.streams[e.packed >> 4];
    if ((e.packed & 0xFu) == kTick) {
      TickPass(shard, st, e.time, options, e.packed >> 4);
    } else {
      ResolvePass(shard, st, e.time, options);
    }
  }
}

}  // namespace

HotPathResult RunHotPath(const HotPathOptions& options) {
  HotPathOptions opt = options;
  opt.n = std::clamp(opt.n, 1, kMaxN);
  opt.r = std::clamp(opt.r, 1, opt.n);
  opt.w = std::clamp(opt.w, 1, opt.n);
  opt.num_streams = std::max(1, opt.num_streams);
  opt.writes_per_stream = std::max<int64_t>(1, opt.writes_per_stream);
  opt.num_shards = std::max(1, opt.num_shards);
  opt.sync_window_ms = std::max(1.0, opt.sync_window_ms);

  // Shared compiled samplers (read-only after construction; each shard
  // draws through its own buffer and RNG).
  const CompiledSampler sampler_w(opt.legs.w);
  const CompiledSampler sampler_a(opt.legs.a);
  const CompiledSampler sampler_r(opt.legs.r);
  const CompiledSampler sampler_s(opt.legs.s);

  // Streams -> shards through the same consistent-hash placement the
  // cluster uses for keys, so the shard layout is a property of the key
  // space (seed, num_shards) — not of execution order or thread count.
  std::vector<Shard> shards(static_cast<size_t>(opt.num_shards));
  {
    std::vector<Rng> rngs = MakeJumpStreams(Rng(opt.seed),
                                            opt.num_shards);
    const ConsistentHashRing ring(opt.num_shards, /*vnodes_per_node=*/16,
                                  opt.seed ^ 0x9E3779B97F4A7C15ull);
    for (int s = 0; s < opt.num_shards; ++s) {
      Shard& shard = shards[s];
      shard.rng = rngs[s];
      shard.leg_w.Init(&sampler_w);
      shard.leg_a.Init(&sampler_a);
      shard.leg_r.Init(&sampler_r);
      shard.leg_s.Init(&sampler_s);
    }
    for (int gid = 0; gid < opt.num_streams; ++gid) {
      const StatusOr<std::vector<int>> owner =
          ring.PreferenceList(static_cast<Key>(gid), 1);
      assert(owner.ok());
      Shard& shard = shards[owner.ok() ? owner.value()[0] : 0];
      Stream st;
      st.gid = static_cast<uint32_t>(gid);
      st.writes_left = opt.writes_per_stream;
      shard.streams.push_back(st);
    }
    for (Shard& shard : shards) {
      // At most one tick + one resolve in flight per stream.
      shard.heap.Reserve(2 * shard.streams.size() + 4);
      for (uint32_t local = 0; local < shard.streams.size(); ++local) {
        // Stagger stream starts by global id so the initial event pattern
        // is independent of the shard layout.
        shard.heap.Push(0.1 * shard.streams[local].gid, shard.seq++,
                        Pack(kTick, local));
      }
    }
  }

  // Conservative synchronization: every shard runs to the window barrier,
  // then all advance together. Shards share no mutable state, so the
  // barrier is the *only* ordering constraint — and chunk_size=1 hands each
  // shard to exactly one worker per round, making the computation a
  // function of (seed, num_shards) alone.
  const PbsExecutionOptions exec{.threads = opt.threads, .chunk_size = 1};
  double window_end = opt.sync_window_ms;
  for (;;) {
    bool any_pending = false;
    for (const Shard& shard : shards) {
      if (!shard.heap.empty()) {
        any_pending = true;
        break;
      }
    }
    if (!any_pending) break;
    ParallelFor(opt.num_shards, exec,
                [&shards, window_end, &opt](int64_t /*chunk*/, int64_t begin,
                                            int64_t end) {
                  for (int64_t s = begin; s < end; ++s) {
                    RunShardUntil(shards[s], window_end, opt);
                  }
                });
    window_end += opt.sync_window_ms;
  }

  // Merge in shard-id order (deterministic, thread-count independent).
  HotPathResult result;
  uint64_t digest = 0xcbf29ce484222325ull;
  for (const Shard& shard : shards) {
    result.writes_started += shard.writes_started;
    result.writes_committed += shard.writes_committed;
    result.writes_timed_out += shard.writes_timed_out;
    result.reads += shard.reads;
    result.consistent_reads += shard.consistent_reads;
    result.events += shard.events;
    result.mean_write_latency_ms += shard.write_latency_sum;
    result.mean_read_latency_ms += shard.read_latency_sum;
    digest = Mix(digest, shard.digest);
  }
  if (result.writes_committed > 0) {
    result.mean_write_latency_ms /=
        static_cast<double>(result.writes_committed);
  }
  if (result.reads > 0) {
    result.mean_read_latency_ms /= static_cast<double>(result.reads);
  }
  result.digest = digest;
  return result;
}

}  // namespace kvs
}  // namespace pbs
