#include "kvs/failure_detector.h"

#include <cassert>

#include "kvs/cluster.h"

namespace pbs {
namespace kvs {

HeartbeatFailureDetector::HeartbeatFailureDetector(Cluster* cluster,
                                                   const Options& options,
                                                   uint64_t seed)
    : cluster_(cluster), options_(options), rng_(seed),
      last_heard_(cluster->num_replicas(), 0.0) {
  assert(cluster != nullptr);
  assert(options.heartbeat_interval_ms > 0.0);
  assert(options.suspect_timeout_ms > 0.0);
}

void HeartbeatFailureDetector::Start() {
  // Give every replica the benefit of the doubt at startup.
  for (auto& t : last_heard_) t = cluster_->sim().now();
  Tick();
}

bool HeartbeatFailureDetector::IsSuspected(NodeId node) const {
  assert(node >= 0 && node < cluster_->num_replicas());
  return cluster_->sim().now() - last_heard_[node] >
         options_.suspect_timeout_ms;
}

void HeartbeatFailureDetector::OnPong(NodeId node) {
  ++pongs_received_;
  last_heard_[node] = cluster_->sim().now();
}

void HeartbeatFailureDetector::Tick() {
  const KvsConfig& config = cluster_->config();
  for (NodeId node = 0; node < cluster_->num_replicas(); ++node) {
    ++pings_sent_;
    // Ping travels like a read request; a live replica pongs like a read
    // response. The detector itself is infrastructure (not a simulated
    // node), so the monitor endpoint id is -1.
    const double ping_delay = config.legs.r->Sample(rng_);
    Node* target = &cluster_->node(node);
    Cluster* cluster = cluster_;
    HeartbeatFailureDetector* self = this;
    Rng* rng = &rng_;
    cluster_->network().SendWithDelay(
        /*src=*/-1, node, ping_delay, [target, cluster, self, rng, node]() {
          if (!target->alive()) return;  // fail-stop: no pong
          const double pong_delay =
              cluster->config().legs.s->Sample(*rng);
          cluster->network().SendWithDelay(
              node, /*dst=*/-1, pong_delay,
              [self, node]() { self->OnPong(node); });
        });
  }
  cluster_->sim().Schedule(options_.heartbeat_interval_ms,
                           [this]() { Tick(); });
}

}  // namespace kvs
}  // namespace pbs
