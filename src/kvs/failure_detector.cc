#include "kvs/failure_detector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kvs/cluster.h"

namespace pbs {
namespace kvs {

FailureDetector::FailureDetector(Cluster* cluster, double ping_interval_ms,
                                 uint64_t seed)
    : cluster_(cluster), ping_interval_ms_(ping_interval_ms), rng_(seed) {
  assert(cluster != nullptr);
  assert(ping_interval_ms > 0.0);
}

void FailureDetector::Start() {
  OnStart(cluster_->sim().now());
  Tick();
}

void FailureDetector::OnPong(NodeId node) {
  ++pongs_received_;
  RecordArrival(node, cluster_->sim().now());
}

void FailureDetector::Tick() {
  const KvsConfig& config = cluster_->config();
  // Monitor the *current* ring membership: joined nodes start being pinged
  // (tracked from this tick with the benefit of the doubt), removed nodes
  // stop. On a static ring this is exactly [0, num_replicas()).
  const double now = cluster_->sim().now();
  for (NodeId node : cluster_->StorageMembers()) {
    EnsureTracked(node, now);
    ++pings_sent_;
    // Ping travels like a read request; a live replica pongs like a read
    // response. The detector itself is infrastructure (not a simulated
    // node), so the monitor endpoint id is -1. A dropped ping or pong is
    // indistinguishable from a slow one — exactly the ambiguity accrual
    // detection exists to manage — so the send result is intentionally
    // unused beyond the drop accounting the network already keeps.
    const double ping_delay = config.legs.r->Sample(rng_);
    Node* target = &cluster_->node(node);
    Cluster* cluster = cluster_;
    FailureDetector* self = this;
    Rng* rng = &rng_;
    (void)cluster_->network().SendWithDelay(
        /*src=*/-1, node, ping_delay, [target, cluster, self, rng, node]() {
          if (!target->alive()) return;  // fail-stop: no pong
          const double pong_delay =
              cluster->config().legs.s->Sample(*rng);
          (void)cluster->network().SendWithDelay(
              node, /*dst=*/-1, pong_delay,
              [self, node]() { self->OnPong(node); });
        });
  }
  // Heartbeats ride the timer wheel with every other periodic timer; the
  // shared sequence counter keeps firing order identical to Schedule().
  (void)cluster_->sim().ScheduleTimer(ping_interval_ms_,
                                      [this]() { Tick(); });
}

// ---------------------------------------------------------------------------
// Heartbeat (fixed timeout)

HeartbeatFailureDetector::HeartbeatFailureDetector(Cluster* cluster,
                                                   const Options& options,
                                                   uint64_t seed)
    : FailureDetector(cluster, options.heartbeat_interval_ms, seed),
      options_(options),
      last_heard_(cluster->num_replicas(), 0.0) {
  assert(options.suspect_timeout_ms > 0.0);
}

void HeartbeatFailureDetector::OnStart(double now) {
  // Give every replica the benefit of the doubt at startup.
  for (auto& t : last_heard_) t = now;
}

bool HeartbeatFailureDetector::IsSuspected(NodeId node) const {
  assert(node >= 0);
  if (node < 0 || node >= static_cast<NodeId>(last_heard_.size())) {
    return false;  // untracked (just joined): benefit of the doubt
  }
  return cluster_->sim().now() - last_heard_[node] >
         options_.suspect_timeout_ms;
}

void HeartbeatFailureDetector::RecordArrival(NodeId node, double now) {
  EnsureTracked(node, now);
  last_heard_[node] = now;
}

void HeartbeatFailureDetector::EnsureTracked(NodeId node, double now) {
  if (node >= static_cast<NodeId>(last_heard_.size())) {
    last_heard_.resize(node + 1, now);
  }
}

// ---------------------------------------------------------------------------
// φ-accrual

PhiAccrualFailureDetector::PhiAccrualFailureDetector(Cluster* cluster,
                                                     const Options& options,
                                                     uint64_t seed)
    : FailureDetector(cluster, options.heartbeat_interval_ms, seed),
      options_(options),
      states_(cluster->num_replicas()) {
  assert(options.threshold > 0.0);
  assert(options.window_size >= 2);
  assert(options.min_std_ms > 0.0);
}

void PhiAccrualFailureDetector::OnStart(double now) {
  for (auto& state : states_) {
    state.last_arrival = now;
    state.arrivals = 0;
  }
}

void PhiAccrualFailureDetector::EnsureTracked(NodeId node, double now) {
  if (node >= static_cast<NodeId>(states_.size())) {
    const size_t old_size = states_.size();
    states_.resize(node + 1);
    for (size_t i = old_size; i < states_.size(); ++i) {
      states_[i].last_arrival = now;
    }
  }
}

void PhiAccrualFailureDetector::RecordArrival(NodeId node, double now) {
  EnsureTracked(node, now);
  NodeState& state = states_[node];
  if (state.arrivals > 0) {
    const double interval = now - state.last_arrival;
    if (static_cast<int>(state.window.size()) < options_.window_size) {
      state.window.push_back(interval);
      state.sum += interval;
      state.sum_sq += interval * interval;
    } else {
      const double evicted = state.window[state.next];
      state.window[state.next] = interval;
      state.sum += interval - evicted;
      state.sum_sq += interval * interval - evicted * evicted;
      state.next = (state.next + 1) % options_.window_size;
    }
  }
  state.last_arrival = now;
  ++state.arrivals;
}

double PhiAccrualFailureDetector::Phi(NodeId node) const {
  assert(node >= 0);
  if (node < 0 || node >= static_cast<NodeId>(states_.size())) {
    return 0.0;  // untracked (just joined): no accrued suspicion yet
  }
  const NodeState& state = states_[node];
  // Bootstrap: before two inter-arrival samples exist, assume the
  // configured heartbeat interval with the floor deviation so a node that
  // never pongs still accrues suspicion from startup.
  double mean = options_.heartbeat_interval_ms;
  double std = options_.min_std_ms;
  const size_t n = state.window.size();
  if (n >= 2) {
    mean = state.sum / static_cast<double>(n);
    const double variance =
        std::max(0.0, state.sum_sq / static_cast<double>(n) - mean * mean);
    std = std::max(std::sqrt(variance), options_.min_std_ms);
  }
  const double since = cluster_->sim().now() - state.last_arrival;
  // P(gap > since) under the normal approximation, as in the original
  // paper; -log10 turns it into the accrued suspicion level.
  const double z = (since - mean) / std;
  const double p_later = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (p_later <= 0.0) return 1e9;  // erfc underflow: certainty
  return -std::log10(p_later);
}

bool PhiAccrualFailureDetector::IsSuspected(NodeId node) const {
  if (Phi(node) >= options_.threshold) return true;
  // Silence backstop: the windowed φ can be desensitized by a poisoned
  // inter-arrival window (e.g. reordering-inflated variance on a node slow
  // from t = 0) and then never cross the threshold after the node dies.
  // Prolonged total silence is suspicious regardless of history.
  if (options_.max_silence_intervals > 0.0 &&
      node >= 0 && static_cast<size_t>(node) < states_.size()) {
    const double since =
        cluster_->sim().now() - states_[node].last_arrival;
    if (since >
        options_.max_silence_intervals * options_.heartbeat_interval_ms) {
      return true;
    }
  }
  return false;
}

}  // namespace kvs
}  // namespace pbs
