#include "kvs/consistency_level.h"

namespace pbs {
namespace kvs {

StatusOr<int> ResponsesFor(ConsistencyLevel level, int n) {
  if (n < 1) return Status::InvalidArgument("replication factor must be >= 1");
  int required = 0;
  switch (level) {
    case ConsistencyLevel::kOne:
      required = 1;
      break;
    case ConsistencyLevel::kTwo:
      required = 2;
      break;
    case ConsistencyLevel::kThree:
      required = 3;
      break;
    case ConsistencyLevel::kQuorum:
      required = n / 2 + 1;
      break;
    case ConsistencyLevel::kAll:
      required = n;
      break;
  }
  if (required > n) {
    return Status::InvalidArgument("consistency level " + ToString(level) +
                                   " requires more than N=" +
                                   std::to_string(n) + " replicas");
  }
  return required;
}

StatusOr<QuorumConfig> MakeQuorumConfig(int n, ConsistencyLevel read_level,
                                        ConsistencyLevel write_level) {
  const auto r = ResponsesFor(read_level, n);
  if (!r.ok()) return r.status();
  const auto w = ResponsesFor(write_level, n);
  if (!w.ok()) return w.status();
  return QuorumConfig{n, r.value(), w.value()};
}

std::string ToString(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kOne:
      return "ONE";
    case ConsistencyLevel::kTwo:
      return "TWO";
    case ConsistencyLevel::kThree:
      return "THREE";
    case ConsistencyLevel::kQuorum:
      return "QUORUM";
    case ConsistencyLevel::kAll:
      return "ALL";
  }
  return "UNKNOWN";
}

bool IsStrictCombination(int n, ConsistencyLevel read_level,
                         ConsistencyLevel write_level) {
  const auto config = MakeQuorumConfig(n, read_level, write_level);
  return config.ok() && config.value().IsStrict();
}

}  // namespace kvs
}  // namespace pbs
