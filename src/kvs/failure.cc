#include "kvs/failure.h"

#include <cassert>

#include "dist/primitives.h"
#include "kvs/cluster.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

void FailureSchedule::AddCrash(double time, NodeId node) {
  events_.push_back({time, node, FailureEvent::Kind::kCrash});
}

void FailureSchedule::AddRecover(double time, NodeId node) {
  events_.push_back({time, node, FailureEvent::Kind::kRecover});
}

void FailureSchedule::InstallOn(Cluster* cluster) const {
  assert(cluster != nullptr);
  for (const FailureEvent& event : events_) {
    Node* node = &cluster->node(event.node);
    const auto kind = event.kind;
    cluster->sim().At(event.time, [node, kind]() {
      if (kind == FailureEvent::Kind::kCrash) {
        node->Crash();
      } else {
        node->Recover();
      }
    });
  }
}

FailureSchedule FailureSchedule::RandomCrashRecover(int num_replicas,
                                                    double horizon_ms,
                                                    double mtbf_ms,
                                                    double mttr_ms,
                                                    uint64_t seed) {
  assert(num_replicas >= 1);
  assert(horizon_ms > 0.0);
  assert(mtbf_ms > 0.0);
  assert(mttr_ms > 0.0);
  FailureSchedule schedule;
  Rng rng(seed);
  const ExponentialDistribution up(1.0 / mtbf_ms);
  const ExponentialDistribution down(1.0 / mttr_ms);
  for (int node = 0; node < num_replicas; ++node) {
    double t = up.Sample(rng);
    while (t < horizon_ms) {
      schedule.AddCrash(t, node);
      t += down.Sample(rng);
      if (t >= horizon_ms) break;
      schedule.AddRecover(t, node);
      t += up.Sample(rng);
    }
  }
  return schedule;
}

}  // namespace kvs
}  // namespace pbs
