#include "kvs/failure.h"

#include <algorithm>
#include <cassert>

#include "dist/primitives.h"
#include "kvs/cluster.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

void FailureSchedule::AddCrash(double time, NodeId node) {
  events_.push_back({time, node, FailureEvent::Kind::kCrash});
}

void FailureSchedule::AddRecover(double time, NodeId node) {
  events_.push_back({time, node, FailureEvent::Kind::kRecover});
}

void FailureSchedule::InstallOn(Cluster* cluster) const {
  assert(cluster != nullptr);
  for (const FailureEvent& event : events_) {
    Node* node = &cluster->node(event.node);
    const auto kind = event.kind;
    cluster->sim().At(event.time, [node, kind]() {
      if (kind == FailureEvent::Kind::kCrash) {
        node->Crash();
      } else {
        node->Recover();
      }
    });
  }
}

FailureSchedule FailureSchedule::RandomCrashRecover(int num_replicas,
                                                    double horizon_ms,
                                                    double mtbf_ms,
                                                    double mttr_ms,
                                                    uint64_t seed) {
  assert(num_replicas >= 1);
  assert(horizon_ms > 0.0);
  assert(mtbf_ms > 0.0);
  assert(mttr_ms > 0.0);
  FailureSchedule schedule;
  Rng rng(seed);
  const ExponentialDistribution up(1.0 / mtbf_ms);
  const ExponentialDistribution down(1.0 / mttr_ms);
  for (int node = 0; node < num_replicas; ++node) {
    double t = up.Sample(rng);
    while (t < horizon_ms) {
      schedule.AddCrash(t, node);
      t += down.Sample(rng);
      if (t >= horizon_ms) break;
      schedule.AddRecover(t, node);
      t += up.Sample(rng);
    }
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// Gray failures

void FaultSchedule::AddSlowNode(double start, double end, NodeId node,
                                double delay_mult, double delay_add_ms) {
  assert(end > start);
  assert(delay_mult >= 1.0 || delay_add_ms > 0.0);
  GrayFault fault;
  fault.kind = GrayFault::Kind::kSlowNode;
  fault.start = start;
  fault.end = end;
  fault.node = node;
  fault.profile.delay_mult = delay_mult;
  fault.profile.delay_add_ms = delay_add_ms;
  faults_.push_back(fault);
}

void FaultSchedule::AddLinkFault(double start, double end, NodeId src,
                                 NodeId dst, const FaultProfile& profile) {
  assert(end > start);
  GrayFault fault;
  fault.kind = GrayFault::Kind::kLossyLink;
  fault.start = start;
  fault.end = end;
  fault.src = src;
  fault.dst = dst;
  fault.profile = profile;
  faults_.push_back(fault);
}

void FaultSchedule::AddLossyLink(double start, double end, NodeId src,
                                 NodeId dst, double p_good_to_bad,
                                 double p_bad_to_good, double loss_bad,
                                 double loss_good) {
  FaultProfile profile;
  profile.p_good_to_bad = p_good_to_bad;
  profile.p_bad_to_good = p_bad_to_good;
  profile.loss_bad = loss_bad;
  profile.loss_good = loss_good;
  AddLinkFault(start, end, src, dst, profile);
}

void FaultSchedule::AddDuplicatingLink(double start, double end, NodeId src,
                                       NodeId dst,
                                       double duplicate_probability) {
  FaultProfile profile;
  profile.duplicate_probability = duplicate_probability;
  AddLinkFault(start, end, src, dst, profile);
}

void FaultSchedule::AddFlappingNode(double start, double end, NodeId node,
                                    double up_ms, double down_ms) {
  assert(end > start);
  assert(up_ms > 0.0 && down_ms > 0.0);
  GrayFault fault;
  fault.kind = GrayFault::Kind::kFlappingNode;
  fault.start = start;
  fault.end = end;
  fault.node = node;
  fault.up_ms = up_ms;
  fault.down_ms = down_ms;
  faults_.push_back(fault);
}

void FaultSchedule::AddAsymmetricPartition(double start, double end,
                                           NodeId src, NodeId dst) {
  assert(end > start);
  GrayFault fault;
  fault.kind = GrayFault::Kind::kAsymmetricPartition;
  fault.start = start;
  fault.end = end;
  fault.src = src;
  fault.dst = dst;
  faults_.push_back(fault);
}

void FaultSchedule::InstallOn(Cluster* cluster) const {
  assert(cluster != nullptr);
  for (const GrayFault& fault : faults_) {
    switch (fault.kind) {
      case GrayFault::Kind::kSlowNode: {
        const NodeId node = fault.node;
        const FaultProfile profile = fault.profile;
        cluster->sim().At(fault.start, [cluster, node, profile]() {
          ++cluster->metrics().fault_slow_node_activations;
          cluster->network().SetNodeFault(node, profile);
        });
        cluster->sim().At(fault.end, [cluster, node]() {
          cluster->network().ClearNodeFault(node);
        });
        break;
      }
      case GrayFault::Kind::kLossyLink: {
        const NodeId src = fault.src;
        const NodeId dst = fault.dst;
        const FaultProfile profile = fault.profile;
        cluster->sim().At(fault.start, [cluster, src, dst, profile]() {
          ++cluster->metrics().fault_lossy_link_activations;
          cluster->network().SetLinkFault(src, dst, profile);
        });
        cluster->sim().At(fault.end, [cluster, src, dst]() {
          cluster->network().ClearLinkFault(src, dst);
        });
        break;
      }
      case GrayFault::Kind::kFlappingNode: {
        // Unroll the duty cycle into crash/recover pairs; the node is
        // always left up at fault.end.
        const NodeId id = fault.node;
        cluster->sim().At(fault.start, [cluster]() {
          ++cluster->metrics().fault_flapping_activations;
        });
        for (double t = fault.start + fault.up_ms; t < fault.end;
             t += fault.up_ms + fault.down_ms) {
          Node* node = &cluster->node(id);
          cluster->sim().At(t, [node]() { node->Crash(); });
          const double recover = std::min(t + fault.down_ms, fault.end);
          cluster->sim().At(recover, [node]() { node->Recover(); });
        }
        break;
      }
      case GrayFault::Kind::kAsymmetricPartition: {
        const NodeId src = fault.src;
        const NodeId dst = fault.dst;
        cluster->sim().At(fault.start, [cluster, src, dst]() {
          ++cluster->metrics().fault_asymmetric_partition_activations;
          cluster->network().SetOneWayPartitioned(src, dst, true);
        });
        cluster->sim().At(fault.end, [cluster, src, dst]() {
          cluster->network().SetOneWayPartitioned(src, dst, false);
        });
        break;
      }
    }
  }
}

FaultSchedule FaultSchedule::RandomGrayFailures(int num_replicas,
                                                double horizon_ms,
                                                double mean_interarrival_ms,
                                                double mean_duration_ms,
                                                uint64_t seed) {
  assert(num_replicas >= 2);
  assert(horizon_ms > 0.0);
  assert(mean_interarrival_ms > 0.0);
  assert(mean_duration_ms > 0.0);
  FaultSchedule schedule;
  Rng rng(seed);
  const ExponentialDistribution spacing(1.0 / mean_interarrival_ms);
  const ExponentialDistribution duration(1.0 / mean_duration_ms);
  double t = spacing.Sample(rng);
  while (t < horizon_ms) {
    const double end = std::min(t + duration.Sample(rng), horizon_ms);
    const NodeId node = static_cast<NodeId>(rng.NextBounded(num_replicas));
    NodeId peer = static_cast<NodeId>(rng.NextBounded(num_replicas - 1));
    if (peer >= node) ++peer;
    if (end > t) {
      switch (rng.NextBounded(4)) {
        case 0:
          schedule.AddSlowNode(t, end, node, /*delay_mult=*/10.0);
          break;
        case 1:
          schedule.AddLossyLink(t, end, node, peer, /*p_good_to_bad=*/0.1,
                                /*p_bad_to_good=*/0.3, /*loss_bad=*/0.5);
          break;
        case 2: {
          const double up = 4.0 * mean_duration_ms / 10.0;
          schedule.AddFlappingNode(t, end, node, std::max(up, 1.0),
                                   std::max(up, 1.0));
          break;
        }
        case 3:
          schedule.AddAsymmetricPartition(t, end, node, peer);
          break;
      }
    }
    t += spacing.Sample(rng);
  }
  return schedule;
}

}  // namespace kvs
}  // namespace pbs
