#ifndef PBS_KVS_FAILURE_DETECTOR_H_
#define PBS_KVS_FAILURE_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "sim/network.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

class Cluster;

/// Common interface of the cluster failure detectors. A monitor process
/// pings every storage replica each `ping_interval_ms` (ping delayed like a
/// read request, pong like a read response); subclasses decide what pong
/// arrival history means for *suspicion*. Hinted handoff and sloppy quorums
/// consume only IsSuspected(), so either detector can drive them
/// (KvsConfig::failure_detector selects one).
///
/// Detection is unreliable by nature: suspicion lags real state by up to a
/// heartbeat cycle, and slow (not dead) replicas can be falsely suspected;
/// callers must tolerate both.
class FailureDetector {
 public:
  FailureDetector(Cluster* cluster, double ping_interval_ms, uint64_t seed);
  virtual ~FailureDetector() = default;

  /// Schedules the periodic ping task. The task reschedules itself forever;
  /// drive the simulation with RunUntil(...) when a detector is running.
  void Start();

  /// True when the detector currently suspects `node` of having failed.
  virtual bool IsSuspected(NodeId node) const = 0;

  int64_t pings_sent() const { return pings_sent_; }
  int64_t pongs_received() const { return pongs_received_; }

 protected:
  /// Pong from `node` arrived at virtual time `now`.
  virtual void RecordArrival(NodeId node, double now) = 0;

  /// Called once by Start() with the start time, before the first ping.
  virtual void OnStart(double now) = 0;

  /// Grows per-node state to cover `node` (elastic membership: nodes that
  /// joined after construction), initializing fresh entries with the
  /// benefit of the doubt at `now`. Existing entries are untouched.
  virtual void EnsureTracked(NodeId node, double now) = 0;

  Cluster* cluster_;

 private:
  void Tick();
  void OnPong(NodeId node);

  double ping_interval_ms_;
  Rng rng_;
  int64_t pings_sent_ = 0;
  int64_t pongs_received_ = 0;
};

/// Heartbeat (fixed-timeout) fail-stop detector: a replica whose last pong
/// is older than `suspect_timeout_ms` is suspected. Crashed replicas stop
/// ponging and become suspected within roughly interval + timeout;
/// recovered replicas are cleared on their next pong. This is the detector
/// Dynamo-style stores ship as the conservative default.
class HeartbeatFailureDetector : public FailureDetector {
 public:
  struct Options {
    double heartbeat_interval_ms = 100.0;
    double suspect_timeout_ms = 400.0;
  };

  HeartbeatFailureDetector(Cluster* cluster, const Options& options,
                           uint64_t seed);

  bool IsSuspected(NodeId node) const override;

 protected:
  void RecordArrival(NodeId node, double now) override;
  void OnStart(double now) override;
  void EnsureTracked(NodeId node, double now) override;

 private:
  Options options_;
  std::vector<double> last_heard_;  // indexed by node id (grows on joins)
};

/// φ-accrual failure detector (Hayashibara et al.): instead of a binary
/// timeout, each replica accrues a *suspicion level*
///     φ(t) = -log10( P(pong gap > t) )
/// from the empirical distribution of its recent pong inter-arrival times
/// (normal approximation over a sliding window). A node is suspected when
/// φ crosses `threshold` — so the detection delay adapts to the link: a
/// jittery WAN path needs a long silence before φ = 8, a steady LAN path
/// only a short one. This is Cassandra's production detector, and the one
/// that keeps sloppy quorums honest under gray failures: a merely *slow*
/// node accrues suspicion gradually instead of tripping a fixed timeout.
class PhiAccrualFailureDetector : public FailureDetector {
 public:
  struct Options {
    double heartbeat_interval_ms = 100.0;
    double threshold = 8.0;        // suspect at P(gap) < 1e-8
    int window_size = 128;         // inter-arrival samples kept per node
    double min_std_ms = 2.0;       // variance floor (deterministic links)

    /// Cold-start / poisoned-window backstop: regardless of the windowed φ,
    /// a node silent for longer than `max_silence_intervals` heartbeat
    /// intervals is suspected. The windowed estimate alone can stay below
    /// `threshold` indefinitely when the inter-arrival window was inflated
    /// before the failure — e.g. a node slow or lossy from t = 0 whose
    /// reordered pongs produce a huge sample variance — leaving a dead node
    /// trusted forever. The backstop bounds detection at roughly
    /// interval * (1 + max_silence_intervals) no matter what the window
    /// learned. <= 0 disables it.
    double max_silence_intervals = 25.0;
  };

  PhiAccrualFailureDetector(Cluster* cluster, const Options& options,
                            uint64_t seed);

  bool IsSuspected(NodeId node) const override;

  /// Current suspicion level of `node`; 0 before any pong arrived twice.
  double Phi(NodeId node) const;

 protected:
  void RecordArrival(NodeId node, double now) override;
  void OnStart(double now) override;
  void EnsureTracked(NodeId node, double now) override;

 private:
  struct NodeState {
    double last_arrival = 0.0;
    int64_t arrivals = 0;
    // Sliding-window sums for mean/stddev of inter-arrival times.
    std::vector<double> window;  // ring buffer, size <= window_size
    int next = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
  };

  Options options_;
  std::vector<NodeState> states_;  // indexed by node id (grows on joins)
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_FAILURE_DETECTOR_H_
