#ifndef PBS_KVS_FAILURE_DETECTOR_H_
#define PBS_KVS_FAILURE_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "sim/network.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {

class Cluster;

/// Heartbeat-based fail-stop detector. A monitor process pings every
/// storage replica each `heartbeat_interval_ms` (ping delayed like a read
/// request, pong like a read response); a replica whose last pong is older
/// than `suspect_timeout_ms` is *suspected*. Crashed replicas stop ponging
/// and become suspected within roughly interval + timeout; recovered
/// replicas are cleared on their next pong.
///
/// Dynamo uses detectors like this to drive sloppy quorums and hinted
/// handoff (write availability under churn) — the "recovery semantics"
/// the paper's Section 6 points at. Detection is unreliable by nature:
/// suspicion lags real state by up to a heartbeat cycle, and slow (not
/// dead) replicas can be falsely suspected; callers must tolerate both.
class HeartbeatFailureDetector {
 public:
  struct Options {
    double heartbeat_interval_ms = 100.0;
    double suspect_timeout_ms = 400.0;
  };

  HeartbeatFailureDetector(Cluster* cluster, const Options& options,
                           uint64_t seed);

  /// Schedules the periodic ping task. The task reschedules itself forever;
  /// drive the simulation with RunUntil(...) when a detector is running.
  void Start();

  /// True when `node` has not answered within the suspicion timeout.
  bool IsSuspected(NodeId node) const;

  int64_t pings_sent() const { return pings_sent_; }
  int64_t pongs_received() const { return pongs_received_; }

 private:
  void Tick();
  void OnPong(NodeId node);

  Cluster* cluster_;
  Options options_;
  Rng rng_;
  std::vector<double> last_heard_;  // per storage replica
  int64_t pings_sent_ = 0;
  int64_t pongs_received_ = 0;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_FAILURE_DETECTOR_H_
