#include "kvs/rates.h"

#include <algorithm>
#include <cassert>

namespace pbs {
namespace kvs {

RateEstimator::RateEstimator(size_t window_capacity)
    : capacity_(window_capacity) {
  assert(window_capacity >= 2);
}

void RateEstimator::Record(double now) {
  assert(timestamps_.empty() || now >= timestamps_.back());
  timestamps_.push_back(now);
  if (timestamps_.size() > capacity_) timestamps_.pop_front();
}

double RateEstimator::EventsPerMs(double now) const {
  if (timestamps_.size() < 2) return 0.0;
  const double span =
      std::max(timestamps_.back(), now) - timestamps_.front();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(timestamps_.size() - 1) / span;
}

}  // namespace kvs
}  // namespace pbs
