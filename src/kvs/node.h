#ifndef PBS_KVS_NODE_H_
#define PBS_KVS_NODE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "kvs/ring.h"
#include "kvs/storage.h"
#include "kvs/version.h"
#include "kvs/version_arena.h"
#include "sim/network.h"
#include "sim/timer_wheel.h"
#include "util/flat_hash.h"
#include "util/rng.h"
#include "util/small_vector.h"
#include "util/status.h"

namespace pbs {
namespace kvs {

class Cluster;

/// Outcome of a coordinated write.
///
/// `ok` answers "did the operation return data / commit?" while `status`
/// carries the typed contract verdict: kOk, kTimedOut (no quorum before the
/// per-attempt timeout), kDeadlineExceeded (the client's retry deadline ran
/// out), or kDowngraded (a read retry accepted fewer than the configured R —
/// note ok stays true in that case since data *was* returned).
struct WriteResult {
  bool ok = false;          // W acknowledgments arrived before the timeout
  Status status;            // typed outcome (defaults to Ok; see above)
  double latency_ms = 0.0;  // client-visible write latency (= commit time)
  double commit_time = 0.0; // absolute virtual time of commit
  int64_t sequence = 0;     // the written version's per-key sequence
  int attempts = 1;         // client attempts consumed (1 = no retry)
  uint64_t trace_id = 0;    // causal trace id (0 = op not sampled)
  uint64_t ring_version = 0;  // cluster ring version when the op resolved
};

/// Outcome of a coordinated read. See WriteResult for ok/status semantics.
struct ReadResult {
  bool ok = false;          // R responses arrived before the timeout
  Status status;            // typed outcome (kDowngraded keeps ok == true)
  double latency_ms = 0.0;
  double start_time = 0.0;  // absolute virtual time the read began
  std::optional<VersionedValue> value;  // freshest among the first R
  int required = 0;         // distinct responses this read waited for
  int attempts = 1;         // client attempts consumed (1 = no retry)
  bool downgraded = false;  // a retry accepted fewer than the configured R
  uint64_t trace_id = 0;    // causal trace id (0 = op not sampled)
  uint64_t ring_version = 0;  // cluster ring version when the op resolved
};

using WriteCallback = std::function<void(const WriteResult&)>;
using ReadCallback = std::function<void(const ReadResult&)>;

/// Fired once per read after every replica responded (or the late-response
/// collection window closed): the returned version, the read start time and
/// the versions reported by the replicas that answered after the first R —
/// the input of the Section 4.3 asynchronous staleness detector.
struct LateReadInfo {
  int64_t returned_sequence = 0;  // 0 = read returned no value
  double read_start_time = 0.0;
  std::vector<int64_t> late_response_sequences;
  Key key = 0;        // the key the read targeted
  NodeId shard = 0;   // primary owner at read time (per-shard attribution)
};
using LateReadHook = std::function<void(const LateReadInfo&)>;

/// A cluster member. Every node can act as a *coordinator* (runs the quorum
/// read/write state machines of Figure 1); nodes constructed as replicas
/// additionally hold storage and serve replica requests. Dedicated
/// non-replica coordinators model Dynamo's proxying front-ends and keep the
/// event-driven cluster aligned with the WARS assumption that the
/// coordinator is not itself one of the N replicas.
///
/// Hot-path structure (see DESIGN.md §10): per-operation coordinator state
/// lives in pooled slots (deque slab + free list, indexed by a FlatMap64
/// from request id), operations move through explicit passes recorded in
/// the slot, message closures carry 16-byte VersionRef handles into the
/// cluster's VersionArena instead of value copies, and timeouts/hedges/
/// backoffs are cancellable timer-wheel entries. Steady state, the whole
/// read/write path performs no heap allocation.
class Node {
 public:
  Node(Cluster* cluster, NodeId id, bool is_replica, uint64_t seed);

  NodeId id() const { return id_; }
  bool is_replica() const { return is_replica_; }
  bool alive() const { return alive_; }

  /// Fail-stop crash: the node ignores every message until Recover(). Its
  /// durable storage survives (process restart semantics).
  void Crash() { alive_ = false; }
  void Recover() { alive_ = true; }

  ReplicaStorage& storage() { return storage_; }
  const ReplicaStorage& storage() const { return storage_; }

  // -- Coordinator API ------------------------------------------------------

  /// Fans the write out to all N replicas in the key's preference list and
  /// invokes `done` once W acknowledgments arrive (commit) or the request
  /// times out. `timeout_override_ms` > 0 replaces the configured request
  /// timeout for this operation (used by deadline-budgeted client retries).
  /// `trace_id` != 0 attributes every leg of the fan-out to a sampled causal
  /// trace (see obs/trace.h); tracing consumes zero RNG draws.
  ///
  /// During an active rebalance the fan-out covers the union of old- and
  /// new-epoch replica sets and the commit requirement is padded by the
  /// number of extra targets, so a committed write always intersects any
  /// R-quorum over the union (no acknowledged write is lost mid-rebalance).
  /// `client_ring_version` != 0 is the ring version the client last
  /// observed; an op routed with an older version is still served (the
  /// coordinator always routes by the current ring) and counted in
  /// stale_routes_forwarded.
  void CoordinateWrite(Key key, VersionedValue value, WriteCallback done,
                       double timeout_override_ms = 0.0,
                       uint64_t trace_id = 0,
                       uint64_t client_ring_version = 0);

  /// Fans the read out to all N replicas and invokes `done` with the
  /// freshest of the first R responses (or a timeout failure). Late
  /// responses feed read repair and the LateReadHook.
  /// `required_override` > 0 replaces the configured R for this operation
  /// (client consistency downgrade on retry); `timeout_override_ms` > 0
  /// replaces the configured request timeout; `trace_id` != 0 attributes
  /// the fan-out (including hedges and repairs) to a sampled causal trace.
  void CoordinateRead(Key key, ReadCallback done, int required_override = 0,
                      double timeout_override_ms = 0.0, uint64_t trace_id = 0,
                      uint64_t client_ring_version = 0);

  // -- Replica message handlers (invoked via the network) -------------------

  /// Sentinel for `hint_home`: the write targets its home replica.
  static constexpr NodeId kNoHint = -1;

  /// Applies a replicated write. When `hint_home` names another node, this
  /// node is acting as a sloppy-quorum substitute: it stores the value as a
  /// hint for `hint_home` (acknowledging as usual) and forwards it once the
  /// home replica stops being suspected.
  void HandleWriteRequest(Key key, const VersionedValue& value,
                          NodeId coordinator, uint64_t request_id,
                          bool is_repair, NodeId hint_home = kNoHint,
                          uint64_t trace_id = 0);
  void HandleReadRequest(Key key, NodeId coordinator, uint64_t request_id,
                         uint64_t trace_id = 0);

  /// Hints currently parked on this node (sloppy quorums).
  size_t num_hints() const { return hints_.size(); }

  // -- Coordinator message handlers ------------------------------------------

  void OnWriteAck(uint64_t request_id, NodeId replica);
  void OnReadResponse(uint64_t request_id, NodeId replica,
                      std::optional<VersionedValue> value);

 private:
  /// Write-op passes. kCollect counts acks against the padded W; the
  /// request-timeout pass moves the op to kHandoff (hinted handoff
  /// re-delivery under backoff) when enabled, otherwise retires it.
  /// `committed` / `timed_out` are outcome flags orthogonal to the pass (a
  /// write can time out, report failure, and still commit late during the
  /// handoff drain).
  enum class WritePass : uint8_t { kCollect, kHandoff };

  /// Read-op passes. kCollect assembles the first R responses; the return
  /// pass hands the client its answer and moves the op to kLateCollect,
  /// where remaining responses feed read repair and the staleness detector
  /// until the close pass retires the slot.
  enum class ReadPass : uint8_t { kCollect, kLateCollect };

  struct PendingWrite {
    uint64_t request_id = 0;
    uint32_t slot = 0;  // own pool index (for free-list recycling)
    Key key = 0;
    VersionRef value;               // payload slot in the cluster arena
    std::vector<NodeId> replicas;   // capacity survives slot reuse
    uint64_t acked_mask = 0;        // bit i set <=> replicas[i] acked
    int acks = 0;
    int required = 1;  // W captured at start (survives live reconfiguration)
    int handoff_retries = 0;
    double start_time = 0.0;
    WritePass pass = WritePass::kCollect;
    bool committed = false;
    bool timed_out = false;
    uint64_t trace_id = 0;  // 0 = op not sampled, tracing a no-op
    NodeId shard = 0;       // primary owner at start (per-shard metrics)
    TimerHandle timer;      // request timeout, then the handoff backoff
    WriteCallback done;
  };

  struct ReadResponse {
    NodeId replica = 0;
    bool has_value = false;
    VersionedValue value;
  };

  struct PendingRead {
    uint64_t request_id = 0;
    uint32_t slot = 0;              // own pool index
    Key key = 0;
    std::vector<NodeId> replicas;   // contacted replicas (grows on hedges)
    std::vector<NodeId> untried;    // preference-list replicas never tried
    std::vector<NodeId> hedge_only; // replicas first contacted by a hedge
    int responses = 0;  // distinct replicas heard from (duplicates dropped)
    int required = 1;  // R captured at start (survives live reconfiguration)
    ReadPass pass = ReadPass::kCollect;
    double start_time = 0.0;
    bool has_best = false;      // freshest among first R, when any arrived
    VersionedValue best;
    bool has_best_all = false;  // freshest among all responses
    VersionedValue best_all;
    // First `responses` entries are live; entries (and their value buffers)
    // are reused in place across slot recycling instead of cleared.
    std::vector<ReadResponse> all;
    std::vector<int64_t> late_sequences;
    uint64_t trace_id = 0;  // 0 = op not sampled, tracing a no-op
    NodeId shard = 0;       // primary owner at start (per-shard metrics)
    TimerHandle timeout_timer;
    TimerHandle hedge_timer;
    ReadCallback done;

    bool returned() const { return pass != ReadPass::kCollect; }
  };

  struct Hint {
    Key key = 0;
    NodeId home = 0;
    VersionedValue value;
  };

  // Pooled-slot plumbing: request id -> slot via FlatMap64, slots recycled
  // through free lists. Deques give reference stability (a pass may hold a
  // slot reference across a `done` callback that starts a new operation).
  PendingWrite* FindWrite(uint64_t request_id);
  PendingRead* FindRead(uint64_t request_id);
  PendingWrite& AcquireWrite(uint64_t request_id);
  PendingRead& AcquireRead(uint64_t request_id);
  void RetireWrite(PendingWrite& pending);
  void RetireRead(PendingRead& pending);

  // Write passes.
  void OnWriteTimeout(uint64_t request_id);
  void ResendUnacked(uint64_t request_id);

  // Read passes.
  void OnReadTimeout(uint64_t request_id);
  void OnHedgeDeadline(uint64_t request_id);
  void OnReadResponseValue(uint64_t request_id, NodeId replica,
                           const VersionedValue* value);
  void ReturnRead(PendingRead& pending, NodeId replica);
  void MaybeFinishReadCollection(PendingRead& pending);
  void CloseReadCollection(PendingRead& pending);
  void SendReadRepairs(const PendingRead& pending);
  void SendReadRequest(Key key, NodeId replica, uint64_t request_id,
                       uint64_t trace_id, bool is_hedge);

  // Sloppy-quorum hints.
  void StoreHint(Key key, NodeId home, const VersionedValue& value);
  void DeliverHints();

  Cluster* cluster_;
  NodeId id_;
  bool is_replica_;
  bool alive_ = true;
  Rng rng_;
  ReplicaStorage storage_;

  std::deque<PendingWrite> write_pool_;
  std::vector<uint32_t> write_free_;
  FlatMap64 write_index_;
  std::deque<PendingRead> read_pool_;
  std::vector<uint32_t> read_free_;
  FlatMap64 read_index_;

  // CoordinateWrite scratch, reused per call: sloppy-quorum hint targets
  // (parallel to the pending op's replica list) and the extended
  // preference list substitutes are drawn from.
  SmallVector<NodeId, 8> hint_homes_;
  std::vector<NodeId> extended_scratch_;

  std::vector<Hint> hints_;
  bool hint_task_scheduled_ = false;
};

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_NODE_H_
