#ifndef PBS_KVS_EXPERIMENT_H_
#define PBS_KVS_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kvs/cluster.h"
#include "kvs/controller.h"
#include "kvs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace pbs {
namespace kvs {

/// The Section 5.2 measurement harness: "we inserted increasing versions of
/// a key while concurrently issuing read requests". One writer client
/// inserts version i at a fixed spacing; each commit triggers probe reads at
/// the configured offsets t after commit, through a *different* coordinator
/// (as in WARS, where read and write coordinators are independent). A probe
/// read is consistent if it returns the committed (or any newer) version.
struct StalenessExperimentOptions {
  /// Cluster configuration (quorum, WARS legs, read repair, anti-entropy,
  /// failures are installed by the caller before running if desired).
  KvsConfig cluster;

  /// Number of versions written (the paper used 50,000 writes per
  /// configuration).
  int writes = 10000;

  /// Time between consecutive write starts; must comfortably exceed typical
  /// write latency so writes do not overlap (overlapping in-flight writes
  /// only make data fresher than predicted — Section 4.2).
  double write_spacing_ms = 250.0;

  /// Probe offsets t (ms after commit) at which reads are issued.
  std::vector<double> read_offsets_ms = {0.0, 1.0, 2.0, 5.0, 10.0,
                                         25.0, 50.0, 100.0};

  /// Attach a LegProfiler for the run so the result registry carries the
  /// measured per-leg delay histograms ("legs/w_ms" ... "legs/s_ms").
  bool profile_legs = false;

  uint64_t seed = 7;
};

struct StalenessExperimentResult {
  /// Empirical t-visibility: P(consistent | t) per probed offset.
  std::vector<ConsistencyByOffset::Point> t_visibility;

  /// Client-observed operation latencies.
  std::vector<double> write_latencies;
  std::vector<double> read_latencies;

  /// Version staleness across all probe reads (0 = fresh).
  VersionStalenessHistogram version_staleness;

  /// Detector counts (Section 4.3), populated when run with a detector.
  int64_t detector_stale = 0;
  int64_t detector_false_positives = 0;
  int64_t detector_consistent = 0;

  /// Snapshot of cluster counters at the end of the run.
  ClusterMetrics final_metrics;

  /// Total messages the network delivered (request+response legs of every
  /// operation, repairs, gossip, handoffs, heartbeats).
  int64_t network_messages = 0;

  /// Messages lost (partitions, global drops, fault-profile loss) and extra
  /// copies injected by duplicating fault profiles.
  int64_t network_messages_dropped = 0;
  int64_t network_messages_duplicated = 0;

  /// Every named instrument the run produced (cluster counters, latency
  /// histograms, per-leg profiles when attached) — feed to MetricsJsonl().
  obs::Registry registry;

  /// Retained trace events when options.cluster.obs.trace_enabled — feed to
  /// ChromeTraceJson() / StalenessAuditJsonl(). Empty when tracing is off.
  std::vector<obs::TraceEvent> trace;

  /// Closed-loop controller outputs, populated when
  /// options.cluster.controller.enabled: the decision stream, the
  /// audit-joinable configuration history (pass to the 4-argument
  /// WriteStalenessAudit), and the FNV decision digest.
  std::vector<ConsistencyController::Decision> controller_decisions;
  std::vector<obs::AdaptationRecord> controller_history;
  uint64_t controller_digest = 0;

  /// Streaming telemetry (DESIGN.md §13), populated when
  /// options.cluster.obs.telemetry_window_ms > 0: the windowed registry
  /// ring, the monitor's scored samples and raised alerts (monitor_enabled
  /// only), and the composed JSONL artifact — time-series windows, monitor
  /// samples/alerts and controller decisions as typed lines, ready for
  /// `pbs report` / obs::RenderDashboardHtml. Empty when telemetry is off.
  obs::TimeSeries timeseries;
  std::vector<obs::WindowSample> monitor_samples;
  std::vector<obs::Alert> monitor_alerts;
  std::string telemetry_jsonl;

  /// Snapshot provenance for the metrics artifact: the predictor of record
  /// (controller epoch predictor, else the monitor fit), its note, and the
  /// controller decision active at the end of the run. Pass to the header
  /// overload of obs::WriteMetricsJsonl so `pbs simulate --metrics-out`
  /// artifacts carry their own provenance line.
  obs::MetricsSnapshotHeader metrics_header;

  /// P(consistent | t) for a probed offset (asserts the offset was probed).
  double ProbConsistentAt(double t) const;
};

/// Builds a cluster per `options.cluster` (forcing two dedicated
/// coordinators: one for writes, one for reads), runs the harness and
/// returns the measurements. Deterministic given options.seed.
StalenessExperimentResult RunStalenessExperiment(
    const StalenessExperimentOptions& options);

/// As above, but installs the fail-stop schedule on the cluster before
/// running (Section 6 "Failure modes" experiments).
class FailureSchedule;
StalenessExperimentResult RunStalenessExperimentWithFailures(
    const StalenessExperimentOptions& options,
    const FailureSchedule& failures);

/// As above, but installs a gray-fault schedule (slow nodes, bursty lossy
/// links, flapping, one-way partitions) before running. Fail-stop and gray
/// faults compose: pass both when a scenario needs crashes *and* gray
/// degradation.
class FaultSchedule;
StalenessExperimentResult RunStalenessExperimentWithFaults(
    const StalenessExperimentOptions& options, const FaultSchedule& faults,
    const FailureSchedule* failures = nullptr);

/// Scalar digest of one (or a pool of) chaos experiment run(s). Everything
/// is either an exact integer counter or a quantile of a deterministically
/// sorted latency pool, so two runs of the same seeded workload compare
/// bitwise equal — the contract parallel_determinism_test pins across
/// thread counts.
struct ChaosSummary {
  int64_t reads_started = 0;
  int64_t reads_failed = 0;
  int64_t writes_started = 0;
  int64_t writes_failed = 0;
  int64_t hedged_reads_sent = 0;
  int64_t hedged_reads_won = 0;
  int64_t duplicate_responses_suppressed = 0;
  int64_t duplicate_acks_suppressed = 0;
  int64_t client_read_retries = 0;
  int64_t client_write_retries = 0;
  int64_t client_deadline_misses = 0;
  int64_t consistency_downgrades = 0;
  int64_t monotonic_read_violations = 0;
  int64_t messages_dropped = 0;
  int64_t messages_duplicated = 0;
  int64_t fault_activations = 0;

  // Client-visible read/write latency quantiles (ms).
  double read_p50 = 0.0;
  double read_p99 = 0.0;
  double read_p999 = 0.0;
  double read_max = 0.0;
  double write_p50 = 0.0;
  double write_p99 = 0.0;
  double write_p999 = 0.0;

  // Empirical t-visibility, aligned with the probed read offsets: exact
  // counts so pooled summaries stay integer-exact.
  std::vector<double> probe_offsets_ms;
  std::vector<int64_t> probe_trials;
  std::vector<int64_t> probe_consistent;

  double ProbConsistentAtIndex(size_t i) const {
    return probe_trials[i] == 0 ? 1.0
                                : static_cast<double>(probe_consistent[i]) /
                                      static_cast<double>(probe_trials[i]);
  }

  friend bool operator==(const ChaosSummary&, const ChaosSummary&) = default;
};

/// A chaos campaign: `trials` independent seeded runs of the staleness
/// harness, each under its own RandomGrayFailures schedule. Trial t derives
/// its workload and fault seeds from the t-th draws of a Jump()-partitioned
/// stream, so the campaign is bitwise identical at any thread count (the
/// (seed, chunk_size) contract of util/parallel.h).
struct ChaosTrialOptions {
  StalenessExperimentOptions experiment;  // per-trial seed is overridden
  int trials = 8;

  /// RandomGrayFailures knobs; inject_faults=false runs the same workload
  /// fault-free (the hedging on/off baseline).
  bool inject_faults = true;
  double fault_mean_interarrival_ms = 4000.0;
  double fault_mean_duration_ms = 1500.0;

  uint64_t seed = 99;
};

struct ChaosCampaignResult {
  /// Per-trial summaries in trial order (index = trial id).
  std::vector<ChaosSummary> trials;
  /// Everything pooled: counters added, latency quantiles recomputed over
  /// the concatenated (trial-ordered, then sorted) latency pools.
  ChaosSummary pooled;
  /// The campaign's merged instrument registry (per-trial registries merged
  /// in trial order), serialized as JSON lines. A string rather than a live
  /// Registry so the defaulted operator== makes thread-count determinism of
  /// the merge directly assertable (and the artifact directly uploadable).
  std::string metrics_jsonl;

  friend bool operator==(const ChaosCampaignResult&,
                         const ChaosCampaignResult&) = default;
};

ChaosCampaignResult RunChaosTrials(const ChaosTrialOptions& options,
                                   const PbsExecutionOptions& exec);

/// A closed-loop controller campaign: like RunChaosTrials, but each trial
/// runs the staleness harness with the ConsistencyController active
/// (options.experiment.cluster.controller.enabled) under a caller-supplied
/// FaultSchedule factory — the deterministic hook bench/pcap and the
/// determinism tests use to pin named chaos scenarios (10x slow replica,
/// flapping node) instead of RandomGrayFailures. With the controller
/// disabled the same runner (same per-trial seeding) yields the paired
/// static-configuration baseline; decision fields then stay zero.
struct ControllerTrialOptions {
  StalenessExperimentOptions experiment;  // per-trial seed is overridden
  int trials = 4;

  /// Builds the trial's gray-fault schedule from the run horizon and the
  /// trial's fault seed; null runs fault-free. Must be a pure function of
  /// its arguments (it is called from worker threads).
  std::function<FaultSchedule(double horizon_ms, uint64_t seed)> faults;

  uint64_t seed = 202;
};

/// Per-trial digest of a controller campaign run: the chaos scalars plus
/// the decision stream digest, decision/step/rollback counts, the final
/// knob state and the measured freshness counters. Fully ==-comparable for
/// the thread-count determinism pins.
struct ControllerCampaignSummary {
  ChaosSummary chaos;
  uint64_t decision_digest = 0;
  int64_t decisions = 0;
  int64_t steps = 0;
  int64_t rollbacks = 0;
  int final_r_lo = 0;
  int final_r_hi = 0;
  int final_w = 0;
  double final_mix = 0.0;
  bool final_hedge = false;
  double final_hedge_quantile = 0.0;
  int final_retry_attempts = 1;
  int64_t reads_fresh_measured = 0;
  int64_t reads_stale_measured = 0;

  /// Streaming-telemetry pins (0 when the trial ran telemetry-off, so
  /// pre-telemetry campaign pins are unaffected): FNV-1a over the trial's
  /// composed telemetry JSONL, plus the monitor's window/alert counts.
  uint64_t telemetry_digest = 0;
  int64_t monitor_windows = 0;
  int64_t monitor_alerts = 0;

  friend bool operator==(const ControllerCampaignSummary&,
                         const ControllerCampaignSummary&) = default;
};

struct ControllerCampaignResult {
  std::vector<ControllerCampaignSummary> trials;  // trial order
  ChaosSummary pooled;
  /// FNV-1a over the per-trial decision digests in trial order — one
  /// number that pins the whole campaign's decision history bitwise.
  uint64_t pooled_digest = 0;
  /// FNV-1a over the per-trial telemetry digests in trial order (offset
  /// basis when every trial ran telemetry-off) — pins windowed registries,
  /// monitor streams and decision exports across thread counts.
  uint64_t pooled_telemetry_digest = 0;

  friend bool operator==(const ControllerCampaignResult&,
                         const ControllerCampaignResult&) = default;
};

ControllerCampaignResult RunControllerTrials(
    const ControllerTrialOptions& options, const PbsExecutionOptions& exec);

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_EXPERIMENT_H_
