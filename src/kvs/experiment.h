#ifndef PBS_KVS_EXPERIMENT_H_
#define PBS_KVS_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "kvs/cluster.h"
#include "kvs/metrics.h"

namespace pbs {
namespace kvs {

/// The Section 5.2 measurement harness: "we inserted increasing versions of
/// a key while concurrently issuing read requests". One writer client
/// inserts version i at a fixed spacing; each commit triggers probe reads at
/// the configured offsets t after commit, through a *different* coordinator
/// (as in WARS, where read and write coordinators are independent). A probe
/// read is consistent if it returns the committed (or any newer) version.
struct StalenessExperimentOptions {
  /// Cluster configuration (quorum, WARS legs, read repair, anti-entropy,
  /// failures are installed by the caller before running if desired).
  KvsConfig cluster;

  /// Number of versions written (the paper used 50,000 writes per
  /// configuration).
  int writes = 10000;

  /// Time between consecutive write starts; must comfortably exceed typical
  /// write latency so writes do not overlap (overlapping in-flight writes
  /// only make data fresher than predicted — Section 4.2).
  double write_spacing_ms = 250.0;

  /// Probe offsets t (ms after commit) at which reads are issued.
  std::vector<double> read_offsets_ms = {0.0, 1.0, 2.0, 5.0, 10.0,
                                         25.0, 50.0, 100.0};

  uint64_t seed = 7;
};

struct StalenessExperimentResult {
  /// Empirical t-visibility: P(consistent | t) per probed offset.
  std::vector<ConsistencyByOffset::Point> t_visibility;

  /// Client-observed operation latencies.
  std::vector<double> write_latencies;
  std::vector<double> read_latencies;

  /// Version staleness across all probe reads (0 = fresh).
  VersionStalenessHistogram version_staleness;

  /// Detector counts (Section 4.3), populated when run with a detector.
  int64_t detector_stale = 0;
  int64_t detector_false_positives = 0;
  int64_t detector_consistent = 0;

  /// Snapshot of cluster counters at the end of the run.
  ClusterMetrics final_metrics;

  /// Total messages the network delivered (request+response legs of every
  /// operation, repairs, gossip, handoffs, heartbeats).
  int64_t network_messages = 0;

  /// P(consistent | t) for a probed offset (asserts the offset was probed).
  double ProbConsistentAt(double t) const;
};

/// Builds a cluster per `options.cluster` (forcing two dedicated
/// coordinators: one for writes, one for reads), runs the harness and
/// returns the measurements. Deterministic given options.seed.
StalenessExperimentResult RunStalenessExperiment(
    const StalenessExperimentOptions& options);

/// As above, but installs the fail-stop schedule on the cluster before
/// running (Section 6 "Failure modes" experiments).
class FailureSchedule;
StalenessExperimentResult RunStalenessExperimentWithFailures(
    const StalenessExperimentOptions& options,
    const FailureSchedule& failures);

}  // namespace kvs
}  // namespace pbs

#endif  // PBS_KVS_EXPERIMENT_H_
