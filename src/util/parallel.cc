#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace pbs {
namespace {

// Set while a thread is executing inside a parallel region; nested
// ParallelFor calls (and Run() re-entry) degrade to serial execution instead
// of deadlocking the pool.
thread_local bool t_inside_parallel_region = false;

}  // namespace

int PbsExecutionOptions::ResolvedThreads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int64_t NumChunks(int64_t num_items, const PbsExecutionOptions& options) {
  assert(num_items >= 0);
  const int64_t chunk = std::max<int64_t>(1, options.chunk_size);
  return (num_items + chunk - 1) / chunk;
}

std::vector<Rng> MakeJumpStreams(Rng base, int64_t count) {
  assert(count >= 0);
  std::vector<Rng> streams;
  streams.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    streams.push_back(base);
    base.Jump();
  }
  return streams;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(0, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    t_inside_parallel_region = true;
    task();
    t_inside_parallel_region = false;
  }
}

void ThreadPool::Run(int fanout, const std::function<void(int)>& task) {
  if (fanout <= 1 || workers_.empty() || t_inside_parallel_region) {
    // Serial fallback: no helpers available (or already inside a region).
    // Must not enqueue: with zero workers a queued closure would never run
    // and the completion wait below would block forever.
    const bool was_inside = t_inside_parallel_region;
    t_inside_parallel_region = true;
    for (int id = 0; id < fanout; ++id) task(id);
    t_inside_parallel_region = was_inside;
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = fanout - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int id = 1; id < fanout; ++id) {
      queue_.push_back([&task, &done_mu, &done_cv, &remaining, id] {
        task(id);
        std::lock_guard<std::mutex> done_lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
  }
  work_available_.notify_all();

  t_inside_parallel_region = true;
  task(0);
  t_inside_parallel_region = false;

  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&remaining] { return remaining == 0; });
}

ThreadPool& SharedThreadPool() {
  // The calling thread always participates in Run(), so the pool itself only
  // needs hardware_concurrency - 1 workers to saturate the machine. Keep a
  // floor of one worker so explicit multi-thread requests exercise the real
  // cross-thread path (and are TSan-visible) even on single-core hosts;
  // default (threads = 0) runs there still execute serially because
  // ParallelFor's fanout is 1.
  static ThreadPool pool(
      std::max(1, PbsExecutionOptions{}.ResolvedThreads() - 1));
  return pool;
}

void ParallelFor(int64_t num_items, const PbsExecutionOptions& options,
                 const std::function<void(int64_t, int64_t, int64_t)>& body) {
  assert(num_items >= 0);
  if (num_items == 0) return;
  const int64_t chunk = std::max<int64_t>(1, options.chunk_size);
  const int64_t num_chunks = NumChunks(num_items, options);
  const int fanout = static_cast<int>(std::min<int64_t>(
      std::max(1, options.ResolvedThreads()), num_chunks));

  const auto run_chunk = [&](int64_t c) {
    const int64_t begin = c * chunk;
    const int64_t end = std::min(num_items, begin + chunk);
    body(c, begin, end);
  };

  if (fanout <= 1 || t_inside_parallel_region) {
    for (int64_t c = 0; c < num_chunks; ++c) run_chunk(c);
    return;
  }

  // Chunk geometry and chunk -> stream mapping are fixed above; the atomic
  // counter only decides which *thread* executes a chunk.
  std::atomic<int64_t> next_chunk{0};
  SharedThreadPool().Run(fanout, [&](int /*worker_id*/) {
    for (;;) {
      const int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      run_chunk(c);
    }
  });
}

}  // namespace pbs
