#ifndef PBS_UTIL_SMALL_SORT_H_
#define PBS_UTIL_SMALL_SORT_H_

#include <algorithm>
#include <bit>
#include <cstdint>

namespace pbs {

/// Branch-free sorting networks for the tiny arrays in the WARS trial kernel.
///
/// A Monte Carlo trial needs the W-th smallest of N write-ack times and the
/// first R of N read round trips, with N typically 3–10. nth_element /
/// partial_sort pay function-call and branch-misprediction costs that dwarf
/// the work at those sizes; on random data every comparison of an insertion
/// sort is a coin flip, so mispredictions alone cost more than the whole
/// network. The networks below compile to cmov/minsd/maxsd chains with no
/// data-dependent branches.
///
/// Correctness of the comparator sequences is proven exhaustively in
/// tests/util_small_sort_test.cc via the 0-1 principle (a comparator network
/// that sorts all 2^n binary vectors sorts everything).
///
/// All keys must be non-NaN (latencies are finite by construction).

namespace small_sort_internal {

inline void CSwap(double& a, double& b) {
  const double lo = a < b ? a : b;  // minsd
  const double hi = a < b ? b : a;  // maxsd
  a = lo;
  b = hi;
}

/// Compare-exchange on (key, payload) pairs. The payload moves with its key
/// via an exact XOR-mask swap (no floating-point blend, so payloads are
/// preserved bit-for-bit). Ties keep the original order.
inline void CSwapPair(double& ka, double& kb, double& va, double& vb) {
  const bool sw = kb < ka;
  const double klo = sw ? kb : ka;
  const double khi = sw ? ka : kb;
  const uint64_t mask = sw ? ~uint64_t{0} : uint64_t{0};
  uint64_t x = std::bit_cast<uint64_t>(va);
  uint64_t y = std::bit_cast<uint64_t>(vb);
  const uint64_t t = (x ^ y) & mask;
  ka = klo;
  kb = khi;
  va = std::bit_cast<double>(x ^ t);
  vb = std::bit_cast<double>(y ^ t);
}

// Optimal-depth comparator sequences (Knuth TAOCP vol. 3 / Bose–Nelson).
// Each entry is a compare-exchange (i, j) with i < j.
inline constexpr int kNetwork2[][2] = {{0, 1}};
inline constexpr int kNetwork3[][2] = {{0, 2}, {0, 1}, {1, 2}};
inline constexpr int kNetwork4[][2] = {{0, 1}, {2, 3}, {0, 2}, {1, 3}, {1, 2}};
inline constexpr int kNetwork5[][2] = {{0, 3}, {1, 4}, {0, 2}, {1, 3}, {0, 1},
                                       {2, 4}, {1, 2}, {3, 4}, {2, 3}};
inline constexpr int kNetwork6[][2] = {{1, 2}, {4, 5}, {0, 2}, {3, 5},
                                       {0, 1}, {3, 4}, {2, 5}, {0, 3},
                                       {1, 4}, {2, 4}, {1, 3}, {2, 3}};
inline constexpr int kNetwork7[][2] = {{1, 2}, {3, 4}, {5, 6}, {0, 2},
                                       {3, 5}, {4, 6}, {0, 1}, {4, 5},
                                       {2, 6}, {0, 4}, {1, 5}, {0, 3},
                                       {2, 5}, {1, 3}, {2, 4}, {2, 3}};
inline constexpr int kNetwork8[][2] = {
    {0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 2}, {1, 3}, {4, 6}, {5, 7}, {1, 2},
    {5, 6}, {0, 4}, {3, 7}, {1, 5}, {2, 6}, {1, 4}, {3, 6}, {2, 4}, {3, 5},
    {3, 4}};

template <size_t M>
inline void RunNetwork(const int (&net)[M][2], double* k) {
  for (size_t c = 0; c < M; ++c) CSwap(k[net[c][0]], k[net[c][1]]);
}

template <size_t M>
inline void RunNetworkPairs(const int (&net)[M][2], double* k, double* v) {
  for (size_t c = 0; c < M; ++c) {
    CSwapPair(k[net[c][0]], k[net[c][1]], v[net[c][0]], v[net[c][1]]);
  }
}

template <size_t M>
inline void RunColumnNetwork(const int (&net)[M][2], double* k, int stride,
                             int len) {
  for (size_t c = 0; c < M; ++c) {
    double* x = k + net[c][0] * stride;
    double* y = k + net[c][1] * stride;
    for (int t = 0; t < len; ++t) {
      const double lo = x[t] < y[t] ? x[t] : y[t];
      const double hi = x[t] < y[t] ? y[t] : x[t];
      x[t] = lo;
      y[t] = hi;
    }
  }
}

template <size_t M>
inline void RunColumnNetworkPairs(const int (&net)[M][2], double* k, double* v,
                                  int stride, int len) {
  for (size_t c = 0; c < M; ++c) {
    double* xk = k + net[c][0] * stride;
    double* yk = k + net[c][1] * stride;
    double* xv = v + net[c][0] * stride;
    double* yv = v + net[c][1] * stride;
    for (int t = 0; t < len; ++t) {
      // Strict < keeps tie order; the payload moves by mask-select (bit
      // exact, no FP arithmetic), matching CSwapPair's semantics.
      const bool sw = yk[t] < xk[t];
      const double klo = sw ? yk[t] : xk[t];
      const double khi = sw ? xk[t] : yk[t];
      const double vlo = sw ? yv[t] : xv[t];
      const double vhi = sw ? xv[t] : yv[t];
      xk[t] = klo;
      yk[t] = khi;
      xv[t] = vlo;
      yv[t] = vhi;
    }
  }
}

}  // namespace small_sort_internal

/// Sorts k[0..n) ascending. Networks for n <= 8, std::sort beyond.
inline void SmallSort(double* k, int n) {
  using namespace small_sort_internal;
  switch (n) {
    case 0:
    case 1:
      return;
    case 2:
      RunNetwork(kNetwork2, k);
      return;
    case 3:
      RunNetwork(kNetwork3, k);
      return;
    case 4:
      RunNetwork(kNetwork4, k);
      return;
    case 5:
      RunNetwork(kNetwork5, k);
      return;
    case 6:
      RunNetwork(kNetwork6, k);
      return;
    case 7:
      RunNetwork(kNetwork7, k);
      return;
    case 8:
      RunNetwork(kNetwork8, k);
      return;
    default:
      std::sort(k, k + n);
      return;
  }
}

/// Sorts k[0..n) ascending, carrying v[0..n) along (v[i] stays attached to
/// its key). For ties the relative order of payloads is preserved.
inline void SmallSortPairs(double* k, double* v, int n) {
  using namespace small_sort_internal;
  switch (n) {
    case 0:
    case 1:
      return;
    case 2:
      RunNetworkPairs(kNetwork2, k, v);
      return;
    case 3:
      RunNetworkPairs(kNetwork3, k, v);
      return;
    case 4:
      RunNetworkPairs(kNetwork4, k, v);
      return;
    case 5:
      RunNetworkPairs(kNetwork5, k, v);
      return;
    case 6:
      RunNetworkPairs(kNetwork6, k, v);
      return;
    case 7:
      RunNetworkPairs(kNetwork7, k, v);
      return;
    case 8:
      RunNetworkPairs(kNetwork8, k, v);
      return;
    default: {
      // Indirect sort then cycle-gather; n > 8 is rare enough that the
      // simple insertion variant is fine and keeps tie order stable.
      for (int i = 1; i < n; ++i) {
        const double key = k[i];
        const double val = v[i];
        int j = i - 1;
        while (j >= 0 && k[j] > key) {
          k[j + 1] = k[j];
          v[j + 1] = v[j];
          --j;
        }
        k[j + 1] = key;
        v[j + 1] = val;
      }
      return;
    }
  }
}

/// Compile-time-size variants: with N fixed the switch dispatch disappears
/// and the whole network inlines into the caller as a straight-line
/// cmov/minsd/maxsd chain — the runtime-n entry points above cost several
/// times the network itself in call + dispatch overhead when invoked once
/// per Monte Carlo trial. The WARS trial kernel dispatches on n once and
/// then runs a fully specialized body.
template <int N>
inline void SmallSortFixed(double* k) {
  using namespace small_sort_internal;
  static_assert(N >= 0 && N <= 8, "networks are defined for n <= 8");
  if constexpr (N == 2) RunNetwork(kNetwork2, k);
  if constexpr (N == 3) RunNetwork(kNetwork3, k);
  if constexpr (N == 4) RunNetwork(kNetwork4, k);
  if constexpr (N == 5) RunNetwork(kNetwork5, k);
  if constexpr (N == 6) RunNetwork(kNetwork6, k);
  if constexpr (N == 7) RunNetwork(kNetwork7, k);
  if constexpr (N == 8) RunNetwork(kNetwork8, k);
}

/// Pair variant of SmallSortFixed; same semantics as SmallSortPairs.
template <int N>
inline void SmallSortPairsFixed(double* k, double* v) {
  using namespace small_sort_internal;
  static_assert(N >= 0 && N <= 8, "networks are defined for n <= 8");
  if constexpr (N == 2) RunNetworkPairs(kNetwork2, k, v);
  if constexpr (N == 3) RunNetworkPairs(kNetwork3, k, v);
  if constexpr (N == 4) RunNetworkPairs(kNetwork4, k, v);
  if constexpr (N == 5) RunNetworkPairs(kNetwork5, k, v);
  if constexpr (N == 6) RunNetworkPairs(kNetwork6, k, v);
  if constexpr (N == 7) RunNetworkPairs(kNetwork7, k, v);
  if constexpr (N == 8) RunNetworkPairs(kNetwork8, k, v);
}

/// Column (trial-parallel) variants: cols holds N rows of `len` independent
/// problems — element t of row i at cols[i*stride + t]. Each comparator
/// becomes an elementwise min/max pass over `len` values, which the
/// autovectorizer turns into packed min/max: sorting many small arrays at
/// once is vectorized across problems instead of within one. Semantics per
/// problem are identical to SmallSortFixed / SmallSortPairsFixed.
template <int N>
inline void ColumnSortFixed(double* cols, int stride, int len) {
  using namespace small_sort_internal;
  static_assert(N >= 0 && N <= 8, "networks are defined for n <= 8");
  if constexpr (N == 2) RunColumnNetwork(kNetwork2, cols, stride, len);
  if constexpr (N == 3) RunColumnNetwork(kNetwork3, cols, stride, len);
  if constexpr (N == 4) RunColumnNetwork(kNetwork4, cols, stride, len);
  if constexpr (N == 5) RunColumnNetwork(kNetwork5, cols, stride, len);
  if constexpr (N == 6) RunColumnNetwork(kNetwork6, cols, stride, len);
  if constexpr (N == 7) RunColumnNetwork(kNetwork7, cols, stride, len);
  if constexpr (N == 8) RunColumnNetwork(kNetwork8, cols, stride, len);
}

/// Pair variant of ColumnSortFixed: vcols rows move with their kcols keys.
template <int N>
inline void ColumnSortPairsFixed(double* kcols, double* vcols, int stride,
                                 int len) {
  using namespace small_sort_internal;
  static_assert(N >= 0 && N <= 8, "networks are defined for n <= 8");
  if constexpr (N == 2) RunColumnNetworkPairs(kNetwork2, kcols, vcols, stride, len);
  if constexpr (N == 3) RunColumnNetworkPairs(kNetwork3, kcols, vcols, stride, len);
  if constexpr (N == 4) RunColumnNetworkPairs(kNetwork4, kcols, vcols, stride, len);
  if constexpr (N == 5) RunColumnNetworkPairs(kNetwork5, kcols, vcols, stride, len);
  if constexpr (N == 6) RunColumnNetworkPairs(kNetwork6, kcols, vcols, stride, len);
  if constexpr (N == 7) RunColumnNetworkPairs(kNetwork7, kcols, vcols, stride, len);
  if constexpr (N == 8) RunColumnNetworkPairs(kNetwork8, kcols, vcols, stride, len);
}

/// Returns the kth-smallest (1-indexed) of k[0..n), reordering k arbitrarily.
inline double SmallKthSmallest(double* k, int n, int kth) {
  if (n <= 8) {
    SmallSort(k, n);
    return k[kth - 1];
  }
  std::nth_element(k, k + (kth - 1), k + n);
  return k[kth - 1];
}

}  // namespace pbs

#endif  // PBS_UTIL_SMALL_SORT_H_
