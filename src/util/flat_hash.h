#ifndef PBS_UTIL_FLAT_HASH_H_
#define PBS_UTIL_FLAT_HASH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// Open-addressed uint64 -> uint32 hash map for the coordinator's pending-op
/// tables. `std::unordered_map` allocates a node per insert and frees it per
/// erase, which alone put two heap round-trips on every simulated operation;
/// this map stores entries flat in one slab, so steady-state insert/erase
/// touches no allocator at all (the table only reallocates when it grows
/// past its high-water mark).
///
/// Keys are request ids (never 0 — the cluster counter starts at 1), so 0 is
/// the empty sentinel. Deletion uses backward-shift compaction instead of
/// tombstones: probe sequences stay short forever under the
/// insert-heavy/erase-heavy churn of the op tables.
class FlatMap64 {
 public:
  static constexpr uint64_t kEmpty = 0;

  FlatMap64() { Rehash(16); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t entries) {
    size_t wanted = 16;
    while (wanted * 3 < entries * 4) wanted *= 2;  // keep load factor < 0.75
    if (wanted > slots_.size()) Rehash(wanted);
  }

  /// Inserts or overwrites. `key` must be non-zero.
  void Put(uint64_t key, uint32_t value) {
    assert(key != kEmpty);
    if ((size_ + 1) * 4 > slots_.size() * 3) Rehash(slots_.size() * 2);
    size_t i = Index(key);
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.key == kEmpty) {
        slot.key = key;
        slot.value = value;
        ++size_;
        return;
      }
      if (slot.key == key) {
        slot.value = value;
        return;
      }
      i = Next(i);
    }
  }

  /// Returns a pointer to the mapped value, or nullptr if absent. The
  /// pointer is invalidated by any mutation.
  uint32_t* Find(uint64_t key) {
    assert(key != kEmpty);
    size_t i = Index(key);
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.key == kEmpty) return nullptr;
      if (slot.key == key) return &slot.value;
      i = Next(i);
    }
  }

  const uint32_t* Find(uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  /// Removes `key` if present; returns whether it was.
  bool Erase(uint64_t key) {
    assert(key != kEmpty);
    size_t i = Index(key);
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.key == kEmpty) return false;
      if (slot.key == key) break;
      i = Next(i);
    }
    // Backward-shift: pull displaced entries into the hole until hitting an
    // empty slot or an entry already sitting at its home index.
    size_t hole = i;
    size_t probe = Next(i);
    for (;;) {
      Slot& candidate = slots_[probe];
      if (candidate.key == kEmpty) break;
      const size_t home = Index(candidate.key);
      // The candidate may move into the hole only if the hole lies on the
      // probe path from its home slot (cyclic interval test).
      const bool movable = hole <= probe
                               ? home <= hole || home > probe
                               : home <= hole && home > probe;
      if (movable) {
        slots_[hole] = candidate;
        hole = probe;
      }
      probe = Next(probe);
    }
    slots_[hole].key = kEmpty;
    --size_;
    return true;
  }

  void Clear() {
    for (Slot& slot : slots_) slot.key = kEmpty;
    size_ = 0;
  }

 private:
  struct Slot {
    uint64_t key = kEmpty;
    uint32_t value = 0;
  };

  size_t Index(uint64_t key) const {
    // Fibonacci hashing: multiplicative spread, then mask to the table.
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) & mask_;
  }
  size_t Next(size_t i) const { return (i + 1) & mask_; }

  void Rehash(size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.key != kEmpty) Put(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace pbs

#endif  // PBS_UTIL_FLAT_HASH_H_
