#ifndef PBS_UTIL_STATUS_H_
#define PBS_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace pbs {

/// Lightweight error-reporting type: the library does not throw, so fallible
/// operations return Status (or StatusOr<T>) instead.
class Status {
 public:
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(Code::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  const std::string& message() const { return message_; }

 private:
  enum class Code { kOk, kInvalidArgument, kFailedPrecondition, kNotFound };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_;
  std::string message_;
};

/// Either a value or an error Status. Accessing value() on an error aborts in
/// debug builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)), value_() {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const {
    assert(ok());
    return value_;
  }
  T& value() {
    assert(ok());
    return value_;
  }

 private:
  Status status_;
  T value_;
};

}  // namespace pbs

#endif  // PBS_UTIL_STATUS_H_
