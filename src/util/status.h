#ifndef PBS_UTIL_STATUS_H_
#define PBS_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace pbs {

/// Canonical error codes carried by Status. Public so callers can dispatch
/// on *why* an operation failed (the KVS client surfaces kTimedOut /
/// kDeadlineExceeded / kDowngraded as typed results instead of bool flags).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kTimedOut,           // coordinator request timeout elapsed
  kDeadlineExceeded,   // client per-operation deadline budget exhausted
  kDowngraded,         // read succeeded, but under a reduced R requirement
};

/// Stable lower-snake name for a code ("ok", "timed_out", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kTimedOut: return "timed_out";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kDowngraded: return "downgraded";
  }
  return "unknown";
}

/// Lightweight error-reporting type: the library does not throw, so fallible
/// operations return Status (or StatusOr<T>) instead. Default-constructed
/// Status is Ok, so result structs can hold one by value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status TimedOut(std::string message) {
    return Status(StatusCode::kTimedOut, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Downgraded(std::string message) {
    return Status(StatusCode::kDowngraded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Accessing value() on an error aborts in
/// debug builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)), value_() {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const {
    assert(ok());
    return value_;
  }
  T& value() {
    assert(ok());
    return value_;
  }

 private:
  Status status_;
  T value_;
};

}  // namespace pbs

#endif  // PBS_UTIL_STATUS_H_
