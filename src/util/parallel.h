#ifndef PBS_UTIL_PARALLEL_H_
#define PBS_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace pbs {

/// Execution policy for the Monte Carlo hot paths (RunWarsTrials,
/// QuorumSampler, EstimateKTStaleness, ...).
///
/// Results are a function of (seed, chunk_size) only — NEVER of `threads`.
/// Work is cut into fixed-size chunks, chunk c always samples from the c-th
/// Jump()-derived RNG sub-stream, and per-chunk results are merged in chunk
/// order, so a run is bitwise identical whether it executes on one thread or
/// sixteen. Changing `chunk_size` changes the stream layout (still a valid
/// estimate, different draws), so leave it at the default for reproducible
/// figures.
struct PbsExecutionOptions {
  /// Worker threads: 0 = one per hardware thread, 1 = serial (the historical
  /// single-threaded behavior), n > 1 = up to n (achieved parallelism is
  /// additionally capped by the shared pool's size; results never depend on
  /// it either way).
  int threads = 0;

  /// Trials per deterministic work chunk. Small enough to load-balance a
  /// 10^5-trial run across many cores, large enough that the per-chunk jump
  /// (~256 state steps) is noise.
  int64_t chunk_size = 16384;

  /// `threads` with 0 resolved to std::thread::hardware_concurrency().
  int ResolvedThreads() const;
};

/// Number of fixed-size chunks ParallelFor will cut `num_items` into; the
/// count of RNG sub-streams a caller must provision.
int64_t NumChunks(int64_t num_items, const PbsExecutionOptions& options);

/// The deterministic chunk -> sub-stream assignment: streams[0] is `base`
/// itself and streams[c] = streams[c-1] advanced by Jump() (2^128 draws).
/// Streams are pairwise disjoint while every chunk draws fewer than 2^128
/// values. `base` must not be reused by the caller afterwards — its opening
/// segment belongs to chunk 0.
std::vector<Rng> MakeJumpStreams(Rng base, int64_t count);

/// A small fixed-size pool of worker threads. Threads are started once and
/// parked on a condition variable between parallel regions; one pool (see
/// SharedThreadPool) is shared by every ParallelFor in the process.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped below at 0; a zero-size pool is
  /// legal and makes Run() execute everything on the calling thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Invokes `task(worker_id)` for worker_id in [0, fanout): fanout - 1
  /// invocations are dispatched to pool workers and worker 0 runs on the
  /// calling thread. Blocks until every invocation returns. Tasks must not
  /// throw and must not call Run() on the same pool (nested regions are the
  /// caller's job to flatten; ParallelFor already does).
  void Run(int fanout, const std::function<void(int)>& task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// The process-wide pool used by ParallelFor, sized to hardware concurrency
/// minus one (the calling thread is always the extra worker). Created on
/// first use.
ThreadPool& SharedThreadPool();

/// Runs `body(chunk_index, begin, end)` for every fixed-size chunk of
/// [0, num_items). Chunk geometry depends only on options.chunk_size, so the
/// (chunk_index, begin, end) triples — and therefore any chunk-indexed RNG
/// use — are identical for every thread count; only the assignment of chunks
/// to threads varies. Bodies run concurrently and must only touch disjoint
/// state (e.g. their own slice of a pre-sized output column, or a per-chunk
/// accumulator slot). Nested ParallelFor calls execute serially inline.
void ParallelFor(int64_t num_items, const PbsExecutionOptions& options,
                 const std::function<void(int64_t chunk_index, int64_t begin,
                                          int64_t end)>& body);

}  // namespace pbs

#endif  // PBS_UTIL_PARALLEL_H_
