#ifndef PBS_UTIL_SMALL_VECTOR_H_
#define PBS_UTIL_SMALL_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pbs {

/// Vector with `N` elements of inline storage — the allocation-sweep
/// workhorse of the KVS hot path. Replica preference lists, hint-home maps
/// and vector-clock entries are all tiny (N <= 8 in every shipped config),
/// so storing them inline removes the per-operation heap churn the
/// coordinator paid for each `std::vector` it built, while still spilling
/// to the heap for oversized cases instead of imposing a hard cap.
///
/// Deliberately minimal: the simulator only needs the std::vector surface
/// the KVS layer actually uses (push/emplace/erase/resize/assign/compare).
/// Elements must be movable; moves of the container relocate inline
/// elements one by one (cheap at these sizes) and steal heap buffers.
template <typename T, size_t N>
class SmallVector {
 public:
  static_assert(N > 0, "inline capacity must be non-zero");

  SmallVector() = default;
  SmallVector(size_t count, const T& value) { assign(count, value); }
  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) push_back(other.data()[i]);
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (size_t i = 0; i < other.size_; ++i) push_back(other.data()[i]);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Deallocate();
      MoveFrom(other);
    }
    return *this;
  }

  ~SmallVector() { Deallocate(); }

  T* data() { return heap_ != nullptr ? heap_ : InlinePtr(); }
  const T* data() const {
    return heap_ != nullptr ? heap_ : InlinePtr();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return heap_ != nullptr ? capacity_ : N; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() {
    std::destroy_n(data(), size_);
    size_ = 0;
  }

  void reserve(size_t wanted) {
    if (wanted <= capacity()) return;
    Grow(wanted);
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity()) Grow(capacity() * 2);
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    std::destroy_at(data() + size_);
  }

  /// Erases the element at `pos`, shifting the tail left (std::vector
  /// semantics: stable order, returns the iterator after the erased slot).
  T* erase(T* pos) {
    assert(pos >= begin() && pos < end());
    std::move(pos + 1, end(), pos);
    pop_back();
    return pos;
  }

  void resize(size_t count) {
    while (size_ > count) pop_back();
    reserve(count);
    while (size_ < count) emplace_back();
  }

  void assign(size_t count, const T& value) {
    clear();
    reserve(count);
    for (size_t i = 0; i < count; ++i) push_back(value);
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  T* InlinePtr() { return std::launder(reinterpret_cast<T*>(inline_)); }
  const T* InlinePtr() const {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  void Grow(size_t wanted) {
    const size_t new_capacity = std::max(wanted, size_t{2} * capacity());
    T* fresh = static_cast<T*>(
        ::operator new(new_capacity * sizeof(T), std::align_val_t{alignof(T)}));
    T* old = data();
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(old[i]));
      std::destroy_at(old + i);
    }
    FreeHeap();
    heap_ = fresh;
    capacity_ = new_capacity;
  }

  void MoveFrom(SmallVector& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      size_ = other.size_;
      for (size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(InlinePtr() + i))
            T(std::move(other.InlinePtr()[i]));
      }
      other.clear();
    }
  }

  void FreeHeap() {
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t{alignof(T)});
      heap_ = nullptr;
      capacity_ = 0;
    }
  }

  void Deallocate() {
    clear();
    FreeHeap();
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  size_t capacity_ = 0;  // heap capacity; inline capacity is N
  size_t size_ = 0;
};

}  // namespace pbs

#endif  // PBS_UTIL_SMALL_VECTOR_H_
