#ifndef PBS_UTIL_FFT_H_
#define PBS_UTIL_FFT_H_

#include <vector>

namespace pbs {

/// Linear convolution of two non-negative real sequences,
/// out[k] = sum_j a[j] * b[k - j], length a.size() + b.size() - 1.
///
/// Large inputs go through a radix-2 complex FFT (O(m log m) at the padded
/// power-of-two size m); small ones use the direct O(|a|*|b|) loop, which is
/// both faster at that scale and exact. FFT results carry rounding noise of
/// order 1e-15 * sum(a) * sum(b) per coefficient and may dip microscopically
/// negative; callers convolving probability masses should clamp at zero
/// (DiscretizedDistribution renormalizes after clamping).
std::vector<double> ConvolveReal(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// The crossover above which ConvolveReal switches to the FFT path, as a
/// bound on |a| * |b|. Exposed so tests can pin both paths explicitly.
inline constexpr std::size_t kFftConvolutionThreshold = std::size_t{1} << 18;

/// Direct-path convolution regardless of size (test/reference use).
std::vector<double> ConvolveRealDirect(const std::vector<double>& a,
                                       const std::vector<double>& b);

}  // namespace pbs

#endif  // PBS_UTIL_FFT_H_
