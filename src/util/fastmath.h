#ifndef PBS_UTIL_FASTMATH_H_
#define PBS_UTIL_FASTMATH_H_

#include <bit>
#include <cstdint>

namespace pbs {

/// Branch-free, table-free log2/exp2 kernels for the batched samplers.
///
/// The compiled sampler plans (dist/sampler.h) spend nearly all of their time
/// in inverse-CDF transforms of the form xm * (1-u)^(-1/alpha) and
/// -log(1-u)/lambda. libm's log/exp/pow are correctly rounded but scalar;
/// these kernels trade accuracy we do not need (Monte Carlo noise at 10^6
/// trials is ~1e-3) for shapes the autovectorizer handles: no branches, no
/// table lookups, no libm calls. They are pure integer/FP arithmetic, so
/// results are bit-reproducible across runs and platforms with IEEE doubles.
///
/// Accuracy (validated in tests/dist_sampler_test.cc):
///   FastLog2: absolute error < 2e-6 over positive normal doubles
///             (atanh series through z^5 after a sqrt(2) mantissa split).
///   FastExp2: relative error < 4e-6 for |x| <= 1020 (degree-5 polynomial
///             on the 2^52+2^51 rounding shift).
///
/// Contracts (callers are the compiled samplers, which guarantee them):
///   FastLog2: x must be positive, finite and normal (x >= 2^-1022).
///   FastExp2: |x| <= 1020; callers clamp exponents so the biased-exponent
///             bit trick cannot wrap.

inline double FastLog2(double x) {
  const uint64_t bits = std::bit_cast<uint64_t>(x);
  const uint64_t mant = bits & 0xFFFFFFFFFFFFFull;
  // Split the mantissa at sqrt(2) so m lands in [sqrt(0.5), sqrt(2)) and the
  // series argument z stays small; integer compare keeps it branchless.
  const uint64_t adj = mant >= 0x6A09E667F3BCDull;  // mantissa bits of sqrt2
  const int64_t e =
      static_cast<int64_t>(bits >> 52) - 1023 + static_cast<int64_t>(adj);
  const double m = std::bit_cast<double>(mant | ((1023ull - adj) << 52));
  // ln(m) = 2 atanh(z) with z = (m-1)/(m+1); |z| <= 0.1716 here, so the
  // series through z^5 leaves < 2e-6 absolute error in log2.
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  double p = 1.0 / 5.0;
  p = p * z2 + 1.0 / 3.0;
  p = p * z2 + 1.0;
  return static_cast<double>(e) + (2.0 * z * p) * 1.4426950408889634;
}

inline double FastExp2(double x) {
  // Round x to the nearest integer n via the 2^52+2^51 shift (valid for
  // |x| < 2^51), evaluate 2^r for the remainder |r| <= 0.5 with a degree-5
  // polynomial in y = r*ln2, then scale by 2^n through the exponent bits.
  const double kShift = 6755399441055744.0;  // 2^52 + 2^51
  const double t = x + kShift;
  const int64_t n = static_cast<int32_t>(std::bit_cast<int64_t>(t));
  const double r = x - (t - kShift);
  const double y = r * 0.6931471805599453;
  double p = 1.0 / 120.0;
  p = p * y + 1.0 / 24.0;
  p = p * y + 1.0 / 6.0;
  p = p * y + 0.5;
  p = p * y + 1.0;
  p = p * y + 1.0;
  return std::bit_cast<double>(std::bit_cast<int64_t>(p) + (n << 52));
}

}  // namespace pbs

#endif  // PBS_UTIL_FASTMATH_H_
