#include "util/rng.h"

#include <cassert>

namespace pbs {
namespace {

// SplitMix64 step; used to expand a 64-bit seed into xoshiro state and to
// derive split states.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// The xoshiro256 jump polynomials (Blackman & Vigna's reference values,
// shared by the ++/**/+ output variants): applying them via
// ApplyJumpPolynomial advances the state by exactly 2^128 / 2^192 steps.
constexpr uint64_t kJump[4] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                               0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
constexpr uint64_t kLongJump[4] = {0x76e15d3efefdcbbfULL,
                                   0xc5004e441c522fb3ULL,
                                   0x77710069854ee241ULL,
                                   0x39109bb02acbe635ULL};

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0 && "NextBounded requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

void Rng::ApplyJumpPolynomial(const uint64_t (&polynomial)[4]) {
  // The state transition is linear over GF(2); summing (XOR-ing) the states
  // visited at the set bits of the polynomial evaluates the transition
  // matrix raised to the jump distance.
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t word : polynomial) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

void Rng::Jump() { ApplyJumpPolynomial(kJump); }

void Rng::LongJump() { ApplyJumpPolynomial(kLongJump); }

Rng Rng::Split() {
  // Advance the parent so successive splits derive from distinct states.
  Next();
  // Chain the full 256-bit parent state through SplitMix64. The old scheme
  // seeded the child from one 64-bit draw, so two splits anywhere in a
  // program could hand out identical streams with probability ~2^-64 per
  // pair — a birthday collision after ~2^32 splits, and a correctness
  // hazard for sharded tail-probability estimators.
  Rng child(0);
  uint64_t s = 0;
  bool all_zero = true;
  for (int i = 0; i < 4; ++i) {
    s ^= state_[i];
    child.state_[i] = SplitMix64(&s);
    all_zero = all_zero && child.state_[i] == 0;
  }
  if (all_zero) child.state_[0] = 0x9E3779B97F4A7C15ULL;
  // Long-jump the child 2^192 draws away so its stream cannot brush against
  // the parent's neighborhood even after astronomically many draws.
  child.LongJump();
  return child;
}

Rng Rng::FromState(const std::array<uint64_t, 4>& state) {
  assert((state[0] | state[1] | state[2] | state[3]) != 0 &&
         "the all-zero state is xoshiro's fixed point");
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.state_[i] = state[i];
  return rng;
}

}  // namespace pbs
