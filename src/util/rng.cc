#include "util/rng.h"

namespace pbs {
namespace {

// SplitMix64 step; used to expand a 64-bit seed into xoshiro state and to
// derive split seeds.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextOpenDouble() {
  // (0, 1]: shift the [0, 1) lattice up by one ulp of the 53-bit grid.
  return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

Rng Rng::Split() { return Rng(Next() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace pbs
