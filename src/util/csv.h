#ifndef PBS_UTIL_CSV_H_
#define PBS_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace pbs {

/// Minimal CSV writer. Every bench binary mirrors its printed tables into
/// CSV files (under bench_results/ by default) so downstream plotting or
/// regression tooling can consume the raw series.
class CsvWriter {
 public:
  /// Opens `path` for writing, creating parent directories if needed.
  /// Check ok() before use; a writer that failed to open drops rows.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.is_open(); }

  void WriteHeader(const std::vector<std::string>& columns);
  void WriteRow(const std::vector<std::string>& cells);
  /// Convenience for numeric rows with an optional leading label.
  void WriteRow(const std::string& label, const std::vector<double>& values,
                int precision = 6);

 private:
  std::ofstream out_;
};

/// Creates `dir` (and parents) if missing; returns false on failure.
bool EnsureDirectory(const std::string& dir);

}  // namespace pbs

#endif  // PBS_UTIL_CSV_H_
