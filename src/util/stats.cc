#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace pbs {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  return count_ ? mean_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::max() const {
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

std::vector<double> Quantiles(std::vector<double> samples,
                              const std::vector<double>& qs) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(QuantileSorted(samples, q));
  return out;
}

double EcdfSorted(const std::vector<double>& sorted, double x) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

double Rmse(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double NormalizedRmse(const std::vector<double>& reference,
                      const std::vector<double>& estimate) {
  const double rmse = Rmse(reference, estimate);
  if (reference.empty()) return rmse;
  const auto [lo, hi] =
      std::minmax_element(reference.begin(), reference.end());
  const double range = *hi - *lo;
  if (range <= 0.0) return rmse;
  return rmse / range;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const size_t idx = static_cast<size_t>((x - lo_) / width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
}

double Histogram::bin_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::CdfAt(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  size_t below = underflow_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (x >= bin_hi(i)) {
      below += counts_[i];
      continue;
    }
    // Partial bin: interpolate.
    const double frac = (x - bin_lo(i)) / width_;
    return (static_cast<double>(below) +
            frac * static_cast<double>(counts_[i])) /
           static_cast<double>(total_);
  }
  below += overflow_;
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string FormatDouble(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}

namespace {

// Inverse standard-normal CDF (Acklam's rational approximation; the
// richer Distribution-facing copy lives in dist/distribution.cc, but util
// cannot depend on dist).
double Probit(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  assert(p > 0.0 && p < 1.0);
  if (p < 0.02425) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - 0.02425) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

ProportionInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double confidence) {
  assert(trials >= 1);
  assert(successes >= 0 && successes <= trials);
  assert(confidence > 0.0 && confidence < 1.0);
  const double z = Probit(0.5 + confidence / 2.0);
  const double n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denominator = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denominator;
  const double margin =
      z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) /
      denominator;
  ProportionInterval interval;
  interval.lower = std::max(0.0, center - margin);
  interval.upper = std::min(1.0, center + margin);
  return interval;
}

}  // namespace pbs
