#ifndef PBS_UTIL_FUNCTION_H_
#define PBS_UTIL_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pbs {

/// Move-only type-erased callable with small-buffer optimization — a
/// C++20-compatible stand-in for std::move_only_function (C++23).
///
/// The discrete-event simulator stores one callback per pending event;
/// std::function forces copyability (so move-only captures cannot be
/// scheduled) and its libstdc++ implementation heap-allocates most lambda
/// captures. UniqueFunction stores captures up to kInlineSize bytes inline in
/// the event record and is moved — never copied — through the event pool.
///
/// Semantics: default-constructed or moved-from instances are empty
/// (operator bool() == false); invoking an empty UniqueFunction is undefined
/// behavior, matching std::move_only_function.
template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Captures up to this many bytes live inline in the UniqueFunction itself
  /// (sized for a handful of pointers plus a double or two — the shape of
  /// every callback the simulator schedules; 64 fits the KVS message
  /// closures that carry an arena version handle plus routing metadata, so
  /// the protocol hot path schedules without heap fallback).
  static constexpr size_t kInlineSize = 64;

  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the callable at `dst` from `src` and destroys the
    /// source — relocation, so the event heap can shuffle records freely.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      +[](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      },
      +[](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      +[](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      +[](void* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(
            std::forward<Args>(args)...);
      },
      +[](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      +[](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
  };

  void MoveFrom(UniqueFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace pbs

#endif  // PBS_UTIL_FUNCTION_H_
