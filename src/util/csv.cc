#include "util/csv.h"

#include <filesystem>
#include <system_error>

#include "util/stats.h"

namespace pbs {
namespace {

std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

bool EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return !ec;
}

CsvWriter::CsvWriter(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) EnsureDirectory(parent.string());
  out_.open(path);
}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  WriteRow(columns);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!ok()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << EscapeCell(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::string& label,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  WriteRow(cells);
}

}  // namespace pbs
