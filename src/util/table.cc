#include "util/table.h"

#include <algorithm>
#include <cassert>

#include "util/stats.h"

namespace pbs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddRow(const std::string& label,
                       const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pbs
