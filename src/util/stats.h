#ifndef PBS_UTIL_STATS_H_
#define PBS_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pbs {

/// Streaming univariate summary: count, mean, variance (Welford), min, max.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  /// NaN when empty, like min()/max(): "no observations" is not 0.
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact sample quantile with linear interpolation (type-7, the numpy/R
/// default). `sorted` must be ascending; q in [0, 1]. Empty input returns
/// NaN (previously UB in release builds).
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Convenience: copies, sorts, and evaluates several quantiles at once.
/// Empty input yields NaN at every requested quantile.
std::vector<double> Quantiles(std::vector<double> samples,
                              const std::vector<double>& qs);

/// Fraction of samples <= x (empirical CDF evaluated at x) over a sorted
/// ascending vector. Empty input returns NaN, consistent with the quantile
/// functions: an empty sample has no CDF.
double EcdfSorted(const std::vector<double>& sorted, double x);

/// Root-mean-square error between two equal-length series.
double Rmse(const std::vector<double>& a, const std::vector<double>& b);

/// RMSE normalized by the range (max-min) of `reference`; the paper's
/// "N-RMSE". Returns RMSE unchanged when the reference range is zero.
double NormalizedRmse(const std::vector<double>& reference,
                      const std::vector<double>& estimate);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus underflow and
/// overflow counters. Used for Pw(c, t) style empirical CDFs and for
/// latency profiles.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  size_t total() const { return total_; }
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  size_t bin_count(size_t i) const { return counts_[i]; }
  size_t num_bins() const { return counts_.size(); }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;

  /// Fraction of observations <= x (linear interpolation within bins).
  double CdfAt(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

/// A (percentile, value) pair, e.g. {99.9, 435.83} for "99.9th pct = 435.83".
struct PercentilePoint {
  double percentile;  // in [0, 100]
  double value;
};

/// A two-sided confidence interval for a proportion.
struct ProportionInterval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials` at confidence `confidence` (e.g. 0.95). Well-behaved for
/// proportions near 0 or 1, which is exactly where t-visibility estimates
/// live (P(consistent) ~ 0.999). `trials` must be >= 1.
ProportionInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double confidence = 0.95);

/// Formats a double with fixed precision; shared by table/CSV writers.
std::string FormatDouble(double x, int precision = 3);

}  // namespace pbs

#endif  // PBS_UTIL_STATS_H_
