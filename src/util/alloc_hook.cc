#include "util/alloc_hook.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: the tests read the counters from the same thread that
// performed the allocations, and cross-thread reads only need eventual
// counts, not ordering.
std::atomic<int64_t> g_allocations{0};
std::atomic<int64_t> g_bytes{0};

void* CountedAlloc(size_t size, size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<int64_t>(size), std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = alignment > alignof(std::max_align_t)
                ? std::aligned_alloc(alignment,
                                     (size + alignment - 1) / alignment *
                                         alignment)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

namespace pbs {
namespace alloc_hook {

int64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

int64_t AllocatedBytes() { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace alloc_hook
}  // namespace pbs

// Global replacements: every flavor funnels into CountedAlloc/free so the
// counters see placement-independent totals.
void* operator new(size_t size) { return CountedAlloc(size, 0); }
void* operator new[](size_t size) { return CountedAlloc(size, 0); }
void* operator new(size_t size, std::align_val_t al) {
  return CountedAlloc(size, static_cast<size_t>(al));
}
void* operator new[](size_t size, std::align_val_t al) {
  return CountedAlloc(size, static_cast<size_t>(al));
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<int64_t>(size), std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<int64_t>(size), std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
