#include "util/fft.h"

#include <cassert>
#include <cmath>
#include <complex>
#include <utility>

namespace pbs {

namespace {

/// In-place iterative radix-2 Cooley-Tukey. `data.size()` must be a power of
/// two. `invert` runs the inverse transform (including the 1/m scaling).
void Fft(std::vector<std::complex<double>>& data, bool invert) {
  const std::size_t m = data.size();
  assert((m & (m - 1)) == 0 && m > 0);

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < m; ++i) {
    std::size_t bit = m >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= m; len <<= 1) {
    const double angle = (invert ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < m; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (invert) {
    const double scale = 1.0 / static_cast<double>(m);
    for (auto& x : data) x *= scale;
  }
}

}  // namespace

std::vector<double> ConvolveRealDirect(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  assert(!a.empty() && !b.empty());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::vector<double> ConvolveReal(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  assert(!a.empty() && !b.empty());
  if (a.size() * b.size() < kFftConvolutionThreshold) {
    return ConvolveRealDirect(a, b);
  }
  const std::size_t out_size = a.size() + b.size() - 1;
  std::size_t m = 1;
  while (m < out_size) m <<= 1;
  // Pack both real inputs into one complex transform: FFT(a + i*b), then
  // split using conjugate symmetry — halves the forward-transform work.
  std::vector<std::complex<double>> packed(m, {0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) packed[i].real(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) packed[i].imag(b[i]);
  Fft(packed, /*invert=*/false);
  std::vector<std::complex<double>> product(m);
  for (std::size_t k = 0; k < m; ++k) {
    const std::complex<double> x = packed[k];
    const std::complex<double> y = std::conj(packed[(m - k) & (m - 1)]);
    const std::complex<double> fa = 0.5 * (x + y);
    const std::complex<double> fb = std::complex<double>(0.0, -0.5) * (x - y);
    product[k] = fa * fb;
  }
  Fft(product, /*invert=*/true);
  std::vector<double> out(out_size);
  for (std::size_t k = 0; k < out_size; ++k) out[k] = product[k].real();
  return out;
}

}  // namespace pbs
