#ifndef PBS_UTIL_TABLE_H_
#define PBS_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace pbs {

/// Aligned plain-text table writer used by the benchmark harnesses to print
/// paper-style tables. Usage:
///
///   TextTable t({"config", "Lr", "Lw", "t"});
///   t.AddRow({"R=1 W=1", "0.66", "0.66", "1.85"});
///   t.Print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; the row must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Writes the table with column-aligned cells and a header separator.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pbs

#endif  // PBS_UTIL_TABLE_H_
