#ifndef PBS_UTIL_ALLOC_HOOK_H_
#define PBS_UTIL_ALLOC_HOOK_H_

#include <cstdint>

namespace pbs {

/// Counting allocator hook for the zero-allocation tests. Linking the
/// `pbs_alloc_hook` library into a test binary replaces the global
/// operator new/delete with counting versions; production targets never
/// link it, so the hook costs nothing outside the tests that assert on it.
///
/// Usage:
///   const int64_t before = AllocationCount();
///   ... steady-state work that must not allocate ...
///   EXPECT_EQ(AllocationCount() - before, 0);
namespace alloc_hook {

/// Total number of global operator new calls in this process so far.
/// Monotonic — frees are not subtracted, so a "reallocate per op" pattern
/// cannot hide behind a matching delete.
int64_t AllocationCount();

/// Total bytes requested from global operator new so far.
int64_t AllocatedBytes();

}  // namespace alloc_hook
}  // namespace pbs

#endif  // PBS_UTIL_ALLOC_HOOK_H_
