#ifndef PBS_UTIL_MATH_H_
#define PBS_UTIL_MATH_H_

#include <cstdint>

namespace pbs {

/// Natural log of n! computed via lgamma; exact to double precision for all
/// n >= 0.
double LogFactorial(int64_t n);

/// Natural log of the binomial coefficient C(n, k). Returns -infinity when
/// the coefficient is zero (k < 0 or k > n).
double LogBinomial(int64_t n, int64_t k);

/// Binomial coefficient C(n, k) as a double. Values that overflow double
/// return +infinity; invalid (zero) combinations return 0.
double Binomial(int64_t n, int64_t k);

/// Ratio C(a, k) / C(b, k) computed in log space; b >= a >= 0, k >= 0.
/// Returns 0 when C(a, k) == 0. This is the building block of the quorum
/// non-intersection probability (Equation 1 of the paper).
double BinomialRatio(int64_t a, int64_t b, int64_t k);

/// Clamps p into [0, 1]; convenience for probability arithmetic that may
/// accumulate rounding error.
double ClampProbability(double p);

/// The smallest rank r in [1, n] whose empirical coverage r / n — evaluated
/// in the same double arithmetic an ECDF uses — reaches p, for p in (0, 1]
/// and n >= 1. This is the exact inverse of `count / n`-style curves: no
/// epsilon fudge, and decimal probabilities round-trip (the rank for
/// p = k/m over n = m samples is exactly k). A naive ceil(p * n) gets these
/// wrong whenever the product crosses an integer (e.g. p = 0.07, n = 100,
/// where 0.07 * 100 = 7.000000000000001 and ceil says 8).
int64_t CeilProbabilityRank(double p, int64_t n);

/// Kahan-compensated accumulator for long probability sums.
class KahanSum {
 public:
  void Add(double x);
  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace pbs

#endif  // PBS_UTIL_MATH_H_
