#include "util/math.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace pbs {

double LogFactorial(int64_t n) {
  if (n < 0) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) {
    return -std::numeric_limits<double>::infinity();
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double Binomial(int64_t n, int64_t k) {
  const double log_value = LogBinomial(n, k);
  if (log_value == -std::numeric_limits<double>::infinity()) return 0.0;
  return std::exp(log_value);
}

double BinomialRatio(int64_t a, int64_t b, int64_t k) {
  const double log_num = LogBinomial(a, k);
  if (log_num == -std::numeric_limits<double>::infinity()) return 0.0;
  const double log_den = LogBinomial(b, k);
  return std::exp(log_num - log_den);
}

double ClampProbability(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

int64_t CeilProbabilityRank(double p, int64_t n) {
  assert(p > 0.0 && p <= 1.0);
  assert(n >= 1);
  // fl(r / n) is non-decreasing in r (rounding preserves weak order), so the
  // smallest r whose coverage reaches p is found by binary search on the
  // very comparison the ECDF makes. This inverts count/n curves exactly;
  // any formulation via ceil(p * n) instead answers "which rank covers the
  // exact rational p", which disagrees with the curve whenever the double
  // product lands on the far side of an integer.
  int64_t lo = 1;
  int64_t hi = n;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (static_cast<double>(mid) / static_cast<double>(n) >= p) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void KahanSum::Add(double x) {
  const double y = x - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

}  // namespace pbs
