#include "util/math.h"

#include <cmath>
#include <limits>

namespace pbs {

double LogFactorial(int64_t n) {
  if (n < 0) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) {
    return -std::numeric_limits<double>::infinity();
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double Binomial(int64_t n, int64_t k) {
  const double log_value = LogBinomial(n, k);
  if (log_value == -std::numeric_limits<double>::infinity()) return 0.0;
  return std::exp(log_value);
}

double BinomialRatio(int64_t a, int64_t b, int64_t k) {
  const double log_num = LogBinomial(a, k);
  if (log_num == -std::numeric_limits<double>::infinity()) return 0.0;
  const double log_den = LogBinomial(b, k);
  return std::exp(log_num - log_den);
}

double ClampProbability(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

void KahanSum::Add(double x) {
  const double y = x - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

}  // namespace pbs
