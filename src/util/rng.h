#ifndef PBS_UTIL_RNG_H_
#define PBS_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace pbs {

/// Deterministic 64-bit pseudo-random number generator.
///
/// The generator is xoshiro256++ seeded via SplitMix64, which gives
/// high-quality streams from arbitrary 64-bit seeds and is fast enough for
/// Monte Carlo workloads (sub-nanosecond per draw). All randomness in the
/// library flows through this type so that every experiment is reproducible
/// from a single seed.
///
/// Parallel and logically separate consumers get their own streams in one of
/// two ways:
///   - Jump()/LongJump() advance the state by exactly 2^128 / 2^192 draws
///     using the xoshiro256++ jump polynomials. Sub-streams carved out by
///     successive Jump() calls from one ancestor are provably disjoint as
///     long as each consumes fewer than 2^128 draws — this is what the
///     deterministic parallel engine (util/parallel.h) uses for its
///     chunk -> sub-stream assignment.
///   - Split() derives an independent child generator for tree-structured
///     ownership (one per replica, per client, ...).
///
/// Rng satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// used with <random> facilities if desired, though the library provides its
/// own inverse-CDF samplers in pbs::dist.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Identical seeds produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 uniformly distributed bits. Defined inline: the
  /// batched samplers draw tens of millions of uniforms per second and an
  /// out-of-line call would dominate their cost.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a double uniformly distributed in [0, 1) with 53 bits of
  /// precision. The maximum representable draw is 1 - 2^-53 (never 1.0).
  double NextDouble() {
    // 53 high bits -> [0, 1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniformly distributed in (0, 1]; useful for inverse-CDF
  /// sampling of distributions with a singularity at 0 (e.g. exponential via
  /// -log(u)).
  double NextOpenDouble() {
    // (0, 1]: shift the [0, 1) lattice up by one ulp of the 53-bit grid.
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Returns an integer uniformly distributed in [0, bound). `bound` must be
  /// positive. Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Advances the state by exactly 2^128 Next() calls in O(1): the standard
  /// xoshiro256++ jump polynomial. 2^128 non-overlapping sub-streams of
  /// 2^128 draws each can be carved out of one seed this way.
  void Jump();

  /// Advances the state by exactly 2^192 Next() calls: the long-jump
  /// polynomial, for coarser partitions (2^64 sub-streams of 2^192 draws).
  void LongJump();

  /// Returns an independent generator derived from this one. The child's
  /// 256-bit state is derived by chaining the parent's *entire* state
  /// through SplitMix64 (not a single 64-bit output, which would collide
  /// distinct lineages at the 2^32 birthday bound), then LongJump()-ed so
  /// the child starts 2^192 draws away from anything near the parent.
  /// Splitting is the supported way to hand sub-streams to logically
  /// separate components (one per replica, per client, ...); for parallel
  /// loops prefer the provably disjoint Jump()-derived streams handed out
  /// by util/parallel.h.
  Rng Split();

  /// The raw 256-bit state, for checkpointing and for tests that verify the
  /// jump polynomials against the algebraic state-transition matrix.
  std::array<uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Rebuilds a generator from a state captured with state(). The state must
  /// not be all-zero (the one fixed point xoshiro cannot leave).
  static Rng FromState(const std::array<uint64_t, 4>& state);

  // UniformRandomBitGenerator interface.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  void ApplyJumpPolynomial(const uint64_t (&polynomial)[4]);

  uint64_t state_[4];
};

}  // namespace pbs

#endif  // PBS_UTIL_RNG_H_
