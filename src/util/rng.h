#ifndef PBS_UTIL_RNG_H_
#define PBS_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace pbs {

/// Deterministic 64-bit pseudo-random number generator.
///
/// The generator is xoshiro256++ seeded via SplitMix64, which gives
/// high-quality streams from arbitrary 64-bit seeds and is fast enough for
/// Monte Carlo workloads (sub-nanosecond per draw). All randomness in the
/// library flows through this type so that every experiment is reproducible
/// from a single seed.
///
/// Rng satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// used with <random> facilities if desired, though the library provides its
/// own inverse-CDF samplers in pbs::dist.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Identical seeds produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t Next();

  /// Returns a double uniformly distributed in [0, 1) with 53 bits of
  /// precision.
  double NextDouble();

  /// Returns a double uniformly distributed in (0, 1]; useful for inverse-CDF
  /// sampling of distributions with a singularity at 0 (e.g. exponential via
  /// -log(u)).
  double NextOpenDouble();

  /// Returns an integer uniformly distributed in [0, bound). `bound` must be
  /// positive. Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns an independent generator derived from this one's stream.
  /// Splitting is the supported way to hand sub-streams to parallel or
  /// logically separate components (one per replica, per client, ...).
  Rng Split();

  // UniformRandomBitGenerator interface.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }
  uint64_t operator()() { return Next(); }

 private:
  uint64_t state_[4];
};

}  // namespace pbs

#endif  // PBS_UTIL_RNG_H_
