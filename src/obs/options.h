#ifndef PBS_OBS_OPTIONS_H_
#define PBS_OBS_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace pbs {

/// Observability knobs, embedded in KvsConfig (and pbs::Config) so every
/// cluster carries its tracing policy alongside its quorum and legs.
///
/// RNG-neutrality guarantee: nothing here consumes random draws. Trace
/// sampling is counter-based (every `trace_sample_every`-th client
/// operation), so enabling or disabling tracing never perturbs a seeded
/// run — all benches produce bitwise-identical results either way.
struct ObsOptions {
  /// Master switch for causal operation tracing. Off by default: the hot
  /// path then costs one predicted branch per instrumentation point.
  bool trace_enabled = false;

  /// Sample every k-th client operation (1 = trace everything). Counter
  /// based, never probabilistic, to preserve RNG neutrality.
  int64_t trace_sample_every = 1;

  /// Ring-buffer retention: the newest `trace_ring_capacity` events are
  /// kept; older events are overwritten (allocation-free steady state).
  size_t trace_ring_capacity = 1 << 16;

  Status Validate() const {
    if (trace_sample_every < 1) {
      return Status::InvalidArgument(
          "obs.trace_sample_every must be >= 1 (counter-based sampling)");
    }
    if (trace_enabled && trace_ring_capacity < 1) {
      return Status::InvalidArgument(
          "obs.trace_ring_capacity must be >= 1 when tracing is enabled");
    }
    return Status::Ok();
  }
};

}  // namespace pbs

#endif  // PBS_OBS_OPTIONS_H_
