#ifndef PBS_OBS_OPTIONS_H_
#define PBS_OBS_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "obs/monitor.h"
#include "util/status.h"

namespace pbs {

/// Observability knobs, embedded in KvsConfig (and pbs::Config) so every
/// cluster carries its tracing policy alongside its quorum and legs.
///
/// RNG-neutrality guarantee: nothing here consumes random draws. Trace
/// sampling is counter-based (every `trace_sample_every`-th client
/// operation), so enabling or disabling tracing never perturbs a seeded
/// run — all benches produce bitwise-identical results either way.
struct ObsOptions {
  /// Master switch for causal operation tracing. Off by default: the hot
  /// path then costs one predicted branch per instrumentation point.
  bool trace_enabled = false;

  /// Sample every k-th client operation (1 = trace everything). Counter
  /// based, never probabilistic, to preserve RNG neutrality.
  int64_t trace_sample_every = 1;

  /// Ring-buffer retention: the newest `trace_ring_capacity` events are
  /// kept; older events are overwritten (allocation-free steady state).
  size_t trace_ring_capacity = 1 << 16;

  /// Windowed time-series telemetry (DESIGN.md §13): every
  /// `telemetry_window_ms` of simulator time the cluster cuts a registry
  /// delta into a TimeSeries ring. 0 (the default) disables telemetry
  /// entirely — the run is then bitwise identical to a build without it.
  /// Driven off the timer wheel, never the RNG, like tracing.
  double telemetry_window_ms = 0.0;

  /// Newest windows retained by the telemetry ring (oldest roll off).
  size_t timeseries_capacity = 512;

  /// Live predictor-drift monitor: each window, compare measured freshness
  /// and read-latency quantiles against the analytic backend's prediction
  /// for the active quorum config. Requires telemetry (a window cadence)
  /// and — checked at the kvs/config layer, where the SLA lives — a
  /// declared SLA target to measure freshness against.
  bool monitor_enabled = false;
  obs::MonitorOptions monitor;

  Status Validate() const {
    if (trace_sample_every < 1) {
      return Status::InvalidArgument(
          "obs.trace_sample_every must be >= 1 (counter-based sampling)");
    }
    if (trace_enabled && trace_ring_capacity < 1) {
      return Status::InvalidArgument(
          "obs.trace_ring_capacity must be >= 1 when tracing is enabled");
    }
    if (telemetry_window_ms < 0.0) {
      return Status::InvalidArgument(
          "obs.telemetry_window_ms must be >= 0 (0 disables telemetry)");
    }
    if (telemetry_window_ms > 0.0 && timeseries_capacity < 1) {
      return Status::InvalidArgument(
          "obs.timeseries_capacity must be >= 1 when telemetry is enabled");
    }
    if (monitor_enabled && telemetry_window_ms <= 0.0) {
      return Status::InvalidArgument(
          "obs.monitor_enabled requires obs.telemetry_window_ms > 0");
    }
    if (monitor_enabled) {
      if (Status status = monitor.Validate(); !status.ok()) return status;
    }
    return Status::Ok();
  }
};

}  // namespace pbs

#endif  // PBS_OBS_OPTIONS_H_
