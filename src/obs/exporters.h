#ifndef PBS_OBS_EXPORTERS_H_
#define PBS_OBS_EXPORTERS_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace pbs {
namespace obs {

/// JSON-lines metrics export: one object per instrument, counters first
/// then histograms, each group sorted by name. Histogram lines carry the
/// moment summary, the standard quantiles, and the non-empty buckets.
/// Deterministic byte-for-byte given equal registries.
void WriteMetricsJsonl(const Registry& registry, std::ostream& out);
std::string MetricsJsonl(const Registry& registry);

/// Chrome trace_event export (load via chrome://tracing or
/// https://ui.perfetto.dev): each trace id becomes a process group, node
/// ids become threads, message legs become complete ("X") spans on the
/// destination row and everything else instant ("i") markers. Timestamps
/// convert sim milliseconds to trace microseconds.
void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out);
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Staleness audit: one JSON line per traced *read*, reconstructing why it
/// returned what it did — the WARS leg timeline, every replica response
/// (and the one that completed R), hedges/retries/timeouts along the way,
/// the returned sequence vs. the latest committed sequence (the version
/// gap). `stale_only` keeps only reads with a positive version gap.
void WriteStalenessAudit(const std::vector<TraceEvent>& events,
                         std::ostream& out, bool stale_only = true);
std::string StalenessAuditJsonl(const std::vector<TraceEvent>& events,
                                bool stale_only = true);

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_EXPORTERS_H_
