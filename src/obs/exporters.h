#ifndef PBS_OBS_EXPORTERS_H_
#define PBS_OBS_EXPORTERS_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace pbs {
namespace obs {

/// JSON-lines metrics export: one object per instrument, counters first
/// then histograms, each group sorted by name. Histogram lines carry the
/// moment summary, the standard quantiles, and the non-empty buckets.
/// Deterministic byte-for-byte given equal registries.
void WriteMetricsJsonl(const Registry& registry, std::ostream& out);
std::string MetricsJsonl(const Registry& registry);

/// Provenance header for a metrics snapshot: which predictor backend the
/// run resolved to (and why, when kAuto fell back) and the controller
/// decision in force when the snapshot was taken — enough to join a
/// metrics artifact with the staleness audit without replaying the run.
struct MetricsSnapshotHeader {
  std::string predictor_backend;  // "mc" | "analytic" | "" (no predictor)
  std::string predictor_note;     // kAuto fallback reason, usually empty
  int64_t active_decision_id = -1;  // -1: no controller ran
  double snapshot_time_ms = 0.0;
};

/// Metrics export preceded by one "meta" line carrying the snapshot
/// header. The instrument lines that follow are byte-identical to the
/// header-less overload.
void WriteMetricsJsonl(const Registry& registry,
                       const MetricsSnapshotHeader& header, std::ostream& out);
std::string MetricsJsonl(const Registry& registry,
                         const MetricsSnapshotHeader& header);

/// Chrome trace_event export (load via chrome://tracing or
/// https://ui.perfetto.dev): each trace id becomes a process group, node
/// ids become threads, message legs become complete ("X") spans on the
/// destination row and everything else instant ("i") markers. Timestamps
/// convert sim milliseconds to trace microseconds.
void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out);
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Staleness audit: one JSON line per traced *read*, reconstructing why it
/// returned what it did — the WARS leg timeline, every replica response
/// (and the one that completed R), hedges/retries/timeouts along the way,
/// the returned sequence vs. the latest committed sequence (the version
/// gap). `stale_only` keeps only reads with a positive version gap.
void WriteStalenessAudit(const std::vector<TraceEvent>& events,
                         std::ostream& out, bool stale_only = true);
std::string StalenessAuditJsonl(const std::vector<TraceEvent>& events,
                                bool stale_only = true);

/// One entry of the consistency controller's configuration history: the
/// knob state actuated by decision `decision_id`, in force from
/// `valid_from_ms` until the next entry. The kvs layer produces these (the
/// obs layer cannot see kvs types); the audit exporter joins them to traced
/// reads by start time.
struct AdaptationRecord {
  int64_t decision_id = 0;
  int64_t epoch = 0;
  double valid_from_ms = 0.0;
  int r_lo = 0;          // mixed-quorum lower R (== r_hi when not mixing)
  int r_hi = 0;
  double mix = 0.0;      // P(read uses r_lo)
  int w = 0;
  bool hedge_enabled = false;
  double hedge_quantile = 0.0;
  int retry_max_attempts = 1;
  double retry_deadline_ms = 0.0;
};

/// Staleness audit with controller context: as above, plus each line gains
/// a "controller" object holding the AdaptationRecord active when the read
/// started (history must be sorted by valid_from_ms), a
/// "config_changed_midflight" flag when a decision landed between the
/// read's start and end, and "downgraded_required" when a retry attempt
/// lowered the response requirement mid-op. With an empty history the
/// output is byte-identical to the 3-argument overload.
///
/// `window_id_ms` > 0 adds a monotone "window_id" field — the telemetry
/// window containing the read's start, floor(t_start / window_id_ms) —
/// so offline drift computations join audit rows to time-series windows
/// exactly; 0 (the default) omits the field and preserves the historical
/// bytes.
void WriteStalenessAudit(const std::vector<TraceEvent>& events,
                         const std::vector<AdaptationRecord>& history,
                         std::ostream& out, bool stale_only = true,
                         double window_id_ms = 0.0);
std::string StalenessAuditJsonl(const std::vector<TraceEvent>& events,
                                const std::vector<AdaptationRecord>& history,
                                bool stale_only = true,
                                double window_id_ms = 0.0);

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_EXPORTERS_H_
