#include "obs/instruments.h"

#include <algorithm>
#include <cmath>

namespace pbs {
namespace obs {

int LogHistogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN
  int exponent = 0;
  const double fraction = std::frexp(value, &exponent);  // in [0.5, 1)
  if (exponent < kMinExponent) return 1;
  if (exponent > kMaxExponent) return kNumBuckets - 1;
  // Linear sub-bucket within the octave: (2*fraction - 1) maps [0.5, 1)
  // onto [0, 1).
  int sub = static_cast<int>((2.0 * fraction - 1.0) * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + (exponent - kMinExponent) * kSubBuckets + sub;
}

double LogHistogram::BucketLow(int index) {
  if (index <= 0) return 0.0;
  const int linear = index - 1;
  const int exponent = kMinExponent + linear / kSubBuckets;
  const int sub = linear % kSubBuckets;
  const double fraction =
      0.5 * (1.0 + static_cast<double>(sub) / kSubBuckets);
  return std::ldexp(fraction, exponent);
}

double LogHistogram::BucketHigh(int index) {
  if (index <= 0) return 0.0;
  const int linear = index - 1;
  const int exponent = kMinExponent + linear / kSubBuckets;
  const int sub = linear % kSubBuckets;
  const double fraction =
      0.5 * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
  return std::ldexp(fraction, exponent);
}

void LogHistogram::RecordN(double value, int64_t n) {
  if (n <= 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  const int index = BucketIndex(value);
  buckets_[index] += n;
  lo_ = std::min(lo_, index);
  hi_ = std::max(hi_, index);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (int i = other.lo_; i <= other.hi_; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  lo_ = std::min(lo_, other.lo_);
  hi_ = std::max(hi_, other.hi_);
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

LogHistogram LogHistogram::DeltaSince(const LogHistogram& earlier) const {
  LogHistogram delta;
  if (count_ <= earlier.count_) return delta;  // empty window
  if (earlier.count_ == 0) return *this;       // first window: exact
  delta.buckets_.assign(kNumBuckets, 0);
  int first = -1;
  int last = -1;
  for (int i = lo_; i <= hi_; ++i) {
    const int64_t before =
        static_cast<size_t>(i) < earlier.buckets_.size() ? earlier.buckets_[i]
                                                         : 0;
    const int64_t d = buckets_[i] - before;
    if (d <= 0) continue;
    delta.buckets_[i] = d;
    if (first < 0) first = i;
    last = i;
  }
  if (first >= 0) {
    delta.lo_ = first;
    delta.hi_ = last;
  }
  delta.count_ = count_ - earlier.count_;
  delta.sum_ = sum_ - earlier.sum_;
  // Bucket-bound min/max (see header). Bucket 0 holds zero/negative values,
  // whose bounds are pinned at 0.
  delta.min_ = first >= 0 ? BucketLow(first) : 0.0;
  delta.max_ = last >= 0 ? BucketHigh(last) : 0.0;
  if (delta.min_ > delta.max_) delta.min_ = delta.max_;
  return delta;
}

double LogHistogram::OrderStatistic(int64_t i) const {
  i = std::clamp<int64_t>(i, 0, count_ - 1);
  int64_t cumulative = 0;
  for (int b = lo_; b <= hi_; ++b) {
    const int64_t in_bucket = buckets_[b];
    if (in_bucket == 0) continue;
    if (i < cumulative + in_bucket) {
      const double low = BucketLow(b);
      const double high = BucketHigh(b);
      const double position =
          (static_cast<double>(i - cumulative) + 0.5) /
          static_cast<double>(in_bucket);
      return low + (high - low) * position;
    }
    cumulative += in_bucket;
  }
  return max_;  // unreachable when counts are consistent
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Type-7 (R/numpy default), matching util/stats.h::QuantileSorted: rank
  // h = q * (n - 1), interpolate order statistics floor(h) and floor(h)+1.
  const double h = q * static_cast<double>(count_ - 1);
  const int64_t k = static_cast<int64_t>(h);
  const double lower = OrderStatistic(k);
  const double fractional = h - static_cast<double>(k);
  double value = lower;
  if (fractional > 0.0) {
    value += fractional * (OrderStatistic(k + 1) - lower);
  }
  return std::clamp(value, min(), max());
}

}  // namespace obs
}  // namespace pbs
