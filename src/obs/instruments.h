#ifndef PBS_OBS_INSTRUMENTS_H_
#define PBS_OBS_INSTRUMENTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {
namespace obs {

/// Monotonic named counter (the Registry owns the name).
struct Counter {
  int64_t value = 0;

  void Add(int64_t n = 1) { value += n; }
  void Merge(const Counter& other) { value += other.value; }

  friend bool operator==(const Counter&, const Counter&) = default;
};

/// HDR-style log-bucketed latency histogram: each power-of-two range
/// ("octave") is split into 64 linear sub-buckets, bounding the relative
/// quantile error at ~1.6% across ~21 decades. Recording is O(1) and
/// allocation-free after the first sample; histograms merge by elementwise
/// bucket addition, so a chunk-ordered merge is bitwise deterministic
/// regardless of how many threads produced the pieces.
///
/// Quantile() mirrors the type-7 interpolated semantics of
/// util/stats.h::QuantileSorted (the single quantile definition this repo
/// standardizes on — see DESIGN.md §8): it interpolates between the two
/// neighboring order statistics, each located by a cumulative bucket walk
/// and positioned linearly within its bucket. Agreement with QuantileSorted
/// is therefore exact up to bucket resolution.
class LogHistogram {
 public:
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 64 per octave
  static constexpr int kMinExponent = -30;  // ~9.3e-10: below collapses here
  static constexpr int kMaxExponent = 40;   // ~5.5e11: above collapses here
  // Bucket 0 holds zero and negative values.
  static constexpr int kNumBuckets =
      1 + (kMaxExponent - kMinExponent + 1) * kSubBuckets;

  void Record(double value) { RecordN(value, 1); }
  void RecordN(double value, int64_t n);

  /// Elementwise bucket addition plus count/sum/min/max merge. Callers that
  /// need bitwise determinism must merge in a fixed (e.g. chunk) order: the
  /// running `sum` is a floating-point accumulation.
  void Merge(const LogHistogram& other);

  /// Windowed delta: this histogram minus an `earlier` cumulative snapshot
  /// of the same series (elementwise bucket subtraction, count/sum
  /// subtraction). The exact per-window min/max are unrecoverable from two
  /// cumulative snapshots, so the delta approximates them by the bounds of
  /// its first/last non-empty bucket — within one sub-bucket (~1.6%) of the
  /// true extremes, the histogram's native resolution. Requires `earlier`
  /// to be a prefix of this series (every earlier bucket count <= ours);
  /// quantiles of the delta are exact at bucket resolution.
  LogHistogram DeltaSince(const LogHistogram& earlier) const;

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Interpolated quantile (see class comment); 0 when empty. Results are
  /// clamped to [min(), max()] so bucket midpoints never overshoot the
  /// observed range.
  double Quantile(double q) const;

  /// Invokes fn(bucket_low, bucket_high, count) for every non-empty bucket
  /// in ascending value order. Deterministic iteration for exporters.
  template <typename Fn>
  void ForEachNonEmptyBucket(Fn&& fn) const {
    for (int i = lo_; i <= hi_; ++i) {
      if (buckets_[i] == 0) continue;
      fn(BucketLow(i), BucketHigh(i), buckets_[i]);
    }
  }

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

  static int BucketIndex(double value);
  static double BucketLow(int index);
  static double BucketHigh(int index);

 private:
  /// Approximate i-th order statistic (0-based) via bucket walk + linear
  /// interpolation inside the containing bucket.
  double OrderStatistic(int64_t i) const;

  std::vector<int64_t> buckets_;  // sized kNumBuckets on first record
  // Non-empty bucket range [lo_, hi_] (empty when lo_ > hi_). Derived
  // state, maintained exactly by every mutation, so defaulted equality
  // stays consistent; bounds the walks in OrderStatistic / DeltaSince /
  // ForEachNonEmptyBucket, which matters when latency data spanning a few
  // octaves sits in a ~21-decade bucket space.
  int lo_ = kNumBuckets;
  int hi_ = -1;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_INSTRUMENTS_H_
