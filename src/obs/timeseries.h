#ifndef PBS_OBS_TIMESERIES_H_
#define PBS_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "obs/registry.h"

namespace pbs {
namespace obs {

/// One fixed-interval window cut from a cumulative Registry: the named
/// deltas of every counter and histogram over [start_ms, end_ms). Windows
/// are the unit the streaming-telemetry layer reasons in (DESIGN.md §13):
/// mergeable across parallel campaign chunks by window_id, and serialized
/// bitwise deterministically.
struct WindowSnapshot {
  int64_t window_id = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  Registry delta;

  friend bool operator==(const WindowSnapshot&, const WindowSnapshot&) =
      default;
};

/// Counter/histogram delta of `cumulative` against an earlier `previous`
/// snapshot of the same registry: counters subtract; histograms go through
/// LogHistogram::DeltaSince (bucket-exact, min/max at bucket bounds).
/// Instruments absent from `previous` carry over whole; instruments that
/// did not move in the window are dropped, so quiet windows stay small.
Registry RegistryDelta(const Registry& cumulative, const Registry& previous);

/// A ring buffer of WindowSnapshots over one cumulative Registry. The
/// owner calls Advance once per window tick (simulator-clock driven, via
/// the timer wheel) with the current cumulative registry; the time series
/// retains the newest `capacity` windows and drops the oldest beyond that
/// (allocation pattern independent of run length). Not thread-safe, like
/// Registry: one series per single-threaded cluster, merged afterwards.
class TimeSeries {
 public:
  explicit TimeSeries(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Cuts window `window_id` spanning [start_ms, end_ms) as the delta of
  /// `cumulative` against the previous Advance call, retains `cumulative`
  /// as the new baseline, and returns the appended snapshot. Window ids
  /// must be strictly increasing.
  const WindowSnapshot& Advance(int64_t window_id, double start_ms,
                                double end_ms, const Registry& cumulative);

  /// Cuts window `window_id` from a pre-computed `delta` — the hot-path
  /// entry for producers that can difference incrementally (the kvs
  /// telemetry tick diffs flat counter snapshots and records window
  /// latency samples directly, skipping the O(cumulative) registry walk
  /// Advance pays). Does not touch the Advance baseline; a producer uses
  /// one entry point or the other, not both.
  const WindowSnapshot& AdvanceDelta(int64_t window_id, double start_ms,
                                     double end_ms, Registry delta);

  const std::deque<WindowSnapshot>& windows() const { return windows_; }
  size_t capacity() const { return capacity_; }
  /// Total windows cut, including any rolled out of the ring.
  int64_t windows_cut() const { return cut_; }
  /// Windows dropped by ring rollover.
  int64_t windows_dropped() const { return dropped_; }

  /// Window-id-aligned merge (the campaign surface): snapshots sharing a
  /// window_id merge registry-wise (Merge order = call order, so a
  /// chunk-ordered fold is bitwise deterministic); ids unique to either
  /// side interleave in ascending window_id order. The merged ring keeps
  /// the larger capacity and re-applies rollover.
  void Merge(const TimeSeries& other);

  friend bool operator==(const TimeSeries&, const TimeSeries&) = default;

 private:
  size_t capacity_;
  Registry previous_;
  std::deque<WindowSnapshot> windows_;
  int64_t cut_ = 0;
  int64_t dropped_ = 0;
};

/// Serializes a time series as JSONL: one "meta" line (window count,
/// rollover stats), then one "window" line per retained window carrying
/// every moved counter and a quantile digest + bucket list per moved
/// histogram, names sorted. Byte-identical for equal series (golden-pinned
/// in tests); `window_ms` is echoed into the meta line so offline joins
/// against audit rows need no side channel (0 = unknown).
void WriteTimeSeriesJsonl(const TimeSeries& series, std::ostream& out,
                          double window_ms = 0.0);
std::string TimeSeriesJsonl(const TimeSeries& series, double window_ms = 0.0);

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_TIMESERIES_H_
