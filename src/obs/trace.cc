#include "obs/trace.h"

namespace pbs {
namespace obs {

const char* WarsLegName(WarsLeg leg) {
  switch (leg) {
    case WarsLeg::kNone: return "-";
    case WarsLeg::kW: return "W";
    case WarsLeg::kA: return "A";
    case WarsLeg::kR: return "R";
    case WarsLeg::kS: return "S";
  }
  return "?";
}

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kOpBegin: return "op_begin";
    case TraceEventKind::kAttempt: return "attempt";
    case TraceEventKind::kLegSend: return "leg_send";
    case TraceEventKind::kLegDrop: return "leg_drop";
    case TraceEventKind::kReplicaServe: return "replica_serve";
    case TraceEventKind::kResponse: return "response";
    case TraceEventKind::kAck: return "ack";
    case TraceEventKind::kHedge: return "hedge";
    case TraceEventKind::kBackoff: return "backoff";
    case TraceEventKind::kTimeout: return "timeout";
    case TraceEventKind::kReturn: return "return";
    case TraceEventKind::kRepair: return "repair";
    case TraceEventKind::kOpEnd: return "op_end";
  }
  return "?";
}

void Tracer::Configure(const ObsOptions& options) {
  enabled_ = options.trace_enabled;
  sample_every_ = options.trace_sample_every < 1 ? 1
                                                 : options.trace_sample_every;
  ops_seen_ = 0;
  next_trace_id_ = 1;
  total_recorded_ = 0;
  ring_.clear();
  if (enabled_) {
    ring_.resize(options.trace_ring_capacity < 1 ? 1
                                                 : options.trace_ring_capacity);
  }
}

uint64_t Tracer::StartOp(bool is_write, int64_t key, int32_t coordinator,
                         double now) {
  if (!enabled_) return 0;
  const bool sampled = (ops_seen_ % static_cast<uint64_t>(sample_every_)) == 0;
  ++ops_seen_;
  if (!sampled) return 0;
  const uint64_t trace_id = next_trace_id_++;
  TraceEvent begin;
  begin.trace_id = trace_id;
  begin.kind = TraceEventKind::kOpBegin;
  begin.src = coordinator;
  begin.t_start = now;
  begin.t_end = now;
  begin.a = is_write ? 1 : 0;
  begin.b = key;
  Record(begin);
  return trace_id;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> events;
  if (ring_.empty() || total_recorded_ == 0) return events;
  const uint64_t retained =
      total_recorded_ < ring_.size() ? total_recorded_ : ring_.size();
  events.reserve(retained);
  const uint64_t first = total_recorded_ - retained;
  for (uint64_t i = first; i < total_recorded_; ++i) {
    events.push_back(ring_[i % ring_.size()]);
  }
  return events;
}

}  // namespace obs
}  // namespace pbs
