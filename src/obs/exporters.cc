#include "obs/exporters.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "util/status.h"

namespace pbs {
namespace obs {

void WriteMetricsJsonl(const Registry& registry, std::ostream& out) {
  for (const auto& [name, counter] : registry.counters()) {
    out << "{\"instrument\":\"counter\",\"name\":" << JsonString(name)
        << ",\"value\":" << counter.value << "}\n";
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    out << "{\"instrument\":\"histogram\",\"name\":" << JsonString(name)
        << ",\"count\":" << histogram.count();
    if (histogram.count() > 0) {
      out << ",\"min\":" << JsonNumber(histogram.min())
          << ",\"max\":" << JsonNumber(histogram.max())
          << ",\"mean\":" << JsonNumber(histogram.mean())
          << ",\"p50\":" << JsonNumber(histogram.Quantile(0.50))
          << ",\"p90\":" << JsonNumber(histogram.Quantile(0.90))
          << ",\"p99\":" << JsonNumber(histogram.Quantile(0.99))
          << ",\"p999\":" << JsonNumber(histogram.Quantile(0.999));
      out << ",\"buckets\":[";
      bool first = true;
      histogram.ForEachNonEmptyBucket(
          [&](double low, double high, int64_t count) {
            if (!first) out << ",";
            first = false;
            out << "[" << JsonNumber(low) << "," << JsonNumber(high) << ","
                << count << "]";
          });
      out << "]";
    }
    out << "}\n";
  }
}

std::string MetricsJsonl(const Registry& registry) {
  std::ostringstream out;
  WriteMetricsJsonl(registry, out);
  return out.str();
}

void WriteMetricsJsonl(const Registry& registry,
                       const MetricsSnapshotHeader& header,
                       std::ostream& out) {
  out << "{\"instrument\":\"meta\",\"predictor_backend\":"
      << JsonString(header.predictor_backend);
  if (!header.predictor_note.empty()) {
    out << ",\"predictor_note\":" << JsonString(header.predictor_note);
  }
  out << ",\"active_decision_id\":" << header.active_decision_id
      << ",\"snapshot_time_ms\":" << JsonNumber(header.snapshot_time_ms)
      << "}\n";
  WriteMetricsJsonl(registry, out);
}

std::string MetricsJsonl(const Registry& registry,
                         const MetricsSnapshotHeader& header) {
  std::ostringstream out;
  WriteMetricsJsonl(registry, header, out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Chrome trace_event

namespace {

/// Emits one trace_event object. Durations/timestamps are microseconds.
void EmitChromeEvent(std::ostream& out, bool* first, const char* phase,
                     const std::string& name, const char* category,
                     uint64_t pid, int32_t tid, double ts_ms, double dur_ms,
                     const std::string& args_json) {
  if (!*first) out << ",\n";
  *first = false;
  out << "{\"name\":" << JsonString(name) << ",\"cat\":\"" << category
      << "\",\"ph\":\"" << phase << "\",\"ts\":" << JsonNumber(ts_ms * 1000.0)
      << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (phase[0] == 'X') {
    out << ",\"dur\":" << JsonNumber(dur_ms * 1000.0);
  }
  if (phase[0] == 'i') {
    out << ",\"s\":\"p\"";  // process-scoped instant marker
  }
  if (!args_json.empty()) {
    out << ",\"args\":{" << args_json << "}";
  }
  out << "}";
}

std::string OpName(const TraceEvent& begin) {
  std::string name = begin.a == 1 ? "write" : "read";
  name += " key=" + std::to_string(begin.b);
  return name;
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out) {
  // Group by trace id (sorted: deterministic output), remembering each
  // op's begin/end so the op span can be emitted as one complete event.
  std::map<uint64_t, std::vector<const TraceEvent*>> by_trace;
  for (const TraceEvent& event : events) {
    by_trace[event.trace_id].push_back(&event);
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [trace_id, trace] : by_trace) {
    const TraceEvent* begin = nullptr;
    const TraceEvent* end = nullptr;
    for (const TraceEvent* event : trace) {
      if (event->kind == TraceEventKind::kOpBegin) begin = event;
      if (event->kind == TraceEventKind::kOpEnd) end = event;
    }
    if (begin != nullptr) {
      // kOpEnd spans carry (t_start=op start, t_end=op end).
      const double t_end = end != nullptr ? end->t_end : begin->t_start;
      EmitChromeEvent(
          out, &first, "X", OpName(*begin), "op", trace_id, begin->src,
          begin->t_start, t_end - begin->t_start,
          "\"trace_id\":" + std::to_string(trace_id) +
              (end != nullptr
                   ? ",\"status\":" +
                         JsonString(StatusCodeName(
                             static_cast<StatusCode>(end->a)))
                   : ""));
    }
    for (const TraceEvent* event : trace) {
      switch (event->kind) {
        case TraceEventKind::kOpBegin:
        case TraceEventKind::kOpEnd:
          break;  // folded into the op span above
        case TraceEventKind::kLegSend:
          EmitChromeEvent(out, &first, "X",
                          std::string(WarsLegName(event->leg)) +
                              (event->b == 1 ? " leg (repair)" : " leg"),
                          "leg", trace_id, event->dst, event->t_start,
                          event->t_end - event->t_start,
                          "\"from\":" + std::to_string(event->src) +
                              ",\"to\":" + std::to_string(event->dst));
          break;
        case TraceEventKind::kLegDrop:
          EmitChromeEvent(out, &first, "i",
                          std::string("dropped ") + WarsLegName(event->leg) +
                              " leg",
                          "leg", trace_id, event->src, event->t_start, 0.0,
                          "\"from\":" + std::to_string(event->src) +
                              ",\"to\":" + std::to_string(event->dst));
          break;
        case TraceEventKind::kReplicaServe:
          EmitChromeEvent(out, &first, "i",
                          event->leg == WarsLeg::kW ? "serve write"
                                                    : "serve read",
                          "replica", trace_id, event->src, event->t_start,
                          0.0, "\"seq\":" + std::to_string(event->a));
          break;
        case TraceEventKind::kResponse:
          EmitChromeEvent(out, &first, "i", "response", "coord", trace_id,
                          event->dst, event->t_start, 0.0,
                          "\"replica\":" + std::to_string(event->src) +
                              ",\"seq\":" + std::to_string(event->a));
          break;
        case TraceEventKind::kAck:
          EmitChromeEvent(out, &first, "i", "ack", "coord", trace_id,
                          event->dst, event->t_start, 0.0,
                          "\"replica\":" + std::to_string(event->src));
          break;
        case TraceEventKind::kHedge:
          EmitChromeEvent(out, &first, "i",
                          event->a == 1 ? "hedge (fresh replica)"
                                        : "hedge (re-send)",
                          "coord", trace_id, event->src, event->t_start, 0.0,
                          "\"to\":" + std::to_string(event->dst));
          break;
        case TraceEventKind::kBackoff:
          EmitChromeEvent(out, &first, "X", "retry backoff", "client",
                          trace_id, event->src, event->t_start,
                          event->t_end - event->t_start,
                          "\"attempt\":" + std::to_string(event->a));
          break;
        case TraceEventKind::kTimeout:
          EmitChromeEvent(out, &first, "i", "timeout", "coord", trace_id,
                          event->src, event->t_start, 0.0, "");
          break;
        case TraceEventKind::kReturn:
          EmitChromeEvent(out, &first, "i", "return", "coord", trace_id,
                          event->src, event->t_start, 0.0,
                          "\"replica\":" + std::to_string(event->src) +
                              ",\"seq\":" + std::to_string(event->a) +
                              ",\"required\":" + std::to_string(event->b));
          break;
        case TraceEventKind::kAttempt:
          EmitChromeEvent(out, &first, "i",
                          "attempt " + std::to_string(event->a), "client",
                          trace_id, event->src, event->t_start, 0.0,
                          event->b > 0
                              ? "\"required_override\":" +
                                    std::to_string(event->b)
                              : "");
          break;
        case TraceEventKind::kRepair:
          EmitChromeEvent(out, &first, "X", "read repair", "repair",
                          trace_id, event->dst, event->t_start,
                          event->t_end - event->t_start,
                          "\"seq\":" + std::to_string(event->a));
          break;
      }
    }
  }
  out << "\n]}\n";
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  WriteChromeTrace(events, out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Staleness audit

void WriteStalenessAudit(const std::vector<TraceEvent>& events,
                         std::ostream& out, bool stale_only) {
  WriteStalenessAudit(events, /*history=*/{}, out, stale_only);
}

void WriteStalenessAudit(const std::vector<TraceEvent>& events,
                         const std::vector<AdaptationRecord>& history,
                         std::ostream& out, bool stale_only,
                         double window_id_ms) {
  // Active configuration at time t: the last history entry in force by t.
  // History is sorted by valid_from_ms, so a backwards scan finds it.
  const auto active_at = [&history](double t) -> const AdaptationRecord* {
    for (auto it = history.rbegin(); it != history.rend(); ++it) {
      if (it->valid_from_ms <= t) return &*it;
    }
    return nullptr;
  };
  std::map<uint64_t, std::vector<const TraceEvent*>> by_trace;
  for (const TraceEvent& event : events) {
    if (event.trace_id != 0) by_trace[event.trace_id].push_back(&event);
  }
  for (const auto& [trace_id, trace] : by_trace) {
    const TraceEvent* begin = nullptr;
    const TraceEvent* end = nullptr;
    const TraceEvent* winner = nullptr;
    int64_t attempts = 1;
    int64_t hedges = 0;
    int64_t timeouts = 0;
    int64_t downgraded_required = 0;
    for (const TraceEvent* event : trace) {
      switch (event->kind) {
        case TraceEventKind::kOpBegin: begin = event; break;
        case TraceEventKind::kOpEnd: end = event; break;
        case TraceEventKind::kReturn: winner = event; break;
        case TraceEventKind::kAttempt:
          attempts = std::max(attempts, event->a);
          if (event->b > 0) downgraded_required = event->b;
          break;
        case TraceEventKind::kHedge: ++hedges; break;
        case TraceEventKind::kTimeout: ++timeouts; break;
        default: break;
      }
    }
    // Audit reads only: begin.a == 0 marks a read op. Incomplete traces
    // (begin or end overwritten by the ring) are skipped.
    if (begin == nullptr || end == nullptr || begin->a != 0) continue;
    const int64_t returned_seq = winner != nullptr ? winner->a : 0;
    const int64_t latest_seq = end->b;
    const int64_t gap = latest_seq > returned_seq ? latest_seq - returned_seq
                                                  : 0;
    const StatusCode status = static_cast<StatusCode>(end->a);
    const bool stale = gap > 0 && status != StatusCode::kTimedOut &&
                       status != StatusCode::kDeadlineExceeded;
    if (stale_only && !stale) continue;
    out << "{\"trace_id\":" << trace_id << ",\"key\":" << begin->b
        << ",\"t_start\":" << JsonNumber(begin->t_start)
        << ",\"t_end\":" << JsonNumber(end->t_end);
    if (window_id_ms > 0.0) {
      out << ",\"window_id\":"
          << static_cast<int64_t>(begin->t_start / window_id_ms);
    }
    out
        << ",\"status\":" << JsonString(StatusCodeName(status))
        << ",\"stale\":" << (stale ? "true" : "false")
        << ",\"returned_seq\":" << returned_seq
        << ",\"latest_seq\":" << latest_seq << ",\"version_gap\":" << gap;
    if (winner != nullptr) {
      out << ",\"responding_replica\":" << winner->src
          << ",\"required\":" << winner->b;
    }
    out << ",\"attempts\":" << attempts << ",\"hedges\":" << hedges
        << ",\"timeouts\":" << timeouts;
    if (const AdaptationRecord* active = active_at(begin->t_start)) {
      out << ",\"controller\":{\"decision_id\":" << active->decision_id
          << ",\"epoch\":" << active->epoch << ",\"r_lo\":" << active->r_lo
          << ",\"r_hi\":" << active->r_hi
          << ",\"mix\":" << JsonNumber(active->mix) << ",\"w\":" << active->w
          << ",\"hedge\":" << (active->hedge_enabled ? "true" : "false")
          << ",\"hedge_quantile\":" << JsonNumber(active->hedge_quantile)
          << ",\"retry_attempts\":" << active->retry_max_attempts
          << ",\"retry_deadline_ms\":" << JsonNumber(active->retry_deadline_ms)
          << "}";
      const AdaptationRecord* at_end = active_at(end->t_end);
      if (at_end != nullptr && at_end->decision_id != active->decision_id) {
        out << ",\"config_changed_midflight\":true";
      }
      if (downgraded_required > 0) {
        out << ",\"downgraded_required\":" << downgraded_required;
      }
    }
    out << ",\"legs\":[";
    bool first = true;
    for (const TraceEvent* event : trace) {
      if (event->kind != TraceEventKind::kLegSend &&
          event->kind != TraceEventKind::kLegDrop) {
        continue;
      }
      if (!first) out << ",";
      first = false;
      out << "{\"leg\":\"" << WarsLegName(event->leg)
          << "\",\"from\":" << event->src << ",\"to\":" << event->dst
          << ",\"t_send\":" << JsonNumber(event->t_start);
      if (event->kind == TraceEventKind::kLegSend) {
        out << ",\"t_arrive\":" << JsonNumber(event->t_end);
        if (event->b == 1) out << ",\"repair\":true";
      } else {
        out << ",\"dropped\":true";
      }
      out << "}";
    }
    out << "],\"responses\":[";
    first = true;
    for (const TraceEvent* event : trace) {
      if (event->kind != TraceEventKind::kResponse) continue;
      if (!first) out << ",";
      first = false;
      out << "{\"replica\":" << event->src
          << ",\"t\":" << JsonNumber(event->t_start)
          << ",\"seq\":" << event->a << "}";
    }
    out << "]}\n";
  }
}

std::string StalenessAuditJsonl(const std::vector<TraceEvent>& events,
                                bool stale_only) {
  std::ostringstream out;
  WriteStalenessAudit(events, out, stale_only);
  return out.str();
}

std::string StalenessAuditJsonl(const std::vector<TraceEvent>& events,
                                const std::vector<AdaptationRecord>& history,
                                bool stale_only, double window_id_ms) {
  std::ostringstream out;
  WriteStalenessAudit(events, history, out, stale_only, window_id_ms);
  return out.str();
}

}  // namespace obs
}  // namespace pbs
