#include "obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace pbs {
namespace obs {

const char* AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kPredictionDrift: return "prediction_drift";
    case AlertKind::kSlaBurnRate: return "sla_burn_rate";
    case AlertKind::kHedgeStorm: return "hedge_storm";
    case AlertKind::kRetryStorm: return "retry_storm";
  }
  return "unknown";
}

Status MonitorOptions::Validate() const {
  if (warmup_windows < 0) {
    return Status::InvalidArgument("monitor.warmup_windows must be >= 0");
  }
  if (min_reads_per_window < 0) {
    return Status::InvalidArgument(
        "monitor.min_reads_per_window must be >= 0");
  }
  if (drift_fresh_tolerance <= 0.0 || drift_p99_relative_tolerance <= 0.0) {
    return Status::InvalidArgument(
        "monitor drift tolerances must be positive");
  }
  if (drift_windows < 1 || burn_windows < 1 || storm_windows < 1) {
    return Status::InvalidArgument(
        "monitor streak lengths must be >= 1 window");
  }
  if (burn_rate_factor <= 0.0 || storm_fraction <= 0.0) {
    return Status::InvalidArgument(
        "monitor burn_rate_factor and storm_fraction must be positive");
  }
  if (sla_fresh_probability < 0.0 || sla_fresh_probability >= 1.0) {
    return Status::InvalidArgument(
        "monitor.sla_fresh_probability must be in [0, 1)");
  }
  if (min_leg_samples < 1) {
    return Status::InvalidArgument("monitor.min_leg_samples must be >= 1");
  }
  return Status::Ok();
}

void ConsistencyMonitor::RaiseOnStreak(const WindowSample& sample,
                                       AlertKind kind, int* streak,
                                       bool crossing, int required,
                                       double value, double threshold,
                                       const std::string& detail) {
  if (!crossing) {
    *streak = 0;
    return;
  }
  ++*streak;
  if (*streak != required) return;  // raise once per streak, at onset
  Alert alert;
  alert.kind = kind;
  alert.window_id = sample.window_id;
  alert.time_ms = sample.end_ms;
  alert.value = value;
  alert.threshold = threshold;
  alert.detail = detail;
  alerts_.push_back(std::move(alert));
}

const WindowSample& ConsistencyMonitor::ObserveWindow(WindowSample sample) {
  ++observed_;
  const bool warm = observed_ > options_.warmup_windows;
  const bool thick =
      sample.reads > 0 && sample.reads >= options_.min_reads_per_window;

  // Drift score is computed (and exported) even for windows that cannot
  // alert, so dashboards show the full trajectory.
  double drift = 0.0;
  if (sample.predicted_valid && thick) {
    const double fresh_gap =
        std::abs(sample.MeasuredFresh() - sample.predicted_fresh);
    drift = fresh_gap / options_.drift_fresh_tolerance;
    if (sample.predicted_p99_ms > 0.0) {
      const double p99_over =
          std::max(0.0, sample.read_p99_ms / sample.predicted_p99_ms - 1.0);
      drift = std::max(drift, p99_over / options_.drift_p99_relative_tolerance);
    }
  }
  sample.drift_score = drift;
  samples_.push_back(sample);
  const WindowSample& stored = samples_.back();

  // Thin or warmup windows carry no signal: streaks freeze (neither
  // advance nor reset) so a quiet window between two storming ones does
  // not mask a sustained problem.
  if (!warm || !thick) return stored;

  RaiseOnStreak(stored, AlertKind::kPredictionDrift, &drift_streak_,
                stored.predicted_valid && drift >= 1.0,
                options_.drift_windows, drift, 1.0,
                "measured freshness/latency left the predicted band");

  if (options_.sla_fresh_probability > 0.0) {
    const double budget = 1.0 - options_.sla_fresh_probability;
    const double stale_fraction = 1.0 - stored.MeasuredFresh();
    const double burn = stale_fraction / budget;
    RaiseOnStreak(stored, AlertKind::kSlaBurnRate, &burn_streak_,
                  burn >= options_.burn_rate_factor, options_.burn_windows,
                  burn, options_.burn_rate_factor,
                  "stale reads burning the SLA error budget");
  }

  const double reads = static_cast<double>(stored.reads);
  const double hedge_fraction = static_cast<double>(stored.hedges) / reads;
  RaiseOnStreak(stored, AlertKind::kHedgeStorm, &hedge_streak_,
                hedge_fraction >= options_.storm_fraction,
                options_.storm_windows, hedge_fraction,
                options_.storm_fraction, "hedge legs per read");
  const double retry_fraction = static_cast<double>(stored.retries) / reads;
  RaiseOnStreak(stored, AlertKind::kRetryStorm, &retry_streak_,
                retry_fraction >= options_.storm_fraction,
                options_.storm_windows, retry_fraction,
                options_.storm_fraction, "client retries per read");
  return stored;
}

void ConsistencyMonitor::ExportTo(Registry* out) const {
  out->counter("obs/monitor_windows")
      .Add(static_cast<int64_t>(samples_.size()));
  out->counter("obs/monitor_alerts").Add(static_cast<int64_t>(alerts_.size()));
  for (const Alert& alert : alerts_) {
    out->counter(std::string("obs/alerts/") + AlertKindName(alert.kind))
        .Add(1);
  }
}

void WriteMonitorJsonl(const ConsistencyMonitor& monitor, std::ostream& out) {
  for (const WindowSample& s : monitor.samples()) {
    out << "{\"type\":\"sample\",\"window_id\":" << s.window_id
        << ",\"start_ms\":" << JsonNumber(s.start_ms)
        << ",\"end_ms\":" << JsonNumber(s.end_ms) << ",\"reads\":" << s.reads
        << ",\"fresh\":" << s.fresh << ",\"stale\":" << s.stale
        << ",\"failed\":" << s.failed << ",\"hedges\":" << s.hedges
        << ",\"retries\":" << s.retries
        << ",\"measured_fresh\":" << JsonNumber(s.MeasuredFresh())
        << ",\"read_p50_ms\":" << JsonNumber(s.read_p50_ms)
        << ",\"read_p99_ms\":" << JsonNumber(s.read_p99_ms);
    if (s.predicted_valid) {
      out << ",\"predicted_fresh\":" << JsonNumber(s.predicted_fresh)
          << ",\"predicted_p99_ms\":" << JsonNumber(s.predicted_p99_ms);
    }
    out << ",\"drift_score\":" << JsonNumber(s.drift_score) << "}\n";
  }
  for (const Alert& a : monitor.alerts()) {
    out << "{\"type\":\"alert\",\"kind\":\"" << AlertKindName(a.kind)
        << "\",\"window_id\":" << a.window_id
        << ",\"time_ms\":" << JsonNumber(a.time_ms)
        << ",\"value\":" << JsonNumber(a.value)
        << ",\"threshold\":" << JsonNumber(a.threshold)
        << ",\"detail\":" << JsonString(a.detail) << "}\n";
  }
}

std::string MonitorJsonl(const ConsistencyMonitor& monitor) {
  std::ostringstream out;
  WriteMonitorJsonl(monitor, out);
  return out.str();
}

}  // namespace obs
}  // namespace pbs
