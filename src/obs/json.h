#ifndef PBS_OBS_JSON_H_
#define PBS_OBS_JSON_H_

#include <cstdio>
#include <string>

namespace pbs {
namespace obs {

/// Shortest round-trippable-enough representation, deterministic across
/// runs in one build (all exports compare byte-for-byte in tests). Shared
/// by every obs exporter so one artifact never mixes number formats.
inline std::string JsonNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

inline std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_JSON_H_
