#ifndef PBS_OBS_MONITOR_H_
#define PBS_OBS_MONITOR_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/status.h"

namespace pbs {
namespace obs {

/// Typed alert taxonomy (DESIGN.md §13). Kept as a small closed enum so
/// alert streams digest deterministically and dashboards can color-code
/// without string matching.
enum class AlertKind : int {
  kPredictionDrift = 0,  // measured freshness/latency left the predicted band
  kSlaBurnRate = 1,      // stale fraction burning the SLA error budget
  kHedgeStorm = 2,       // hedge legs per read above the storm fraction
  kRetryStorm = 3,       // client retries per read above the storm fraction
};
const char* AlertKindName(AlertKind kind);

/// One raised alert. `value` is the offending statistic, `threshold` the
/// configured bound it crossed; `window_id`/`time_ms` locate it on the
/// simulator clock for joins against the staleness audit and time series.
struct Alert {
  AlertKind kind = AlertKind::kPredictionDrift;
  int64_t window_id = 0;
  double time_ms = 0.0;
  double value = 0.0;
  double threshold = 0.0;
  std::string detail;

  friend bool operator==(const Alert&, const Alert&) = default;
};

/// Thresholds for the live predictor-drift monitor. The monitor is a pure
/// stream function over per-window numbers: it never touches the RNG, the
/// clock, or any kvs type (the cluster feeds it WindowSamples), so
/// enabling it cannot perturb a seeded run.
struct MonitorOptions {
  /// Windows ignored at the start of a run while pipelines fill and the
  /// first leg fits stabilize.
  int warmup_windows = 2;
  /// Thin windows (fewer completed reads than this) carry no signal and
  /// never advance or reset alert streaks.
  int64_t min_reads_per_window = 16;

  /// Prediction drift: a window drifts when its drift score (see
  /// ConsistencyMonitor) reaches 1.0 — i.e. the freshness gap reaches
  /// `drift_fresh_tolerance` or measured read p99 exceeds predicted by
  /// `drift_p99_relative_tolerance`. An alert fires after
  /// `drift_windows` consecutive drifting windows.
  double drift_fresh_tolerance = 0.15;
  double drift_p99_relative_tolerance = 0.75;
  int drift_windows = 2;

  /// SLA burn rate: stale fraction divided by the SLA's error budget
  /// (1 - fresh_probability); >= `burn_rate_factor` for `burn_windows`
  /// consecutive windows raises kSlaBurnRate.
  double burn_rate_factor = 2.0;
  int burn_windows = 2;

  /// Mitigation storms: hedges (retries) per completed read at or above
  /// this fraction for `storm_windows` consecutive windows.
  double storm_fraction = 0.5;
  int storm_windows = 2;

  /// SLA clauses the burn-rate and drift checks measure against (plain
  /// numbers — obs sits below core and cannot see SlaTarget).
  double sla_fresh_probability = 0.0;  // 0 disables burn-rate alerts
  double sla_read_p99_ms = 0.0;

  /// Minimum per-leg profiler samples before the producer fits WARS legs
  /// and marks predictions valid (consumed by the kvs telemetry tick; the
  /// monitor itself only sees the resulting predicted_valid flag).
  int64_t min_leg_samples = 64;

  Status Validate() const;
};

/// One window of measured-vs-predicted evidence. The producer (the kvs
/// cluster's telemetry tick) fills the measured fields from registry
/// deltas and the predicted fields from the analytic backend's evaluation
/// of the active quorum config; `predicted_valid` is false while the leg
/// profiler has too few samples to fit.
struct WindowSample {
  int64_t window_id = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;

  int64_t reads = 0;    // completed reads in the window
  int64_t fresh = 0;    // reads within the SLA staleness bound
  int64_t stale = 0;    // reads beyond it
  int64_t failed = 0;   // reads failed/timed out
  int64_t hedges = 0;   // hedge legs dispatched
  int64_t retries = 0;  // client read retries
  double read_p50_ms = 0.0;
  double read_p99_ms = 0.0;

  bool predicted_valid = false;
  double predicted_fresh = 0.0;
  double predicted_p99_ms = 0.0;

  /// Filled by ObserveWindow: normalized drift score (>= 1 means the
  /// window drifted) and whether it counted toward a drift streak.
  double drift_score = 0.0;

  double MeasuredFresh() const {
    const int64_t classified = fresh + stale;
    return classified == 0
               ? 1.0
               : static_cast<double>(fresh) / static_cast<double>(classified);
  }

  friend bool operator==(const WindowSample&, const WindowSample&) = default;
};

/// Live predictor-drift monitor: consumes one WindowSample per telemetry
/// window, scores measured freshness/latency against the analytic
/// prediction for the active configuration, and raises typed alerts on
/// consecutive-window threshold crossings. Drift score of a window:
///
///   drift = max(|measured_fresh - predicted_fresh| / drift_fresh_tolerance,
///               max(0, p99_meas / p99_pred - 1) / drift_p99_rel_tolerance)
///
/// so 1.0 marks either tolerance exactly; the score is exported per window
/// for dashboards even when no alert fires.
class ConsistencyMonitor {
 public:
  explicit ConsistencyMonitor(const MonitorOptions& options = {})
      : options_(options) {}

  /// Scores `sample`, appends it to samples(), advances the alert state
  /// machines, and returns the stored (scored) sample.
  const WindowSample& ObserveWindow(WindowSample sample);

  const MonitorOptions& options() const { return options_; }
  const std::vector<WindowSample>& samples() const { return samples_; }
  const std::vector<Alert>& alerts() const { return alerts_; }

  /// Registry export: "obs/monitor_windows", "obs/monitor_alerts" and one
  /// "obs/alerts/<kind>" counter per kind that fired.
  void ExportTo(Registry* out) const;

  friend bool operator==(const ConsistencyMonitor&,
                         const ConsistencyMonitor&) = default;

 private:
  void RaiseOnStreak(const WindowSample& sample, AlertKind kind, int* streak,
                     bool crossing, int required, double value,
                     double threshold, const std::string& detail);

  MonitorOptions options_;
  std::vector<WindowSample> samples_;
  std::vector<Alert> alerts_;
  int64_t observed_ = 0;  // includes thin windows that were skipped
  int drift_streak_ = 0;
  int burn_streak_ = 0;
  int hedge_streak_ = 0;
  int retry_streak_ = 0;
};

/// Serializes the monitor's sample and alert streams as JSONL ("sample"
/// and "alert" typed lines), appendable after WriteTimeSeriesJsonl so one
/// artifact carries the whole telemetry story. Byte-deterministic.
void WriteMonitorJsonl(const ConsistencyMonitor& monitor, std::ostream& out);
std::string MonitorJsonl(const ConsistencyMonitor& monitor);

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_MONITOR_H_
