#ifndef PBS_OBS_TRACE_H_
#define PBS_OBS_TRACE_H_

#include <cstdint>
#include <vector>

#include "obs/options.h"

namespace pbs {
namespace obs {

/// WARS leg attribution for message-level trace events (W: write request,
/// A: write ack, R: read request, S: read response — the four one-way legs
/// of the paper's latency model).
enum class WarsLeg : uint8_t { kNone = 0, kW, kA, kR, kS };

const char* WarsLegName(WarsLeg leg);

/// What a trace event records. The `a` / `b` payload fields are
/// kind-specific (documented per enumerator).
enum class TraceEventKind : uint8_t {
  kOpBegin,       // src=coordinator, a=0 read / 1 write, b=key
  kAttempt,       // a=attempt number (1-based), b=required override (0=none)
  kLegSend,       // leg, src->dst, t_start=send, t_end=arrival;
                  //   b=1 marks repair (W legs) / hedge re-issue (R legs)
  kLegDrop,       // leg, src->dst, t_start=send; message never arrives
  kReplicaServe,  // src=replica, leg=kW write / kR read, a=stored/held seq
  kResponse,      // src=replica, dst=coordinator, a=seq (0=none), b=1 value
  kAck,           // src=replica, dst=coordinator (write ack arrival)
  kHedge,         // dst=hedged replica, a=1 fresh replica / 0 re-send
  kBackoff,       // t_start..t_end = client retry backoff, a=attempt
  kTimeout,       // src=coordinator (request timeout fired)
  kReturn,        // src=replica completing R/W, a=returned seq, b=required
  kRepair,        // src=coordinator, dst=replica, a=repaired-to seq
  kOpEnd,         // a=StatusCode, b=latest committed seq (reads) / seq
};

const char* TraceEventKindName(TraceEventKind kind);

/// One fixed-size trace event (POD: the ring buffer never allocates while
/// recording). Timestamps are simulator milliseconds.
struct TraceEvent {
  uint64_t trace_id = 0;
  TraceEventKind kind = TraceEventKind::kOpBegin;
  WarsLeg leg = WarsLeg::kNone;
  int32_t src = -1;
  int32_t dst = -1;
  double t_start = 0.0;
  double t_end = 0.0;
  int64_t a = 0;
  int64_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Causal operation tracer: assigns trace ids to sampled client operations
/// and records their events into a pre-allocated ring buffer.
///
/// Determinism / RNG neutrality: sampling is counter-based (every k-th
/// operation), never drawn from an Rng — tracing consumes zero random
/// draws, so a traced run replays the exact event sequence of an untraced
/// one. The tracer is single-threaded, like the cluster that owns it;
/// parallel campaigns give each trial cluster its own tracer.
class Tracer {
 public:
  Tracer() = default;

  /// Applies options (enables/disables, sets sampling and retention) and
  /// resets all state. The ring is allocated here, once.
  void Configure(const ObsOptions& options);

  bool enabled() const { return enabled_; }

  /// Starts a client operation: returns its trace id, or 0 when tracing is
  /// disabled or the op falls outside the sampling stride. Records the
  /// kOpBegin event for sampled ops.
  uint64_t StartOp(bool is_write, int64_t key, int32_t coordinator,
                   double now);

  /// Records one event. No-op when disabled or event.trace_id == 0, so
  /// instrumentation points can call unconditionally at the cost of one
  /// predicted branch.
  void Record(const TraceEvent& event) {
    if (!enabled_ || event.trace_id == 0) return;
    ring_[total_recorded_ % ring_.size()] = event;
    ++total_recorded_;
  }

  /// The retained events, oldest first (ring order).
  std::vector<TraceEvent> Snapshot() const;

  uint64_t ops_seen() const { return ops_seen_; }
  uint64_t ops_sampled() const { return next_trace_id_ - 1; }
  /// Events lost to ring overwrite.
  uint64_t events_overwritten() const {
    return total_recorded_ <= ring_.size() ? 0
                                           : total_recorded_ - ring_.size();
  }

 private:
  bool enabled_ = false;
  int64_t sample_every_ = 1;
  uint64_t ops_seen_ = 0;
  uint64_t next_trace_id_ = 1;
  uint64_t total_recorded_ = 0;
  std::vector<TraceEvent> ring_;
};

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_TRACE_H_
