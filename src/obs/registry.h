#ifndef PBS_OBS_REGISTRY_H_
#define PBS_OBS_REGISTRY_H_

#include <map>
#include <string>

#include "obs/instruments.h"

namespace pbs {
namespace obs {

/// A namespace of named instruments (counters and log-bucketed histograms).
/// The registry is the merge/export surface of the observability layer:
/// each cluster (or each parallel chunk) fills its own registry, and the
/// harness merges them in a fixed order — name-keyed and order-independent
/// for counters/buckets, chunk-ordered for the floating-point histogram
/// sums — so a merged registry serializes bitwise identically at any
/// thread count.
///
/// Not thread-safe by design: one registry per single-threaded cluster (or
/// per worker chunk), merged afterwards. Name iteration is sorted
/// (std::map), so exports are deterministic.
class Registry {
 public:
  /// Finds or creates the named counter.
  Counter& counter(const std::string& name) { return counters_[name]; }

  /// Finds or creates the named histogram.
  LogHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  const Counter* FindCounter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
  }
  const LogHistogram* FindHistogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  /// Name-wise merge; instruments missing on this side are created.
  void Merge(const Registry& other) {
    for (const auto& [name, counter] : other.counters_) {
      counters_[name].Merge(counter);
    }
    for (const auto& [name, histogram] : other.histograms_) {
      histograms_[name].Merge(histogram);
    }
  }

  bool empty() const { return counters_.empty() && histograms_.empty(); }

  /// Sorted-by-name views for exporters.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }

  friend bool operator==(const Registry&, const Registry&) = default;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_REGISTRY_H_
