#ifndef PBS_OBS_DASHBOARD_H_
#define PBS_OBS_DASHBOARD_H_

#include <string>

namespace pbs {
namespace obs {

/// Renders a self-contained HTML consistency dashboard (inline CSS + SVG,
/// zero external dependencies — openable from a file:// URL offline) from
/// the telemetry JSONL artifact: the typed lines written by
/// WriteTimeSeriesJsonl ("meta"/"window"), WriteMonitorJsonl
/// ("sample"/"alert") and the controller's decision exporter ("decision").
/// Charts: measured vs. predicted freshness, read-latency quantiles vs.
/// prediction, per-window drift score, and mitigation traffic; tables:
/// raised alerts and the controller's per-epoch candidate audit.
/// Unknown line types are ignored, so the artifact schema can grow.
///
/// tools/pbs_report.py renders the same artifact with the Python stdlib;
/// this renderer backs `pbs report` and `pbs simulate --dashboard-out=`.
std::string RenderDashboardHtml(const std::string& telemetry_jsonl,
                                const std::string& title);

}  // namespace obs
}  // namespace pbs

#endif  // PBS_OBS_DASHBOARD_H_
