#include "obs/dashboard.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace pbs {
namespace obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the telemetry artifact's own output schema
// (objects, arrays, strings, numbers, booleans). Tolerant: a malformed
// line parses to an empty object and is skipped by the renderer.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  bool Has(const std::string& name) const { return fields.count(name) != 0; }
  double Num(const std::string& name, double fallback = 0.0) const {
    const auto it = fields.find(name);
    return it != fields.end() && it->second.kind == kNumber
               ? it->second.number
               : fallback;
  }
  std::string Str(const std::string& name) const {
    const auto it = fields.find(name);
    return it != fields.end() && it->second.kind == kString ? it->second.text
                                                            : std::string();
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) { return ParseValue(out) && true; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < text_.size()) {
        char escaped = text_[pos_++];
        switch (escaped) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            if (pos_ + 4 <= text_.size()) {
              const int code =
                  static_cast<int>(std::strtol(
                      text_.substr(pos_, 4).c_str(), nullptr, 16));
              pos_ += 4;
              out->push_back(static_cast<char>(code < 128 ? code : '?'));
            }
            break;
          default: out->push_back(escaped);
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->fields.emplace(std::move(key), std::move(value));
        if (Consume('}')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->items.push_back(std::move(value));
        if (Consume(']')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->text);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    const double number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->kind = JsonValue::kNumber;
    out->number = number;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string HtmlEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SVG line charts.

struct Series {
  std::string label;
  std::string color;
  std::vector<std::pair<double, double>> points;  // (x, y)
  bool dashed = false;
};

std::string Fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", v);
  return buffer;
}

/// One fixed-size chart: polylines over a shared [min, max] frame with
/// four horizontal gridlines and min/max labels on both axes.
std::string RenderChart(const std::string& title,
                        const std::vector<Series>& series, double y_floor,
                        const std::vector<double>& marks = {}) {
  constexpr double kW = 860, kH = 220, kL = 56, kR = 12, kT = 26, kB = 22;
  double x_min = 0, x_max = 1, y_min = y_floor, y_max = y_floor + 1e-9;
  bool any = false;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      if (!any) {
        x_min = x_max = x;
        any = true;
      }
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;
  const auto sx = [&](double x) {
    return kL + (x - x_min) / (x_max - x_min) * (kW - kL - kR);
  };
  const auto sy = [&](double y) {
    return kH - kB - (y - y_min) / (y_max - y_min) * (kH - kT - kB);
  };
  std::ostringstream svg;
  svg << "<div class=\"card\"><h2>" << HtmlEscape(title) << "</h2>"
      << "<svg viewBox=\"0 0 " << kW << " " << kH << "\" role=\"img\">";
  for (int g = 0; g <= 4; ++g) {
    const double y = y_min + (y_max - y_min) * g / 4.0;
    svg << "<line x1=\"" << kL << "\" y1=\"" << Fmt(sy(y)) << "\" x2=\""
        << kW - kR << "\" y2=\"" << Fmt(sy(y)) << "\" class=\"grid\"/>"
        << "<text x=\"" << kL - 6 << "\" y=\"" << Fmt(sy(y) + 4)
        << "\" class=\"tick\">" << Fmt(y) << "</text>";
  }
  for (double mark : marks) {
    if (mark < x_min || mark > x_max) continue;
    svg << "<line x1=\"" << Fmt(sx(mark)) << "\" y1=\"" << kT << "\" x2=\""
        << Fmt(sx(mark)) << "\" y2=\"" << kH - kB
        << "\" class=\"alertmark\"/>";
  }
  double legend_x = kL;
  for (const Series& s : series) {
    if (s.points.empty()) continue;
    svg << "<polyline fill=\"none\" stroke=\"" << s.color
        << "\" stroke-width=\"1.8\"";
    if (s.dashed) svg << " stroke-dasharray=\"6 4\"";
    svg << " points=\"";
    for (const auto& [x, y] : s.points) {
      svg << Fmt(sx(x)) << "," << Fmt(sy(y)) << " ";
    }
    svg << "\"/>";
    svg << "<text x=\"" << Fmt(legend_x) << "\" y=\"" << kT - 10
        << "\" fill=\"" << s.color << "\" class=\"legend\">"
        << HtmlEscape(s.label) << "</text>";
    legend_x += 10.0 * (s.label.size() + 2);
  }
  svg << "<text x=\"" << Fmt(kL) << "\" y=\"" << kH - 6
      << "\" class=\"tick\">" << Fmt(x_min) << " ms</text>"
      << "<text x=\"" << Fmt(kW - kR) << "\" y=\"" << kH - 6
      << "\" class=\"tick\" text-anchor=\"end\">" << Fmt(x_max)
      << " ms</text></svg></div>\n";
  return svg.str();
}

}  // namespace

std::string RenderDashboardHtml(const std::string& telemetry_jsonl,
                                const std::string& title) {
  std::vector<JsonValue> samples, alerts, decisions;
  JsonValue meta;
  size_t window_lines = 0;
  std::istringstream lines(telemetry_jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue value;
    JsonReader reader(line);
    if (!reader.Parse(&value) || value.kind != JsonValue::kObject) continue;
    const std::string type = value.Str("type");
    if (type == "sample") samples.push_back(std::move(value));
    else if (type == "alert") alerts.push_back(std::move(value));
    else if (type == "decision") decisions.push_back(std::move(value));
    else if (type == "meta") meta = std::move(value);
    else if (type == "window") ++window_lines;
  }

  const auto make_series = [](const char* label, const char* color,
                              bool dashed = false) {
    Series s;
    s.label = label;
    s.color = color;
    s.dashed = dashed;
    return s;
  };
  Series measured = make_series("measured fresh", "#1b7837");
  Series predicted = make_series("predicted fresh", "#542788", true);
  Series p50 = make_series("p50", "#2166ac");
  Series p99 = make_series("p99", "#b2182b");
  Series pred_p99 = make_series("predicted p99", "#542788", true);
  Series drift = make_series("drift score", "#e08214");
  Series hedges = make_series("hedges", "#8073ac");
  Series retries = make_series("retries", "#d6604d");
  Series stale = make_series("stale reads", "#b2182b");
  for (const JsonValue& s : samples) {
    const double t = s.Num("end_ms");
    measured.points.emplace_back(t, s.Num("measured_fresh"));
    if (s.Has("predicted_fresh")) {
      predicted.points.emplace_back(t, s.Num("predicted_fresh"));
    }
    p50.points.emplace_back(t, s.Num("read_p50_ms"));
    p99.points.emplace_back(t, s.Num("read_p99_ms"));
    if (s.Has("predicted_p99_ms")) {
      pred_p99.points.emplace_back(t, s.Num("predicted_p99_ms"));
    }
    drift.points.emplace_back(t, s.Num("drift_score"));
    hedges.points.emplace_back(t, s.Num("hedges"));
    retries.points.emplace_back(t, s.Num("retries"));
    stale.points.emplace_back(t, s.Num("stale"));
  }
  std::vector<double> alert_marks;
  for (const JsonValue& a : alerts) alert_marks.push_back(a.Num("time_ms"));

  std::ostringstream html;
  html << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
       << HtmlEscape(title) << "</title>\n<style>\n"
       << "body{font:14px/1.45 system-ui,sans-serif;margin:24px;"
          "background:#fafafa;color:#222}\n"
       << "h1{font-size:20px}h2{font-size:14px;margin:0 0 4px}\n"
       << ".card{background:#fff;border:1px solid #ddd;border-radius:6px;"
          "padding:12px;margin:0 0 16px;max-width:900px}\n"
       << "svg{width:100%;height:auto}\n"
       << ".grid{stroke:#eee}.tick{font-size:10px;fill:#888;"
          "text-anchor:end}.legend{font-size:11px}\n"
       << ".alertmark{stroke:#d73027;stroke-width:1.2;"
          "stroke-dasharray:2 3}\n"
       << "table{border-collapse:collapse;width:100%;font-size:12px}\n"
       << "th,td{border:1px solid #ddd;padding:3px 8px;text-align:left}\n"
       << "th{background:#f4f4f4}\n"
       << ".chosen{background:#e6f4e6}.alert{color:#b2182b;"
          "font-weight:600}\n"
       << "</style></head><body>\n<h1>" << HtmlEscape(title) << "</h1>\n";
  html << "<p>" << samples.size() << " monitor windows · " << window_lines
       << " time-series windows · " << alerts.size() << " alerts · "
       << decisions.size() << " controller decisions";
  if (meta.Has("window_ms") && meta.Num("window_ms") > 0.0) {
    html << " · window " << Fmt(meta.Num("window_ms")) << " ms";
  }
  html << "</p>\n";

  html << RenderChart("Freshness: measured vs. predicted",
                      {measured, predicted}, 0.0, alert_marks);
  html << RenderChart("Read latency (ms): measured quantiles vs. prediction",
                      {p50, p99, pred_p99}, 0.0, alert_marks);
  html << RenderChart("Drift score (1.0 = tolerance)", {drift}, 0.0,
                      alert_marks);
  html << RenderChart("Mitigation traffic per window",
                      {hedges, retries, stale}, 0.0, alert_marks);

  html << "<div class=\"card\"><h2>Alerts</h2>";
  if (alerts.empty()) {
    html << "<p>No alerts raised.</p>";
  } else {
    html << "<table><tr><th>kind</th><th>window</th><th>t (ms)</th>"
            "<th>value</th><th>threshold</th><th>detail</th></tr>";
    for (const JsonValue& a : alerts) {
      html << "<tr><td class=\"alert\">" << HtmlEscape(a.Str("kind"))
           << "</td><td>" << Fmt(a.Num("window_id")) << "</td><td>"
           << Fmt(a.Num("time_ms")) << "</td><td>" << Fmt(a.Num("value"))
           << "</td><td>" << Fmt(a.Num("threshold")) << "</td><td>"
           << HtmlEscape(a.Str("detail")) << "</td></tr>";
    }
    html << "</table>";
  }
  html << "</div>\n";

  html << "<div class=\"card\"><h2>Controller decisions</h2>";
  if (decisions.empty()) {
    html << "<p>No controller ran.</p>";
  } else {
    html << "<table><tr><th>id</th><th>t (ms)</th><th>action</th>"
            "<th>quorum</th><th>pred fresh</th><th>pred p99</th>"
            "<th>meas fresh</th><th>meas p99</th><th>candidates "
            "(rejected in gray)</th></tr>";
    for (const JsonValue& d : decisions) {
      html << "<tr><td>" << Fmt(d.Num("id")) << "</td><td>"
           << Fmt(d.Num("time_ms")) << "</td><td>"
           << HtmlEscape(d.Str("action")) << "</td><td>R∈[";
      html << Fmt(d.Num("r_lo")) << "," << Fmt(d.Num("r_hi")) << "] mix "
           << Fmt(d.Num("mix")) << " W=" << Fmt(d.Num("w")) << "</td><td>"
           << Fmt(d.Num("predicted_fresh")) << "</td><td>"
           << Fmt(d.Num("predicted_p99_ms")) << "</td><td>"
           << (d.Num("measured_fresh", -1.0) >= 0.0
                   ? Fmt(d.Num("measured_fresh"))
                   : std::string("—"))
           << "</td><td>" << Fmt(d.Num("measured_p99_ms")) << "</td><td>";
      const auto it = d.fields.find("candidates");
      if (it != d.fields.end() && it->second.kind == JsonValue::kArray) {
        for (const JsonValue& c : it->second.items) {
          const bool chosen = c.fields.count("chosen") != 0 &&
                              c.fields.at("chosen").boolean;
          html << "<span" << (chosen ? " class=\"chosen\"" : " style=\"color:#999\"")
               << ">" << HtmlEscape(c.Str("action")) << " (p="
               << Fmt(c.Num("predicted_fresh")) << ", p99="
               << Fmt(c.Num("predicted_p99_ms")) << ")</span> ";
        }
      }
      html << "</td></tr>";
    }
    html << "</table>";
  }
  html << "</div>\n</body></html>\n";
  return html.str();
}

}  // namespace obs
}  // namespace pbs
