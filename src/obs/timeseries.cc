#include "obs/timeseries.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "obs/json.h"

namespace pbs {
namespace obs {

Registry RegistryDelta(const Registry& cumulative, const Registry& previous) {
  Registry delta;
  for (const auto& [name, counter] : cumulative.counters()) {
    const Counter* before = previous.FindCounter(name);
    const int64_t moved = counter.value - (before ? before->value : 0);
    if (moved != 0) delta.counter(name).value = moved;
  }
  for (const auto& [name, histogram] : cumulative.histograms()) {
    const LogHistogram* before = previous.FindHistogram(name);
    LogHistogram moved =
        before ? histogram.DeltaSince(*before) : histogram;
    if (moved.count() != 0) delta.histogram(name) = std::move(moved);
  }
  return delta;
}

const WindowSnapshot& TimeSeries::Advance(int64_t window_id, double start_ms,
                                          double end_ms,
                                          const Registry& cumulative) {
  Registry delta = RegistryDelta(cumulative, previous_);
  previous_ = cumulative;
  return AdvanceDelta(window_id, start_ms, end_ms, std::move(delta));
}

const WindowSnapshot& TimeSeries::AdvanceDelta(int64_t window_id,
                                               double start_ms, double end_ms,
                                               Registry delta) {
  assert(windows_.empty() || windows_.back().window_id < window_id);
  WindowSnapshot snapshot;
  snapshot.window_id = window_id;
  snapshot.start_ms = start_ms;
  snapshot.end_ms = end_ms;
  snapshot.delta = std::move(delta);
  windows_.push_back(std::move(snapshot));
  ++cut_;
  while (windows_.size() > capacity_) {
    windows_.pop_front();
    ++dropped_;
  }
  return windows_.back();
}

void TimeSeries::Merge(const TimeSeries& other) {
  std::deque<WindowSnapshot> merged;
  auto mine = windows_.begin();
  auto theirs = other.windows_.begin();
  int64_t shared = 0;
  while (mine != windows_.end() || theirs != other.windows_.end()) {
    if (theirs == other.windows_.end() ||
        (mine != windows_.end() && mine->window_id < theirs->window_id)) {
      merged.push_back(std::move(*mine++));
    } else if (mine == windows_.end() ||
               theirs->window_id < mine->window_id) {
      merged.push_back(*theirs++);
    } else {
      WindowSnapshot combined = std::move(*mine++);
      combined.start_ms = std::min(combined.start_ms, theirs->start_ms);
      combined.end_ms = std::max(combined.end_ms, theirs->end_ms);
      combined.delta.Merge(theirs->delta);
      ++theirs;
      ++shared;
      merged.push_back(std::move(combined));
    }
  }
  windows_ = std::move(merged);
  capacity_ = std::max(capacity_, other.capacity_);
  cut_ += other.cut_ - shared;  // shared ids count once toward the total
  dropped_ += other.dropped_;
  while (windows_.size() > capacity_) {
    windows_.pop_front();
    ++dropped_;
  }
}

namespace {

void EmitWindow(const WindowSnapshot& window, std::ostream& out) {
  out << "{\"type\":\"window\",\"window_id\":" << window.window_id
      << ",\"start_ms\":" << JsonNumber(window.start_ms)
      << ",\"end_ms\":" << JsonNumber(window.end_ms) << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : window.delta.counters()) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << counter.value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : window.delta.histograms()) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":{\"count\":" << histogram.count()
        << ",\"min\":" << JsonNumber(histogram.min())
        << ",\"max\":" << JsonNumber(histogram.max())
        << ",\"mean\":" << JsonNumber(histogram.mean())
        << ",\"p50\":" << JsonNumber(histogram.Quantile(0.50))
        << ",\"p90\":" << JsonNumber(histogram.Quantile(0.90))
        << ",\"p99\":" << JsonNumber(histogram.Quantile(0.99)) << "}";
  }
  out << "}}\n";
}

}  // namespace

void WriteTimeSeriesJsonl(const TimeSeries& series, std::ostream& out,
                          double window_ms) {
  out << "{\"type\":\"meta\",\"windows\":" << series.windows().size()
      << ",\"windows_cut\":" << series.windows_cut()
      << ",\"windows_dropped\":" << series.windows_dropped()
      << ",\"window_ms\":" << JsonNumber(window_ms) << "}\n";
  for (const WindowSnapshot& window : series.windows()) {
    EmitWindow(window, out);
  }
}

std::string TimeSeriesJsonl(const TimeSeries& series, double window_ms) {
  std::ostringstream out;
  WriteTimeSeriesJsonl(series, out, window_ms);
  return out.str();
}

}  // namespace obs
}  // namespace pbs
