#ifndef PBS_SIM_EVENT_QUEUE_H_
#define PBS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pbs {

/// Callback executed when a scheduled event fires.
using EventCallback = std::function<void()>;

/// Time-ordered event queue with deterministic FIFO tie-breaking: events
/// scheduled for the same virtual time fire in scheduling order, which keeps
/// whole-simulation runs reproducible across platforms and STL
/// implementations.
class EventQueue {
 public:
  /// Enqueues `callback` to fire at absolute virtual time `time`.
  void Push(double time, EventCallback callback);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Virtual time of the next event; queue must be non-empty.
  double NextTime() const;

  /// Removes and returns the next event's callback (earliest time, FIFO
  /// among ties); queue must be non-empty. The fire time is written to
  /// `*time` if non-null.
  EventCallback Pop(double* time = nullptr);

 private:
  struct Entry {
    double time;
    uint64_t sequence;
    EventCallback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_sequence_ = 0;
};

}  // namespace pbs

#endif  // PBS_SIM_EVENT_QUEUE_H_
