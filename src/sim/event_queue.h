#ifndef PBS_SIM_EVENT_QUEUE_H_
#define PBS_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/function.h"

namespace pbs {

/// Callback executed when a scheduled event fires. Move-only: the queue
/// never copies a callback (std::function's copyability requirement both
/// forbade move-only captures and made every heap sift copy heap-allocated
/// state).
using EventCallback = UniqueFunction<void()>;

/// Time-ordered event queue with deterministic FIFO tie-breaking: events
/// scheduled for the same virtual time fire in scheduling order, which keeps
/// whole-simulation runs reproducible across platforms and STL
/// implementations.
///
/// Implementation (hot path of the discrete-event simulator): event records
/// live in a slab pool and are addressed by index; a 4-ary implicit min-heap
/// orders the *indices* by (time, sequence). Sift operations therefore move
/// 4-byte indices instead of 64+-byte records, popped slots are recycled
/// through a free list (steady-state Push/Pop performs no allocation), and
/// callbacks are moved — never copied — in and out of the pool.
class EventQueue {
 public:
  /// Enqueues `callback` to fire at absolute virtual time `time`.
  void Push(double time, EventCallback callback);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Virtual time of the next event; queue must be non-empty.
  double NextTime() const;

  /// Scheduling sequence of the next event; queue must be non-empty. The
  /// simulator compares this against the timer wheel's earliest staged
  /// timer so queue events and timers interleave in exact creation order.
  uint64_t HeadSequence() const;

  /// Issues the next value of the queue's sequence counter without pushing
  /// an event. The timer wheel draws from this shared counter, which is
  /// what makes (time, sequence) a single total order across both
  /// structures — a timer fires exactly where the equivalent Push would.
  uint64_t TakeSequence() { return next_sequence_++; }

  /// Removes and returns the next event's callback (earliest time, FIFO
  /// among ties); queue must be non-empty. The fire time is written to
  /// `*time` if non-null.
  EventCallback Pop(double* time = nullptr);

 private:
  struct Event {
    double time = 0.0;
    uint64_t sequence = 0;
    EventCallback callback;
  };

  /// (time, sequence) lexicographic order; sequence values are unique, so
  /// the comparison is a strict total order and ties in time resolve FIFO.
  bool Earlier(uint32_t a, uint32_t b) const {
    const Event& ea = pool_[a];
    const Event& eb = pool_[b];
    if (ea.time != eb.time) return ea.time < eb.time;
    return ea.sequence < eb.sequence;
  }

  void SiftUp(size_t hole);
  void SiftDown(size_t hole);

  std::vector<Event> pool_;       // slab of event records
  std::vector<uint32_t> free_;    // recycled pool slots (LIFO)
  std::vector<uint32_t> heap_;    // 4-ary implicit min-heap of pool indices
  uint64_t next_sequence_ = 0;
};

}  // namespace pbs

#endif  // PBS_SIM_EVENT_QUEUE_H_
