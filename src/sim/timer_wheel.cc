#include "sim/timer_wheel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pbs {

namespace {
constexpr size_t kReadyArity = 4;

int CountTrailingZeros(uint64_t v) {
  assert(v != 0);
  return __builtin_ctzll(v);
}
}  // namespace

TimerWheel::TimerWheel(double resolution_ms)
    : resolution_ms_(resolution_ms), inv_resolution_(1.0 / resolution_ms) {
  assert(resolution_ms > 0.0);
  for (uint32_t& head : buckets_) head = kNil;
}

uint32_t TimerWheel::AllocSlot() {
  if (!free_.empty()) {
    const uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  slab_.emplace_back();
  return static_cast<uint32_t>(slab_.size() - 1);
}

void TimerWheel::FreeSlot(uint32_t index) {
  Timer& timer = slab_[index];
  timer.callback = nullptr;
  timer.state = State::kFree;
  timer.cancelled = false;
  ++timer.generation;  // invalidate outstanding handles
  free_.push_back(index);
}

void TimerWheel::LinkIntoBucket(uint32_t index, int64_t tick) {
  Timer& timer = slab_[index];
  if (tick < current_tick_) {
    // Already due relative to the wheel position (a zero-delay timer, or a
    // re-cascade after a long drain): stage directly — the ready heap
    // carries exact (time, sequence), so ordering is unaffected.
    StageReady(index);
    return;
  }
  const int64_t delta = tick - current_tick_;
  int level = 0;
  while (level < kLevels - 1 &&
         delta >= (int64_t{1} << (kSlotBits * (level + 1)))) {
    ++level;
  }
  int64_t slot_tick = tick;
  if (delta >= (int64_t{1} << (kSlotBits * kLevels))) {
    // Beyond the top level's span: park in the furthest top-level slot and
    // let it re-cascade when the wheel comes around.
    slot_tick = current_tick_ + (int64_t{1} << (kSlotBits * kLevels)) - 1;
  }
  const uint64_t slot =
      static_cast<uint64_t>(slot_tick >> (kSlotBits * level)) & (kSlots - 1);
  const uint16_t bucket = static_cast<uint16_t>(level * kSlots + slot);

  timer.state = State::kBucket;
  timer.bucket = bucket;
  timer.prev = kNil;
  timer.next = buckets_[bucket];
  if (timer.next != kNil) slab_[timer.next].prev = index;
  buckets_[bucket] = index;
  occupancy_[level] |= uint64_t{1} << slot;
  ++in_buckets_;
}

void TimerWheel::UnlinkFromBucket(uint32_t index) {
  Timer& timer = slab_[index];
  assert(timer.state == State::kBucket);
  if (timer.prev != kNil) {
    slab_[timer.prev].next = timer.next;
  } else {
    buckets_[timer.bucket] = timer.next;
  }
  if (timer.next != kNil) slab_[timer.next].prev = timer.prev;
  if (buckets_[timer.bucket] == kNil) {
    occupancy_[timer.bucket / kSlots] &=
        ~(uint64_t{1} << (timer.bucket % kSlots));
  }
  --in_buckets_;
}

void TimerWheel::StageReady(uint32_t index) {
  Timer& timer = slab_[index];
  timer.state = State::kReady;
  ready_.push_back(Ready{timer.time, timer.sequence, index});
  ReadySiftUp(ready_.size() - 1);
}

TimerHandle TimerWheel::Add(double time, uint64_t sequence,
                            EventCallback callback) {
  assert(callback);
  const uint32_t index = AllocSlot();
  Timer& timer = slab_[index];
  timer.time = time;
  timer.sequence = sequence;
  timer.cancelled = false;
  timer.callback = std::move(callback);
  LinkIntoBucket(index, TickOf(time));
  ++pending_;
  if (pending_ > max_pending_) max_pending_ = pending_;
  return TimerHandle{index, timer.generation};
}

bool TimerWheel::Cancel(TimerHandle handle) {
  if (!handle.valid() || handle.index >= slab_.size()) return false;
  Timer& timer = slab_[handle.index];
  if (timer.generation != handle.generation ||
      timer.state == State::kFree || timer.cancelled) {
    return false;
  }
  --pending_;
  if (timer.state == State::kBucket) {
    UnlinkFromBucket(handle.index);
    FreeSlot(handle.index);
  } else {
    // Staged in the ready heap: drop the captures now, skip the heap entry
    // lazily when it reaches the top.
    timer.cancelled = true;
    timer.callback = nullptr;
  }
  return true;
}

void TimerWheel::Cascade(int level, uint64_t slot) {
  const uint16_t bucket = static_cast<uint16_t>(level * kSlots + slot);
  uint32_t index = buckets_[bucket];
  buckets_[bucket] = kNil;
  occupancy_[level] &= ~(uint64_t{1} << slot);
  while (index != kNil) {
    const uint32_t next = slab_[index].next;
    --in_buckets_;
    LinkIntoBucket(index, TickOf(slab_[index].time));
    index = next;
  }
}

void TimerWheel::ExpireUpTo(double time) {
  int64_t target;
  if (std::isfinite(time) &&
      time * inv_resolution_ <
          static_cast<double>(std::numeric_limits<int64_t>::max() / 2)) {
    target = TickOf(time);
  } else {
    target = std::numeric_limits<int64_t>::max() / 2;
  }
  ExpireTicksUpTo(target);
}

void TimerWheel::ExpireTicksUpTo(int64_t target) {
  if (target < current_tick_) return;
  if (in_buckets_ == 0) {
    // Nothing resident: advance the position without touching buckets. Never
    // run past the last expired tick plus the targeted range boundary —
    // future Adds compute deltas against this position.
    current_tick_ = target + 1;
    return;
  }
  while (current_tick_ <= target && in_buckets_ > 0) {
    if ((current_tick_ & (kSlots - 1)) == 0) {
      // Window boundary: cascade the covering bucket of every level whose
      // boundary this is, coarsest first so re-filed timers land in the
      // finer buckets before those are consumed.
      for (int level = kLevels - 1; level >= 1; --level) {
        const int64_t span = int64_t{1} << (kSlotBits * level);
        if ((current_tick_ & (span - 1)) == 0) {
          Cascade(level,
                  static_cast<uint64_t>(current_tick_ >> (kSlotBits * level)) &
                      (kSlots - 1));
        }
      }
    }
    const int64_t window_last = current_tick_ | (kSlots - 1);
    const int64_t stop = std::min(target, window_last);  // inclusive
    int64_t tick = current_tick_;
    while (tick <= stop) {
      const int base_slot = static_cast<int>(tick & (kSlots - 1));
      const uint64_t rest = occupancy_[0] >> base_slot;
      if (rest == 0) break;  // no occupied level-0 slot left in this window
      const int64_t occupied =
          (tick & ~static_cast<int64_t>(kSlots - 1)) + base_slot +
          CountTrailingZeros(rest);
      if (occupied > stop) break;
      const uint64_t slot = static_cast<uint64_t>(occupied) & (kSlots - 1);
      uint32_t index = buckets_[slot];
      buckets_[slot] = kNil;
      occupancy_[0] &= ~(uint64_t{1} << slot);
      while (index != kNil) {
        const uint32_t next = slab_[index].next;
        --in_buckets_;
        StageReady(index);
        index = next;
      }
      tick = occupied + 1;
    }
    current_tick_ = stop + 1;
  }
  if (in_buckets_ == 0 && current_tick_ <= target) current_tick_ = target + 1;
}

void TimerWheel::DropCancelledReadyHead() {
  while (!ready_.empty() && slab_[ready_.front().index].cancelled) {
    const uint32_t index = ready_.front().index;
    ready_.front() = ready_.back();
    ready_.pop_back();
    if (!ready_.empty()) ReadySiftDown(0);
    FreeSlot(index);
  }
}

bool TimerWheel::PeekReady(double* time, uint64_t* sequence) {
  DropCancelledReadyHead();
  while (ready_.empty()) {
    if (in_buckets_ == 0) return false;
    // Advance window by window until something stages (used when the main
    // event queue is empty and the wheel must supply the next event).
    ExpireTicksUpTo(current_tick_ | (kSlots - 1));
    DropCancelledReadyHead();
  }
  *time = ready_.front().time;
  *sequence = ready_.front().sequence;
  return true;
}

EventCallback TimerWheel::PopReady(double* time) {
  DropCancelledReadyHead();
  assert(!ready_.empty());
  const uint32_t index = ready_.front().index;
  Timer& timer = slab_[index];
  if (time != nullptr) *time = timer.time;
  EventCallback callback = std::move(timer.callback);
  ready_.front() = ready_.back();
  ready_.pop_back();
  if (!ready_.empty()) ReadySiftDown(0);
  FreeSlot(index);
  --pending_;
  return callback;
}

void TimerWheel::ReadySiftUp(size_t hole) {
  const Ready moving = ready_[hole];
  while (hole > 0) {
    const size_t parent = (hole - 1) / kReadyArity;
    const Ready& p = ready_[parent];
    if (p.time < moving.time ||
        (p.time == moving.time && p.sequence < moving.sequence)) {
      break;
    }
    ready_[hole] = p;
    hole = parent;
  }
  ready_[hole] = moving;
}

void TimerWheel::ReadySiftDown(size_t hole) {
  const Ready moving = ready_[hole];
  const size_t count = ready_.size();
  for (;;) {
    const size_t first = kReadyArity * hole + 1;
    if (first >= count) break;
    const size_t last = std::min(first + kReadyArity, count);
    size_t best = first;
    for (size_t c = first + 1; c < last; ++c) {
      const Ready& a = ready_[c];
      const Ready& b = ready_[best];
      if (a.time < b.time || (a.time == b.time && a.sequence < b.sequence)) {
        best = c;
      }
    }
    const Ready& winner = ready_[best];
    if (!(winner.time < moving.time ||
          (winner.time == moving.time && winner.sequence < moving.sequence))) {
      break;
    }
    ready_[hole] = winner;
    hole = best;
  }
  ready_[hole] = moving;
}

}  // namespace pbs
