#include "sim/simulator.h"

#include <cassert>

namespace pbs {

void Simulator::Schedule(double delay, EventCallback callback) {
  assert(delay >= 0.0);
  queue_.Push(now_ + delay, std::move(callback));
  NoteQueueDepth();
}

void Simulator::At(double time, EventCallback callback) {
  assert(time >= now_);
  queue_.Push(time, std::move(callback));
  NoteQueueDepth();
}

TimerHandle Simulator::ScheduleTimer(double delay, EventCallback callback) {
  assert(delay >= 0.0);
  // The sequence is drawn from the queue's counter: timers and events form
  // one creation-ordered stream, so FIFO ties resolve identically whether a
  // deadline lives here or in the queue.
  return timers_.Add(now_ + delay, queue_.TakeSequence(),
                     std::move(callback));
}

bool Simulator::CancelTimer(TimerHandle handle) {
  return timers_.Cancel(handle);
}

bool Simulator::FireNext(double limit) {
  const bool have_queue = !queue_.empty();
  const double queue_time = have_queue ? queue_.NextTime() : 0.0;
  // Stage every timer due at or before the queue head so the pick below
  // compares complete information. With an empty queue, PeekReady advances
  // the wheel itself.
  if (have_queue) timers_.ExpireUpTo(queue_time);
  double timer_time = 0.0;
  uint64_t timer_sequence = 0;
  const bool have_timer = timers_.PeekReady(&timer_time, &timer_sequence);

  bool pick_timer;
  if (have_queue && have_timer) {
    pick_timer = timer_time < queue_time ||
                 (timer_time == queue_time &&
                  timer_sequence < queue_.HeadSequence());
  } else if (have_timer) {
    pick_timer = true;
  } else if (have_queue) {
    pick_timer = false;
  } else {
    return false;
  }

  if ((pick_timer ? timer_time : queue_time) > limit) return false;
  double time = 0.0;
  EventCallback callback =
      pick_timer ? timers_.PopReady(&time) : queue_.Pop(&time);
  now_ = time;
  callback();
  return true;
}

size_t Simulator::Run(size_t max_events) {
  size_t processed = 0;
  while (processed < max_events &&
         FireNext(std::numeric_limits<double>::infinity())) {
    ++processed;
  }
  events_processed_ += processed;
  return processed;
}

size_t Simulator::RunUntil(double end_time) {
  assert(end_time >= now_);
  size_t processed = 0;
  while (FireNext(end_time)) ++processed;
  now_ = end_time;
  events_processed_ += processed;
  return processed;
}

}  // namespace pbs
