#include "sim/simulator.h"

#include <cassert>

namespace pbs {

void Simulator::Schedule(double delay, EventCallback callback) {
  assert(delay >= 0.0);
  queue_.Push(now_ + delay, std::move(callback));
  NoteQueueDepth();
}

void Simulator::At(double time, EventCallback callback) {
  assert(time >= now_);
  queue_.Push(time, std::move(callback));
  NoteQueueDepth();
}

size_t Simulator::Run(size_t max_events) {
  size_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    double time = 0.0;
    EventCallback callback = queue_.Pop(&time);
    now_ = time;
    callback();
    ++processed;
  }
  events_processed_ += processed;
  return processed;
}

size_t Simulator::RunUntil(double end_time) {
  assert(end_time >= now_);
  size_t processed = 0;
  while (!queue_.empty() && queue_.NextTime() <= end_time) {
    double time = 0.0;
    EventCallback callback = queue_.Pop(&time);
    now_ = time;
    callback();
    ++processed;
  }
  now_ = end_time;
  events_processed_ += processed;
  return processed;
}

}  // namespace pbs
