#ifndef PBS_SIM_NETWORK_H_
#define PBS_SIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "dist/distribution.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace pbs {

/// Endpoint identifier within a simulated network (node or client).
using NodeId = int;

/// Message fabric for the discrete-event simulator.
///
/// Delivery semantics: a message from src to dst is delayed by an explicit
/// caller-supplied delay (the KVS samples WARS legs itself) or by the link's
/// latency distribution, then the delivery callback fires. Messages can be
/// dropped probabilistically and links can be partitioned; both model the
/// failure scenarios of Section 6 of the paper.
class Network {
 public:
  Network(Simulator* sim, uint64_t seed);

  /// Default latency distribution for Send() without an explicit delay.
  void set_default_latency(DistributionPtr latency);

  /// Overrides the latency distribution of the directed link src -> dst.
  void SetLinkLatency(NodeId src, NodeId dst, DistributionPtr latency);

  /// Probability in [0, 1] that any message is silently dropped.
  void set_drop_probability(double p);

  /// Cuts (or heals) both directions between a and b.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  bool IsPartitioned(NodeId a, NodeId b) const;

  /// Sends with an explicit one-way delay (>= 0). Returns false if the
  /// message was dropped or the link is partitioned (callback never fires).
  bool SendWithDelay(NodeId src, NodeId dst, double delay,
                     EventCallback deliver);

  /// Sends with a delay sampled from the link's (or default) latency
  /// distribution.
  bool Send(NodeId src, NodeId dst, EventCallback deliver);

  int64_t messages_sent() const { return messages_sent_; }
  int64_t messages_dropped() const { return messages_dropped_; }

 private:
  const Distribution* LatencyFor(NodeId src, NodeId dst) const;

  Simulator* sim_;
  Rng rng_;
  DistributionPtr default_latency_;
  std::map<std::pair<NodeId, NodeId>, DistributionPtr> link_latency_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  double drop_probability_ = 0.0;
  int64_t messages_sent_ = 0;
  int64_t messages_dropped_ = 0;
};

}  // namespace pbs

#endif  // PBS_SIM_NETWORK_H_
