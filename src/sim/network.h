#ifndef PBS_SIM_NETWORK_H_
#define PBS_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>
#include <utility>

#include "dist/distribution.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace pbs {

/// Endpoint identifier within a simulated network (node or client).
using NodeId = int;

/// Gray-failure behavior of a directed link (or of every link out of one
/// node). Unlike fail-stop crashes and clean partitions, these faults keep
/// the endpoint *alive* — messages still flow, just late, lossy, or
/// duplicated — which is where real Dynamo-style deployments spend their
/// tails.
///
/// Applied transforms, in order:
///   1. Burst loss: a Gilbert-Elliott two-state chain (good/bad) advanced
///      once per message; the message is dropped with loss_good or loss_bad
///      depending on the post-transition state.
///   2. Delay degradation: delay' = delay * delay_mult + delay_add_ms.
///   3. Duplication: with duplicate_probability the message is delivered
///      twice, the copy lagging by duplicate_lag_ms (receivers must
///      deduplicate — the coordinator read path counts distinct replicas).
struct FaultProfile {
  double delay_mult = 1.0;
  double delay_add_ms = 0.0;

  // Gilbert-Elliott burst loss. Defaults model "no loss"; a classic bursty
  // link is e.g. {p_good_to_bad=0.1, p_bad_to_good=0.3, loss_bad=0.5}.
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;
  double loss_bad = 0.0;

  double duplicate_probability = 0.0;
  double duplicate_lag_ms = 0.1;

  /// True when the Gilbert-Elliott chain needs advancing (i.e. the profile
  /// can drop messages at all).
  bool HasLoss() const {
    return loss_good > 0.0 || loss_bad > 0.0 || p_good_to_bad > 0.0;
  }
  bool HasDelay() const { return delay_mult != 1.0 || delay_add_ms != 0.0; }
  bool HasDuplication() const { return duplicate_probability > 0.0; }
};

/// Per-directed-link fault accounting (drops caused by an installed fault or
/// a one-way partition, and duplicated deliveries).
struct LinkFaultStats {
  int64_t fault_dropped = 0;
  int64_t duplicated = 0;
};

/// Message fabric for the discrete-event simulator.
///
/// Delivery semantics: a message from src to dst is delayed by an explicit
/// caller-supplied delay (the KVS samples WARS legs itself) or by the link's
/// latency distribution, then the delivery callback fires. Messages can be
/// dropped probabilistically, links can be partitioned (two-way or one-way),
/// and per-link / per-node FaultProfiles inject gray failures: delay
/// degradation, Gilbert-Elliott burst loss, and duplicate delivery. All of
/// it models the failure scenarios of Section 6 of the paper and beyond.
///
/// RNG-consumption contract (determinism): the fault layer draws from the
/// network's own stream only when a fault can actually fire — a profile
/// with loss consumes exactly two draws per message (state transition +
/// loss test), one with duplication one draw; links without installed
/// profiles consume none. A fault-free configuration therefore reproduces
/// the exact pre-fault-layer draw sequence.
class Network {
 public:
  Network(Simulator* sim, uint64_t seed);

  /// Default latency distribution for Send() without an explicit delay.
  void set_default_latency(DistributionPtr latency);

  /// Overrides the latency distribution of the directed link src -> dst.
  void SetLinkLatency(NodeId src, NodeId dst, DistributionPtr latency);

  /// Probability in [0, 1] that any message is silently dropped.
  void set_drop_probability(double p);

  /// Cuts (or heals) both directions between a and b.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  bool IsPartitioned(NodeId a, NodeId b) const;

  /// Cuts (or heals) only the src -> dst direction: an *asymmetric*
  /// partition. dst -> src keeps delivering — the classic gray failure
  /// where a replica hears requests but its responses vanish.
  void SetOneWayPartitioned(NodeId src, NodeId dst, bool partitioned);
  bool IsOneWayPartitioned(NodeId src, NodeId dst) const;

  /// Installs (replacing any previous) a gray-fault profile on the directed
  /// link src -> dst. The Gilbert-Elliott chain starts in the good state.
  void SetLinkFault(NodeId src, NodeId dst, const FaultProfile& profile);
  void ClearLinkFault(NodeId src, NodeId dst);

  /// Installs a gray-fault profile on every message *sent by* `node`
  /// (models a slow/overloaded process: its responses and acks degrade).
  /// Node and link profiles compose — both apply when both are installed.
  void SetNodeFault(NodeId node, const FaultProfile& profile);
  void ClearNodeFault(NodeId node);

  /// Sends with an explicit one-way delay (>= 0). Returns false if the
  /// message was dropped or the link is partitioned (callback never fires).
  /// Callers that ignore a drop must have an independent timeout armed —
  /// the coordinator state machines always do.
  ///
  /// When `effective_delay` is non-null and the message is delivered, it
  /// receives the post-fault-transform delay (delay_mult / delay_add_ms
  /// applied) — the *actual* in-flight time, which the observability layer
  /// records so trace timelines stay truthful under gray faults.
  [[nodiscard]] bool SendWithDelay(NodeId src, NodeId dst, double delay,
                                   EventCallback deliver,
                                   double* effective_delay = nullptr);

  /// Sends with a delay sampled from the link's (or default) latency
  /// distribution.
  [[nodiscard]] bool Send(NodeId src, NodeId dst, EventCallback deliver);

  int64_t messages_sent() const { return messages_sent_; }
  int64_t messages_dropped() const { return messages_dropped_; }
  int64_t messages_duplicated() const { return messages_duplicated_; }

  /// Fault accounting for the directed link src -> dst (zeros if the link
  /// never dropped or duplicated under a fault).
  LinkFaultStats LinkStats(NodeId src, NodeId dst) const;

 private:
  struct FaultState {
    FaultProfile profile;
    bool bad = false;  // Gilbert-Elliott chain state
  };

  const Distribution* LatencyFor(NodeId src, NodeId dst) const;

  /// Applies one fault profile to an in-flight message: advances the loss
  /// chain (maybe dropping), transforms the delay, and samples duplication.
  /// Returns false when the message is dropped.
  bool ApplyFault(FaultState& state, NodeId src, NodeId dst, double* delay,
                  bool* duplicate, double* duplicate_lag);

  /// Fires the callback parked in duplicate slot `index`; releases the slot
  /// after its second (final) invocation.
  void FireDuplicate(uint32_t index);

  Simulator* sim_;
  Rng rng_;
  DistributionPtr default_latency_;
  std::map<std::pair<NodeId, NodeId>, DistributionPtr> link_latency_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  std::set<std::pair<NodeId, NodeId>> one_way_partitions_;  // directed
  std::map<std::pair<NodeId, NodeId>, FaultState> link_faults_;  // directed
  std::map<NodeId, FaultState> node_faults_;  // keyed by src
  std::map<std::pair<NodeId, NodeId>, LinkFaultStats> link_stats_;
  // Duplicate-delivery slots: the original and lagged copy of a duplicated
  // message share one pooled callback instead of a shared_ptr heap
  // allocation per duplication. Deque for reference stability (a firing
  // callback may send — and duplicate — further messages).
  struct DuplicateSlot {
    EventCallback callback;
    int remaining = 0;
  };
  std::deque<DuplicateSlot> duplicate_pool_;
  std::vector<uint32_t> duplicate_free_;
  double drop_probability_ = 0.0;
  int64_t messages_sent_ = 0;
  int64_t messages_dropped_ = 0;
  int64_t messages_duplicated_ = 0;
};

}  // namespace pbs

#endif  // PBS_SIM_NETWORK_H_
