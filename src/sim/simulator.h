#ifndef PBS_SIM_SIMULATOR_H_
#define PBS_SIM_SIMULATOR_H_

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"

namespace pbs {

/// Single-threaded discrete-event simulator: a virtual clock plus an event
/// queue. All times are in milliseconds, matching the latency distributions.
///
/// The engine is deliberately minimal — actors (KVS nodes, clients, the
/// network) are plain objects that capture `this` in scheduled callbacks.
/// Determinism: callbacks fire in (time, scheduling-order) order and all
/// randomness comes from explicitly seeded Rng streams.
class Simulator {
 public:
  /// Current virtual time.
  double now() const { return now_; }

  /// Schedules `callback` to fire `delay` >= 0 after now().
  void Schedule(double delay, EventCallback callback);

  /// Schedules `callback` at absolute time `time` >= now().
  void At(double time, EventCallback callback);

  /// Runs events until the queue is empty or `max_events` fired.
  /// Returns the number of events processed.
  size_t Run(size_t max_events = std::numeric_limits<size_t>::max());

  /// Runs events with fire time <= `end_time` (clock advances to at most
  /// end_time). Returns the number of events processed.
  size_t RunUntil(double end_time);

  size_t events_processed() const { return events_processed_; }
  bool HasPendingEvents() const { return !queue_.empty(); }

  /// High-water mark of the event queue over the simulator's lifetime — an
  /// observability instrument (exported as "sim/max_queue_depth"): retry
  /// storms and hedge floods show up here before they show up in latency.
  size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  void NoteQueueDepth() {
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  }

  EventQueue queue_;
  double now_ = 0.0;
  size_t events_processed_ = 0;
  size_t max_queue_depth_ = 0;
};

}  // namespace pbs

#endif  // PBS_SIM_SIMULATOR_H_
