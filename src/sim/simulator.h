#ifndef PBS_SIM_SIMULATOR_H_
#define PBS_SIM_SIMULATOR_H_

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"
#include "sim/timer_wheel.h"

namespace pbs {

/// Single-threaded discrete-event simulator: a virtual clock plus an event
/// queue. All times are in milliseconds, matching the latency distributions.
///
/// The engine is deliberately minimal — actors (KVS nodes, clients, the
/// network) are plain objects that capture `this` in scheduled callbacks.
/// Determinism: callbacks fire in (time, scheduling-order) order and all
/// randomness comes from explicitly seeded Rng streams.
///
/// Two scheduling surfaces share one (time, sequence) total order:
///   - Schedule()/At() — the event queue, for messages and one-shot work.
///   - ScheduleTimer()/CancelTimer() — the hierarchical timer wheel, for
///     the timeout/hedge/retry/heartbeat population where most timers are
///     cancelled before firing. Cancellation is O(1) and a cancelled timer
///     never fires (not even as a no-op), keeping the hot loop free of
///     dead timeout events.
/// Because both draw sequence numbers from one shared counter and the wheel
/// stages timers by exact fire time, replacing a Schedule with a
/// ScheduleTimer is bitwise behavior-preserving (same firing order, same
/// FIFO tie-breaks).
class Simulator {
 public:
  /// Current virtual time.
  double now() const { return now_; }

  /// Schedules `callback` to fire `delay` >= 0 after now().
  void Schedule(double delay, EventCallback callback);

  /// Schedules `callback` at absolute time `time` >= now().
  void At(double time, EventCallback callback);

  /// Schedules a cancellable timer firing `delay` >= 0 after now().
  TimerHandle ScheduleTimer(double delay, EventCallback callback);

  /// Cancels a pending timer; returns false if it already fired (or was
  /// already cancelled). The callback's captures are released immediately.
  bool CancelTimer(TimerHandle handle);

  /// Runs events until the queue is empty or `max_events` fired.
  /// Returns the number of events processed.
  size_t Run(size_t max_events = std::numeric_limits<size_t>::max());

  /// Runs events with fire time <= `end_time` (clock advances to at most
  /// end_time). Returns the number of events processed.
  size_t RunUntil(double end_time);

  size_t events_processed() const { return events_processed_; }
  bool HasPendingEvents() const {
    return !queue_.empty() || timers_.pending() > 0;
  }

  /// Pending (not fired, not cancelled) timer-wheel entries.
  size_t pending_timers() const { return timers_.pending(); }

  /// High-water mark of the event queue over the simulator's lifetime — an
  /// observability instrument (exported as "sim/max_queue_depth"): retry
  /// storms and hedge floods show up here before they show up in latency.
  /// Counts the event queue only; timer-wheel residency has its own
  /// high-water mark in max_pending_timers().
  size_t max_queue_depth() const { return max_queue_depth_; }
  size_t max_pending_timers() const { return timers_.max_pending(); }

 private:
  void NoteQueueDepth() {
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  }

  /// Fires the earliest of (queue head, staged timer) if its time is
  /// <= `limit`; returns whether anything fired.
  bool FireNext(double limit);

  EventQueue queue_;
  TimerWheel timers_;
  double now_ = 0.0;
  size_t events_processed_ = 0;
  size_t max_queue_depth_ = 0;
};

}  // namespace pbs

#endif  // PBS_SIM_SIMULATOR_H_
