#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace pbs {

void EventQueue::Push(double time, EventCallback callback) {
  assert(callback != nullptr);
  heap_.push(Entry{time, next_sequence_++, std::move(callback)});
}

double EventQueue::NextTime() const {
  assert(!heap_.empty());
  return heap_.top().time;
}

EventCallback EventQueue::Pop(double* time) {
  assert(!heap_.empty());
  // priority_queue::top() returns a const ref; the callback must be moved
  // out via a const_cast-free copy of the entry. std::priority_queue lacks a
  // mutable pop, so we copy the shared_ptr-backed std::function (cheap).
  Entry entry = heap_.top();
  heap_.pop();
  if (time != nullptr) *time = entry.time;
  return std::move(entry.callback);
}

}  // namespace pbs
