#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pbs {

namespace {
// 4-ary layout: children of heap slot i are 4i+1 .. 4i+4, parent is
// (i-1)/4. Fan-out 4 halves the tree depth versus binary (fewer sift
// levels per operation) while the 4-child minimum scan stays in one or two
// cache lines of 4-byte indices.
constexpr size_t kArity = 4;
}  // namespace

void EventQueue::Push(double time, EventCallback callback) {
  assert(callback);
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Event& event = pool_[slot];
  event.time = time;
  event.sequence = next_sequence_++;
  event.callback = std::move(callback);

  heap_.push_back(slot);
  SiftUp(heap_.size() - 1);
}

double EventQueue::NextTime() const {
  assert(!heap_.empty());
  return pool_[heap_[0]].time;
}

uint64_t EventQueue::HeadSequence() const {
  assert(!heap_.empty());
  return pool_[heap_[0]].sequence;
}

EventCallback EventQueue::Pop(double* time) {
  assert(!heap_.empty());
  const uint32_t slot = heap_[0];
  Event& event = pool_[slot];
  if (time != nullptr) *time = event.time;
  EventCallback callback = std::move(event.callback);

  // Recycle the record and re-heapify: last index fills the root hole and
  // sifts down. The moved-from callback is already empty, so the pooled
  // record holds no live capture while on the free list.
  free_.push_back(slot);
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return callback;
}

void EventQueue::SiftUp(size_t hole) {
  const uint32_t moving = heap_[hole];
  while (hole > 0) {
    const size_t parent = (hole - 1) / kArity;
    if (!Earlier(moving, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = moving;
}

void EventQueue::SiftDown(size_t hole) {
  const uint32_t moving = heap_[hole];
  const size_t count = heap_.size();
  for (;;) {
    const size_t first_child = kArity * hole + 1;
    if (first_child >= count) break;
    const size_t last_child = std::min(first_child + kArity, count);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(heap_[c], heap_[best])) best = c;
    }
    if (!Earlier(heap_[best], moving)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = moving;
}

}  // namespace pbs
