#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "dist/primitives.h"

namespace pbs {
namespace {

std::pair<NodeId, NodeId> Normalize(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

Network::Network(Simulator* sim, uint64_t seed)
    : sim_(sim), rng_(seed), default_latency_(PointMass(0.0)) {
  assert(sim != nullptr);
}

void Network::set_default_latency(DistributionPtr latency) {
  assert(latency != nullptr);
  default_latency_ = std::move(latency);
}

void Network::SetLinkLatency(NodeId src, NodeId dst,
                             DistributionPtr latency) {
  assert(latency != nullptr);
  link_latency_[{src, dst}] = std::move(latency);
}

void Network::set_drop_probability(double p) {
  assert(p >= 0.0 && p <= 1.0);
  drop_probability_ = p;
}

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  if (partitioned) {
    partitions_.insert(Normalize(a, b));
  } else {
    partitions_.erase(Normalize(a, b));
  }
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(Normalize(a, b)) > 0;
}

void Network::SetOneWayPartitioned(NodeId src, NodeId dst, bool partitioned) {
  if (partitioned) {
    one_way_partitions_.insert({src, dst});
  } else {
    one_way_partitions_.erase({src, dst});
  }
}

bool Network::IsOneWayPartitioned(NodeId src, NodeId dst) const {
  return one_way_partitions_.count({src, dst}) > 0;
}

void Network::SetLinkFault(NodeId src, NodeId dst,
                           const FaultProfile& profile) {
  link_faults_[{src, dst}] = FaultState{profile, /*bad=*/false};
}

void Network::ClearLinkFault(NodeId src, NodeId dst) {
  link_faults_.erase({src, dst});
}

void Network::SetNodeFault(NodeId node, const FaultProfile& profile) {
  node_faults_[node] = FaultState{profile, /*bad=*/false};
}

void Network::ClearNodeFault(NodeId node) { node_faults_.erase(node); }

LinkFaultStats Network::LinkStats(NodeId src, NodeId dst) const {
  const auto it = link_stats_.find({src, dst});
  return it == link_stats_.end() ? LinkFaultStats{} : it->second;
}

const Distribution* Network::LatencyFor(NodeId src, NodeId dst) const {
  const auto it = link_latency_.find({src, dst});
  if (it != link_latency_.end()) return it->second.get();
  return default_latency_.get();
}

bool Network::ApplyFault(FaultState& state, NodeId src, NodeId dst,
                         double* delay, bool* duplicate,
                         double* duplicate_lag) {
  const FaultProfile& profile = state.profile;
  if (profile.HasLoss()) {
    // Advance the Gilbert-Elliott chain once per message, then test loss in
    // the new state. Exactly two draws whenever loss is configured, so the
    // consumption is a function of the installed profile, not of the chain
    // state (determinism contract).
    const double transition = rng_.NextDouble();
    state.bad = state.bad ? !(transition < profile.p_bad_to_good)
                          : transition < profile.p_good_to_bad;
    const double loss = state.bad ? profile.loss_bad : profile.loss_good;
    if (rng_.NextDouble() < loss) {
      ++messages_dropped_;
      ++link_stats_[{src, dst}].fault_dropped;
      return false;
    }
  }
  *delay = *delay * profile.delay_mult + profile.delay_add_ms;
  if (profile.HasDuplication() && !*duplicate &&
      rng_.NextDouble() < profile.duplicate_probability) {
    *duplicate = true;
    *duplicate_lag = profile.duplicate_lag_ms;
  }
  return true;
}

bool Network::SendWithDelay(NodeId src, NodeId dst, double delay,
                            EventCallback deliver, double* effective_delay) {
  assert(delay >= 0.0);
  if (IsPartitioned(src, dst)) {
    ++messages_dropped_;
    return false;
  }
  if (!one_way_partitions_.empty() && IsOneWayPartitioned(src, dst)) {
    ++messages_dropped_;
    ++link_stats_[{src, dst}].fault_dropped;
    return false;
  }
  if (drop_probability_ > 0.0 && rng_.NextDouble() < drop_probability_) {
    ++messages_dropped_;
    return false;
  }
  bool duplicate = false;
  double duplicate_lag = 0.0;
  if (!node_faults_.empty()) {
    const auto it = node_faults_.find(src);
    if (it != node_faults_.end() &&
        !ApplyFault(it->second, src, dst, &delay, &duplicate,
                    &duplicate_lag)) {
      return false;
    }
  }
  if (!link_faults_.empty()) {
    const auto it = link_faults_.find({src, dst});
    if (it != link_faults_.end() &&
        !ApplyFault(it->second, src, dst, &delay, &duplicate,
                    &duplicate_lag)) {
      return false;
    }
  }
  ++messages_sent_;
  if (effective_delay != nullptr) *effective_delay = delay;
  if (duplicate) {
    // The original and the lagged copy share one pooled callback slot
    // (EventCallback is move-only). Receivers see the same message twice and
    // must deduplicate (the quorum read/write paths count distinct
    // replicas).
    ++messages_duplicated_;
    ++link_stats_[{src, dst}].duplicated;
    uint32_t slot;
    if (!duplicate_free_.empty()) {
      slot = duplicate_free_.back();
      duplicate_free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(duplicate_pool_.size());
      duplicate_pool_.emplace_back();
    }
    DuplicateSlot& record = duplicate_pool_[slot];
    record.callback = std::move(deliver);
    record.remaining = 2;
    sim_->Schedule(delay, [this, slot]() { FireDuplicate(slot); });
    sim_->Schedule(delay + duplicate_lag,
                   [this, slot]() { FireDuplicate(slot); });
  } else {
    sim_->Schedule(delay, std::move(deliver));
  }
  return true;
}

void Network::FireDuplicate(uint32_t index) {
  DuplicateSlot& slot = duplicate_pool_[index];
  slot.callback();
  // Re-index: the callback may have duplicated further messages and grown
  // the pool (deque keeps references valid, but stay explicit about it).
  if (--duplicate_pool_[index].remaining == 0) {
    duplicate_pool_[index].callback = nullptr;
    duplicate_free_.push_back(index);
  }
}

bool Network::Send(NodeId src, NodeId dst, EventCallback deliver) {
  return SendWithDelay(src, dst, LatencyFor(src, dst)->Sample(rng_),
                       std::move(deliver));
}

}  // namespace pbs
