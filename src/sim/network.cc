#include "sim/network.h"

#include <algorithm>
#include <cassert>

#include "dist/primitives.h"

namespace pbs {
namespace {

std::pair<NodeId, NodeId> Normalize(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

Network::Network(Simulator* sim, uint64_t seed)
    : sim_(sim), rng_(seed), default_latency_(PointMass(0.0)) {
  assert(sim != nullptr);
}

void Network::set_default_latency(DistributionPtr latency) {
  assert(latency != nullptr);
  default_latency_ = std::move(latency);
}

void Network::SetLinkLatency(NodeId src, NodeId dst,
                             DistributionPtr latency) {
  assert(latency != nullptr);
  link_latency_[{src, dst}] = std::move(latency);
}

void Network::set_drop_probability(double p) {
  assert(p >= 0.0 && p <= 1.0);
  drop_probability_ = p;
}

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  if (partitioned) {
    partitions_.insert(Normalize(a, b));
  } else {
    partitions_.erase(Normalize(a, b));
  }
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(Normalize(a, b)) > 0;
}

const Distribution* Network::LatencyFor(NodeId src, NodeId dst) const {
  const auto it = link_latency_.find({src, dst});
  if (it != link_latency_.end()) return it->second.get();
  return default_latency_.get();
}

bool Network::SendWithDelay(NodeId src, NodeId dst, double delay,
                            EventCallback deliver) {
  assert(delay >= 0.0);
  if (IsPartitioned(src, dst)) {
    ++messages_dropped_;
    return false;
  }
  if (drop_probability_ > 0.0 && rng_.NextDouble() < drop_probability_) {
    ++messages_dropped_;
    return false;
  }
  ++messages_sent_;
  sim_->Schedule(delay, std::move(deliver));
  return true;
}

bool Network::Send(NodeId src, NodeId dst, EventCallback deliver) {
  return SendWithDelay(src, dst, LatencyFor(src, dst)->Sample(rng_),
                       std::move(deliver));
}

}  // namespace pbs
