#ifndef PBS_SIM_TIMER_WHEEL_H_
#define PBS_SIM_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/function.h"

namespace pbs {

using EventCallback = UniqueFunction<void()>;

/// Handle to a scheduled timer. The (index, generation) pair makes
/// cancellation safe against slot reuse: cancelling an already-fired timer
/// whose slot was recycled is a detected no-op, not a corruption.
struct TimerHandle {
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
  uint32_t index = kInvalid;
  uint32_t generation = 0;

  bool valid() const { return index != kInvalid; }
};

/// Hierarchical batched timer wheel for the discrete-event simulator's
/// timer population: request timeouts, hedge deadlines, retry backoffs,
/// heartbeats. These timers are overwhelmingly *cancelled* (a healthy
/// operation commits long before its timeout), so they want O(1) insert and
/// O(1) cancel rather than the O(log n) heap traffic the main event queue
/// pays — and cancelled timers must vanish instead of firing as no-op
/// events.
///
/// Structure: kLevels levels of kSlots buckets; level l buckets span
/// 64^l ticks of `resolution_ms`. A timer lands in the coarsest bucket
/// whose span still distinguishes it from "now" and cascades toward level 0
/// as the wheel turns. Buckets are intrusive doubly-linked lists over a
/// slab of timer records (cancel unlinks in O(1) and recycles the slot;
/// steady state allocates nothing). Per-level occupancy bitmasks let the
/// wheel skip empty regions, so advancing virtual time far with few timers
/// is cheap.
///
/// Determinism contract: the wheel is an *indexing* structure only. Every
/// record keeps its exact fire time and the globally shared scheduling
/// sequence number, and expiry stages records into a (time, sequence)
/// min-heap the simulator merges with the main event queue — so a timer
/// fires at exactly the (time, sequence) position a plain Schedule() call
/// would have, bit for bit, including FIFO tie order.
class TimerWheel {
 public:
  explicit TimerWheel(double resolution_ms = 0.5);

  /// Registers a timer firing at absolute time `time` with scheduling
  /// sequence `sequence` (issued by the shared simulator counter).
  TimerHandle Add(double time, uint64_t sequence, EventCallback callback);

  /// Cancels the timer if it has not fired; returns whether it was live.
  /// The callback is destroyed immediately (dropping its captures).
  bool Cancel(TimerHandle handle);

  /// Live timers (scheduled and not yet fired or cancelled).
  size_t pending() const { return pending_; }

  /// Advances the wheel, staging every timer with fire time <= `time` into
  /// the ready heap. Pass +infinity to drain all pending timers.
  void ExpireUpTo(double time);

  /// Earliest staged timer, ordered by (time, sequence). PeekReady returns
  /// false when nothing is staged (after skipping cancelled entries).
  bool PeekReady(double* time, uint64_t* sequence);

  /// Pops the earliest staged timer's callback; PeekReady must have
  /// returned true. Writes the fire time to `*time` if non-null.
  EventCallback PopReady(double* time = nullptr);

  /// High-water mark of timers resident in the wheel.
  size_t max_pending() const { return max_pending_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr uint64_t kSlots = 1ull << kSlotBits;  // 64 per level
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  enum class State : uint8_t { kFree, kBucket, kReady };

  struct Timer {
    double time = 0.0;
    uint64_t sequence = 0;
    uint32_t generation = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
    uint16_t bucket = 0;  // level * kSlots + slot while State::kBucket
    State state = State::kFree;
    bool cancelled = false;
    EventCallback callback;
  };

  struct Ready {
    double time;
    uint64_t sequence;
    uint32_t index;
  };

  int64_t TickOf(double time) const {
    return static_cast<int64_t>(time * inv_resolution_);
  }

  uint32_t AllocSlot();
  void ExpireTicksUpTo(int64_t target);
  void FreeSlot(uint32_t index);
  void LinkIntoBucket(uint32_t index, int64_t tick);
  void UnlinkFromBucket(uint32_t index);
  void StageReady(uint32_t index);
  void Cascade(int level, uint64_t slot);
  void ReadySiftUp(size_t hole);
  void ReadySiftDown(size_t hole);
  void DropCancelledReadyHead();

  double resolution_ms_;
  double inv_resolution_;
  int64_t current_tick_ = 0;  // buckets strictly before this tick are empty

  std::vector<Timer> slab_;
  std::vector<uint32_t> free_;
  uint32_t buckets_[kLevels * kSlots];
  uint64_t occupancy_[kLevels] = {0, 0, 0, 0};
  size_t in_buckets_ = 0;

  std::vector<Ready> ready_;  // 4-ary min-heap by (time, sequence)
  size_t pending_ = 0;
  size_t max_pending_ = 0;
};

}  // namespace pbs

#endif  // PBS_SIM_TIMER_WHEEL_H_
