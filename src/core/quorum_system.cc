#include "core/quorum_system.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pbs {
namespace {

/// Applies per-member omission: drops each id with probability p.
void DropMembers(Rng& rng, double p, std::vector<int>* quorum) {
  if (p <= 0.0) return;
  auto keep_end = std::remove_if(quorum->begin(), quorum->end(), [&](int) {
    return rng.NextDouble() < p;
  });
  quorum->erase(keep_end, quorum->end());
}

class SubsetQuorumSystem final : public QuorumSystem {
 public:
  SubsetQuorumSystem(int n, int read_size, int write_size)
      : n_(n), read_size_(read_size), write_size_(write_size) {
    assert(n >= 1);
    assert(read_size >= 1 && read_size <= n);
    assert(write_size >= 1 && write_size <= n);
  }

  int num_replicas() const override { return n_; }

  std::vector<int> SampleReadQuorum(Rng& rng) const override {
    return SampleSubset(rng, read_size_);
  }
  std::vector<int> SampleWriteQuorum(Rng& rng) const override {
    return SampleSubset(rng, write_size_);
  }

  bool IsStrict() const override { return read_size_ + write_size_ > n_; }

  std::string Describe() const override {
    return "Subset(N=" + std::to_string(n_) +
           ", R=" + std::to_string(read_size_) +
           ", W=" + std::to_string(write_size_) + ")";
  }

 private:
  std::vector<int> SampleSubset(Rng& rng, int size) const {
    // Partial Fisher-Yates over a fresh identity vector (the system is
    // immutable and shared, so no persistent scratch).
    std::vector<int> ids(n_);
    std::iota(ids.begin(), ids.end(), 0);
    for (int i = 0; i < size; ++i) {
      const int j =
          i + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n_ - i)));
      std::swap(ids[i], ids[j]);
    }
    ids.resize(size);
    return ids;
  }

  int n_;
  int read_size_;
  int write_size_;
};

class GridQuorumSystem final : public QuorumSystem {
 public:
  GridQuorumSystem(int rows, int cols, double miss_probability)
      : rows_(rows), cols_(cols), miss_probability_(miss_probability) {
    assert(rows >= 1);
    assert(cols >= 1);
    assert(miss_probability >= 0.0 && miss_probability < 1.0);
  }

  int num_replicas() const override { return rows_ * cols_; }

  std::vector<int> SampleReadQuorum(Rng& rng) const override {
    // One full row.
    const int row = static_cast<int>(rng.NextBounded(rows_));
    std::vector<int> quorum(cols_);
    for (int c = 0; c < cols_; ++c) quorum[c] = row * cols_ + c;
    DropMembers(rng, miss_probability_, &quorum);
    return quorum;
  }

  std::vector<int> SampleWriteQuorum(Rng& rng) const override {
    // One full column.
    const int col = static_cast<int>(rng.NextBounded(cols_));
    std::vector<int> quorum(rows_);
    for (int r = 0; r < rows_; ++r) quorum[r] = r * cols_ + col;
    DropMembers(rng, miss_probability_, &quorum);
    return quorum;
  }

  bool IsStrict() const override { return miss_probability_ == 0.0; }

  std::string Describe() const override {
    return "Grid(" + std::to_string(rows_) + "x" + std::to_string(cols_) +
           ", miss=" + std::to_string(miss_probability_) + ")";
  }

 private:
  int rows_;
  int cols_;
  double miss_probability_;
};

class TreeQuorumSystem final : public QuorumSystem {
 public:
  TreeQuorumSystem(int levels, double root_preference,
                   double miss_probability)
      : levels_(levels), root_preference_(root_preference),
        miss_probability_(miss_probability) {
    assert(levels >= 1);
    assert(root_preference > 0.0 && root_preference <= 1.0);
    assert(miss_probability >= 0.0 && miss_probability < 1.0);
  }

  int num_replicas() const override { return (1 << levels_) - 1; }

  std::vector<int> SampleReadQuorum(Rng& rng) const override {
    return SampleQuorum(rng);
  }
  std::vector<int> SampleWriteQuorum(Rng& rng) const override {
    return SampleQuorum(rng);
  }

  bool IsStrict() const override { return miss_probability_ == 0.0; }

  std::string Describe() const override {
    return "Tree(levels=" + std::to_string(levels_) +
           ", root_pref=" + std::to_string(root_preference_) +
           ", miss=" + std::to_string(miss_probability_) + ")";
  }

 private:
  // Heap layout: node i has children 2i+1, 2i+2; leaves at the last level.
  bool IsLeaf(int node) const { return 2 * node + 1 >= num_replicas(); }

  // Agrawal-El Abbadi tree quorum protocol (binary form):
  //   Q(v) = {v} U Q(one child)         if v is available,
  //   Q(v) = Q(left) U Q(right)         otherwise.
  // Intersection by induction: if quorums A and B both contain v, done. If
  // only A does, then B covers quorums of BOTH children, one of which is
  // the child A recursed into; induction gives a common member there. If
  // neither contains v, both cover both children; recurse on the left.
  // `root_preference` models node availability at each level.
  void Collect(Rng& rng, int node, std::vector<int>* out) const {
    if (IsLeaf(node)) {
      out->push_back(node);
      return;
    }
    if (rng.NextDouble() < root_preference_) {
      out->push_back(node);
      const int child =
          2 * node + 1 + static_cast<int>(rng.NextBounded(2));
      Collect(rng, child, out);
    } else {
      Collect(rng, 2 * node + 1, out);
      Collect(rng, 2 * node + 2, out);
    }
  }

  std::vector<int> SampleQuorum(Rng& rng) const {
    std::vector<int> quorum;
    Collect(rng, 0, &quorum);
    DropMembers(rng, miss_probability_, &quorum);
    return quorum;
  }

  int levels_;
  double root_preference_;
  double miss_probability_;
};

}  // namespace

QuorumSystemPtr MakeSubsetQuorumSystem(int n, int read_size, int write_size) {
  return std::make_shared<SubsetQuorumSystem>(n, read_size, write_size);
}

QuorumSystemPtr MakeGridQuorumSystem(int rows, int cols,
                                     double miss_probability) {
  return std::make_shared<GridQuorumSystem>(rows, cols, miss_probability);
}

QuorumSystemPtr MakeTreeQuorumSystem(int levels, double root_preference,
                                     double miss_probability) {
  return std::make_shared<TreeQuorumSystem>(levels, root_preference,
                                            miss_probability);
}

QuorumSystemStats AnalyzeQuorumSystem(const QuorumSystem& system, int trials,
                                      uint64_t seed) {
  assert(trials > 0);
  Rng rng(seed);
  const int n = system.num_replicas();
  std::vector<int64_t> touches(n, 0);
  std::vector<int8_t> holds(n, 0);  // 0: none, 1: v-1 only, 2: v (latest)
  int64_t misses = 0;
  int64_t k2_misses = 0;
  int64_t read_members = 0;
  int64_t write_members = 0;
  int64_t accesses = 0;

  for (int t = 0; t < trials; ++t) {
    std::fill(holds.begin(), holds.end(), 0);
    const auto write_prev = system.SampleWriteQuorum(rng);
    const auto write_last = system.SampleWriteQuorum(rng);
    const auto read = system.SampleReadQuorum(rng);
    for (int id : write_prev) holds[id] = 1;
    for (int id : write_last) holds[id] = 2;
    bool saw_last = false;
    bool saw_any = false;
    for (int id : read) {
      if (holds[id] == 2) saw_last = true;
      if (holds[id] != 0) saw_any = true;
    }
    if (!saw_last) ++misses;
    if (!saw_any) ++k2_misses;
    // Load: every quorum member is accessed once per operation; the load of
    // the system is the max over replicas of (touches / operations)
    // [Naor & Wool, Definition 3.2].
    for (int id : read) ++touches[id];
    for (int id : write_prev) ++touches[id];
    for (int id : write_last) ++touches[id];
    accesses += 3;  // three operations per trial
    read_members += static_cast<int64_t>(read.size());
    write_members += static_cast<int64_t>(write_last.size());
  }

  QuorumSystemStats stats;
  stats.miss_probability = static_cast<double>(misses) / trials;
  stats.k2_miss_probability = static_cast<double>(k2_misses) / trials;
  const int64_t busiest =
      *std::max_element(touches.begin(), touches.end());
  stats.load = static_cast<double>(busiest) / static_cast<double>(accesses);
  stats.mean_read_quorum_size = static_cast<double>(read_members) / trials;
  stats.mean_write_quorum_size = static_cast<double>(write_members) / trials;
  return stats;
}

}  // namespace pbs
