#ifndef PBS_CORE_TVISIBILITY_H_
#define PBS_CORE_TVISIBILITY_H_

#include <cstdint>
#include <vector>

#include "core/wars.h"
#include "dist/distribution.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace pbs {

/// The t-visibility curve P(consistent | t) for one (config, latency model)
/// pair, represented by the sorted per-trial consistency thresholds t*.
/// Because P(consistent | t) = P(t* <= t), the ECDF of t* is the whole curve
/// and its quantiles invert it exactly — one Monte Carlo run answers every
/// t and every target probability.
class TVisibilityCurve {
 public:
  /// Takes ownership of the (unsorted) per-trial thresholds.
  explicit TVisibilityCurve(std::vector<double> thresholds);

  /// P(read issued t after commit returns the committed version) —
  /// Definition 3's 1 - pst.
  double ProbConsistent(double t) const;

  /// pst: probability of a stale read at time t.
  double ProbStale(double t) const { return 1.0 - ProbConsistent(t); }

  /// Smallest t achieving P(consistent) >= p — the paper's headline metric
  /// ("t-visibility for pst = .001"). p in (0, 1]. The threshold rank is
  /// computed exactly (util/math.h CeilProbabilityRank), with no
  /// floating-point epsilon, so boundary probabilities like p = 1/n or
  /// p = 0.999 with a million trials select the mathematically correct
  /// order statistic.
  double TimeForConsistency(double p) const;

  /// Fraction of trials already consistent at t = 0 (reads that cannot
  /// observe reordering).
  double ProbImmediatelyConsistent() const { return ProbConsistent(0.0); }

  /// Wilson confidence interval around ProbConsistent(t) at the given
  /// confidence level — the Monte Carlo uncertainty of the curve point.
  ProportionInterval ProbConsistentInterval(double t,
                                            double confidence = 0.95) const;

  size_t num_trials() const { return sorted_thresholds_.size(); }
  const std::vector<double>& sorted_thresholds() const {
    return sorted_thresholds_;
  }

 private:
  std::vector<double> sorted_thresholds_;
};

/// Runs WARS Monte Carlo and returns the t-visibility curve. Parallel over
/// `exec.threads` workers with thread-count-independent results (see
/// RunWarsTrials).
TVisibilityCurve EstimateTVisibility(const QuorumConfig& config,
                                     const ReplicaLatencyModelPtr& model,
                                     int trials, uint64_t seed,
                                     const PbsExecutionOptions& exec = {});

/// Estimates the write-propagation CDF at time t after commit from trials
/// collected with want_propagation=true: result[c] = P(Wr <= c) for
/// c in [0, N], where Wr is the number of replicas holding the version.
/// This is the Pw input of Equation 4 (core/closed_form.h).
std::vector<double> EmpiricalPwAt(const WarsTrialSet& set, int n, double t);

/// <k, t>-staleness Monte Carlo (the Section 5.1 extension): a stream of
/// writes with the given inter-commit arrival process, each propagating
/// under the WARS model; a read is issued t after the newest version's
/// commit and we record how many versions stale its result is.
struct KTStalenessResult {
  /// histogram[d] = number of reads that returned a value exactly d versions
  /// stale (d = 0 means the newest version).
  std::vector<int64_t> histogram;

  /// P(result is k or more versions stale) — the Monte Carlo analogue of
  /// Equation 5's pskt with k = `k`.
  double ProbStalerThan(int k) const;

  /// Expected number of versions stale.
  double MeanStaleness() const;
};

KTStalenessResult EstimateKTStaleness(const QuorumConfig& config,
                                      const ReplicaLatencyModelPtr& model,
                                      const DistributionPtr& inter_arrival,
                                      double t, int history, int trials,
                                      uint64_t seed,
                                      const PbsExecutionOptions& exec = {});

}  // namespace pbs

#endif  // PBS_CORE_TVISIBILITY_H_
