#include "core/backend.h"

namespace pbs {

const char* PredictorBackendName(PredictorBackend backend) {
  switch (backend) {
    case PredictorBackend::kMonteCarlo: return "mc";
    case PredictorBackend::kAnalytic: return "analytic";
    case PredictorBackend::kAuto: return "auto";
  }
  return "unknown";
}

StatusOr<PredictorBackend> ParsePredictorBackend(const std::string& text) {
  if (text == "mc" || text == "montecarlo" || text == "monte-carlo") {
    return PredictorBackend::kMonteCarlo;
  }
  if (text == "analytic") return PredictorBackend::kAnalytic;
  if (text == "auto") return PredictorBackend::kAuto;
  return Status::InvalidArgument("unknown predictor backend '" + text +
                                 "' (want mc | analytic | auto)");
}

}  // namespace pbs
