#include "core/wars.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace pbs {
namespace {

/// Returns the k-th smallest (1-indexed) element of `values` without fully
/// sorting; `values` is scratch and may be reordered.
double KthSmallest(std::vector<double>& values, int k) {
  assert(k >= 1 && static_cast<size_t>(k) <= values.size());
  std::nth_element(values.begin(), values.begin() + (k - 1), values.end());
  return values[k - 1];
}

class IidReplicaLatencyModel final : public ReplicaLatencyModel {
 public:
  IidReplicaLatencyModel(WarsDistributions dists, int n)
      : dists_(std::move(dists)), n_(n) {
    assert(n >= 1);
  }

  int num_replicas() const override { return n_; }

  void SampleTrial(Rng& rng,
                   std::vector<ReplicaLegSample>* out) const override {
    out->resize(n_);
    for (auto& leg : *out) {
      leg.w = dists_.w->Sample(rng);
      leg.a = dists_.a->Sample(rng);
      leg.r = dists_.r->Sample(rng);
      leg.s = dists_.s->Sample(rng);
    }
  }

  std::string Describe() const override { return dists_.name + " (IID)"; }

 private:
  WarsDistributions dists_;
  int n_;
};

class WanReplicaLatencyModel final : public ReplicaLatencyModel {
 public:
  WanReplicaLatencyModel(WarsDistributions base, int n, double one_way_ms)
      : base_(std::move(base)), n_(n), one_way_ms_(one_way_ms) {
    assert(n >= 1);
    assert(one_way_ms >= 0.0);
  }

  int num_replicas() const override { return n_; }

  void SampleTrial(Rng& rng,
                   std::vector<ReplicaLegSample>* out) const override {
    out->resize(n_);
    // The write and read coordinators land in independently random
    // datacenters; each datacenter hosts exactly one replica.
    const int write_local = static_cast<int>(rng.NextBounded(n_));
    const int read_local = static_cast<int>(rng.NextBounded(n_));
    for (int i = 0; i < n_; ++i) {
      auto& leg = (*out)[i];
      leg.w = base_.w->Sample(rng);
      leg.a = base_.a->Sample(rng);
      leg.r = base_.r->Sample(rng);
      leg.s = base_.s->Sample(rng);
      if (i != write_local) {
        leg.w += one_way_ms_;
        leg.a += one_way_ms_;
      }
      if (i != read_local) {
        leg.r += one_way_ms_;
        leg.s += one_way_ms_;
      }
    }
  }

  std::string Describe() const override {
    return "WAN(+" + std::to_string(one_way_ms_) + "ms remote legs over " +
           base_.name + ")";
  }

 private:
  WarsDistributions base_;
  int n_;
  double one_way_ms_;
};

class HeterogeneousReplicaLatencyModel final : public ReplicaLatencyModel {
 public:
  explicit HeterogeneousReplicaLatencyModel(
      std::vector<WarsDistributions> dists)
      : dists_(std::move(dists)) {
    assert(!dists_.empty());
  }

  int num_replicas() const override {
    return static_cast<int>(dists_.size());
  }

  void SampleTrial(Rng& rng,
                   std::vector<ReplicaLegSample>* out) const override {
    out->resize(dists_.size());
    for (size_t i = 0; i < dists_.size(); ++i) {
      auto& leg = (*out)[i];
      leg.w = dists_[i].w->Sample(rng);
      leg.a = dists_[i].a->Sample(rng);
      leg.r = dists_[i].r->Sample(rng);
      leg.s = dists_[i].s->Sample(rng);
    }
  }

  std::string Describe() const override {
    std::string out = "Heterogeneous[";
    for (size_t i = 0; i < dists_.size(); ++i) {
      if (i) out += ", ";
      out += dists_[i].name;
    }
    return out + "]";
  }

 private:
  std::vector<WarsDistributions> dists_;
};

class LocalCoordinatorLatencyModel final : public ReplicaLatencyModel {
 public:
  LocalCoordinatorLatencyModel(WarsDistributions base, int n,
                               bool same_coordinator, double local_delay_ms)
      : base_(std::move(base)), n_(n), same_coordinator_(same_coordinator),
        local_delay_ms_(local_delay_ms) {
    assert(n >= 1);
    assert(local_delay_ms >= 0.0);
  }

  int num_replicas() const override { return n_; }

  void SampleTrial(Rng& rng,
                   std::vector<ReplicaLegSample>* out) const override {
    out->resize(n_);
    const int write_local = static_cast<int>(rng.NextBounded(n_));
    const int read_local =
        same_coordinator_ ? write_local
                          : static_cast<int>(rng.NextBounded(n_));
    for (int i = 0; i < n_; ++i) {
      auto& leg = (*out)[i];
      if (i == write_local) {
        leg.w = local_delay_ms_;
        leg.a = local_delay_ms_;
      } else {
        leg.w = base_.w->Sample(rng);
        leg.a = base_.a->Sample(rng);
      }
      if (i == read_local) {
        leg.r = local_delay_ms_;
        leg.s = local_delay_ms_;
      } else {
        leg.r = base_.r->Sample(rng);
        leg.s = base_.s->Sample(rng);
      }
    }
  }

  std::string Describe() const override {
    return std::string("LocalCoordinator(") +
           (same_coordinator_ ? "same" : "independent") + " over " +
           base_.name + ")";
  }

 private:
  WarsDistributions base_;
  int n_;
  bool same_coordinator_;
  double local_delay_ms_;
};

}  // namespace

ReplicaLatencyModelPtr MakeLocalCoordinatorModel(const WarsDistributions& base,
                                                 int n, bool same_coordinator,
                                                 double local_delay_ms) {
  return std::make_shared<LocalCoordinatorLatencyModel>(
      base, n, same_coordinator, local_delay_ms);
}

ReplicaLatencyModelPtr MakeIidModel(const WarsDistributions& dists, int n) {
  return std::make_shared<IidReplicaLatencyModel>(dists, n);
}

ReplicaLatencyModelPtr MakeWanModel(const WarsDistributions& base, int n,
                                    double one_way_ms) {
  return std::make_shared<WanReplicaLatencyModel>(base, n, one_way_ms);
}

ReplicaLatencyModelPtr MakeHeterogeneousModel(
    std::vector<WarsDistributions> dists) {
  return std::make_shared<HeterogeneousReplicaLatencyModel>(std::move(dists));
}

WarsSimulator::WarsSimulator(const QuorumConfig& config,
                             ReplicaLatencyModelPtr model, uint64_t seed,
                             ReadFanout read_fanout)
    : WarsSimulator(config, std::move(model), Rng(seed), read_fanout) {}

WarsSimulator::WarsSimulator(const QuorumConfig& config,
                             ReplicaLatencyModelPtr model, Rng rng,
                             ReadFanout read_fanout)
    : config_(config), model_(std::move(model)), rng_(rng),
      read_fanout_(read_fanout) {
  assert(config_.IsValid());
  assert(model_ != nullptr);
  assert(model_->num_replicas() == config_.n);
}

WarsTrial WarsSimulator::RunTrial(bool want_propagation) {
  const int n = config_.n;
  model_->SampleTrial(rng_, &legs_);

  // Commit time wt: the coordinator needs W acknowledgments; ack i arrives
  // at w[i] + a[i].
  write_arrival_.resize(n);
  for (int i = 0; i < n; ++i) write_arrival_[i] = legs_[i].w + legs_[i].a;
  const double wt = KthSmallest(write_arrival_, config_.w);

  // Read side.
  read_round_trip_.resize(n);
  for (int j = 0; j < n; ++j) read_round_trip_[j] = legs_[j].r + legs_[j].s;
  read_order_.resize(n);
  std::iota(read_order_.begin(), read_order_.end(), 0);

  WarsTrial trial;
  trial.write_latency = wt;
  if (read_fanout_ == ReadFanout::kAllN) {
    // Dynamo: contact all N, return after the R fastest round trips.
    std::partial_sort(read_order_.begin(), read_order_.begin() + config_.r,
                      read_order_.end(), [&](int a, int b) {
                        return read_round_trip_[a] < read_round_trip_[b];
                      });
    trial.read_latency = read_round_trip_[read_order_[config_.r - 1]];
  } else {
    // Voldemort: contact a uniformly random R-subset, wait for all of it.
    for (int i = 0; i < config_.r; ++i) {
      const int j = i + static_cast<int>(rng_.NextBounded(
                            static_cast<uint64_t>(n - i)));
      std::swap(read_order_[i], read_order_[j]);
    }
    double slowest = 0.0;
    for (int k = 0; k < config_.r; ++k) {
      slowest = std::max(slowest, read_round_trip_[read_order_[k]]);
    }
    trial.read_latency = slowest;
  }

  // A responder j is fresh for a read issued t after commit iff the read
  // request reaches it no earlier than the write did:
  //   wt + t + r[j] >= w[j]  <=>  t >= w[j] - wt - r[j].
  // The read is consistent iff ANY of the first R responders is fresh, so
  // the trial's threshold is the minimum over them.
  double threshold = std::numeric_limits<double>::infinity();
  for (int k = 0; k < config_.r; ++k) {
    const int j = read_order_[k];
    threshold = std::min(threshold, legs_[j].w - wt - legs_[j].r);
  }
  trial.staleness_threshold = std::max(0.0, threshold);

  if (want_propagation) {
    // Time after commit until the c-th replica holds the version.
    trial.propagation_times.resize(n);
    for (int i = 0; i < n; ++i) {
      trial.propagation_times[i] = std::max(0.0, legs_[i].w - wt);
    }
    std::sort(trial.propagation_times.begin(),
              trial.propagation_times.end());
  }
  return trial;
}

WarsTrialSet RunWarsTrials(const QuorumConfig& config,
                           const ReplicaLatencyModelPtr& model, int trials,
                           uint64_t seed, bool want_propagation,
                           ReadFanout read_fanout,
                           const PbsExecutionOptions& exec) {
  assert(trials > 0);
  WarsTrialSet set;
  set.write_latencies.resize(trials);
  set.read_latencies.resize(trials);
  set.staleness_thresholds.resize(trials);
  if (want_propagation) {
    set.propagation.assign(config.n, std::vector<double>(trials));
  }
  // Chunk c samples the c-th jump sub-stream and fills rows [begin, end) of
  // the pre-sized columns; no two chunks touch the same row, and neither the
  // stream layout nor the row layout depends on the thread count.
  const std::vector<Rng> streams =
      MakeJumpStreams(Rng(seed), NumChunks(trials, exec));
  ParallelFor(trials, exec,
              [&](int64_t chunk, int64_t begin, int64_t end) {
                WarsSimulator sim(config, model, streams[chunk], read_fanout);
                for (int64_t t = begin; t < end; ++t) {
                  const WarsTrial trial = sim.RunTrial(want_propagation);
                  set.write_latencies[t] = trial.write_latency;
                  set.read_latencies[t] = trial.read_latency;
                  set.staleness_thresholds[t] = trial.staleness_threshold;
                  if (want_propagation) {
                    for (int c = 0; c < config.n; ++c) {
                      set.propagation[c][t] = trial.propagation_times[c];
                    }
                  }
                }
              });
  return set;
}

}  // namespace pbs
