#include "core/wars.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "dist/sampler.h"
#include "util/small_sort.h"

namespace pbs {
namespace {

/// Returns the k-th smallest (1-indexed) element of `values` without fully
/// sorting; `values` is scratch and may be reordered. Small n (the common
/// quorum sizes) go through branch-free sorting networks.
double KthSmallest(std::vector<double>& values, int k) {
  assert(k >= 1 && static_cast<size_t>(k) <= values.size());
  return SmallKthSmallest(values.data(), static_cast<int>(values.size()), k);
}

class IidReplicaLatencyModel final : public ReplicaLatencyModel {
 public:
  IidReplicaLatencyModel(WarsDistributions dists, int n)
      : dists_(std::move(dists)), plan_(dists_), n_(n) {
    assert(n >= 1);
  }

  int num_replicas() const override { return n_; }

  void SampleTrialSoA(Rng& rng, double* legs) const override {
    plan_.SampleLegs(rng, n_, legs);
  }

  void SampleTrialsSoA(Rng& rng, int trials, double* legs) const override {
    // IID legs across replicas AND trials: a block of `trials` trials is
    // distributionally identical to one trial with n*trials replicas, so the
    // whole block is a single fused plan invocation at full batch width. Leg
    // L's n*trials values land contiguously at offset L*n*trials, which is
    // exactly the column-major block layout — the (replica, trial)
    // interpretation of that region is free because the values are IID.
    plan_.SampleLegs(rng, n_ * trials, legs);
  }

  const WarsDistributions* IidLegs() const override { return &dists_; }

  std::string Describe() const override { return dists_.name + " (IID)"; }

 private:
  WarsDistributions dists_;
  SamplerPlan plan_;
  int n_;
};

class WanReplicaLatencyModel final : public ReplicaLatencyModel {
 public:
  WanReplicaLatencyModel(WarsDistributions base, int n, double one_way_ms)
      : base_(std::move(base)), plan_(base_), n_(n), one_way_ms_(one_way_ms) {
    assert(n >= 1);
    assert(one_way_ms >= 0.0);
  }

  int num_replicas() const override { return n_; }

  void SampleTrialSoA(Rng& rng, double* legs) const override {
    // The write and read coordinators land in independently random
    // datacenters (drawn before the legs); each datacenter hosts exactly one
    // replica. Remote legs pay the one-way WAN delay.
    const int n = n_;
    const int write_local = static_cast<int>(rng.NextBounded(n));
    const int read_local = static_cast<int>(rng.NextBounded(n));
    plan_.SampleLegs(rng, n, legs);
    const double delay = one_way_ms_;
    for (int i = 0; i < n; ++i) {
      const double remote_w = static_cast<double>(i != write_local) * delay;
      legs[i] += remote_w;
      legs[n + i] += remote_w;
    }
    for (int i = 0; i < n; ++i) {
      const double remote_r = static_cast<double>(i != read_local) * delay;
      legs[2 * n + i] += remote_r;
      legs[3 * n + i] += remote_r;
    }
  }

  std::string Describe() const override {
    return "WAN(+" + std::to_string(one_way_ms_) + "ms remote legs over " +
           base_.name + ")";
  }

 private:
  WarsDistributions base_;
  SamplerPlan plan_;
  int n_;
  double one_way_ms_;
};

class HeterogeneousReplicaLatencyModel final : public ReplicaLatencyModel {
 public:
  explicit HeterogeneousReplicaLatencyModel(
      std::vector<WarsDistributions> dists)
      : dists_(std::move(dists)) {
    assert(!dists_.empty());
    plans_.reserve(dists_.size());
    for (const auto& d : dists_) plans_.emplace_back(d);
  }

  int num_replicas() const override {
    return static_cast<int>(dists_.size());
  }

  void SampleTrialSoA(Rng& rng, double* legs) const override {
    // Replicas draw from distinct distributions, so per-replica batches are
    // only 4 samples; the win here is devirtualization, not batching. Draws
    // stay replica-major within this model (replica i consumes draws before
    // replica i+1), legs scatter into the leg-major block.
    const int n = static_cast<int>(dists_.size());
    double tmp[4];
    for (int i = 0; i < n; ++i) {
      plans_[i].SampleLegs(rng, 1, tmp);
      legs[i] = tmp[0];
      legs[n + i] = tmp[1];
      legs[2 * n + i] = tmp[2];
      legs[3 * n + i] = tmp[3];
    }
  }

  std::string Describe() const override {
    std::string out = "Heterogeneous[";
    for (size_t i = 0; i < dists_.size(); ++i) {
      if (i) out += ", ";
      out += dists_[i].name;
    }
    return out + "]";
  }

 private:
  std::vector<WarsDistributions> dists_;
  std::vector<SamplerPlan> plans_;
};

class LocalCoordinatorLatencyModel final : public ReplicaLatencyModel {
 public:
  LocalCoordinatorLatencyModel(WarsDistributions base, int n,
                               bool same_coordinator, double local_delay_ms)
      : base_(std::move(base)), plan_(base_), n_(n),
        same_coordinator_(same_coordinator), local_delay_ms_(local_delay_ms) {
    assert(n >= 1);
    assert(local_delay_ms >= 0.0);
  }

  int num_replicas() const override { return n_; }

  void SampleTrialSoA(Rng& rng, double* legs) const override {
    const int n = n_;
    const int write_local = static_cast<int>(rng.NextBounded(n));
    const int read_local =
        same_coordinator_ ? write_local
                          : static_cast<int>(rng.NextBounded(n));
    // Sample every replica's legs, then overwrite the coordinator-local
    // ones. The local replica's draws are discarded, which keeps the trial's
    // draw count fixed (n legs per run regardless of which replica is
    // local) — required for deterministic parallel sub-streams.
    plan_.SampleLegs(rng, n, legs);
    legs[write_local] = local_delay_ms_;
    legs[n + write_local] = local_delay_ms_;
    legs[2 * n + read_local] = local_delay_ms_;
    legs[3 * n + read_local] = local_delay_ms_;
  }

  std::string Describe() const override {
    return std::string("LocalCoordinator(") +
           (same_coordinator_ ? "same" : "independent") + " over " +
           base_.name + ")";
  }

 private:
  WarsDistributions base_;
  SamplerPlan plan_;
  int n_;
  bool same_coordinator_;
  double local_delay_ms_;
};

/// Fully specialized trial kernel for n <= 8: with N a compile-time constant
/// the derived-column loops unroll and the sorting networks inline as
/// branch-free cmov chains — the runtime-n library entry points cost several
/// times the network itself in dispatch overhead at one call per trial.
/// Draw order (kQuorumOnly subset draws) is identical to the generic path.
template <int N>
void ComputeTrialFixedN(const QuorumConfig& config, ReadFanout read_fanout,
                        Rng& rng, const double* w, const double* a,
                        const double* r, const double* s, WarsTrial* trial,
                        bool want_propagation) {
  const int rr = config.r;
  double wa[N], rs[N], gap[N];
  for (int i = 0; i < N; ++i) wa[i] = w[i] + a[i];
  for (int i = 0; i < N; ++i) rs[i] = r[i] + s[i];
  for (int i = 0; i < N; ++i) gap[i] = w[i] - r[i];

  SmallSortFixed<N>(wa);
  const double wt = wa[config.w - 1];
  trial->write_latency = wt;

  double threshold;
  if (read_fanout == ReadFanout::kAllN) {
    SmallSortPairsFixed<N>(rs, gap);
    trial->read_latency = rs[rr - 1];
    double g = gap[0];
    for (int k = 1; k < rr; ++k) g = std::min(g, gap[k]);
    threshold = g - wt;
  } else {
    int order[N];
    for (int i = 0; i < N; ++i) order[i] = i;
    for (int i = 0; i < rr; ++i) {
      const int j = i + static_cast<int>(
                            rng.NextBounded(static_cast<uint64_t>(N - i)));
      std::swap(order[i], order[j]);
    }
    double slowest = 0.0;
    double g = std::numeric_limits<double>::infinity();
    for (int k = 0; k < rr; ++k) {
      const int j = order[k];
      slowest = std::max(slowest, rs[j]);
      g = std::min(g, gap[j]);
    }
    trial->read_latency = slowest;
    threshold = g - wt;
  }
  trial->staleness_threshold = std::max(0.0, threshold);

  if (want_propagation) {
    trial->propagation_times.resize(N);
    double* prop = trial->propagation_times.data();
    for (int i = 0; i < N; ++i) prop[i] = std::max(0.0, w[i] - wt);
    SmallSortFixed<N>(prop);
  } else {
    trial->propagation_times.clear();
  }
}

/// Trial-parallel column kernel: evaluates a whole block of `b` trials at
/// once on the column-major legs layout. The block flows through the same
/// derived-column arithmetic and sorting networks as ComputeTrialFixedN, but
/// every comparator is an elementwise min/max pass over the block's column,
/// so the autovectorizer sorts 2-8 trials per instruction instead of one.
/// Identical arithmetic and tie handling to the per-trial kernel, so results
/// are bitwise identical. kAllN only (kQuorumOnly needs per-trial draws).
template <int N>
void ComputeTrialColumnsFixedN(const QuorumConfig& config, int b,
                               const double* legs, double* wa, double* rs,
                               double* gap, double* prop, double* wl,
                               double* rl, double* st,
                               double* const* prop_cols, int base) {
  const int rr = config.r;
  const double* w = legs;
  const double* a = legs + static_cast<size_t>(N) * b;
  const double* r = legs + static_cast<size_t>(2 * N) * b;
  const double* s = legs + static_cast<size_t>(3 * N) * b;
  for (int i = 0; i < N; ++i) {
    const double* wi = w + static_cast<size_t>(i) * b;
    const double* ai = a + static_cast<size_t>(i) * b;
    const double* ri = r + static_cast<size_t>(i) * b;
    const double* si = s + static_cast<size_t>(i) * b;
    double* wai = wa + static_cast<size_t>(i) * b;
    double* rsi = rs + static_cast<size_t>(i) * b;
    double* gapi = gap + static_cast<size_t>(i) * b;
    for (int t = 0; t < b; ++t) wai[t] = wi[t] + ai[t];
    for (int t = 0; t < b; ++t) rsi[t] = ri[t] + si[t];
    for (int t = 0; t < b; ++t) gapi[t] = wi[t] - ri[t];
  }

  ColumnSortFixed<N>(wa, b, b);
  const double* wtr = wa + static_cast<size_t>(config.w - 1) * b;
  for (int t = 0; t < b; ++t) wl[t] = wtr[t];

  ColumnSortPairsFixed<N>(rs, gap, b, b);
  const double* rlr = rs + static_cast<size_t>(rr - 1) * b;
  for (int t = 0; t < b; ++t) rl[t] = rlr[t];
  for (int t = 0; t < b; ++t) st[t] = gap[t];
  for (int k = 1; k < rr; ++k) {
    const double* gk = gap + static_cast<size_t>(k) * b;
    for (int t = 0; t < b; ++t) st[t] = std::min(st[t], gk[t]);
  }
  for (int t = 0; t < b; ++t) st[t] = std::max(0.0, st[t] - wl[t]);

  if (prop_cols != nullptr) {
    for (int i = 0; i < N; ++i) {
      const double* wi = w + static_cast<size_t>(i) * b;
      double* pi = prop + static_cast<size_t>(i) * b;
      for (int t = 0; t < b; ++t) pi[t] = std::max(0.0, wi[t] - wl[t]);
    }
    ColumnSortFixed<N>(prop, b, b);
    for (int c = 0; c < N; ++c) {
      const double* pc = prop + static_cast<size_t>(c) * b;
      double* outc = prop_cols[c] + base;
      for (int t = 0; t < b; ++t) outc[t] = pc[t];
    }
  }
}

}  // namespace

void ReplicaLatencyModel::SampleTrialsSoA(Rng& rng, int trials,
                                          double* legs) const {
  // Generic path: per-trial draw order (identical to calling SampleTrialSoA
  // `trials` times), scattered into the column-major block layout. Models
  // whose legs are IID across trials override this with one fused draw.
  const int n = num_replicas();
  std::vector<double> tmp(static_cast<size_t>(4 * n));
  for (int t = 0; t < trials; ++t) {
    SampleTrialSoA(rng, tmp.data());
    for (int q = 0; q < 4 * n; ++q) {
      legs[static_cast<size_t>(q) * trials + t] = tmp[q];
    }
  }
}

void ReplicaLatencyModel::SampleTrial(
    Rng& rng, std::vector<ReplicaLegSample>* out) const {
  const int n = num_replicas();
  std::vector<double> legs(static_cast<size_t>(4 * n));
  SampleTrialSoA(rng, legs.data());
  out->resize(n);
  for (int i = 0; i < n; ++i) {
    (*out)[i].w = legs[i];
    (*out)[i].a = legs[n + i];
    (*out)[i].r = legs[2 * n + i];
    (*out)[i].s = legs[3 * n + i];
  }
}

ReplicaLatencyModelPtr MakeLocalCoordinatorModel(const WarsDistributions& base,
                                                 int n, bool same_coordinator,
                                                 double local_delay_ms) {
  return std::make_shared<LocalCoordinatorLatencyModel>(
      base, n, same_coordinator, local_delay_ms);
}

ReplicaLatencyModelPtr MakeIidModel(const WarsDistributions& dists, int n) {
  return std::make_shared<IidReplicaLatencyModel>(dists, n);
}

ReplicaLatencyModelPtr MakeWanModel(const WarsDistributions& base, int n,
                                    double one_way_ms) {
  return std::make_shared<WanReplicaLatencyModel>(base, n, one_way_ms);
}

ReplicaLatencyModelPtr MakeHeterogeneousModel(
    std::vector<WarsDistributions> dists) {
  return std::make_shared<HeterogeneousReplicaLatencyModel>(std::move(dists));
}

WarsSimulator::WarsSimulator(const QuorumConfig& config,
                             ReplicaLatencyModelPtr model, uint64_t seed,
                             ReadFanout read_fanout)
    : WarsSimulator(config, std::move(model), Rng(seed), read_fanout) {}

WarsSimulator::WarsSimulator(const QuorumConfig& config,
                             ReplicaLatencyModelPtr model, Rng rng,
                             ReadFanout read_fanout)
    : config_(config), model_(std::move(model)), rng_(rng),
      read_fanout_(read_fanout) {
  assert(config_.IsValid());
  assert(model_ != nullptr);
  assert(model_->num_replicas() == config_.n);
  const size_t n = static_cast<size_t>(config_.n);
  legs_.resize(4 * n);
  write_arrival_.resize(n);
  read_round_trip_.resize(n);
  freshness_gap_.resize(n);
  read_order_.resize(n);
}

WarsTrial WarsSimulator::RunTrial(bool want_propagation) {
  WarsTrial trial;
  RunTrialInto(&trial, want_propagation);
  return trial;
}

void WarsSimulator::RunTrialInto(WarsTrial* trial, bool want_propagation) {
  const int n = config_.n;
  model_->SampleTrialSoA(rng_, legs_.data());
  const double* w = legs_.data();
  ComputeTrialFromLegs(w, w + n, w + 2 * n, w + 3 * n, trial,
                       want_propagation);
}

int WarsSimulator::TrialBlock(int n) {
  return std::max(1, std::min(256, 4096 / (4 * n)));
}

void WarsSimulator::RunTrialBlock(int count, double* write_latency,
                                  double* read_latency, double* staleness,
                                  double* const* prop_cols) {
  const int n = config_.n;
  const int block = TrialBlock(n);
  legs_block_.resize(static_cast<size_t>(4 * n) * block);
  const bool column_path = read_fanout_ == ReadFanout::kAllN && n <= 8;
  if (column_path) cols_.resize(static_cast<size_t>(4 * n) * block);
  WarsTrial trial;  // reused across trials; propagation capacity persists
  for (int base = 0; base < count; base += block) {
    const int b = std::min(block, count - base);
    model_->SampleTrialsSoA(rng_, b, legs_block_.data());
    const double* legs = legs_block_.data();
    if (column_path) {
      // Scratch columns use the same stride b as the legs block; a partial
      // final block just uses a prefix of the allocation.
      double* wa = cols_.data();
      double* rs = wa + static_cast<size_t>(n) * b;
      double* gap = rs + static_cast<size_t>(n) * b;
      double* prop = gap + static_cast<size_t>(n) * b;
      switch (n) {
#define PBS_TRIAL_COLS_CASE(N)                                             \
  case N:                                                                  \
    ComputeTrialColumnsFixedN<N>(config_, b, legs, wa, rs, gap, prop,      \
                                 write_latency + base, read_latency + base, \
                                 staleness + base, prop_cols, base);       \
    break;
        PBS_TRIAL_COLS_CASE(1)
        PBS_TRIAL_COLS_CASE(2)
        PBS_TRIAL_COLS_CASE(3)
        PBS_TRIAL_COLS_CASE(4)
        PBS_TRIAL_COLS_CASE(5)
        PBS_TRIAL_COLS_CASE(6)
        PBS_TRIAL_COLS_CASE(7)
        PBS_TRIAL_COLS_CASE(8)
#undef PBS_TRIAL_COLS_CASE
        default:
          assert(false);
      }
      continue;
    }
    // Per-trial fallback (kQuorumOnly subset draws, or n > 8): gather each
    // trial's legs out of the columns into the 4n leg-major scratch.
    for (int t = 0; t < b; ++t) {
      double* g = legs_.data();
      for (int q = 0; q < 4 * n; ++q) {
        g[q] = legs[static_cast<size_t>(q) * b + t];
      }
      ComputeTrialFromLegs(g, g + n, g + 2 * n, g + 3 * n, &trial,
                           prop_cols != nullptr);
      const int row = base + t;
      write_latency[row] = trial.write_latency;
      read_latency[row] = trial.read_latency;
      staleness[row] = trial.staleness_threshold;
      if (prop_cols != nullptr) {
        for (int c = 0; c < n; ++c) {
          prop_cols[c][row] = trial.propagation_times[c];
        }
      }
    }
  }
}

void WarsSimulator::ComputeTrialFromLegs(const double* w, const double* a,
                                         const double* r, const double* s,
                                         WarsTrial* trial,
                                         bool want_propagation) {
  // Common quorum sizes run the compile-time-specialized kernel (inlined
  // sorting networks, unrolled column loops); larger n falls through to the
  // generic path below.
  switch (config_.n) {
#define PBS_TRIAL_CASE(N)                                                  \
  case N:                                                                  \
    ComputeTrialFixedN<N>(config_, read_fanout_, rng_, w, a, r, s, trial,  \
                          want_propagation);                               \
    return;
    PBS_TRIAL_CASE(1)
    PBS_TRIAL_CASE(2)
    PBS_TRIAL_CASE(3)
    PBS_TRIAL_CASE(4)
    PBS_TRIAL_CASE(5)
    PBS_TRIAL_CASE(6)
    PBS_TRIAL_CASE(7)
    PBS_TRIAL_CASE(8)
#undef PBS_TRIAL_CASE
    default:
      break;
  }
  const int n = config_.n;
  const int rr = config_.r;

  // Derived per-trial columns; each loop vectorizes.
  double* wa = write_arrival_.data();
  double* rs = read_round_trip_.data();
  double* gap = freshness_gap_.data();
  for (int i = 0; i < n; ++i) wa[i] = w[i] + a[i];
  for (int i = 0; i < n; ++i) rs[i] = r[i] + s[i];
  for (int i = 0; i < n; ++i) gap[i] = w[i] - r[i];

  // Commit time wt: the coordinator needs W acknowledgments; ack i arrives
  // at w[i] + a[i].
  const double wt = KthSmallest(write_arrival_, config_.w);
  trial->write_latency = wt;

  // Read side. A responder j is fresh for a read issued t after commit iff
  // the read request reaches it no earlier than the write did:
  //   wt + t + r[j] >= w[j]  <=>  t >= (w[j] - r[j]) - wt.
  // The read is consistent iff ANY of the first R responders is fresh, so
  // the trial's threshold is the minimum gap among them, minus wt.
  double threshold;
  if (read_fanout_ == ReadFanout::kAllN) {
    // Dynamo: contact all N, return after the R fastest round trips. Sort
    // r+s with the w-r gap carried along so the first R entries are exactly
    // the responders.
    if (n <= 8) {
      SmallSortPairs(rs, gap, n);
      trial->read_latency = rs[rr - 1];
      double g = gap[0];
      for (int k = 1; k < rr; ++k) g = std::min(g, gap[k]);
      threshold = g - wt;
    } else {
      std::iota(read_order_.begin(), read_order_.end(), 0);
      std::partial_sort(read_order_.begin(), read_order_.begin() + rr,
                        read_order_.end(),
                        [&](int x, int y) { return rs[x] < rs[y]; });
      trial->read_latency = rs[read_order_[rr - 1]];
      double g = std::numeric_limits<double>::infinity();
      for (int k = 0; k < rr; ++k) g = std::min(g, gap[read_order_[k]]);
      threshold = g - wt;
    }
  } else {
    // Voldemort: contact a uniformly random R-subset, wait for all of it.
    std::iota(read_order_.begin(), read_order_.end(), 0);
    for (int i = 0; i < rr; ++i) {
      const int j = i + static_cast<int>(
                            rng_.NextBounded(static_cast<uint64_t>(n - i)));
      std::swap(read_order_[i], read_order_[j]);
    }
    double slowest = 0.0;
    double g = std::numeric_limits<double>::infinity();
    for (int k = 0; k < rr; ++k) {
      const int j = read_order_[k];
      slowest = std::max(slowest, rs[j]);
      g = std::min(g, gap[j]);
    }
    trial->read_latency = slowest;
    threshold = g - wt;
  }
  trial->staleness_threshold = std::max(0.0, threshold);

  if (want_propagation) {
    // Time after commit until the c-th replica holds the version.
    trial->propagation_times.resize(n);
    double* prop = trial->propagation_times.data();
    for (int i = 0; i < n; ++i) prop[i] = std::max(0.0, w[i] - wt);
    SmallSort(prop, n);
  } else {
    trial->propagation_times.clear();
  }
}

WarsTrialSet RunWarsTrials(const QuorumConfig& config,
                           const ReplicaLatencyModelPtr& model, int trials,
                           uint64_t seed, bool want_propagation,
                           ReadFanout read_fanout,
                           const PbsExecutionOptions& exec) {
  assert(trials > 0);
  WarsTrialSet set;
  set.write_latencies.resize(trials);
  set.read_latencies.resize(trials);
  set.staleness_thresholds.resize(trials);
  if (want_propagation) {
    set.propagation.assign(config.n, std::vector<double>(trials));
  }
  // Chunk c samples the c-th jump sub-stream and fills rows [begin, end) of
  // the pre-sized columns; no two chunks touch the same row, and neither the
  // stream layout nor the row layout depends on the thread count.
  const std::vector<Rng> streams =
      MakeJumpStreams(Rng(seed), NumChunks(trials, exec));
  ParallelFor(trials, exec,
              [&](int64_t chunk, int64_t begin, int64_t end) {
                WarsSimulator sim(config, model, streams[chunk], read_fanout);
                std::vector<double*> prop_cols;
                if (want_propagation) {
                  prop_cols.reserve(config.n);
                  for (int c = 0; c < config.n; ++c) {
                    prop_cols.push_back(set.propagation[c].data() + begin);
                  }
                }
                sim.RunTrialBlock(static_cast<int>(end - begin),
                                  set.write_latencies.data() + begin,
                                  set.read_latencies.data() + begin,
                                  set.staleness_thresholds.data() + begin,
                                  want_propagation ? prop_cols.data()
                                                   : nullptr);
              });
  return set;
}

WarsTrialSet RunWarsTrialsObserved(const QuorumConfig& config,
                                   const ReplicaLatencyModelPtr& model,
                                   int trials, uint64_t seed,
                                   bool want_propagation,
                                   ReadFanout read_fanout,
                                   const PbsExecutionOptions& exec,
                                   obs::Registry* registry) {
  if (registry == nullptr) {
    // Null observer: identical to the plain entry point, no extra work in
    // or after the trial loop.
    return RunWarsTrials(config, model, trials, seed, want_propagation,
                         read_fanout, exec);
  }
  WarsTrialSet set = RunWarsTrials(config, model, trials, seed,
                                   want_propagation, read_fanout, exec);
  // Instrument from the finished columns, chunk by chunk in chunk order.
  // The trial outputs are untouched (recording consumes zero RNG draws) and
  // the merge order is a function of (trials, chunk_size) only, so the
  // merged registry is bitwise identical at any thread count.
  const int64_t num_chunks = NumChunks(trials, exec);
  std::vector<obs::Registry> chunk_registries(num_chunks);
  ParallelFor(trials, exec,
              [&](int64_t chunk, int64_t begin, int64_t end) {
                obs::Registry& local = chunk_registries[chunk];
                obs::LogHistogram& w = local.histogram("wars/write_latency_ms");
                obs::LogHistogram& r = local.histogram("wars/read_latency_ms");
                obs::LogHistogram& t =
                    local.histogram("wars/staleness_threshold_ms");
                for (int64_t i = begin; i < end; ++i) {
                  w.Record(set.write_latencies[i]);
                  r.Record(set.read_latencies[i]);
                  t.Record(set.staleness_thresholds[i]);
                }
                local.counter("wars/trials").Add(end - begin);
              });
  for (const obs::Registry& local : chunk_registries) registry->Merge(local);
  return set;
}

}  // namespace pbs
