#ifndef PBS_CORE_WARS_H_
#define PBS_CORE_WARS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/quorum_config.h"
#include "dist/production.h"
#include "obs/registry.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace pbs {

/// One-way message delays for a single replica within one write-then-read
/// operation pair (Figure 3 of the paper):
///   w — write request, coordinator -> replica,
///   a — write acknowledgment, replica -> coordinator,
///   r — read request, coordinator -> replica,
///   s — read response, replica -> coordinator.
struct ReplicaLegSample {
  double w = 0.0;
  double a = 0.0;
  double r = 0.0;
  double s = 0.0;
};

/// Produces per-replica WARS delay samples for one trial. The common case is
/// IID legs (each replica's delays drawn from shared W/A/R/S distributions);
/// the WAN model makes one replica local and delays every leg of the others.
///
/// RNG-consumption contract (v2, see DESIGN.md): models sample leg-major —
/// all N w legs, then all a, r, s legs — through compiled sampler plans
/// (dist/sampler.h) that consume exactly one uniform draw per leg value.
/// Models that pick coordinator replicas draw those *before* the legs, and
/// the local-coordinator model samples all N replicas' legs then overwrites
/// the local ones (fixed draw count per trial, so parallel sub-streams stay
/// deterministic). This replaces the v1 per-replica (w,a,r,s) interleaved
/// order; results remain bitwise identical at any thread count for a given
/// seed, but differ from v1 outputs for the same seed.
class ReplicaLatencyModel {
 public:
  virtual ~ReplicaLatencyModel() = default;

  virtual int num_replicas() const = 0;

  /// Hot path: fills legs[0 .. 4*num_replicas()) with one trial's delays in
  /// leg-major (structure-of-arrays) order:
  ///   legs[i] = w_i, legs[n+i] = a_i, legs[2n+i] = r_i, legs[3n+i] = s_i.
  virtual void SampleTrialSoA(Rng& rng, double* legs) const = 0;

  /// Block variant used by the parallel engine: fills
  /// legs[0 .. 4*n*trials) with `trials` independent trials in column-major
  /// layout — leg L of replica i in trial t at legs[(L*n + i)*trials + t],
  /// i.e. each (leg, replica) pair owns a contiguous column of `trials`
  /// values. Per-sample batches of 4n values are too small to amortize the
  /// batched kernels; sampling ~trials*4n values per call restores
  /// large-batch throughput, and the column layout lets the trial evaluator
  /// vectorize its sorting networks ACROSS trials. The base implementation
  /// loops SampleTrialSoA (per-trial draw order), scattering into columns;
  /// the IID model overrides it with one fused block draw (a different, but
  /// equally deterministic, draw order; both are fixed functions of the
  /// stream and block size).
  virtual void SampleTrialsSoA(Rng& rng, int trials, double* legs) const;

  /// Convenience wrapper: same trial as SampleTrialSoA, transposed into
  /// per-replica structs. Resizes `out` to num_replicas(). Not for hot
  /// loops (allocates scratch on first use per call).
  void SampleTrial(Rng& rng, std::vector<ReplicaLegSample>* out) const;

  /// The shared per-leg distributions when this model is IID across
  /// replicas, nullptr otherwise (WAN, heterogeneous, local-coordinator).
  /// The analytic backend keys its independence assumptions on this: a
  /// non-null result is the license to solve over the four leg
  /// distributions; null forces the Monte Carlo fallback. The pointer is
  /// owned by the model and valid for its lifetime.
  virtual const WarsDistributions* IidLegs() const { return nullptr; }

  virtual std::string Describe() const = 0;
};

using ReplicaLatencyModelPtr = std::shared_ptr<const ReplicaLatencyModel>;

/// IID model: every replica's (w, a, r, s) drawn independently from the four
/// distributions in `dists` — the paper's assumption for LNKD-* and YMMR.
ReplicaLatencyModelPtr MakeIidModel(const WarsDistributions& dists, int n);

/// WAN model (Section 5.5): operations originate in a random datacenter.
/// The replica co-located with the write coordinator sees plain `base`
/// delays for its write/ack legs; all other replicas add `one_way_ms` to
/// each of those legs. The read coordinator's datacenter is drawn
/// independently (a read may originate anywhere), and its r/s legs are
/// delayed the same way.
ReplicaLatencyModelPtr MakeWanModel(const WarsDistributions& base, int n,
                                    double one_way_ms = kWanOneWayDelayMs);

/// Per-replica heterogeneous model: replica i uses dists[i]; used to model
/// mixed fleets (e.g. one slow disk node in an SSD cluster).
ReplicaLatencyModelPtr MakeHeterogeneousModel(
    std::vector<WarsDistributions> dists);

/// Section 4.2 "Proxying operations": the coordinator is itself one of the
/// N replicas, so its own request/ack/response legs are local
/// (`local_delay_ms`, ~0). The write coordinator's replica is drawn
/// uniformly per operation pair; with `same_coordinator` the read uses the
/// same replica (a session stuck to one node — the read-your-writes-ish
/// case), otherwise an independently random one. The paper notes a read or
/// write to R (W) nodes then "behaves like a read or write to R-1 (W-1)
/// nodes".
ReplicaLatencyModelPtr MakeLocalCoordinatorModel(
    const WarsDistributions& base, int n, bool same_coordinator,
    double local_delay_ms = 0.0);

/// The outcome of one WARS Monte Carlo trial (Section 5.1).
struct WarsTrial {
  /// Write operation latency: the W-th smallest w[i] + a[i] — the commit
  /// time wt at which the coordinator has W acknowledgments.
  double write_latency = 0.0;

  /// Read operation latency: the R-th smallest r[j] + s[j].
  double read_latency = 0.0;

  /// Consistency threshold t*: the smallest t >= 0 such that a read issued
  /// t after commit returns the committed version. Among the first R
  /// responders (ordered by r[j] + s[j]), replica j is fresh iff
  /// wt + t + r[j] >= w[j]; hence t* = max(0, min_j (w[j] - wt - r[j])).
  /// P(consistent | t) = P(t* <= t), so the ECDF of t* over many trials IS
  /// the t-visibility curve and its quantiles invert it exactly.
  double staleness_threshold = 0.0;

  /// Time after commit at which the c-th replica receives the write, for
  /// c in [1, N]: sorted (w[i] - wt) clamped below at 0. Entry c-1
  /// corresponds to c replicas holding the version; used to estimate the
  /// write-propagation CDF Pw(c, t) that feeds Equation 4.
  std::vector<double> propagation_times;
};

/// Read fan-out policy (Section 2.3). Dynamo-style coordinators send reads
/// to all N replicas and keep the first R responses; Voldemort sends to
/// exactly R replicas and waits for all of them — fewer messages and less
/// replica load, at the cost of read latency (max instead of R-th order
/// statistic) and availability. "Provided staleness probabilities are
/// independent across requests, this does not affect staleness."
enum class ReadFanout {
  kAllN,        // Dynamo: N requests, first R responses
  kQuorumOnly,  // Voldemort: R requests to a random R-subset, wait for all
};

/// WARS Monte Carlo simulator. Deterministic given (config, model, seed).
class WarsSimulator {
 public:
  WarsSimulator(const QuorumConfig& config, ReplicaLatencyModelPtr model,
                uint64_t seed, ReadFanout read_fanout = ReadFanout::kAllN);

  /// Samples from an explicit RNG stream instead of a fresh seed; this is
  /// how the parallel engine gives each trial chunk its own Jump()-derived
  /// sub-stream.
  WarsSimulator(const QuorumConfig& config, ReplicaLatencyModelPtr model,
                Rng rng, ReadFanout read_fanout = ReadFanout::kAllN);

  /// Runs one trial. Set `want_propagation` to also fill
  /// WarsTrial::propagation_times (slightly more work per trial).
  WarsTrial RunTrial(bool want_propagation = false);

  /// Allocation-free variant for hot loops: overwrites `*trial`, reusing its
  /// propagation_times capacity. After the constructor warms the per-
  /// simulator buffers, steady-state trials perform no heap allocation.
  void RunTrialInto(WarsTrial* trial, bool want_propagation = false);

  /// Engine hot path: runs `count` trials with legs sampled in fixed-size
  /// blocks through ReplicaLatencyModel::SampleTrialsSoA, writing the
  /// per-trial scalars into the given column slices (each of length
  /// `count`). When `prop_cols` is non-null it must point at n column
  /// slices; propagation_times[c] of trial t goes to prop_cols[c][t].
  /// Consumes the same RNG stream as repeated RunTrialInto but in block
  /// draw order (see SampleTrialsSoA).
  void RunTrialBlock(int count, double* write_latency, double* read_latency,
                     double* staleness, double* const* prop_cols);

  const QuorumConfig& config() const { return config_; }
  const ReplicaLatencyModel& model() const { return *model_; }

 private:
  /// Trials per SampleTrialsSoA block: sized so a block is ~4096 leg values
  /// (large enough for full batched-kernel throughput, small enough to stay
  /// in L1/L2). Must depend on nothing but n — the engine's draw order, and
  /// hence its output, is a fixed function of (seed, chunk layout, n).
  static int TrialBlock(int n);

  /// Evaluates one trial's order statistics from leg-major SoA pointers
  /// (w/a/r/s each of length n). Shared by the per-trial and block paths.
  void ComputeTrialFromLegs(const double* w, const double* a, const double* r,
                            const double* s, WarsTrial* trial,
                            bool want_propagation);

  QuorumConfig config_;
  ReplicaLatencyModelPtr model_;
  Rng rng_;
  ReadFanout read_fanout_;
  // Per-simulator scratch, sized once in the constructor. legs_ is the
  // leg-major SoA block filled by SampleTrialSoA; the others are derived
  // per-trial columns (order statistics run on these, never on legs_).
  std::vector<double> legs_;            // 4n: [w | a | r | s]
  std::vector<double> legs_block_;      // 4n * TrialBlock(n), lazily sized
  std::vector<double> cols_;            // block-path scratch: wa|rs|gap|prop
  std::vector<double> write_arrival_;   // w[i] + a[i]
  std::vector<double> read_round_trip_; // r[j] + s[j]
  std::vector<double> freshness_gap_;   // w[j] - r[j], co-sorted with r+s
  std::vector<int> read_order_;         // replica indices (subset draws, n>8)
};

/// A batch of trials, stored as parallel columns for cheap quantile queries.
struct WarsTrialSet {
  std::vector<double> write_latencies;
  std::vector<double> read_latencies;
  std::vector<double> staleness_thresholds;
  /// propagation[c-1] holds, across trials, the time after commit until c
  /// replicas had the version (empty unless requested).
  std::vector<std::vector<double>> propagation;
};

/// Runs `trials` WARS trials and collects the columns. The workhorse behind
/// t-visibility curves, latency percentiles and Pw estimation.
///
/// Executes on `exec.threads` workers (default: all hardware threads).
/// Trials are cut into fixed-size chunks, chunk c always draws from the c-th
/// Jump()-derived sub-stream of `seed`, and every chunk writes its own slice
/// of the pre-sized columns — so the returned WarsTrialSet is bitwise
/// identical for a given (seed, exec.chunk_size) at ANY thread count.
WarsTrialSet RunWarsTrials(const QuorumConfig& config,
                           const ReplicaLatencyModelPtr& model, int trials,
                           uint64_t seed, bool want_propagation = false,
                           ReadFanout read_fanout = ReadFanout::kAllN,
                           const PbsExecutionOptions& exec = {});

/// RunWarsTrials plus instrumentation: each chunk fills a chunk-local
/// registry ("wars/write_latency_ms", "wars/read_latency_ms",
/// "wars/staleness_threshold_ms" histograms and a "wars/trials" counter)
/// from its finished trial columns, and the chunk registries are merged
/// into `*registry` in chunk order — bitwise identical at any thread count,
/// like the trial columns themselves. Recording happens after the RNG work
/// of a chunk, so the trial outputs are bitwise identical to RunWarsTrials.
/// `registry == nullptr` skips all instrumentation; bench/micro_perf uses
/// that to assert the observed entry point adds <3% when observation is off.
WarsTrialSet RunWarsTrialsObserved(const QuorumConfig& config,
                                   const ReplicaLatencyModelPtr& model,
                                   int trials, uint64_t seed,
                                   bool want_propagation,
                                   ReadFanout read_fanout,
                                   const PbsExecutionOptions& exec,
                                   obs::Registry* registry);

}  // namespace pbs

#endif  // PBS_CORE_WARS_H_
