#ifndef PBS_CORE_QUORUM_SYSTEM_H_
#define PBS_CORE_QUORUM_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace pbs {

/// A quorum system: a rule for drawing read and write quorums over a fixed
/// replica universe [0, num_replicas()). This generalizes the fixed-size
/// random-subset systems of the paper's running example to the structured
/// designs its related-work section surveys (tree quorums [Agrawal & El
/// Abbadi], grid quorums [Naor & Wool]) — and which its Section 7 flags as
/// promising to revisit under PBS.
///
/// Implementations are immutable; callers pass their own Rng.
class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  virtual int num_replicas() const = 0;

  /// Draws one read / write quorum (distinct replica ids).
  virtual std::vector<int> SampleReadQuorum(Rng& rng) const = 0;
  virtual std::vector<int> SampleWriteQuorum(Rng& rng) const = 0;

  /// True when every read quorum intersects every write quorum (strict
  /// quorum system).
  virtual bool IsStrict() const = 0;

  virtual std::string Describe() const = 0;
};

using QuorumSystemPtr = std::shared_ptr<const QuorumSystem>;

/// The paper's running example: uniformly random R-subsets and W-subsets of
/// N replicas. Strict iff R + W > N.
QuorumSystemPtr MakeSubsetQuorumSystem(int n, int read_size, int write_size);

/// Grid quorum system (Naor & Wool) over a rows x cols replica grid: a
/// write quorum is one full column, a read quorum one full row — every
/// read/write pair intersects in exactly one cell. `miss_probability`
/// models per-member omission (timeout / failure / partial response): each
/// quorum member is independently dropped with that probability, turning
/// the strict system into a probabilistic one whose single-cell
/// intersection is fragile — the structured analogue of a partial quorum.
QuorumSystemPtr MakeGridQuorumSystem(int rows, int cols,
                                     double miss_probability = 0.0);

/// Tree quorum protocol (Agrawal & El Abbadi) over a complete binary tree
/// with `levels` levels (N = 2^levels - 1 replicas): a quorum for a subtree
/// is its root (with probability `root_preference`, modeling root
/// availability) or, recursively, quorums of BOTH children. Read and write
/// quorums use the same recursion, so any two quorums intersect. With
/// `miss_probability` > 0 members are dropped after selection, as in the
/// grid system.
QuorumSystemPtr MakeTreeQuorumSystem(int levels, double root_preference,
                                     double miss_probability = 0.0);

/// Monte Carlo analysis of an arbitrary quorum system: staleness (does a
/// read quorum miss the last k write quorums?) and load (Section 3.3: the
/// access frequency of the busiest replica).
struct QuorumSystemStats {
  double miss_probability = 0.0;      // P(read misses last write), Eq.1 analogue
  double k2_miss_probability = 0.0;   // P(read misses last 2 writes)
  double load = 0.0;                  // busiest replica's access frequency
  double mean_read_quorum_size = 0.0;
  double mean_write_quorum_size = 0.0;
};

QuorumSystemStats AnalyzeQuorumSystem(const QuorumSystem& system, int trials,
                                      uint64_t seed);

}  // namespace pbs

#endif  // PBS_CORE_QUORUM_SYSTEM_H_
