#include "core/latency.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/stats.h"

namespace pbs {

LatencyProfile::LatencyProfile(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  assert(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
}

double LatencyProfile::Percentile(double pct) const {
  assert(pct >= 0.0 && pct <= 100.0);
  return QuantileSorted(sorted_, pct / 100.0);
}

double LatencyProfile::CdfAt(double x) const {
  return EcdfSorted(sorted_, x);
}

OperationLatencies MakeOperationLatencies(WarsTrialSet set) {
  return OperationLatencies{LatencyProfile(std::move(set.read_latencies)),
                            LatencyProfile(std::move(set.write_latencies))};
}

OperationLatencies EstimateLatencies(const QuorumConfig& config,
                                     const ReplicaLatencyModelPtr& model,
                                     int trials, uint64_t seed,
                                     const PbsExecutionOptions& exec) {
  return MakeOperationLatencies(RunWarsTrials(config, model, trials, seed,
                                              /*want_propagation=*/false,
                                              ReadFanout::kAllN, exec));
}

}  // namespace pbs
