#include "core/tvisibility.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/math.h"
#include "util/small_sort.h"
#include "util/stats.h"

namespace pbs {

TVisibilityCurve::TVisibilityCurve(std::vector<double> thresholds)
    : sorted_thresholds_(std::move(thresholds)) {
  assert(!sorted_thresholds_.empty());
  std::sort(sorted_thresholds_.begin(), sorted_thresholds_.end());
}

double TVisibilityCurve::ProbConsistent(double t) const {
  return EcdfSorted(sorted_thresholds_, t);
}

ProportionInterval TVisibilityCurve::ProbConsistentInterval(
    double t, double confidence) const {
  const auto it = std::upper_bound(sorted_thresholds_.begin(),
                                   sorted_thresholds_.end(), t);
  const int64_t successes = it - sorted_thresholds_.begin();
  return WilsonInterval(successes,
                        static_cast<int64_t>(sorted_thresholds_.size()),
                        confidence);
}

double TVisibilityCurve::TimeForConsistency(double p) const {
  assert(p > 0.0 && p <= 1.0);
  // Smallest threshold rank covering probability p, computed exactly: the
  // old ceil(p * n) - 1 + 1e-9 dance was off by one whenever the rounding
  // of p * n and the epsilon disagreed about which side of an integer the
  // product fell on.
  const auto n = static_cast<int64_t>(sorted_thresholds_.size());
  return sorted_thresholds_[CeilProbabilityRank(p, n) - 1];
}

TVisibilityCurve EstimateTVisibility(const QuorumConfig& config,
                                     const ReplicaLatencyModelPtr& model,
                                     int trials, uint64_t seed,
                                     const PbsExecutionOptions& exec) {
  WarsTrialSet set = RunWarsTrials(config, model, trials, seed,
                                   /*want_propagation=*/false,
                                   ReadFanout::kAllN, exec);
  return TVisibilityCurve(std::move(set.staleness_thresholds));
}

std::vector<double> EmpiricalPwAt(const WarsTrialSet& set, int n, double t) {
  assert(!set.propagation.empty());
  assert(static_cast<int>(set.propagation.size()) == n);
  const size_t trials = set.propagation[0].size();
  assert(trials > 0);
  std::vector<double> pw(n + 1, 0.0);
  // Wr(t) <= c  <=>  the (c+1)-th replica (0-indexed column c) receives the
  // version strictly after t.
  for (int c = 0; c < n; ++c) {
    size_t count = 0;
    for (double arrival : set.propagation[c]) {
      if (arrival > t) ++count;
    }
    pw[c] = static_cast<double>(count) / static_cast<double>(trials);
  }
  pw[n] = 1.0;
  return pw;
}

double KTStalenessResult::ProbStalerThan(int k) const {
  assert(k >= 0);
  int64_t total = 0;
  int64_t staler = 0;
  for (size_t d = 0; d < histogram.size(); ++d) {
    total += histogram[d];
    if (static_cast<int>(d) >= k) staler += histogram[d];
  }
  if (total == 0) return 0.0;
  return static_cast<double>(staler) / static_cast<double>(total);
}

double KTStalenessResult::MeanStaleness() const {
  int64_t total = 0;
  double weighted = 0.0;
  for (size_t d = 0; d < histogram.size(); ++d) {
    total += histogram[d];
    weighted += static_cast<double>(d) * static_cast<double>(histogram[d]);
  }
  if (total == 0) return 0.0;
  return weighted / static_cast<double>(total);
}

KTStalenessResult EstimateKTStaleness(const QuorumConfig& config,
                                      const ReplicaLatencyModelPtr& model,
                                      const DistributionPtr& inter_arrival,
                                      double t, int history, int trials,
                                      uint64_t seed,
                                      const PbsExecutionOptions& exec) {
  assert(config.IsValid());
  assert(model != nullptr);
  assert(model->num_replicas() == config.n);
  assert(inter_arrival != nullptr);
  assert(history >= 1);
  assert(trials > 0);

  const int n = config.n;
  const std::vector<Rng> streams =
      MakeJumpStreams(Rng(seed), NumChunks(trials, exec));
  std::vector<std::vector<int64_t>> chunk_histograms(
      streams.size(), std::vector<int64_t>(history + 1, 0));

  ParallelFor(trials, exec, [&](int64_t chunk, int64_t begin, int64_t end) {
    Rng rng = streams[chunk];
    std::vector<int64_t>& histogram = chunk_histograms[chunk];

    // SoA leg block [w | a | r | s] plus derived columns; all hoisted out of
    // the trial loop so steady-state trials are allocation-free.
    std::vector<double> legs(static_cast<size_t>(4 * n));
    std::vector<double> write_arrival(n);
    std::vector<double> read_round_trip(n);
    std::vector<double> responder(n);  // replica index payload, co-sorted
    std::vector<int> read_order(n);
    // Per replica, the initiation + propagation arrival of each version.
    std::vector<std::vector<double>> version_arrival(history,
                                                     std::vector<double>(n));
    std::vector<double> commit_time(history);

    const double* w = legs.data();
    const double* a = w + n;
    const double* r = w + 2 * n;
    const double* s = w + 3 * n;

    for (int64_t trial = begin; trial < end; ++trial) {
      // Write stream: version v (1-indexed as v+1 below) initiated at
      // start_v, propagating under its own WARS sample.
      double start = 0.0;
      for (int v = 0; v < history; ++v) {
        if (v > 0) start += inter_arrival->Sample(rng);
        model->SampleTrialSoA(rng, legs.data());
        double* arrivals = version_arrival[v].data();
        for (int i = 0; i < n; ++i) arrivals[i] = start + w[i];
        for (int i = 0; i < n; ++i) write_arrival[i] = w[i] + a[i];
        commit_time[v] =
            start + SmallKthSmallest(write_arrival.data(), n, config.w);
      }

      // The read uses its own fresh R/S legs (sampling with the newest
      // write's trial legs would correlate them; draw a dedicated sample
      // instead).
      model->SampleTrialSoA(rng, legs.data());
      const double read_issue = commit_time[history - 1] + t;
      for (int j = 0; j < n; ++j) read_round_trip[j] = r[j] + s[j];
      const bool small = n <= 8;
      if (small) {
        for (int j = 0; j < n; ++j) responder[j] = static_cast<double>(j);
        SmallSortPairs(read_round_trip.data(), responder.data(), n);
      } else {
        std::iota(read_order.begin(), read_order.end(), 0);
        std::partial_sort(read_order.begin(), read_order.begin() + config.r,
                          read_order.end(), [&](int x, int y) {
                            return read_round_trip[x] < read_round_trip[y];
                          });
      }

      // Each responder returns the newest version that reached it before the
      // read request arrived; the coordinator keeps the global newest.
      int newest = 0;  // 0 = no version seen
      for (int k = 0; k < config.r; ++k) {
        const int j =
            small ? static_cast<int>(responder[k]) : read_order[k];
        const double arrival = read_issue + r[j];
        for (int v = history - 1; v >= newest; --v) {
          if (version_arrival[v][j] <= arrival) {
            newest = std::max(newest, v + 1);
            break;
          }
        }
      }
      const int staleness = history - newest;  // 0 = newest version returned
      ++histogram[staleness];
    }
  });

  KTStalenessResult result;
  result.histogram.assign(history + 1, 0);
  for (const auto& partial : chunk_histograms) {
    for (int d = 0; d <= history; ++d) result.histogram[d] += partial[d];
  }
  return result;
}

}  // namespace pbs
