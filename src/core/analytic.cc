#include "core/analytic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/math.h"

namespace pbs {

DiscretizedDistribution::DiscretizedDistribution(double step,
                                                 std::vector<double> pmf)
    : step_(step), pmf_(std::move(pmf)) {
  assert(step_ > 0.0);
  assert(!pmf_.empty());
  cdf_.resize(pmf_.size());
  double total = 0.0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    total += pmf_[i];
    cdf_[i] = total;
  }
  // Normalize away accumulated rounding (inputs are probability masses).
  if (total > 0.0 && std::abs(total - 1.0) > 1e-12) {
    for (auto& m : pmf_) m /= total;
    for (auto& c : cdf_) c /= total;
  }
}

DiscretizedDistribution DiscretizedDistribution::FromDistribution(
    const Distribution& dist, double max_value, int bins) {
  assert(max_value > 0.0);
  assert(bins >= 2);
  const double step = max_value / bins;
  std::vector<double> pmf(bins);
  double prev = dist.Cdf(0.0);
  for (int i = 0; i < bins; ++i) {
    const double next = dist.Cdf((i + 1) * step);
    pmf[i] = std::max(0.0, next - prev);
    prev = next;
  }
  // Lump the tail beyond the grid into the last bin.
  pmf[bins - 1] += std::max(0.0, 1.0 - prev);
  // Mass below zero (none for latency distributions) would go to bin 0.
  pmf[0] += std::max(0.0, dist.Cdf(0.0));
  return DiscretizedDistribution(step, std::move(pmf));
}

DiscretizedDistribution DiscretizedDistribution::Convolve(
    const DiscretizedDistribution& a, const DiscretizedDistribution& b) {
  assert(std::abs(a.step_ - b.step_) < 1e-12);
  const int bins = a.bins();
  std::vector<double> pmf(bins, 0.0);
  for (int i = 0; i < bins; ++i) {
    if (a.pmf_[i] == 0.0) continue;
    for (int j = 0; j < b.bins(); ++j) {
      if (b.pmf_[j] == 0.0) continue;
      // Bin centers sum to (i+0.5)+(j+0.5) = (i+j+1)*step — exactly the
      // *edge* between bins i+j and i+j+1. Putting all the mass into i+j
      // (the old behavior) biases every convolution's mean low by step/2;
      // splitting it evenly across the two straddled bins keeps the mean
      // exact: ((i+j+0.5) + (i+j+1+0.5))/2 = i+j+1.
      const double mass = a.pmf_[i] * b.pmf_[j];
      pmf[std::min(i + j, bins - 1)] += 0.5 * mass;
      pmf[std::min(i + j + 1, bins - 1)] += 0.5 * mass;
    }
  }
  return DiscretizedDistribution(a.step_, std::move(pmf));
}

DiscretizedDistribution DiscretizedDistribution::OrderStatistic(
    const DiscretizedDistribution& dist, int n, int k) {
  assert(n >= 1);
  assert(k >= 1 && k <= n);
  const int bins = dist.bins();
  // G(x) = P(k-th smallest <= x) = sum_{j=k}^{n} C(n,j) F^j (1-F)^(n-j),
  // evaluated at bin upper edges, then differenced back into masses.
  std::vector<double> pmf(bins);
  double prev = 0.0;
  for (int i = 0; i < bins; ++i) {
    const double f = dist.cdf_[i];
    double g = 0.0;
    for (int j = k; j <= n; ++j) {
      g += Binomial(n, j) * std::pow(f, j) * std::pow(1.0 - f, n - j);
    }
    g = ClampProbability(g);
    pmf[i] = std::max(0.0, g - prev);
    prev = g;
  }
  return DiscretizedDistribution(dist.step_, std::move(pmf));
}

double DiscretizedDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.0;
  const int idx = static_cast<int>(x / step_);
  if (idx >= bins()) return 1.0;
  const double below = idx == 0 ? 0.0 : cdf_[idx - 1];
  const double frac = (x - idx * step_) / step_;
  return below + frac * pmf_[idx];
}

double DiscretizedDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  if (it == cdf_.end()) return bins() * step_;
  const int idx = static_cast<int>(it - cdf_.begin());
  const double below = idx == 0 ? 0.0 : cdf_[idx - 1];
  const double frac =
      pmf_[idx] > 0.0 ? (p - below) / pmf_[idx] : 0.0;
  return (idx + frac) * step_;
}

double DiscretizedDistribution::Mean() const {
  double mean = 0.0;
  for (int i = 0; i < bins(); ++i) mean += pmf_[i] * value(i);
  return mean;
}

namespace {

DiscretizedDistribution LegSum(const Distribution& first,
                               const Distribution& second, double max_ms,
                               int bins) {
  const auto a =
      DiscretizedDistribution::FromDistribution(first, max_ms, bins);
  const auto b =
      DiscretizedDistribution::FromDistribution(second, max_ms, bins);
  return DiscretizedDistribution::Convolve(a, b);
}

}  // namespace

AnalyticWars::AnalyticWars(const QuorumConfig& config,
                           const WarsDistributions& dists, double max_ms,
                           int bins)
    : config_(config), step_(max_ms / bins),
      commit_time_(DiscretizedDistribution::OrderStatistic(
          LegSum(*dists.w, *dists.a, max_ms, bins), config.n, config.w)),
      read_latency_(DiscretizedDistribution::OrderStatistic(
          LegSum(*dists.r, *dists.s, max_ms, bins), config.n, config.r)) {
  assert(config_.IsValid());
  // q(u) = P(w > u + r) = sum_r P(r) * (1 - Fw(u + r)), tabulated over
  // u in [0, 2 * max_ms).
  const auto w =
      DiscretizedDistribution::FromDistribution(*dists.w, max_ms, bins);
  const auto r =
      DiscretizedDistribution::FromDistribution(*dists.r, max_ms, bins);
  q_.assign(2 * bins, 0.0);
  for (int ui = 0; ui < 2 * bins; ++ui) {
    const double u = (ui + 0.5) * step_;
    double q = 0.0;
    for (int rj = 0; rj < r.bins(); ++rj) {
      const double mass = r.mass(rj);
      if (mass == 0.0) continue;
      q += mass * (1.0 - w.Cdf(u + r.value(rj)));
    }
    q_[ui] = q;
  }
}

double AnalyticWars::ApproxProbConsistent(double t) const {
  assert(t >= 0.0);
  // Strict quorums are exactly consistent by intersection; the independence
  // approximation below only applies to partial quorums.
  if (config_.IsStrict()) return 1.0;
  // P(stale | t) = E_wt[ q(wt + t)^R ] under the independence assumptions
  // documented in the header.
  double stale = 0.0;
  for (int i = 0; i < commit_time_.bins(); ++i) {
    const double mass = commit_time_.mass(i);
    if (mass == 0.0) continue;
    const double u = commit_time_.value(i) + t;
    const int ui =
        std::min(static_cast<int>(u / step_), static_cast<int>(q_.size()) - 1);
    stale += mass * std::pow(q_[ui], config_.r);
  }
  return ClampProbability(1.0 - stale);
}

double AnalyticWars::ApproxTimeForConsistency(double p) const {
  assert(p > 0.0 && p <= 1.0);
  const double max_t = step_ * static_cast<double>(q_.size());
  for (double t = 0.0; t < max_t; t += step_) {
    if (ApproxProbConsistent(t) >= p) return t;
  }
  return max_t;
}

}  // namespace pbs
