#include "core/analytic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/fft.h"
#include "util/math.h"

namespace pbs {

DiscretizedDistribution::DiscretizedDistribution(double step,
                                                 std::vector<double> pmf)
    : step_(step), pmf_(std::move(pmf)) {
  assert(step_ > 0.0);
  assert(!pmf_.empty());
  cdf_.resize(pmf_.size());
  double total = 0.0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    total += pmf_[i];
    cdf_[i] = total;
  }
  // Normalize away accumulated rounding (inputs are probability masses).
  if (total > 0.0 && std::abs(total - 1.0) > 1e-12) {
    for (auto& m : pmf_) m /= total;
    for (auto& c : cdf_) c /= total;
  }
}

DiscretizedDistribution DiscretizedDistribution::FromDistribution(
    const Distribution& dist, double max_value, int bins) {
  assert(max_value > 0.0);
  assert(bins >= 1);
  const double step = max_value / bins;
  std::vector<double> pmf(bins);
  double prev = dist.Cdf(0.0);
  for (int i = 0; i < bins; ++i) {
    const double next = dist.Cdf((i + 1) * step);
    pmf[i] = std::max(0.0, next - prev);
    prev = next;
  }
  // Lump the tail beyond the grid into the last bin.
  pmf[bins - 1] += std::max(0.0, 1.0 - prev);
  // Mass below zero (none for latency distributions) would go to bin 0.
  pmf[0] += std::max(0.0, dist.Cdf(0.0));
  return DiscretizedDistribution(step, std::move(pmf));
}

DiscretizedDistribution DiscretizedDistribution::Convolve(
    const DiscretizedDistribution& a, const DiscretizedDistribution& b) {
  assert(std::abs(a.step_ - b.step_) < 1e-12);
  const int bins = a.bins();
  // Bin centers sum to (i+0.5)+(j+0.5) = (i+j+1)*step — exactly the *edge*
  // between bins i+j and i+j+1. Putting all the mass into i+j would bias
  // every convolution's mean low by step/2; splitting it evenly across the
  // two straddled bins keeps the mean exact:
  // ((i+j+0.5) + (i+j+1+0.5))/2 = i+j+1. So from the full linear
  // convolution c[k] = sum_{i+j=k} a_i b_j:
  //   pmf[k]      = (c[k] + c[k-1]) / 2          for k < bins - 1,
  //   pmf[bins-1] = everything else (the grid's usual tail lump).
  std::vector<double> full = ConvolveReal(a.pmf_, b.pmf_);
  double total = 0.0;
  for (auto& m : full) {
    m = std::max(0.0, m);  // FFT rounding can dip microscopically negative
    total += m;
  }
  std::vector<double> pmf(bins, 0.0);
  double head = 0.0;
  for (int k = 0; k + 1 < bins; ++k) {
    const double below = k == 0 ? 0.0 : full[k - 1];
    pmf[k] = 0.5 * (full[k] + below);
    head += pmf[k];
  }
  pmf[bins - 1] = std::max(0.0, total - head);
  return DiscretizedDistribution(a.step_, std::move(pmf));
}

DiscretizedDistribution DiscretizedDistribution::OrderStatistic(
    const DiscretizedDistribution& dist, int n, int k) {
  assert(n >= 1);
  assert(k >= 1 && k <= n);
  const int bins = dist.bins();
  // G(x) = P(k-th smallest <= x) = sum_{j=k}^{n} C(n,j) F^j (1-F)^(n-j),
  // evaluated at bin upper edges, then differenced back into masses.
  // Binomial coefficients are hoisted and the powers built incrementally,
  // so the whole pass is O(bins * n) multiplies — this is the entire
  // per-quorum cost of the shared-scenario fast path.
  std::vector<double> coeff(n + 1);
  for (int j = k; j <= n; ++j) coeff[j] = Binomial(n, j);
  std::vector<double> pow_f(n + 1), pow_s(n + 1);
  pow_f[0] = pow_s[0] = 1.0;
  std::vector<double> pmf(bins);
  double prev = 0.0;
  for (int i = 0; i < bins; ++i) {
    const double f = dist.cdf_[i];
    const double s = 1.0 - f;
    for (int j = 1; j <= n; ++j) {
      pow_f[j] = pow_f[j - 1] * f;
      pow_s[j] = pow_s[j - 1] * s;
    }
    double g = 0.0;
    for (int j = k; j <= n; ++j) {
      g += coeff[j] * pow_f[j] * pow_s[n - j];
    }
    g = ClampProbability(g);
    pmf[i] = std::max(0.0, g - prev);
    prev = g;
  }
  return DiscretizedDistribution(dist.step_, std::move(pmf));
}

DiscretizedDistribution DiscretizedDistribution::Mixture(
    const DiscretizedDistribution& a, double weight_a,
    const DiscretizedDistribution& b, double weight_b) {
  assert(std::abs(a.step_ - b.step_) < 1e-12);
  assert(a.bins() == b.bins());
  assert(weight_a >= 0.0 && weight_b >= 0.0);
  std::vector<double> pmf(a.pmf_.size());
  for (size_t i = 0; i < pmf.size(); ++i) {
    pmf[i] = weight_a * a.pmf_[i] + weight_b * b.pmf_[i];
  }
  return DiscretizedDistribution(a.step_, std::move(pmf));
}

double DiscretizedDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.0;
  const int idx = static_cast<int>(x / step_);
  if (idx >= bins()) return 1.0;
  const double below = idx == 0 ? 0.0 : cdf_[idx - 1];
  const double frac = (x - idx * step_) / step_;
  return below + frac * pmf_[idx];
}

double DiscretizedDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  if (it == cdf_.end()) return bins() * step_;
  const int idx = static_cast<int>(it - cdf_.begin());
  const double below = idx == 0 ? 0.0 : cdf_[idx - 1];
  const double frac =
      pmf_[idx] > 0.0 ? (p - below) / pmf_[idx] : 0.0;
  return (idx + frac) * step_;
}

double DiscretizedDistribution::Mean() const {
  double mean = 0.0;
  for (int i = 0; i < bins(); ++i) mean += pmf_[i] * value(i);
  return mean;
}

double AutoGridMaxMs(const WarsDistributions& dists) {
  // Each leg truncates <= 1e-4 of mass past its (1 - 1e-4) quantile; the
  // factor of two covers the two-leg sums (w+a, r+s) whose joint extreme
  // exceeds either marginal's. Heavy Pareto tails make far-out quantiles
  // (1 - 1e-6 and beyond) blow the bound back up to the worst case, which
  // is exactly what this is trying to avoid — 1e-4 is past every gated
  // quantile (p99.9) and every probability tolerance in the bench.
  const double p = 1.0 - 1e-4;
  double worst = 0.0;
  for (const Distribution* leg :
       {dists.w.get(), dists.a.get(), dists.r.get(), dists.s.get()}) {
    if (leg != nullptr) worst = std::max(worst, leg->Quantile(p));
  }
  return 2.0 * worst;
}

double ResolveGridMaxMs(const WarsDistributions& dists,
                        const AnalyticGridOptions& grid) {
  if (!grid.auto_max) return grid.max_ms;
  const double floor_ms = grid.max_ms / grid.bins;  // >= one configured step
  return std::clamp(AutoGridMaxMs(dists), floor_ms, grid.max_ms);
}

AnalyticScenario::AnalyticScenario(const WarsDistributions& dists,
                                   double max_ms, int bins)
    : step_(max_ms / bins), name_(dists.name),
      write_leg_(DiscretizedDistribution::FromDistribution(*dists.w, max_ms,
                                                           bins)),
      write_ack_(DiscretizedDistribution::Convolve(
          write_leg_,
          DiscretizedDistribution::FromDistribution(*dists.a, max_ms, bins))),
      read_response_(DiscretizedDistribution::Convolve(
          DiscretizedDistribution::FromDistribution(*dists.r, max_ms, bins),
          DiscretizedDistribution::FromDistribution(*dists.s, max_ms,
                                                    bins))) {
  // q(u) = P(w > u + r) = sum_j P(r in bin j) * (1 - Fw(u + r_j)), with u
  // and r_j at bin centers: the CDF argument (ui+0.5+j+0.5)*step lands
  // exactly on edge ui+j+1, so with Sw[m] = 1 - Fw at edge m+1 this is the
  // correlation q[ui] = sum_j r[j] * Sw[ui + j] — computed here as one FFT
  // convolution against the reversed read-leg pmf (identical values to the
  // former O(bins^2) loop, up to FP rounding).
  const auto read_leg =
      DiscretizedDistribution::FromDistribution(*dists.r, max_ms, bins);
  std::vector<double> survival(bins);
  for (int m = 0; m < bins; ++m) {
    survival[m] = std::max(0.0, 1.0 - write_leg_.CdfAtEdge(m));
  }
  std::vector<double> read_rev(bins);
  for (int j = 0; j < bins; ++j) read_rev[j] = read_leg.mass(bins - 1 - j);
  const std::vector<double> conv = ConvolveReal(read_rev, survival);
  // conv[ui + bins - 1] = sum_j r[j] * Sw[ui + j]; Sw is zero beyond the
  // grid, so q vanishes for u >= max_ms (the upper half of the table).
  q_.assign(2 * static_cast<size_t>(bins), 0.0);
  for (int ui = 0; ui < bins; ++ui) {
    q_[ui] = ClampProbability(conv[ui + bins - 1]);
  }
}

StatusOr<AnalyticScenarioPtr> MakeAnalyticScenario(
    const WarsDistributions& dists, const AnalyticGridOptions& grid) {
  const Status status = grid.Validate();
  if (!status.ok()) return status;
  if (dists.w == nullptr || dists.a == nullptr || dists.r == nullptr ||
      dists.s == nullptr) {
    return Status::InvalidArgument(
        "analytic scenario requires all four WARS leg distributions");
  }
  return AnalyticScenarioPtr(
      std::make_shared<const AnalyticScenario>(dists, grid));
}

AnalyticWars::AnalyticWars(const QuorumConfig& config,
                           const WarsDistributions& dists, double max_ms,
                           int bins, ReadFanout read_fanout)
    : AnalyticWars(config,
                   std::make_shared<const AnalyticScenario>(dists, max_ms,
                                                            bins),
                   read_fanout) {}

AnalyticWars::AnalyticWars(const QuorumConfig& config,
                           AnalyticScenarioPtr scenario,
                           ReadFanout read_fanout)
    : config_(config), read_fanout_(read_fanout),
      scenario_(std::move(scenario)), step_(scenario_->step()),
      commit_time_(DiscretizedDistribution::OrderStatistic(
          scenario_->write_ack(), config.n, config.w)),
      read_latency_(read_fanout == ReadFanout::kAllN
                        ? DiscretizedDistribution::OrderStatistic(
                              scenario_->read_response(), config.n, config.r)
                        : DiscretizedDistribution::OrderStatistic(
                              scenario_->read_response(), config.r,
                              config.r)) {
  assert(config_.IsValid());
  if (!config_.IsStrict()) BuildStaleCurve();
}

void AnalyticWars::BuildStaleCurve() {
  // P(stale | t) = ps * E_wt[ (q(wt + t) / S_wa(wt))^R ]  (header, eq. *):
  //
  //  - ps = C(N-W, R) / C(N, R): the W ack-ers (w + a <= wt, hence
  //    w <= wt <= wt + t + r) are guaranteed fresh, so a stale read must
  //    draw its R probes entirely from the N-W non-ack-ers. Response order
  //    (r + s) is independent of ack status under IID legs, so the probe
  //    set is uniform over R-subsets and the factor is exact — for both
  //    fan-out policies (Section 2.3).
  //  - Given the W-th order statistic wt, the non-ack-ers' legs are iid
  //    conditioned on w + a > wt, and since w > wt + t + r already implies
  //    w + a > wt (t, r, a >= 0), each probe's staleness is exactly
  //    q(wt + t) / S_wa(wt) with S_wa(x) = P(w + a > x).
  //
  // What remains approximate: staleness is treated as independent across
  // the R probes given wt, and the selection bias of the first R
  // responders toward small r + s (which shares r with the freshness
  // condition) is ignored.
  //
  // Separating the per-bin factors, with commit bin i at wt_i = (i+0.5)*step
  // and t = k*step:
  //   stale[k] = sum_i  (ps * m_i / S_i^R)  *  q[i + k]^R
  // so hoisting h_i = ps * m_i / S_i^R and g[u] = q[u]^R once per quorum
  // turns every curve point into a shifted dot product — tens of
  // microseconds against the scenario's grid, with no transcendentals in
  // the loop. q <= S_wa holds by construction (w > wt + t + r implies
  // w + a > wt), so the per-term ratio never exceeds 1; the epsilon floor
  // only guards far-tail bins where both sides underflow together.
  const double ps = BinomialRatio(config_.n - config_.w, config_.n, config_.r);
  const DiscretizedDistribution& wa = scenario_->write_ack();
  const int bins = commit_time_.bins();
  stale_g_.resize(bins);
  for (int u = 0; u < bins; ++u) {
    const double q = scenario_->q(u);
    double pow_r = 1.0;
    for (int j = 0; j < config_.r; ++j) pow_r *= q;
    stale_g_[u] = pow_r;
  }
  stale_h_.assign(bins, 0.0);
  for (int i = 0; i < bins; ++i) {
    const double mass = commit_time_.mass(i);
    if (mass == 0.0) continue;
    const double s_wa =
        std::max(1.0 - wa.Cdf(commit_time_.value(i)), 1e-12);
    double pow_s = 1.0;
    for (int j = 0; j < config_.r; ++j) pow_s *= s_wa;
    stale_h_[i] = ps * mass / pow_s;
  }
}

double AnalyticWars::ApproxProbConsistent(double t) const {
  assert(t >= 0.0);
  // Strict quorums are exactly consistent by intersection; the independence
  // approximation only applies to partial quorums (BuildStaleCurve).
  if (stale_h_.empty()) return 1.0;
  // Bin centers make the direct evaluation's index floor((i+0.5)*step + t)
  // equal i + round(t / step) — so the factored dot product reproduces the
  // per-bin sum exactly, not just at grid-aligned t. g vanishes past the
  // grid (q's upper half is zero), so terms with i + k >= bins drop out,
  // which also covers the former index clamp at the table edge.
  const int bins = static_cast<int>(stale_h_.size());
  const double shift = std::min(t / step_ + 0.5, static_cast<double>(bins));
  const int k = static_cast<int>(shift);
  double stale = 0.0;
  for (int i = 0; i + k < bins; ++i) {
    stale += stale_h_[i] * stale_g_[i + k];
  }
  return ClampProbability(1.0 - stale);
}

double AnalyticWars::ApproxTimeForConsistency(double p) const {
  assert(p > 0.0 && p <= 1.0);
  // ApproxProbConsistent is nondecreasing on the grid (q is nonincreasing
  // in u and every commit bin's index shifts uniformly with t), so the
  // smallest grid t with P(consistent | t) >= p binary-searches in
  // O(log bins) curve evaluations. k == q_size() is the "never reaches p
  // on the grid" sentinel, mirroring the former linear scan's max_t.
  int lo = 0, hi = scenario_->q_size();
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (ApproxProbConsistent(mid * step_) >= p) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo * step_;
}

std::vector<double> AnalyticWars::ApproxPwAt(double t) const {
  assert(t >= 0.0);
  const int n = config_.n;
  std::vector<double> coeff(n + 1);
  for (int c = 0; c <= n; ++c) coeff[c] = Binomial(n, c);
  std::vector<double> pow_p(n + 1), pow_s(n + 1);
  pow_p[0] = pow_s[0] = 1.0;
  // pw[c] = E_wt[ P(Binomial(n, Fw(wt + t)) <= c) ]: each replica holds
  // the version iff its write leg landed by wt + t (see the header for why
  // this keeps Equations 4/5 conservative).
  std::vector<double> pw(n + 1, 0.0);
  const DiscretizedDistribution& w = scenario_->write_leg();
  for (int i = 0; i < commit_time_.bins(); ++i) {
    const double mass = commit_time_.mass(i);
    if (mass == 0.0) continue;
    const double p = w.Cdf(commit_time_.value(i) + t);
    const double s = 1.0 - p;
    for (int j = 1; j <= n; ++j) {
      pow_p[j] = pow_p[j - 1] * p;
      pow_s[j] = pow_s[j - 1] * s;
    }
    double cumulative = 0.0;
    for (int c = 0; c <= n; ++c) {
      cumulative += coeff[c] * pow_p[c] * pow_s[n - c];
      pw[c] += mass * cumulative;
    }
  }
  for (int c = 0; c <= n; ++c) pw[c] = ClampProbability(pw[c]);
  pw[n] = 1.0;
  return pw;
}

}  // namespace pbs
