#include "core/predictor.h"

#include <cassert>

namespace pbs {

PbsPredictor::PbsPredictor(const QuorumConfig& config,
                           ReplicaLatencyModelPtr model,
                           const PredictorOptions& options)
    : config_(config), model_(std::move(model)) {
  assert(config_.IsValid());
  trials_ = RunWarsTrials(config_, model_, options.trials, options.seed,
                          options.collect_propagation, ReadFanout::kAllN,
                          options.exec);
  // The curve/profile constructors sort their inputs; copy the columns the
  // trial set still needs (thresholds are only used by the curve).
  t_visibility_ = std::make_unique<TVisibilityCurve>(
      std::move(trials_.staleness_thresholds));
  trials_.staleness_thresholds.clear();
  latencies_ = std::make_unique<OperationLatencies>(OperationLatencies{
      LatencyProfile(trials_.read_latencies),
      LatencyProfile(trials_.write_latencies)});
}

double PbsPredictor::ProbConsistent(double t) const {
  return t_visibility_->ProbConsistent(t);
}

double PbsPredictor::TimeForConsistency(double p) const {
  return t_visibility_->TimeForConsistency(p);
}

double PbsPredictor::KTStalenessUpperBound(int k, double t) const {
  assert(!trials_.propagation.empty() &&
         "PredictorOptions::collect_propagation must be set");
  const auto pw = EmpiricalPwAt(trials_, config_.n, t);
  return KTStalenessBound(config_, pw, k);
}

double PbsPredictor::ReadLatencyPercentile(double pct) const {
  return latencies_->reads.Percentile(pct);
}

double PbsPredictor::WriteLatencyPercentile(double pct) const {
  return latencies_->writes.Percentile(pct);
}

}  // namespace pbs
