#include "core/predictor.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/analytic.h"

namespace pbs {

namespace {

/// The historical engine: one WARS Monte Carlo run at construction, every
/// query an order statistic over its columns. Byte-for-byte the same trial
/// set — and hence the same answers — as the pre-backend PbsPredictor.
class MonteCarloEngine final : public PredictionEngine {
 public:
  MonteCarloEngine(const QuorumConfig& config,
                   const ReplicaLatencyModelPtr& model,
                   const PredictorOptions& options)
      : n_(config.n) {
    trials_ = RunWarsTrials(config, model, options.trials, options.seed,
                            options.collect_propagation, ReadFanout::kAllN,
                            options.exec);
    // The curve/profile constructors sort their inputs; copy the columns the
    // trial set still needs (thresholds are only used by the curve).
    t_visibility_ = std::make_unique<TVisibilityCurve>(
        std::move(trials_.staleness_thresholds));
    trials_.staleness_thresholds.clear();
    latencies_ = std::make_unique<OperationLatencies>(OperationLatencies{
        LatencyProfile(trials_.read_latencies),
        LatencyProfile(trials_.write_latencies)});
  }

  PredictorBackend kind() const override {
    return PredictorBackend::kMonteCarlo;
  }
  std::string Describe() const override {
    std::ostringstream out;
    out << "mc(" << t_visibility_->num_trials() << " trials)";
    return out.str();
  }

  double ProbConsistent(double t) const override {
    return t_visibility_->ProbConsistent(t);
  }
  double TimeForConsistency(double p) const override {
    return t_visibility_->TimeForConsistency(p);
  }
  double ReadLatencyPercentile(double pct) const override {
    return latencies_->reads.Percentile(pct);
  }
  double WriteLatencyPercentile(double pct) const override {
    return latencies_->writes.Percentile(pct);
  }
  std::vector<double> WritePropagationCdfAt(double t) const override {
    assert(!trials_.propagation.empty() &&
           "PredictorOptions::collect_propagation must be set");
    return EmpiricalPwAt(trials_, n_, t);
  }

 private:
  int n_;
  WarsTrialSet trials_;
  std::unique_ptr<TVisibilityCurve> t_visibility_;
  std::unique_ptr<OperationLatencies> latencies_;
};

/// The grid-solver engine: wraps AnalyticWars (core/analytic.h), whose
/// scenario grids are built once here and answer every query in
/// microseconds. Latencies are exact to grid resolution; t-visibility and
/// the propagation CDF carry AnalyticWars's documented independence
/// approximations.
class AnalyticEngine final : public PredictionEngine {
 public:
  AnalyticEngine(const QuorumConfig& config, AnalyticScenarioPtr scenario)
      : wars_(config, std::move(scenario)) {}

  PredictorBackend kind() const override { return PredictorBackend::kAnalytic; }
  std::string Describe() const override {
    std::ostringstream out;
    out << "analytic(" << wars_.scenario()->bins() << " bins, max "
        << wars_.scenario()->max_ms() << " ms)";
    return out.str();
  }

  double ProbConsistent(double t) const override {
    return wars_.ApproxProbConsistent(t);
  }
  double TimeForConsistency(double p) const override {
    return wars_.ApproxTimeForConsistency(p);
  }
  double ReadLatencyPercentile(double pct) const override {
    return wars_.ReadLatencyQuantile(pct / 100.0);
  }
  double WriteLatencyPercentile(double pct) const override {
    return wars_.WriteLatencyQuantile(pct / 100.0);
  }
  std::vector<double> WritePropagationCdfAt(double t) const override {
    return wars_.ApproxPwAt(t);
  }

 private:
  AnalyticWars wars_;
};

Status ValidateEngineInputs(const QuorumConfig& config,
                            const ReplicaLatencyModelPtr& model,
                            const PredictorOptions& options) {
  if (!config.IsValid()) {
    std::ostringstream out;
    out << "invalid quorum config: n=" << config.n << " r=" << config.r
        << " w=" << config.w;
    return Status::InvalidArgument(out.str());
  }
  if (model == nullptr) {
    return Status::InvalidArgument("latency model must not be null");
  }
  if (model->num_replicas() != config.n) {
    std::ostringstream out;
    out << "latency model has " << model->num_replicas()
        << " replicas but config.n = " << config.n;
    return Status::InvalidArgument(out.str());
  }
  if (options.trials < 1) {
    return Status::InvalidArgument("options.trials must be >= 1, got " +
                                   std::to_string(options.trials));
  }
  Status status = options.grid.Validate();
  if (!status.ok()) return status;
  status = options.validation.Validate();
  if (!status.ok()) return status;
  return Status::Ok();
}

/// kAuto's guard: compare the analytic engine against a small MC run on the
/// quantities the predictor serves. Returns an empty string on agreement,
/// otherwise the human-readable reason for falling back.
std::string SpotCheckAnalytic(const QuorumConfig& config,
                              const ReplicaLatencyModelPtr& model,
                              const PredictorOptions& options,
                              const AnalyticEngine& analytic) {
  PredictorOptions probe = options;
  probe.trials = options.validation.trials;
  probe.collect_propagation = false;
  MonteCarloEngine mc(config, model, probe);

  const auto& tol = options.validation;
  const auto latency_ok = [&tol](double a, double m) {
    return std::abs(a - m) <= tol.latency_rel_tol * m + tol.latency_abs_tol_ms;
  };
  std::ostringstream why;
  for (const double pct : {50.0, 99.0}) {
    const double ar = analytic.ReadLatencyPercentile(pct);
    const double mr = mc.ReadLatencyPercentile(pct);
    if (!latency_ok(ar, mr)) {
      why << "read p" << pct << " " << ar << " vs mc " << mr << " ms";
      return why.str();
    }
    const double aw = analytic.WriteLatencyPercentile(pct);
    const double mw = mc.WriteLatencyPercentile(pct);
    if (!latency_ok(aw, mw)) {
      why << "write p" << pct << " " << aw << " vs mc " << mw << " ms";
      return why.str();
    }
  }
  for (const double t : {0.0, 10.0}) {
    const double ap = analytic.ProbConsistent(t);
    const double mp = mc.ProbConsistent(t);
    if (std::abs(ap - mp) > tol.consistency_tol) {
      why << "P(consistent|t=" << t << ") " << ap << " vs mc " << mp;
      return why.str();
    }
  }
  return std::string();
}

}  // namespace

StatusOr<std::unique_ptr<PredictionEngine>> MakePredictionEngine(
    const QuorumConfig& config, const ReplicaLatencyModelPtr& model,
    const PredictorOptions& options, std::string* note) {
  if (note != nullptr) note->clear();
  const Status status = ValidateEngineInputs(config, model, options);
  if (!status.ok()) return status;

  switch (options.backend) {
    case PredictorBackend::kMonteCarlo:
      return std::unique_ptr<PredictionEngine>(
          new MonteCarloEngine(config, model, options));

    case PredictorBackend::kAnalytic: {
      const WarsDistributions* legs = model->IidLegs();
      if (legs == nullptr) {
        return Status::InvalidArgument(
            "backend=analytic requires an IID latency model (" +
            model->Describe() +
            " is not); use backend=auto to fall back to Monte Carlo");
      }
      auto scenario = MakeAnalyticScenario(*legs, options.grid);
      if (!scenario.ok()) return scenario.status();
      return std::unique_ptr<PredictionEngine>(
          new AnalyticEngine(config, std::move(scenario.value())));
    }

    case PredictorBackend::kAuto: {
      const WarsDistributions* legs = model->IidLegs();
      if (legs == nullptr) {
        if (note != nullptr) {
          *note = "auto: " + model->Describe() +
                  " is not IID across replicas; using Monte Carlo";
        }
        return std::unique_ptr<PredictionEngine>(
            new MonteCarloEngine(config, model, options));
      }
      auto scenario = MakeAnalyticScenario(*legs, options.grid);
      if (!scenario.ok()) return scenario.status();
      auto analytic = std::make_unique<AnalyticEngine>(
          config, std::move(scenario.value()));
      const std::string mismatch =
          SpotCheckAnalytic(config, model, options, *analytic);
      if (mismatch.empty()) {
        return std::unique_ptr<PredictionEngine>(std::move(analytic));
      }
      if (note != nullptr) {
        *note = "auto: analytic failed the MC spot-check (" + mismatch +
                "); using Monte Carlo";
      }
      return std::unique_ptr<PredictionEngine>(
          new MonteCarloEngine(config, model, options));
    }
  }
  return Status::InvalidArgument("unknown predictor backend");
}

StatusOr<PbsPredictor> PbsPredictor::Create(const QuorumConfig& config,
                                            ReplicaLatencyModelPtr model,
                                            const PredictorOptions& options) {
  PbsPredictor predictor;
  predictor.config_ = config;
  predictor.model_ = std::move(model);
  auto engine = MakePredictionEngine(config, predictor.model_, options,
                                     &predictor.backend_note_);
  if (!engine.ok()) return engine.status();
  predictor.engine_ = std::move(engine.value());
  return StatusOr<PbsPredictor>(std::move(predictor));
}

PbsPredictor::PbsPredictor(const QuorumConfig& config,
                           ReplicaLatencyModelPtr model,
                           const PredictorOptions& options) {
  auto created = Create(config, std::move(model), options);
  assert(created.ok() && "invalid PbsPredictor arguments; see Create()");
  *this = std::move(created.value());
}

double PbsPredictor::KTStalenessUpperBound(int k, double t) const {
  const auto pw = engine_->WritePropagationCdfAt(t);
  return KTStalenessBound(config_, pw, k);
}

}  // namespace pbs
