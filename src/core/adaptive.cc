#include "core/adaptive.h"

#include <cassert>

#include "core/latency.h"
#include "core/tvisibility.h"

namespace pbs {

AdaptiveConfigController::AdaptiveConfigController(
    QuorumConfig initial, const AdaptiveControllerOptions& options)
    : current_(initial), options_(options) {
  assert(initial.IsValid());
  assert(options.trials_per_eval > 0);
  assert(options.switch_improvement_factor > 0.0 &&
         options.switch_improvement_factor <= 1.0);
}

AdaptiveConfigController::Evaluation AdaptiveConfigController::Evaluate(
    const QuorumConfig& config, const ReplicaLatencyModelPtr& model,
    uint64_t seed) const {
  WarsTrialSet set =
      RunWarsTrials(config, model, options_.trials_per_eval, seed,
                    /*want_propagation=*/false, ReadFanout::kAllN,
                    options_.exec);
  const TVisibilityCurve curve(std::move(set.staleness_thresholds));
  const LatencyProfile reads(std::move(set.read_latencies));
  const LatencyProfile writes(std::move(set.write_latencies));
  Evaluation eval;
  eval.t_visibility_ms =
      curve.TimeForConsistency(options_.consistency_probability);
  eval.objective_ms =
      options_.read_weight * reads.Percentile(options_.latency_percentile) +
      options_.write_weight * writes.Percentile(options_.latency_percentile);
  eval.feasible = eval.t_visibility_ms <= options_.max_t_visibility_ms;
  return eval;
}

QuorumConfig AdaptiveConfigController::Update(
    const ReplicaLatencyModelPtr& model) {
  assert(model != nullptr);
  assert(model->num_replicas() == current_.n);
  ++epoch_;

  // Evaluate the incumbent and every challenger under the current model.
  const uint64_t base_seed = options_.seed + epoch_ * 1000003ULL;
  Evaluation incumbent = Evaluate(current_, model, base_seed);

  QuorumConfig best = current_;
  Evaluation best_eval = incumbent;
  uint64_t salt = 1;
  for (int r = 1; r <= current_.n; ++r) {
    for (int w = 1; w <= current_.n; ++w) {
      const QuorumConfig candidate{current_.n, r, w};
      if (candidate == current_) continue;
      const Evaluation eval = Evaluate(candidate, model, base_seed + salt++);
      const bool better =
          (eval.feasible && !best_eval.feasible) ||
          (eval.feasible == best_eval.feasible &&
           eval.objective_ms < best_eval.objective_ms);
      if (better) {
        best = candidate;
        best_eval = eval;
      }
    }
  }

  // Hysteresis: keep a feasible incumbent unless the challenger is a clear
  // win; always leave an infeasible incumbent for the best feasible option.
  bool switch_now = false;
  if (!incumbent.feasible && best_eval.feasible) {
    switch_now = true;
  } else if (best_eval.feasible == incumbent.feasible &&
             best_eval.objective_ms <
                 options_.switch_improvement_factor *
                     incumbent.objective_ms) {
    switch_now = true;
  }

  Decision decision;
  decision.switched = switch_now && !(best == current_);
  if (switch_now) current_ = best;
  decision.chosen = current_;
  const Evaluation& chosen_eval = switch_now ? best_eval : incumbent;
  decision.objective_ms = chosen_eval.objective_ms;
  decision.t_visibility_ms = chosen_eval.t_visibility_ms;
  decision.feasible = chosen_eval.feasible;
  history_.push_back(decision);
  return current_;
}

}  // namespace pbs
