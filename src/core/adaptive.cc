#include "core/adaptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "core/analytic.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "util/math.h"
#include "util/stats.h"

namespace pbs {

Status SlaTarget::Validate() const {
  if (!enabled()) return Status::Ok();
  if (!(fresh_probability > 0.0 && fresh_probability < 1.0)) {
    return Status::InvalidArgument(
        "sla: fresh_probability must be in (0, 1), got " +
        std::to_string(fresh_probability));
  }
  if (!(staleness_bound_ms >= 0.0)) {
    return Status::InvalidArgument("sla: staleness_bound_ms must be >= 0");
  }
  if (!(read_p99_ms > 0.0)) {
    return Status::InvalidArgument("sla: read_p99_ms must be > 0");
  }
  return Status::Ok();
}

StatusOr<SlaTarget> SlaTarget::Parse(const std::string& text) {
  SlaTarget sla;
  bool have_p = false, have_t = false, have_p99 = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string clause = text.substr(pos, comma - pos);
    pos = comma + 1;
    double* field = nullptr;
    std::string value;
    if (clause.rfind("p99<=", 0) == 0) {
      field = &sla.read_p99_ms;
      value = clause.substr(5);
      have_p99 = true;
    } else if (clause.rfind("p=", 0) == 0) {
      field = &sla.fresh_probability;
      value = clause.substr(2);
      have_p = true;
    } else if (clause.rfind("t=", 0) == 0) {
      field = &sla.staleness_bound_ms;
      value = clause.substr(2);
      have_t = true;
    } else {
      return Status::InvalidArgument("sla: unknown clause '" + clause +
                                     "' (want p=, t=, p99<=)");
    }
    char* end = nullptr;
    *field = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() ||
        !std::isfinite(*field)) {
      return Status::InvalidArgument("sla: bad number in clause '" + clause +
                                     "'");
    }
  }
  if (!have_p || !have_t || !have_p99) {
    return Status::InvalidArgument(
        "sla: need all of p=, t=, p99<= in '" + text + "'");
  }
  // A parsed target must be an *enabled* one; p <= 0 would otherwise slip
  // through Validate() as "SLA disabled".
  if (!sla.enabled()) {
    return Status::InvalidArgument(
        "sla: fresh_probability must be in (0, 1), got " +
        std::to_string(sla.fresh_probability));
  }
  Status status = sla.Validate();
  if (!status.ok()) return status;
  return sla;
}

double MixtureQuantileSorted(const std::vector<double>& lo_sorted,
                             double weight_lo,
                             const std::vector<double>& hi_sorted,
                             double weight_hi, double q) {
  const bool have_lo = weight_lo > 0.0 && !lo_sorted.empty();
  const bool have_hi = weight_hi > 0.0 && !hi_sorted.empty();
  if (!have_lo && !have_hi) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (!have_lo) return QuantileSorted(hi_sorted, q);
  if (!have_hi) return QuantileSorted(lo_sorted, q);
  // Merge-scan: advance through the union of both sorted arrays in value
  // order; after consuming i values of lo and j of hi the mixture CDF is
  // weight_lo * i/|lo| + weight_hi * j/|hi|. Return the first value at
  // which it reaches q.
  const double step_lo = weight_lo / static_cast<double>(lo_sorted.size());
  const double step_hi = weight_hi / static_cast<double>(hi_sorted.size());
  size_t i = 0, j = 0;
  double cdf = 0.0;
  double value = lo_sorted.back() > hi_sorted.back() ? lo_sorted.back()
                                                     : hi_sorted.back();
  while (i < lo_sorted.size() || j < hi_sorted.size()) {
    double next;
    if (j >= hi_sorted.size() ||
        (i < lo_sorted.size() && lo_sorted[i] <= hi_sorted[j])) {
      next = lo_sorted[i++];
      cdf += step_lo;
    } else {
      next = hi_sorted[j++];
      cdf += step_hi;
    }
    if (cdf >= q - 1e-12) {
      value = next;
      break;
    }
  }
  return value;
}

namespace {

// Fraction of (unsorted) thresholds at or below `bound`.
double FractionAtMost(const std::vector<double>& values, double bound) {
  if (values.empty()) return 0.0;
  int64_t hits = 0;
  for (double v : values) {
    if (v <= bound) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

}  // namespace

MixedQuorumEvaluation EvaluateMixedQuorum(const MixedQuorum& quorum,
                                          const SlaTarget& sla,
                                          const ReplicaLatencyModelPtr& model,
                                          int trials, uint64_t seed,
                                          ReadFanout read_fanout,
                                          const PbsExecutionOptions& exec) {
  assert(quorum.IsValid());
  assert(model != nullptr && model->num_replicas() == quorum.n);
  assert(trials > 0);
  const double mix_lo = quorum.r_lo == quorum.r_hi ? 0.0 : quorum.mix;
  const double mix_hi = 1.0 - mix_lo;

  MixedQuorumEvaluation eval;
  std::vector<double> lo_reads, hi_reads, lo_writes, hi_writes;
  double fresh = 0.0;
  if (mix_hi > 0.0 || mix_lo <= 0.0) {
    const QuorumConfig hi{quorum.n, quorum.r_hi, quorum.w};
    WarsTrialSet set = RunWarsTrials(hi, model, trials, seed,
                                     /*want_propagation=*/false, read_fanout,
                                     exec);
    fresh += mix_hi * FractionAtMost(set.staleness_thresholds,
                                     sla.staleness_bound_ms);
    hi_reads = std::move(set.read_latencies);
    hi_writes = std::move(set.write_latencies);
    std::sort(hi_reads.begin(), hi_reads.end());
    std::sort(hi_writes.begin(), hi_writes.end());
  }
  if (mix_lo > 0.0) {
    const QuorumConfig lo{quorum.n, quorum.r_lo, quorum.w};
    // The lo arm draws from a deterministically derived but distinct seed
    // so the two arms are independent samples.
    WarsTrialSet set = RunWarsTrials(lo, model, trials,
                                     seed ^ 0x5CA1AB1E5CA1AB1EULL,
                                     /*want_propagation=*/false, read_fanout,
                                     exec);
    fresh += mix_lo * FractionAtMost(set.staleness_thresholds,
                                     sla.staleness_bound_ms);
    lo_reads = std::move(set.read_latencies);
    lo_writes = std::move(set.write_latencies);
    std::sort(lo_reads.begin(), lo_reads.end());
    std::sort(lo_writes.begin(), lo_writes.end());
  }
  eval.fresh_probability = fresh;
  eval.read_p99_ms =
      MixtureQuantileSorted(lo_reads, mix_lo, hi_reads, mix_hi, 0.99);
  eval.write_p99_ms =
      MixtureQuantileSorted(lo_writes, mix_lo, hi_writes, mix_hi, 0.99);
  eval.feasible = eval.fresh_probability >= sla.fresh_probability &&
                  eval.read_p99_ms <= sla.read_p99_ms;
  return eval;
}

MixedQuorumEvaluation EvaluateMixedQuorumAnalytic(
    const MixedQuorum& quorum, const SlaTarget& sla,
    const AnalyticScenarioPtr& scenario, ReadFanout read_fanout) {
  assert(quorum.IsValid());
  assert(scenario != nullptr);
  // Same arm-weight convention as the Monte Carlo path above.
  const double mix_lo = quorum.r_lo == quorum.r_hi ? 0.0 : quorum.mix;
  const double mix_hi = 1.0 - mix_lo;

  MixedQuorumEvaluation eval;
  std::unique_ptr<AnalyticWars> lo, hi;
  double fresh = 0.0;
  if (mix_hi > 0.0 || mix_lo <= 0.0) {
    hi = std::make_unique<AnalyticWars>(
        QuorumConfig{quorum.n, quorum.r_hi, quorum.w}, scenario, read_fanout);
    fresh += mix_hi * hi->ApproxProbConsistent(sla.staleness_bound_ms);
  }
  if (mix_lo > 0.0) {
    lo = std::make_unique<AnalyticWars>(
        QuorumConfig{quorum.n, quorum.r_lo, quorum.w}, scenario, read_fanout);
    fresh += mix_lo * lo->ApproxProbConsistent(sla.staleness_bound_ms);
  }
  eval.fresh_probability = ClampProbability(fresh);
  if (lo != nullptr && hi != nullptr) {
    // Exact mixture of the two read order-statistic CDFs on the shared grid.
    eval.read_p99_ms = DiscretizedDistribution::Mixture(
                           lo->read_latency(), mix_lo, hi->read_latency(),
                           mix_hi)
                           .Quantile(0.99);
  } else {
    const AnalyticWars& arm = hi != nullptr ? *hi : *lo;
    eval.read_p99_ms = arm.ReadLatencyQuantile(0.99);
  }
  // Write latency is R-independent (the W-th order statistic of w + a), so
  // the arms agree; take whichever was built.
  eval.write_p99_ms = (hi != nullptr ? *hi : *lo).WriteLatencyQuantile(0.99);
  eval.feasible = eval.fresh_probability >= sla.fresh_probability &&
                  eval.read_p99_ms <= sla.read_p99_ms;
  return eval;
}

MixedQuorumPredictor::MixedQuorumPredictor(const SlaTarget& sla,
                                           ReplicaLatencyModelPtr model,
                                           const MixedQuorum& probe,
                                           const Options& options)
    : sla_(sla), model_(std::move(model)), options_(options) {
  assert(model_ != nullptr && model_->num_replicas() == probe.n);
  assert(probe.IsValid());
  assert(options_.trials > 0);
  if (options_.backend == PredictorBackend::kMonteCarlo) {
    resolved_ = PredictorBackend::kMonteCarlo;
    return;
  }
  const WarsDistributions* legs = model_->IidLegs();
  if (legs == nullptr) {
    assert(options_.backend != PredictorBackend::kAnalytic &&
           "backend=analytic requires an IID latency model");
    note_ = PredictorBackendName(options_.backend) + std::string(": ") +
            model_->Describe() +
            " is not IID across replicas; using Monte Carlo";
    resolved_ = PredictorBackend::kMonteCarlo;
    return;
  }
  auto scenario = MakeAnalyticScenario(*legs, options_.grid);
  if (!scenario.ok()) {
    assert(options_.backend != PredictorBackend::kAnalytic &&
           "invalid analytic grid options");
    note_ = PredictorBackendName(options_.backend) + std::string(": ") +
            scenario.status().message() + "; using Monte Carlo";
    resolved_ = PredictorBackend::kMonteCarlo;
    return;
  }
  scenario_ = std::move(scenario.value());
  if (options_.backend == PredictorBackend::kAuto) {
    // Spot-check the probe quorum: the analytic evaluation must match a
    // small Monte Carlo run on the two quantities decisions hinge on.
    const MixedQuorumEvaluation analytic = EvaluateMixedQuorumAnalytic(
        probe, sla_, scenario_, options_.read_fanout);
    const MixedQuorumEvaluation mc = EvaluateMixedQuorum(
        probe, sla_, model_, options_.validation.trials,
        options_.validation_seed, options_.read_fanout, options_.exec);
    const auto& tol = options_.validation;
    std::ostringstream why;
    if (std::abs(analytic.fresh_probability - mc.fresh_probability) >
        tol.consistency_tol) {
      why << "fresh probability " << analytic.fresh_probability << " vs mc "
          << mc.fresh_probability;
    } else if (std::abs(analytic.read_p99_ms - mc.read_p99_ms) >
               tol.latency_rel_tol * mc.read_p99_ms + tol.latency_abs_tol_ms) {
      why << "read p99 " << analytic.read_p99_ms << " vs mc " << mc.read_p99_ms
          << " ms";
    }
    if (why.tellp() != 0) {
      note_ = "auto: analytic failed the MC spot-check (" + why.str() +
              "); using Monte Carlo";
      resolved_ = PredictorBackend::kMonteCarlo;
      scenario_.reset();
      return;
    }
  }
  resolved_ = PredictorBackend::kAnalytic;
}

MixedQuorumPredictor::~MixedQuorumPredictor() = default;

MixedQuorumEvaluation MixedQuorumPredictor::Evaluate(const MixedQuorum& quorum,
                                                     uint64_t seed) const {
  if (resolved_ == PredictorBackend::kAnalytic) {
    return EvaluateMixedQuorumAnalytic(quorum, sla_, scenario_,
                                       options_.read_fanout);
  }
  return EvaluateMixedQuorum(quorum, sla_, model_, options_.trials, seed,
                             options_.read_fanout, options_.exec);
}

AdaptiveConfigController::AdaptiveConfigController(
    QuorumConfig initial, const AdaptiveControllerOptions& options)
    : current_(initial), options_(options) {
  assert(initial.IsValid());
  assert(options.trials_per_eval > 0);
  assert(options.switch_improvement_factor > 0.0 &&
         options.switch_improvement_factor <= 1.0);
}

AdaptiveConfigController::Evaluation AdaptiveConfigController::Evaluate(
    const QuorumConfig& config, const ReplicaLatencyModelPtr& model,
    uint64_t seed, const AnalyticScenarioPtr& scenario) const {
  Evaluation eval;
  if (scenario != nullptr) {
    const AnalyticWars wars(config, scenario);
    eval.t_visibility_ms =
        wars.ApproxTimeForConsistency(options_.consistency_probability);
    const double p = options_.latency_percentile / 100.0;
    eval.objective_ms =
        options_.read_weight * wars.ReadLatencyQuantile(p) +
        options_.write_weight * wars.WriteLatencyQuantile(p);
    eval.feasible = eval.t_visibility_ms <= options_.max_t_visibility_ms;
    return eval;
  }
  WarsTrialSet set =
      RunWarsTrials(config, model, options_.trials_per_eval, seed,
                    /*want_propagation=*/false, ReadFanout::kAllN,
                    options_.exec);
  const TVisibilityCurve curve(std::move(set.staleness_thresholds));
  const LatencyProfile reads(std::move(set.read_latencies));
  const LatencyProfile writes(std::move(set.write_latencies));
  eval.t_visibility_ms =
      curve.TimeForConsistency(options_.consistency_probability);
  eval.objective_ms =
      options_.read_weight * reads.Percentile(options_.latency_percentile) +
      options_.write_weight * writes.Percentile(options_.latency_percentile);
  eval.feasible = eval.t_visibility_ms <= options_.max_t_visibility_ms;
  return eval;
}

QuorumConfig AdaptiveConfigController::Update(
    const ReplicaLatencyModelPtr& model) {
  assert(model != nullptr);
  assert(model->num_replicas() == current_.n);
  ++epoch_;

  // Resolve the evaluation engine for this epoch (the model may change
  // between epochs, so kAuto re-checks every time). A null scenario means
  // Monte Carlo; the default-kMonteCarlo path below is byte-for-byte the
  // historical one, so decision streams and their digests are unchanged.
  const uint64_t base_seed = options_.seed + epoch_ * 1000003ULL;
  AnalyticScenarioPtr scenario;
  if (options_.backend != PredictorBackend::kMonteCarlo) {
    const WarsDistributions* legs = model->IidLegs();
    assert((legs != nullptr ||
            options_.backend != PredictorBackend::kAnalytic) &&
           "backend=analytic requires an IID latency model");
    if (legs != nullptr) {
      auto made = MakeAnalyticScenario(*legs, options_.grid);
      assert(made.ok() && "invalid AdaptiveControllerOptions::grid");
      if (made.ok()) scenario = std::move(made.value());
    }
    if (scenario != nullptr &&
        options_.backend == PredictorBackend::kAuto) {
      // Spot-check on the incumbent: its Monte Carlo evaluation is needed
      // anyway when the check fails, and under agreement the analytic
      // engine re-evaluates it below for a consistent candidate ranking.
      const Evaluation mc = Evaluate(current_, model, base_seed, nullptr);
      const Evaluation an = Evaluate(current_, model, base_seed, scenario);
      const auto& tol = options_.validation;
      const auto close = [&tol](double a, double m) {
        return std::abs(a - m) <= tol.latency_rel_tol * std::abs(m) +
                                      tol.latency_abs_tol_ms;
      };
      if (!close(an.objective_ms, mc.objective_ms) ||
          !close(an.t_visibility_ms, mc.t_visibility_ms)) {
        scenario.reset();
      }
    }
  }
  last_backend_ = scenario != nullptr ? PredictorBackend::kAnalytic
                                      : PredictorBackend::kMonteCarlo;

  // Evaluate the incumbent and every challenger under the current model.
  Evaluation incumbent = Evaluate(current_, model, base_seed, scenario);

  QuorumConfig best = current_;
  Evaluation best_eval = incumbent;
  uint64_t salt = 1;
  for (int r = 1; r <= current_.n; ++r) {
    for (int w = 1; w <= current_.n; ++w) {
      const QuorumConfig candidate{current_.n, r, w};
      if (candidate == current_) continue;
      const Evaluation eval =
          Evaluate(candidate, model, base_seed + salt++, scenario);
      const bool better =
          (eval.feasible && !best_eval.feasible) ||
          (eval.feasible == best_eval.feasible &&
           eval.objective_ms < best_eval.objective_ms);
      if (better) {
        best = candidate;
        best_eval = eval;
      }
    }
  }

  // Hysteresis: keep a feasible incumbent unless the challenger is a clear
  // win; always leave an infeasible incumbent for the best feasible option.
  bool switch_now = false;
  if (!incumbent.feasible && best_eval.feasible) {
    switch_now = true;
  } else if (best_eval.feasible == incumbent.feasible &&
             best_eval.objective_ms <
                 options_.switch_improvement_factor *
                     incumbent.objective_ms) {
    switch_now = true;
  }

  Decision decision;
  decision.switched = switch_now && !(best == current_);
  if (switch_now) current_ = best;
  decision.chosen = current_;
  const Evaluation& chosen_eval = switch_now ? best_eval : incumbent;
  decision.objective_ms = chosen_eval.objective_ms;
  decision.t_visibility_ms = chosen_eval.t_visibility_ms;
  decision.feasible = chosen_eval.feasible;
  history_.push_back(decision);
  return current_;
}

}  // namespace pbs
