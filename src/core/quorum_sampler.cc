#include "core/quorum_sampler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pbs {
namespace {

/// Chunk-local quorum drawer: its own RNG sub-stream plus a persistent
/// permutation array for O(size) partial Fisher-Yates draws (the array stays
/// a permutation of [0, n) across draws, so uniformity is preserved without
/// re-initializing).
class SubsetDrawer {
 public:
  SubsetDrawer(int n, Rng rng) : n_(n), rng_(rng), perm_(n) {
    std::iota(perm_.begin(), perm_.end(), 0);
  }

  /// After the call, perm()[0..size) is a uniformly random size-subset.
  void Draw(int size) {
    for (int i = 0; i < size; ++i) {
      const int j = i + static_cast<int>(rng_.NextBounded(
                            static_cast<uint64_t>(n_ - i)));
      std::swap(perm_[i], perm_[j]);
    }
  }

  const std::vector<int>& perm() const { return perm_; }

 private:
  int n_;
  Rng rng_;
  std::vector<int> perm_;
};

}  // namespace

QuorumSampler::QuorumSampler(const QuorumConfig& config, uint64_t seed)
    : config_(config), rng_(seed), scratch_(config.n) {
  assert(config.IsValid());
  std::iota(scratch_.begin(), scratch_.end(), 0);
}

std::vector<Rng> QuorumSampler::ChunkStreams(int trials,
                                             const PbsExecutionOptions& exec) {
  return MakeJumpStreams(rng_.Split(), NumChunks(trials, exec));
}

std::vector<int> QuorumSampler::SampleSubset(int size) {
  assert(size >= 0 && size <= config_.n);
  // Partial Fisher-Yates over the persistent identity array.
  for (int i = 0; i < size; ++i) {
    const int j =
        i + static_cast<int>(rng_.NextBounded(
                static_cast<uint64_t>(config_.n - i)));
    std::swap(scratch_[i], scratch_[j]);
  }
  return std::vector<int>(scratch_.begin(), scratch_.begin() + size);
}

double QuorumSampler::EstimateMissProbability(int trials,
                                              const PbsExecutionOptions& exec) {
  assert(trials > 0);
  const std::vector<Rng> streams = ChunkStreams(trials, exec);
  std::vector<int64_t> chunk_misses(streams.size(), 0);
  ParallelFor(trials, exec, [&](int64_t chunk, int64_t begin, int64_t end) {
    SubsetDrawer drawer(config_.n, streams[chunk]);
    // Epoch stamps instead of a per-trial fill: replica i was written this
    // trial iff written_stamp[i] == t. Saves an O(n) clear per trial (trial
    // indices are unique within a chunk, so stale stamps can never collide).
    std::vector<int64_t> written_stamp(config_.n, begin - 1);
    int64_t misses = 0;
    for (int64_t t = begin; t < end; ++t) {
      drawer.Draw(config_.w);
      for (int i = 0; i < config_.w; ++i) {
        written_stamp[drawer.perm()[i]] = t;
      }
      drawer.Draw(config_.r);
      bool hit = false;
      for (int i = 0; i < config_.r; ++i) {
        if (written_stamp[drawer.perm()[i]] == t) {
          hit = true;
          break;
        }
      }
      if (!hit) ++misses;
    }
    chunk_misses[chunk] = misses;
  });
  const int64_t misses =
      std::accumulate(chunk_misses.begin(), chunk_misses.end(), int64_t{0});
  return static_cast<double>(misses) / static_cast<double>(trials);
}

double QuorumSampler::EstimateKStaleness(int k, int trials,
                                         const PbsExecutionOptions& exec) {
  assert(k >= 1);
  assert(trials > 0);
  const std::vector<Rng> streams = ChunkStreams(trials, exec);
  std::vector<int64_t> chunk_misses(streams.size(), 0);
  ParallelFor(trials, exec, [&](int64_t chunk, int64_t begin, int64_t end) {
    SubsetDrawer drawer(config_.n, streams[chunk]);
    // Replica i holds one of this trial's k versions iff its stamp equals
    // the trial index (epoch stamping; no per-trial clear). The hit test
    // only needs "received any of the last k versions", so the stamp alone
    // suffices.
    std::vector<int64_t> written_stamp(config_.n, begin - 1);
    int64_t misses = 0;
    for (int64_t t = begin; t < end; ++t) {
      for (int v = 1; v <= k; ++v) {
        drawer.Draw(config_.w);
        for (int i = 0; i < config_.w; ++i) {
          written_stamp[drawer.perm()[i]] = t;
        }
      }
      drawer.Draw(config_.r);
      bool hit = false;
      for (int i = 0; i < config_.r; ++i) {
        if (written_stamp[drawer.perm()[i]] == t) {
          hit = true;
          break;
        }
      }
      if (!hit) ++misses;
    }
    chunk_misses[chunk] = misses;
  });
  const int64_t misses =
      std::accumulate(chunk_misses.begin(), chunk_misses.end(), int64_t{0});
  return static_cast<double>(misses) / static_cast<double>(trials);
}

std::vector<int64_t> QuorumSampler::StalenessHistogram(
    int versions, int reads, WritePlacement placement,
    const PbsExecutionOptions& exec) {
  assert(versions >= 1);
  assert(reads >= 1);
  const std::vector<Rng> streams = ChunkStreams(reads, exec);
  std::vector<std::vector<int64_t>> chunk_histograms(
      streams.size(), std::vector<int64_t>(versions, 0));
  ParallelFor(reads, exec, [&](int64_t chunk, int64_t begin, int64_t end) {
    SubsetDrawer drawer(config_.n, streams[chunk]);
    // replica_version[i] is valid only when version_stamp[i] == read (epoch
    // stamping replaces the per-trial clear; a stale entry reads as "never
    // written", i.e. version 0).
    std::vector<int> replica_version(config_.n, 0);
    std::vector<int64_t> version_stamp(config_.n, begin - 1);
    std::vector<int64_t>& histogram = chunk_histograms[chunk];
    for (int64_t read = begin; read < end; ++read) {
      for (int v = 1; v <= versions; ++v) {
        switch (placement) {
          case WritePlacement::kUniformRandom:
            drawer.Draw(config_.w);
            for (int i = 0; i < config_.w; ++i) {
              const int x = drawer.perm()[i];
              replica_version[x] = v;
              version_stamp[x] = read;
            }
            break;
          case WritePlacement::kRoundRobin: {
            // Single-writer k-quorum scheduling: rotate the write set so
            // every replica is refreshed at least every ceil(N/W) writes.
            const int start = ((v - 1) * config_.w) % config_.n;
            for (int i = 0; i < config_.w; ++i) {
              const int x = (start + i) % config_.n;
              replica_version[x] = v;
              version_stamp[x] = read;
            }
            break;
          }
        }
      }

      // One read against this history; staleness = versions - max observed.
      drawer.Draw(config_.r);
      int best = 0;
      for (int i = 0; i < config_.r; ++i) {
        const int x = drawer.perm()[i];
        if (version_stamp[x] == read) best = std::max(best, replica_version[x]);
      }
      // A replica that never received any write reports version 0; clamp the
      // staleness into the histogram's last bucket.
      const int staleness = std::min(versions - best, versions - 1);
      ++histogram[staleness];
    }
  });
  // Merge in chunk order (integer sums, so any order gives the same result;
  // chunk order keeps the invariant obvious).
  std::vector<int64_t> histogram(versions, 0);
  for (const auto& partial : chunk_histograms) {
    for (int d = 0; d < versions; ++d) histogram[d] += partial[d];
  }
  return histogram;
}

}  // namespace pbs
