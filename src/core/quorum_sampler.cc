#include "core/quorum_sampler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pbs {

QuorumSampler::QuorumSampler(const QuorumConfig& config, uint64_t seed)
    : config_(config), rng_(seed), scratch_(config.n) {
  assert(config.IsValid());
  std::iota(scratch_.begin(), scratch_.end(), 0);
}

std::vector<int> QuorumSampler::SampleSubset(int size) {
  assert(size >= 0 && size <= config_.n);
  // Partial Fisher-Yates over the persistent identity array.
  for (int i = 0; i < size; ++i) {
    const int j =
        i + static_cast<int>(rng_.NextBounded(
                static_cast<uint64_t>(config_.n - i)));
    std::swap(scratch_[i], scratch_[j]);
  }
  return std::vector<int>(scratch_.begin(), scratch_.begin() + size);
}

double QuorumSampler::EstimateMissProbability(int trials) {
  assert(trials > 0);
  int64_t misses = 0;
  std::vector<bool> written(config_.n);
  for (int t = 0; t < trials; ++t) {
    std::fill(written.begin(), written.end(), false);
    for (int idx : SampleSubset(config_.w)) written[idx] = true;
    bool hit = false;
    for (int idx : SampleSubset(config_.r)) {
      if (written[idx]) {
        hit = true;
        break;
      }
    }
    if (!hit) ++misses;
  }
  return static_cast<double>(misses) / static_cast<double>(trials);
}

double QuorumSampler::EstimateKStaleness(int k, int trials) {
  assert(k >= 1);
  assert(trials > 0);
  int64_t misses = 0;
  // newest_version[i] = highest of the last k versions replica i received,
  // or 0 if none.
  std::vector<int> newest_version(config_.n);
  for (int t = 0; t < trials; ++t) {
    std::fill(newest_version.begin(), newest_version.end(), 0);
    for (int v = 1; v <= k; ++v) {
      for (int idx : SampleSubset(config_.w)) newest_version[idx] = v;
    }
    bool hit = false;
    for (int idx : SampleSubset(config_.r)) {
      if (newest_version[idx] > 0) {
        hit = true;
        break;
      }
    }
    if (!hit) ++misses;
  }
  return static_cast<double>(misses) / static_cast<double>(trials);
}

std::vector<int64_t> QuorumSampler::StalenessHistogram(
    int versions, int reads, WritePlacement placement) {
  assert(versions >= 1);
  assert(reads >= 1);
  std::vector<int64_t> histogram(versions, 0);
  std::vector<int> replica_version(config_.n);

  for (int read = 0; read < reads; ++read) {
    // Fresh write history per trial (see header).
    std::fill(replica_version.begin(), replica_version.end(), 0);
    for (int v = 1; v <= versions; ++v) {
      switch (placement) {
        case WritePlacement::kUniformRandom:
          for (int idx : SampleSubset(config_.w)) replica_version[idx] = v;
          break;
        case WritePlacement::kRoundRobin: {
          // Single-writer k-quorum scheduling: rotate the write set so every
          // replica is refreshed at least every ceil(N/W) writes.
          const int start = ((v - 1) * config_.w) % config_.n;
          for (int i = 0; i < config_.w; ++i) {
            replica_version[(start + i) % config_.n] = v;
          }
          break;
        }
      }
    }

    // One read against this history; staleness = versions - max observed.
    int best = 0;
    for (int idx : SampleSubset(config_.r)) {
      best = std::max(best, replica_version[idx]);
    }
    // A replica that never received any write reports version 0; clamp the
    // staleness into the histogram's last bucket.
    const int staleness = std::min(versions - best, versions - 1);
    ++histogram[staleness];
  }
  return histogram;
}

}  // namespace pbs
