#include "core/sla.h"

#include <algorithm>
#include <cassert>

#include "core/latency.h"
#include "core/tvisibility.h"

namespace pbs {

SlaOptimizer::SlaOptimizer(ModelFactory factory, int trials_per_config,
                           uint64_t seed, const PbsExecutionOptions& exec)
    : factory_(std::move(factory)), trials_per_config_(trials_per_config),
      seed_(seed), exec_(exec) {
  assert(factory_ != nullptr);
  assert(trials_per_config_ > 0);
}

std::vector<SlaCandidate> SlaOptimizer::EnumerateAll(
    const SlaConstraints& constraints, const SlaObjective& objective) const {
  assert(constraints.min_n >= 1);
  assert(constraints.max_n >= constraints.min_n);
  assert(constraints.consistency_probability > 0.0 &&
         constraints.consistency_probability <= 1.0);

  std::vector<SlaCandidate> candidates;
  for (int n = constraints.min_n; n <= constraints.max_n; ++n) {
    const ReplicaLatencyModelPtr model = factory_(n);
    assert(model->num_replicas() == n);
    for (int r = 1; r <= n; ++r) {
      for (int w = std::max(1, constraints.min_write_quorum); w <= n; ++w) {
        const QuorumConfig config{n, r, w};
        // One trial set answers both the staleness and latency questions.
        WarsTrialSet set =
            RunWarsTrials(config, model, trials_per_config_, seed_,
                          /*want_propagation=*/false, ReadFanout::kAllN,
                          exec_);
        SlaCandidate candidate;
        candidate.config = config;
        const TVisibilityCurve curve(std::move(set.staleness_thresholds));
        candidate.t_visibility_ms =
            curve.TimeForConsistency(constraints.consistency_probability);
        const LatencyProfile reads(std::move(set.read_latencies));
        const LatencyProfile writes(std::move(set.write_latencies));
        candidate.read_latency_ms =
            reads.Percentile(objective.latency_percentile);
        candidate.write_latency_ms =
            writes.Percentile(objective.latency_percentile);
        candidate.objective =
            objective.read_weight * candidate.read_latency_ms +
            objective.write_weight * candidate.write_latency_ms;
        candidate.feasible =
            candidate.t_visibility_ms <= constraints.max_t_visibility_ms;
        candidates.push_back(candidate);
      }
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const SlaCandidate& a, const SlaCandidate& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     return a.objective < b.objective;
                   });
  return candidates;
}

StatusOr<SlaCandidate> SlaOptimizer::Optimize(
    const SlaConstraints& constraints, const SlaObjective& objective) const {
  const auto candidates = EnumerateAll(constraints, objective);
  if (candidates.empty() || !candidates.front().feasible) {
    return Status::NotFound(
        "no configuration satisfies the staleness SLA within the search box");
  }
  return candidates.front();
}

}  // namespace pbs
