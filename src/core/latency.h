#ifndef PBS_CORE_LATENCY_H_
#define PBS_CORE_LATENCY_H_

#include <cstdint>
#include <vector>

#include "core/wars.h"

namespace pbs {

/// A sorted sample of operation latencies with percentile accessors; the
/// representation behind Figure 5 (latency CDFs) and the Lr/Lw columns of
/// Table 4.
class LatencyProfile {
 public:
  explicit LatencyProfile(std::vector<double> samples);

  /// `pct` in [0, 100], e.g. Percentile(99.9).
  double Percentile(double pct) const;

  /// P(latency <= x) — one point of the operation-latency CDF.
  double CdfAt(double x) const;

  double Mean() const { return mean_; }
  double Median() const { return Percentile(50.0); }
  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_;
};

/// Read/write operation latency profiles extracted from one WARS trial set.
struct OperationLatencies {
  LatencyProfile reads;
  LatencyProfile writes;
};

OperationLatencies MakeOperationLatencies(WarsTrialSet set);

/// Convenience: run `trials` WARS trials and return the latency profiles.
/// Parallel over `exec.threads` workers with thread-count-independent
/// results (see RunWarsTrials).
OperationLatencies EstimateLatencies(const QuorumConfig& config,
                                     const ReplicaLatencyModelPtr& model,
                                     int trials, uint64_t seed,
                                     const PbsExecutionOptions& exec = {});

}  // namespace pbs

#endif  // PBS_CORE_LATENCY_H_
