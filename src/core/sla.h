#ifndef PBS_CORE_SLA_H_
#define PBS_CORE_SLA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/quorum_config.h"
#include "core/wars.h"
#include "util/status.h"

namespace pbs {

/// Constraints for the Section 6 "Latency/Staleness SLA" optimization:
/// choose (N, R, W) minimizing operation latency subject to a staleness
/// bound and a durability floor.
struct SlaConstraints {
  /// Configurations with n in [min_n, max_n] are considered (the paper notes
  /// the search space is only O(N^2) per N).
  int min_n = 1;
  int max_n = 5;

  /// Durability/availability floor: at least this many replicas must
  /// acknowledge every write (operators "specify a minimum replication
  /// factor for durability").
  int min_write_quorum = 1;

  /// The staleness SLA: with probability `consistency_probability`, reads
  /// must be consistent within `max_t_visibility_ms` of a write commit.
  double consistency_probability = 0.999;
  double max_t_visibility_ms = 10.0;
};

/// Objective: minimize a weighted combination of read and write latency at
/// the given percentile (weights typically reflect the workload's op mix).
struct SlaObjective {
  double latency_percentile = 99.9;
  double read_weight = 0.5;
  double write_weight = 0.5;
};

/// One evaluated configuration.
struct SlaCandidate {
  QuorumConfig config;
  double t_visibility_ms = 0.0;   // t at the target consistency probability
  double read_latency_ms = 0.0;   // at the objective percentile
  double write_latency_ms = 0.0;  // at the objective percentile
  double objective = 0.0;
  bool feasible = false;
};

/// Enumerates and scores quorum configurations against an SLA via WARS
/// Monte Carlo. The caller provides a latency-model factory because the
/// model depends on N (e.g. MakeIidModel(LnkdDisk(), n)).
class SlaOptimizer {
 public:
  using ModelFactory = std::function<ReplicaLatencyModelPtr(int n)>;

  SlaOptimizer(ModelFactory factory, int trials_per_config, uint64_t seed,
               const PbsExecutionOptions& exec = {});

  /// Scores every (n, r, w) in the constraint box, sorted by objective
  /// (feasible first).
  std::vector<SlaCandidate> EnumerateAll(const SlaConstraints& constraints,
                                         const SlaObjective& objective) const;

  /// Best feasible configuration, or NotFound if the SLA is unsatisfiable
  /// within the box.
  StatusOr<SlaCandidate> Optimize(const SlaConstraints& constraints,
                                  const SlaObjective& objective) const;

 private:
  ModelFactory factory_;
  int trials_per_config_;
  uint64_t seed_;
  PbsExecutionOptions exec_;
};

}  // namespace pbs

#endif  // PBS_CORE_SLA_H_
