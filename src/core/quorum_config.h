#ifndef PBS_CORE_QUORUM_CONFIG_H_
#define PBS_CORE_QUORUM_CONFIG_H_

#include <string>

#include "util/status.h"

namespace pbs {

/// A Dynamo-style replication configuration: N replicas per key, a write is
/// acknowledged after W replica responses, a read returns after R replica
/// responses (Section 2.2 of the paper).
struct QuorumConfig {
  int n = 3;
  int r = 1;
  int w = 1;

  /// 1 <= R <= N and 1 <= W <= N.
  bool IsValid() const {
    return n >= 1 && r >= 1 && r <= n && w >= 1 && w <= n;
  }

  /// Strict quorum: read and write quorums always intersect (R + W > N), so
  /// reads are guaranteed to observe the latest committed write under normal
  /// operation.
  bool IsStrict() const { return r + w > n; }

  /// Partial (non-strict) quorum: R + W <= N; reads may miss the latest
  /// write — the regime PBS quantifies.
  bool IsPartial() const { return !IsStrict(); }

  /// Strict majority of writes (W > N/2), the paper's condition for
  /// consistency under concurrent writes.
  bool HasMajorityWrites() const { return 2 * w > n; }

  std::string ToString() const;
};

/// Validates the configuration, returning an explanatory error if invalid.
Status ValidateQuorumConfig(const QuorumConfig& config);

bool operator==(const QuorumConfig& a, const QuorumConfig& b);

}  // namespace pbs

#endif  // PBS_CORE_QUORUM_CONFIG_H_
