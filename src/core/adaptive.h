#ifndef PBS_CORE_ADAPTIVE_H_
#define PBS_CORE_ADAPTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/quorum_config.h"
#include "core/wars.h"
#include "util/status.h"

namespace pbs {

/// A declared consistency/latency SLA in the PCAP style (Rahman et al.,
/// arXiv:1509.02464): "at least `fresh_probability` of reads return data no
/// staler than `staleness_bound_ms`, at read p99 latency <=
/// `read_p99_ms`". The staleness clause is the paper's (t, p)-visibility
/// target; the latency clause is what keeps the controller from buying
/// freshness with unbounded quorum widening.
struct SlaTarget {
  double fresh_probability = 0.0;  // 0 == SLA disabled
  double staleness_bound_ms = 0.0;
  double read_p99_ms = 0.0;

  bool enabled() const { return fresh_probability > 0.0; }
  Status Validate() const;

  /// Parses the CLI/SLA wire form "p=0.999,t=10,p99<=15" (three
  /// comma-separated clauses, any order, no whitespace): p = fresh
  /// probability in (0, 1), t = staleness bound in ms (>= 0), p99<= = read
  /// p99 budget in ms (> 0).
  static StatusOr<SlaTarget> Parse(const std::string& text);

  friend bool operator==(const SlaTarget&, const SlaTarget&) = default;
};

/// McKenzie-style continuous partial quorum (arXiv:1507.03162): each read
/// independently uses R = `r_lo` with probability `mix`, else R = `r_hi`.
/// Varying `mix` in [0, 1] sweeps the consistency/latency tradeoff
/// continuously between the two discrete lattice points, which the plain
/// (R, W) grid cannot do. `mix` == 0 (or r_lo == r_hi) degenerates to the
/// fixed quorum (n, r_hi, w).
struct MixedQuorum {
  int n = 3;
  int r_lo = 1;
  int r_hi = 2;
  int w = 2;
  double mix = 0.0;  // P(read uses r_lo)

  bool IsValid() const {
    return n >= 1 && w >= 1 && w <= n && r_lo >= 1 && r_hi >= r_lo &&
           r_hi <= n && mix >= 0.0 && mix <= 1.0;
  }
  bool mixing() const { return mix > 0.0 && mix < 1.0 && r_lo != r_hi; }
  friend bool operator==(const MixedQuorum&, const MixedQuorum&) = default;
};

/// Predicted SLA attainment of a mixed quorum under a latency model.
struct MixedQuorumEvaluation {
  double fresh_probability = 0.0;  // P(staleness threshold <= SLA bound)
  double read_p99_ms = 0.0;
  double write_p99_ms = 0.0;
  bool feasible = false;  // both SLA clauses predicted to hold
};

/// Quantile of a two-component mixture from the components' sorted sample
/// arrays: F(x) = weight_lo * F_lo(x) + weight_hi * F_hi(x), returns the
/// smallest sample value with F >= q. Weights must be >= 0 and sum to ~1;
/// an empty component is treated as weight 0. NaN when both are empty.
double MixtureQuantileSorted(const std::vector<double>& lo_sorted,
                             double weight_lo,
                             const std::vector<double>& hi_sorted,
                             double weight_hi, double q);

/// WARS prediction for a mixed quorum against an SLA: runs one trial batch
/// per component quorum (r_lo and r_hi arms share `seed`-derived streams
/// deterministically) and combines them by mixture weight — freshness as
/// mix * P_lo + (1 - mix) * P_hi, latency quantiles through
/// MixtureQuantileSorted. Deterministic given (seed, exec.chunk_size) at
/// any thread count, like RunWarsTrials itself.
MixedQuorumEvaluation EvaluateMixedQuorum(const MixedQuorum& quorum,
                                          const SlaTarget& sla,
                                          const ReplicaLatencyModelPtr& model,
                                          int trials, uint64_t seed,
                                          ReadFanout read_fanout,
                                          const PbsExecutionOptions& exec = {});

/// Section 6 "Variable configurations": periodically re-pick R and W (N is
/// fixed by durability/placement) as the environment's latency
/// distributions drift, keeping a staleness SLA while minimizing latency.
struct AdaptiveControllerOptions {
  /// The SLA: reads consistent within `max_t_visibility_ms` of commit with
  /// probability `consistency_probability`.
  double consistency_probability = 0.999;
  double max_t_visibility_ms = 10.0;

  /// Objective: weighted read/write latency at this percentile.
  double latency_percentile = 99.9;
  double read_weight = 0.5;
  double write_weight = 0.5;

  /// Hysteresis: only switch away from the current (still feasible)
  /// configuration when the challenger's objective is below
  /// `switch_improvement_factor` times the current one. Prevents flapping
  /// between near-equivalent configs on Monte Carlo noise.
  double switch_improvement_factor = 0.9;

  /// Monte Carlo budget per candidate per Update() call.
  int trials_per_eval = 20000;

  uint64_t seed = 1;

  /// Thread count and chunking for each candidate evaluation; results do
  /// not depend on the thread count.
  PbsExecutionOptions exec;
};

/// Online controller. Feed it the latest latency model (measured online or
/// assumed) each control epoch; it returns the configuration to run with.
class AdaptiveConfigController {
 public:
  /// One evaluated control decision (also kept in history()).
  struct Decision {
    QuorumConfig chosen;
    double objective_ms = 0.0;
    double t_visibility_ms = 0.0;
    bool feasible = false;  // chosen config meets the SLA
    bool switched = false;  // differs from the previous epoch's config
  };

  AdaptiveConfigController(QuorumConfig initial,
                           const AdaptiveControllerOptions& options);

  /// Re-evaluates all (R, W) pairs for the fixed N under `model` and
  /// returns the recommended configuration. The current configuration is
  /// retained unless it became infeasible or a challenger beats it by the
  /// hysteresis margin.
  QuorumConfig Update(const ReplicaLatencyModelPtr& model);

  const QuorumConfig& current() const { return current_; }
  const std::vector<Decision>& history() const { return history_; }

 private:
  struct Evaluation {
    double objective_ms = 0.0;
    double t_visibility_ms = 0.0;
    bool feasible = false;
  };
  Evaluation Evaluate(const QuorumConfig& config,
                      const ReplicaLatencyModelPtr& model, uint64_t seed) const;

  QuorumConfig current_;
  AdaptiveControllerOptions options_;
  uint64_t epoch_ = 0;
  std::vector<Decision> history_;
};

}  // namespace pbs

#endif  // PBS_CORE_ADAPTIVE_H_
