#ifndef PBS_CORE_ADAPTIVE_H_
#define PBS_CORE_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "core/quorum_config.h"
#include "core/wars.h"

namespace pbs {

/// Section 6 "Variable configurations": periodically re-pick R and W (N is
/// fixed by durability/placement) as the environment's latency
/// distributions drift, keeping a staleness SLA while minimizing latency.
struct AdaptiveControllerOptions {
  /// The SLA: reads consistent within `max_t_visibility_ms` of commit with
  /// probability `consistency_probability`.
  double consistency_probability = 0.999;
  double max_t_visibility_ms = 10.0;

  /// Objective: weighted read/write latency at this percentile.
  double latency_percentile = 99.9;
  double read_weight = 0.5;
  double write_weight = 0.5;

  /// Hysteresis: only switch away from the current (still feasible)
  /// configuration when the challenger's objective is below
  /// `switch_improvement_factor` times the current one. Prevents flapping
  /// between near-equivalent configs on Monte Carlo noise.
  double switch_improvement_factor = 0.9;

  /// Monte Carlo budget per candidate per Update() call.
  int trials_per_eval = 20000;

  uint64_t seed = 1;

  /// Thread count and chunking for each candidate evaluation; results do
  /// not depend on the thread count.
  PbsExecutionOptions exec;
};

/// Online controller. Feed it the latest latency model (measured online or
/// assumed) each control epoch; it returns the configuration to run with.
class AdaptiveConfigController {
 public:
  /// One evaluated control decision (also kept in history()).
  struct Decision {
    QuorumConfig chosen;
    double objective_ms = 0.0;
    double t_visibility_ms = 0.0;
    bool feasible = false;  // chosen config meets the SLA
    bool switched = false;  // differs from the previous epoch's config
  };

  AdaptiveConfigController(QuorumConfig initial,
                           const AdaptiveControllerOptions& options);

  /// Re-evaluates all (R, W) pairs for the fixed N under `model` and
  /// returns the recommended configuration. The current configuration is
  /// retained unless it became infeasible or a challenger beats it by the
  /// hysteresis margin.
  QuorumConfig Update(const ReplicaLatencyModelPtr& model);

  const QuorumConfig& current() const { return current_; }
  const std::vector<Decision>& history() const { return history_; }

 private:
  struct Evaluation {
    double objective_ms = 0.0;
    double t_visibility_ms = 0.0;
    bool feasible = false;
  };
  Evaluation Evaluate(const QuorumConfig& config,
                      const ReplicaLatencyModelPtr& model, uint64_t seed) const;

  QuorumConfig current_;
  AdaptiveControllerOptions options_;
  uint64_t epoch_ = 0;
  std::vector<Decision> history_;
};

}  // namespace pbs

#endif  // PBS_CORE_ADAPTIVE_H_
