#ifndef PBS_CORE_ADAPTIVE_H_
#define PBS_CORE_ADAPTIVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/quorum_config.h"
#include "core/wars.h"
#include "util/status.h"

namespace pbs {

class AnalyticScenario;  // core/analytic.h
using AnalyticScenarioPtr = std::shared_ptr<const AnalyticScenario>;

/// A declared consistency/latency SLA in the PCAP style (Rahman et al.,
/// arXiv:1509.02464): "at least `fresh_probability` of reads return data no
/// staler than `staleness_bound_ms`, at read p99 latency <=
/// `read_p99_ms`". The staleness clause is the paper's (t, p)-visibility
/// target; the latency clause is what keeps the controller from buying
/// freshness with unbounded quorum widening.
struct SlaTarget {
  double fresh_probability = 0.0;  // 0 == SLA disabled
  double staleness_bound_ms = 0.0;
  double read_p99_ms = 0.0;

  bool enabled() const { return fresh_probability > 0.0; }
  Status Validate() const;

  /// Parses the CLI/SLA wire form "p=0.999,t=10,p99<=15" (three
  /// comma-separated clauses, any order, no whitespace): p = fresh
  /// probability in (0, 1), t = staleness bound in ms (>= 0), p99<= = read
  /// p99 budget in ms (> 0).
  static StatusOr<SlaTarget> Parse(const std::string& text);

  friend bool operator==(const SlaTarget&, const SlaTarget&) = default;
};

/// McKenzie-style continuous partial quorum (arXiv:1507.03162): each read
/// independently uses R = `r_lo` with probability `mix`, else R = `r_hi`.
/// Varying `mix` in [0, 1] sweeps the consistency/latency tradeoff
/// continuously between the two discrete lattice points, which the plain
/// (R, W) grid cannot do. `mix` == 0 (or r_lo == r_hi) degenerates to the
/// fixed quorum (n, r_hi, w).
struct MixedQuorum {
  int n = 3;
  int r_lo = 1;
  int r_hi = 2;
  int w = 2;
  double mix = 0.0;  // P(read uses r_lo)

  bool IsValid() const {
    return n >= 1 && w >= 1 && w <= n && r_lo >= 1 && r_hi >= r_lo &&
           r_hi <= n && mix >= 0.0 && mix <= 1.0;
  }
  bool mixing() const { return mix > 0.0 && mix < 1.0 && r_lo != r_hi; }
  friend bool operator==(const MixedQuorum&, const MixedQuorum&) = default;
};

/// Predicted SLA attainment of a mixed quorum under a latency model.
struct MixedQuorumEvaluation {
  double fresh_probability = 0.0;  // P(staleness threshold <= SLA bound)
  double read_p99_ms = 0.0;
  double write_p99_ms = 0.0;
  bool feasible = false;  // both SLA clauses predicted to hold
};

/// Quantile of a two-component mixture from the components' sorted sample
/// arrays: F(x) = weight_lo * F_lo(x) + weight_hi * F_hi(x), returns the
/// smallest sample value with F >= q. Weights must be >= 0 and sum to ~1;
/// an empty component is treated as weight 0. NaN when both are empty.
double MixtureQuantileSorted(const std::vector<double>& lo_sorted,
                             double weight_lo,
                             const std::vector<double>& hi_sorted,
                             double weight_hi, double q);

/// WARS prediction for a mixed quorum against an SLA: runs one trial batch
/// per component quorum (r_lo and r_hi arms share `seed`-derived streams
/// deterministically) and combines them by mixture weight — freshness as
/// mix * P_lo + (1 - mix) * P_hi, latency quantiles through
/// MixtureQuantileSorted. Deterministic given (seed, exec.chunk_size) at
/// any thread count, like RunWarsTrials itself.
MixedQuorumEvaluation EvaluateMixedQuorum(const MixedQuorum& quorum,
                                          const SlaTarget& sla,
                                          const ReplicaLatencyModelPtr& model,
                                          int trials, uint64_t seed,
                                          ReadFanout read_fanout,
                                          const PbsExecutionOptions& exec = {});

/// Analytic counterpart of EvaluateMixedQuorum on a pre-built scenario: the
/// r_lo / r_hi arms are exact order-statistic CDFs of the scenario's r+s
/// grid, combined by DiscretizedDistribution::Mixture with the same arm
/// weights as the Monte Carlo path; freshness comes from AnalyticWars's
/// approximate t-visibility at the SLA's staleness bound. Deterministic
/// (no RNG at all) and microseconds per call after the scenario is built —
/// this is the controller's cheap per-epoch evaluator.
MixedQuorumEvaluation EvaluateMixedQuorumAnalytic(
    const MixedQuorum& quorum, const SlaTarget& sla,
    const AnalyticScenarioPtr& scenario,
    ReadFanout read_fanout = ReadFanout::kAllN);

/// Backend-dispatched mixed-quorum evaluation: one object bound to an SLA
/// and a latency model, answering Evaluate(quorum, seed) through whichever
/// engine its options select — the Monte Carlo arms (exactly
/// EvaluateMixedQuorum), or the analytic scenario (EvaluateMixedQuorumAnalytic,
/// ignoring `seed`). kAuto resolves at construction: non-IID models fall
/// back to Monte Carlo outright; IID models keep the analytic engine only
/// when its evaluation of the `probe` quorum agrees with a small Monte
/// Carlo run within the validation tolerances. The consistency controller
/// builds one of these per control epoch.
class MixedQuorumPredictor {
 public:
  struct Options {
    PredictorBackend backend = PredictorBackend::kMonteCarlo;
    /// Monte Carlo trial budget per Evaluate (kMonteCarlo and fallback).
    int trials = 1200;
    ReadFanout read_fanout = ReadFanout::kAllN;
    PbsExecutionOptions exec;
    /// Analytic grid shape (kAnalytic / kAuto).
    AnalyticGridOptions grid{2000.0, 8000};
    /// kAuto's spot-check tolerances and budget.
    AutoValidationOptions validation;
    /// Seed of the kAuto spot-check's Monte Carlo run (independent of the
    /// per-Evaluate seeds so the guard never perturbs decision streams).
    uint64_t validation_seed = 0x5EED5EEDULL;
  };

  /// Infallible by design (the controller cannot surface a Status mid-epoch):
  /// analytic construction problems — non-IID model under kAnalytic, a bad
  /// grid — fall back to Monte Carlo and record why in note(). Debug builds
  /// assert on kAnalytic misuse.
  MixedQuorumPredictor(const SlaTarget& sla, ReplicaLatencyModelPtr model,
                       const MixedQuorum& probe, const Options& options);
  ~MixedQuorumPredictor();

  MixedQuorumEvaluation Evaluate(const MixedQuorum& quorum,
                                 uint64_t seed) const;

  /// The engine actually answering (kAuto resolved; never kAuto itself).
  PredictorBackend backend() const { return resolved_; }
  /// Why kAuto / kAnalytic resolved to Monte Carlo (empty when analytic
  /// stuck, or when Monte Carlo was asked for directly).
  const std::string& note() const { return note_; }

 private:
  SlaTarget sla_;
  ReplicaLatencyModelPtr model_;
  Options options_;
  PredictorBackend resolved_ = PredictorBackend::kMonteCarlo;
  AnalyticScenarioPtr scenario_;
  std::string note_;
};

/// Section 6 "Variable configurations": periodically re-pick R and W (N is
/// fixed by durability/placement) as the environment's latency
/// distributions drift, keeping a staleness SLA while minimizing latency.
struct AdaptiveControllerOptions {
  /// The SLA: reads consistent within `max_t_visibility_ms` of commit with
  /// probability `consistency_probability`.
  double consistency_probability = 0.999;
  double max_t_visibility_ms = 10.0;

  /// Objective: weighted read/write latency at this percentile.
  double latency_percentile = 99.9;
  double read_weight = 0.5;
  double write_weight = 0.5;

  /// Hysteresis: only switch away from the current (still feasible)
  /// configuration when the challenger's objective is below
  /// `switch_improvement_factor` times the current one. Prevents flapping
  /// between near-equivalent configs on Monte Carlo noise.
  double switch_improvement_factor = 0.9;

  /// Monte Carlo budget per candidate per Update() call.
  int trials_per_eval = 20000;

  uint64_t seed = 1;

  /// Thread count and chunking for each candidate evaluation; results do
  /// not depend on the thread count.
  PbsExecutionOptions exec;

  /// Which engine evaluates candidates (DESIGN.md §12). kMonteCarlo keeps
  /// the historical per-epoch trial runs; kAnalytic evaluates the whole
  /// (R, W) lattice off one scenario grid (O(bins log bins) to build, then
  /// O(bins * n) per candidate — orders of magnitude cheaper per epoch);
  /// kAuto spot-checks the analytic engine against the incumbent's Monte
  /// Carlo evaluation each Update and falls back when they disagree.
  PredictorBackend backend = PredictorBackend::kMonteCarlo;
  /// Analytic grid shape. Coarser than the predictor default: the
  /// controller compares candidates, so grid bias common to all of them
  /// cancels, and epochs should stay cheap.
  AnalyticGridOptions grid{2000.0, 8000};
  /// kAuto's per-Update agreement tolerances (trials is unused here — the
  /// spot-check reuses the incumbent's trials_per_eval evaluation).
  AutoValidationOptions validation;
};

/// Online controller. Feed it the latest latency model (measured online or
/// assumed) each control epoch; it returns the configuration to run with.
class AdaptiveConfigController {
 public:
  /// One evaluated control decision (also kept in history()).
  struct Decision {
    QuorumConfig chosen;
    double objective_ms = 0.0;
    double t_visibility_ms = 0.0;
    bool feasible = false;  // chosen config meets the SLA
    bool switched = false;  // differs from the previous epoch's config
  };

  AdaptiveConfigController(QuorumConfig initial,
                           const AdaptiveControllerOptions& options);

  /// Re-evaluates all (R, W) pairs for the fixed N under `model` and
  /// returns the recommended configuration. The current configuration is
  /// retained unless it became infeasible or a challenger beats it by the
  /// hysteresis margin. The options' backend picks the evaluator per call
  /// (the model may change between epochs): under kAnalytic every candidate
  /// shares one scenario grid; under kAuto the analytic engine must first
  /// agree with the incumbent's Monte Carlo evaluation within the
  /// validation tolerances, else this epoch runs on Monte Carlo.
  QuorumConfig Update(const ReplicaLatencyModelPtr& model);

  const QuorumConfig& current() const { return current_; }
  const std::vector<Decision>& history() const { return history_; }
  /// Engine used by the most recent Update (kAuto resolved per epoch).
  PredictorBackend last_backend() const { return last_backend_; }

 private:
  struct Evaluation {
    double objective_ms = 0.0;
    double t_visibility_ms = 0.0;
    bool feasible = false;
  };
  /// Monte Carlo when `scenario` is null, analytic (seed unused) otherwise.
  Evaluation Evaluate(const QuorumConfig& config,
                      const ReplicaLatencyModelPtr& model, uint64_t seed,
                      const AnalyticScenarioPtr& scenario) const;

  QuorumConfig current_;
  AdaptiveControllerOptions options_;
  uint64_t epoch_ = 0;
  std::vector<Decision> history_;
  PredictorBackend last_backend_ = PredictorBackend::kMonteCarlo;
};

}  // namespace pbs

#endif  // PBS_CORE_ADAPTIVE_H_
