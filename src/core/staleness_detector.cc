#include "core/staleness_detector.h"

#include <algorithm>

namespace pbs {

StalenessDetector::StalenessDetector(CommitOracle commit_time_of)
    : commit_time_of_(std::move(commit_time_of)) {}

StalenessVerdict StalenessDetector::Observe(
    const ReadObservation& observation) {
  ++reads_;
  int64_t newest_late = observation.returned_version;
  for (int64_t v : observation.late_response_versions) {
    newest_late = std::max(newest_late, v);
  }
  if (newest_late <= observation.returned_version) {
    ++consistent_;
    return StalenessVerdict::kConsistent;
  }
  if (!commit_time_of_) {
    ++flagged_;
    return StalenessVerdict::kFlagged;
  }
  // With the oracle: stale iff some newer version committed before the read
  // began. Scanning only the newest late version is insufficient — it may be
  // uncommitted while an intermediate one committed — so check all.
  bool newer_committed_before_read = false;
  for (int64_t v : observation.late_response_versions) {
    if (v <= observation.returned_version) continue;
    const double commit = commit_time_of_(v);
    if (commit >= 0.0 && commit <= observation.read_start_time) {
      newer_committed_before_read = true;
      break;
    }
  }
  if (newer_committed_before_read) {
    ++stale_;
    return StalenessVerdict::kStale;
  }
  ++false_positives_;
  return StalenessVerdict::kFalsePositive;
}

double StalenessDetector::EmpiricalConsistency() const {
  if (reads_ == 0) return 1.0;
  // Heuristic flags are indistinguishable from staleness without an oracle;
  // count them as potentially stale (conservative).
  return static_cast<double>(consistent_ + false_positives_) /
         static_cast<double>(reads_);
}

}  // namespace pbs
