#include "core/multikey.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/closed_form.h"

namespace pbs {

double MultiKeyFreshnessProbability(const QuorumConfig& config, int keys,
                                    int k) {
  assert(keys >= 1);
  const double fresh = KFreshnessProbability(config, k);
  return std::pow(fresh, keys);
}

int MaxKeysForFreshnessTarget(const QuorumConfig& config, double target,
                              int k) {
  assert(target > 0.0 && target < 1.0);
  const double fresh = KFreshnessProbability(config, k);
  if (fresh <= target) return -1;
  if (fresh >= 1.0) return std::numeric_limits<int>::max();
  // fresh^m >= target  <=>  m <= ln(target) / ln(fresh).
  const double m = std::log(target) / std::log(fresh);
  return static_cast<int>(std::floor(m + 1e-12));
}

TVisibilityCurve EstimateMultiKeyTVisibility(
    const QuorumConfig& config, const ReplicaLatencyModelPtr& model,
    int keys, int trials, uint64_t seed) {
  assert(keys >= 1);
  assert(trials > 0);
  WarsSimulator sim(config, model, seed);
  std::vector<double> thresholds;
  thresholds.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    double worst = 0.0;
    for (int key = 0; key < keys; ++key) {
      worst = std::max(worst, sim.RunTrial().staleness_threshold);
    }
    thresholds.push_back(worst);
  }
  return TVisibilityCurve(std::move(thresholds));
}

}  // namespace pbs
