#ifndef PBS_CORE_ANALYTIC_H_
#define PBS_CORE_ANALYTIC_H_

#include <vector>

#include "core/quorum_config.h"
#include "dist/production.h"

namespace pbs {

/// A non-negative distribution discretized onto a uniform grid over
/// [0, max_value): bin i carries the probability mass of
/// [i*step, (i+1)*step); mass beyond max_value is lumped into the last bin
/// (choose max_value well past the tail you care about). The numerical
/// backbone of the analytic WARS solver: supports convolution and order
/// statistics, which the sampling path cannot expose in closed form.
class DiscretizedDistribution {
 public:
  /// Discretizes `dist` by differencing its CDF at the bin edges.
  static DiscretizedDistribution FromDistribution(const Distribution& dist,
                                                  double max_value, int bins);

  /// Sum of two independent variables (direct O(bins^2) convolution; both
  /// inputs must share the same grid).
  static DiscretizedDistribution Convolve(const DiscretizedDistribution& a,
                                          const DiscretizedDistribution& b);

  /// k-th smallest (1-indexed) of n iid copies: CDF mixing
  /// P(X_(k) <= x) = sum_{j=k}^{n} C(n,j) F(x)^j (1-F(x))^(n-j).
  static DiscretizedDistribution OrderStatistic(
      const DiscretizedDistribution& dist, int n, int k);

  double step() const { return step_; }
  int bins() const { return static_cast<int>(pmf_.size()); }
  double mass(int i) const { return pmf_[i]; }
  /// Center of bin i (the evaluation point used by the solver).
  double value(int i) const { return (i + 0.5) * step_; }

  /// P(X <= x), linear within bins.
  double Cdf(double x) const;
  /// Inverse CDF at p (grid resolution).
  double Quantile(double p) const;
  double Mean() const;

 private:
  DiscretizedDistribution(double step, std::vector<double> pmf);

  double step_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cumulative at bin upper edges
};

/// Numerical WARS solver (the analytic counterpart of WarsSimulator).
///
/// Exact (to grid resolution) for operation latencies, because they are
/// pure order statistics of iid per-replica sums:
///   write latency = W-th smallest of N iid (w + a),
///   read latency  = R-th smallest of N iid (r + s).
///
/// Approximate for t-visibility: the paper (Section 4.1) notes the exact
/// probability couples the commit time wt with the probed replicas' own
/// write legs and with the response-order selection; this solver makes two
/// documented independence assumptions:
///   (1) the probe replica's (w, r) legs are independent of wt, and
///   (2) the first R responders behave like R iid probes given wt
///       (ignoring the selection bias toward replicas with small r + s).
/// Under those, P(stale | t) = E_wt[ q(wt + t)^R ] with
/// q(u) = P(w > u + r). The error of the approximation versus Monte Carlo
/// is quantified in bench/analytic_vs_mc (typically a few points of
/// probability at t=0 for N=3, vanishing with t and with larger N).
class AnalyticWars {
 public:
  /// `max_ms` bounds the grid (values beyond it collapse into the last
  /// bin); `bins` sets the resolution (step = max_ms / bins).
  AnalyticWars(const QuorumConfig& config, const WarsDistributions& dists,
               double max_ms, int bins);

  // Exact (grid-resolution) operation latency marginals.
  double WriteLatencyCdf(double x) const { return commit_time_.Cdf(x); }
  double WriteLatencyQuantile(double p) const {
    return commit_time_.Quantile(p);
  }
  double ReadLatencyCdf(double x) const { return read_latency_.Cdf(x); }
  double ReadLatencyQuantile(double p) const {
    return read_latency_.Quantile(p);
  }

  /// Approximate P(consistent | t) under the documented assumptions.
  double ApproxProbConsistent(double t) const;

  /// Approximate inconsistency window: smallest grid t with
  /// ApproxProbConsistent(t) >= p (scans the grid; p in (0, 1]).
  double ApproxTimeForConsistency(double p) const;

 private:
  QuorumConfig config_;
  double step_;
  DiscretizedDistribution commit_time_;   // W-th order statistic of w+a
  DiscretizedDistribution read_latency_;  // R-th order statistic of r+s
  /// q_[i] = P(w > u + r) evaluated at u = value(i) over [0, 2*max_ms).
  std::vector<double> q_;
};

}  // namespace pbs

#endif  // PBS_CORE_ANALYTIC_H_
