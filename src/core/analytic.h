#ifndef PBS_CORE_ANALYTIC_H_
#define PBS_CORE_ANALYTIC_H_

#include <memory>
#include <vector>

#include "core/backend.h"
#include "core/quorum_config.h"
#include "core/wars.h"
#include "dist/production.h"

namespace pbs {

/// A non-negative distribution discretized onto a uniform grid over
/// [0, max_value): bin i carries the probability mass of
/// [i*step, (i+1)*step); mass beyond max_value is lumped into the last bin
/// (choose max_value well past the tail you care about). The numerical
/// backbone of the analytic WARS solver: supports convolution, order
/// statistics and mixtures, which the sampling path cannot expose in closed
/// form.
class DiscretizedDistribution {
 public:
  /// Discretizes `dist` by differencing its CDF at the bin edges.
  /// `bins` >= 1 (a single-bin grid is a point mass at step/2).
  static DiscretizedDistribution FromDistribution(const Distribution& dist,
                                                  double max_value, int bins);

  /// Sum of two independent variables (both inputs must share the same
  /// grid). Bin-center masses land exactly on bin edges, so each product
  /// mass is split evenly across the two straddled bins — this keeps the
  /// mean exact (see Convolve in analytic.cc). Large grids go through an
  /// O(bins log bins) FFT; small ones use the direct O(bins^2) loop.
  static DiscretizedDistribution Convolve(const DiscretizedDistribution& a,
                                          const DiscretizedDistribution& b);

  /// k-th smallest (1-indexed) of n iid copies: CDF mixing
  /// P(X_(k) <= x) = sum_{j=k}^{n} C(n,j) F(x)^j (1-F(x))^(n-j).
  static DiscretizedDistribution OrderStatistic(
      const DiscretizedDistribution& dist, int n, int k);

  /// Exact two-component mixture on a shared grid:
  /// F(x) = weight_a * F_a(x) + weight_b * F_b(x). Weights must be >= 0
  /// and sum to ~1. This is how the analytic backend combines the r_lo /
  /// r_hi order-statistic arms of a McKenzie fractional quorum.
  static DiscretizedDistribution Mixture(const DiscretizedDistribution& a,
                                         double weight_a,
                                         const DiscretizedDistribution& b,
                                         double weight_b);

  double step() const { return step_; }
  int bins() const { return static_cast<int>(pmf_.size()); }
  double mass(int i) const { return pmf_[i]; }
  /// Center of bin i (the evaluation point used by the solver).
  double value(int i) const { return (i + 0.5) * step_; }
  /// Cumulative mass at the *upper edge* of bin i, i.e. P(X <= (i+1)*step).
  double CdfAtEdge(int i) const { return cdf_[i]; }

  /// P(X <= x), linear within bins.
  double Cdf(double x) const;
  /// Inverse CDF at p (grid resolution).
  double Quantile(double p) const;
  double Mean() const;

 private:
  DiscretizedDistribution(double step, std::vector<double> pmf);

  double step_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cumulative at bin upper edges
};

/// Tail-aware grid bound for one scenario: twice the largest per-leg
/// (1 - 1e-4) quantile. Past that point each leg carries <= 1e-4 of mass,
/// so lumping it into the last bin shifts quantiles at or below p99.9 and
/// t-visibility probabilities by well under the documented tolerances —
/// while the step (max / bins) shrinks to the scenario's actual latency
/// scale. Used by AnalyticGridOptions::auto_max (core/backend.h).
double AutoGridMaxMs(const WarsDistributions& dists);

/// The grid bound `grid` resolves to for `dists`: AutoGridMaxMs capped by
/// grid.max_ms when grid.auto_max, else grid.max_ms literally. Always at
/// least one step wide.
double ResolveGridMaxMs(const WarsDistributions& dists,
                        const AnalyticGridOptions& grid);

/// Quorum-independent grids for one latency scenario: the discretized legs,
/// the leg-sum convolutions w+a and r+s, and the staleness kernel
/// q(u) = P(w > u + r). Building these costs O(bins log bins) (FFT
/// convolutions); once built, every (R, W, fanout) evaluation on top is
/// just O(bins * n) order statistics — which is what makes the analytic
/// backend milliseconds-per-point across a design-space sweep or a control
/// epoch. Immutable after construction; share via AnalyticScenarioPtr.
class AnalyticScenario {
 public:
  AnalyticScenario(const WarsDistributions& dists, double max_ms, int bins);
  AnalyticScenario(const WarsDistributions& dists,
                   const AnalyticGridOptions& grid)
      : AnalyticScenario(dists, ResolveGridMaxMs(dists, grid), grid.bins) {}

  double step() const { return step_; }
  int bins() const { return write_ack_.bins(); }
  double max_ms() const { return step_ * bins(); }
  const std::string& name() const { return name_; }

  /// Discretized write-request leg (kept for the propagation CDF Pw).
  const DiscretizedDistribution& write_leg() const { return write_leg_; }
  /// w + a per replica: order statistics of this give commit time.
  const DiscretizedDistribution& write_ack() const { return write_ack_; }
  /// r + s per replica: order statistics of this give read latency.
  const DiscretizedDistribution& read_response() const {
    return read_response_;
  }

  /// q(u) = P(w > u + r) tabulated at u = (i + 0.5) * step over
  /// [0, 2 * max_ms); zero beyond. Index with QIndex(u).
  double q(int i) const { return q_[i]; }
  int QIndex(double u) const {
    const int i = static_cast<int>(u / step_);
    return i < static_cast<int>(q_.size()) ? i
                                           : static_cast<int>(q_.size()) - 1;
  }
  int q_size() const { return static_cast<int>(q_.size()); }

 private:
  double step_;
  std::string name_;
  DiscretizedDistribution write_leg_;
  DiscretizedDistribution write_ack_;
  DiscretizedDistribution read_response_;
  std::vector<double> q_;
};

using AnalyticScenarioPtr = std::shared_ptr<const AnalyticScenario>;

/// Builds the shared grids for `dists` (validating the grid shape).
StatusOr<AnalyticScenarioPtr> MakeAnalyticScenario(
    const WarsDistributions& dists, const AnalyticGridOptions& grid);

/// Numerical WARS solver (the analytic counterpart of WarsSimulator).
///
/// Exact (to grid resolution) for operation latencies, because they are
/// pure order statistics of iid per-replica sums:
///   write latency = W-th smallest of N iid (w + a),
///   read latency  = R-th smallest of N iid (r + s)   (kAllN fan-out), or
///                   the max of R iid (r + s)          (kQuorumOnly).
///
/// Approximate for t-visibility: the paper (Section 4.1) notes the exact
/// probability couples the commit time wt with the probed replicas' own
/// write legs and with the response-order selection. This solver keeps the
/// parts of that coupling that are free under IID legs and approximates
/// the rest:
///   P(stale | t) = ps * E_wt[ (q(wt + t) / S_wa(wt))^R ]            (*)
/// with q(u) = P(w > u + r) and S_wa(x) = P(w + a > x). The ps =
/// C(N-W, R)/C(N, R) factor (Equation 1) is exact: the W ack-ers already
/// hold the version, and response order is independent of ack status, so a
/// stale read must draw all R probes from the N-W non-ack-ers. The
/// division by S_wa conditions each probe on being a non-ack-er (also
/// exact, given the order statistic wt). What remains assumed is
/// conditional independence across the R probes and ignoring the first-R
/// selection bias toward small r + s. The residual error versus Monte
/// Carlo is quantified in bench/analytic_vs_mc (a few points of
/// probability at t = 0, vanishing with t); the kAuto backend guard
/// (core/backend.h) enforces that bar at runtime.
class AnalyticWars {
 public:
  /// Convenience: builds a private scenario. `max_ms` bounds the grid
  /// (values beyond it collapse into the last bin); `bins` sets the
  /// resolution (step = max_ms / bins).
  AnalyticWars(const QuorumConfig& config, const WarsDistributions& dists,
               double max_ms, int bins,
               ReadFanout read_fanout = ReadFanout::kAllN);

  /// Shared-scenario fast path: per-quorum cost is two order statistics,
  /// O(bins * n). This is the constructor sweeps and the controller use.
  AnalyticWars(const QuorumConfig& config, AnalyticScenarioPtr scenario,
               ReadFanout read_fanout = ReadFanout::kAllN);

  const QuorumConfig& config() const { return config_; }
  const AnalyticScenarioPtr& scenario() const { return scenario_; }

  // Exact (grid-resolution) operation latency marginals.
  double WriteLatencyCdf(double x) const { return commit_time_.Cdf(x); }
  double WriteLatencyQuantile(double p) const {
    return commit_time_.Quantile(p);
  }
  double ReadLatencyCdf(double x) const { return read_latency_.Cdf(x); }
  double ReadLatencyQuantile(double p) const {
    return read_latency_.Quantile(p);
  }
  const DiscretizedDistribution& read_latency() const { return read_latency_; }
  const DiscretizedDistribution& commit_time() const { return commit_time_; }

  /// Approximate P(consistent | t) under the documented assumptions. The
  /// per-commit-bin factors (ack-survival weights, staleness-kernel powers)
  /// are hoisted at construction (BuildStaleCurve in analytic.cc), so each
  /// query is one shifted dot product against the grid — tens of
  /// microseconds, with no per-query CDF or power evaluations.
  double ApproxProbConsistent(double t) const;

  /// Approximate inconsistency window: smallest grid t with
  /// ApproxProbConsistent(t) >= p (p in (0, 1]). The curve is monotone on
  /// the grid, so this binary-searches it — O(log bins) lookups.
  double ApproxTimeForConsistency(double p) const;

  /// Approximate write-propagation CDF over the replica count at time t
  /// after commit: pw[c] = P(at most c replicas hold the version), c in
  /// [0, N], pw[N] = 1 — the Equation 4/5 input (core/closed_form.h).
  /// Approximation: given commit time wt, each replica independently holds
  /// the version with probability Fw(wt + t). This ignores that the W
  /// ack-ers are guaranteed holders, which *underestimates* the count —
  /// but TVisibilityStalenessBound already forces P(Wr < W) = 0, and for
  /// c >= W the underestimate only inflates the staleness bound, keeping
  /// it a conservative upper bound.
  std::vector<double> ApproxPwAt(double t) const;

 private:
  void BuildStaleCurve();

  QuorumConfig config_;
  ReadFanout read_fanout_;
  AnalyticScenarioPtr scenario_;
  double step_;
  DiscretizedDistribution commit_time_;   // W-th order statistic of w+a
  DiscretizedDistribution read_latency_;  // R-of-N or R-of-R of r+s
  /// Hoisted staleness factors: stale(k*step) = sum_i h[i] * g[i+k].
  /// Empty for strict quorums (identically consistent).
  std::vector<double> stale_h_;  // ps * commit mass / S_wa^R per commit bin
  std::vector<double> stale_g_;  // q^R per kernel bin
};

}  // namespace pbs

#endif  // PBS_CORE_ANALYTIC_H_
