#ifndef PBS_CORE_QUORUM_SAMPLER_H_
#define PBS_CORE_QUORUM_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "core/quorum_config.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace pbs {

/// Monte Carlo sampler for classical *non-expanding* probabilistic quorums
/// (Section 2.1 / 3.1 of the paper): each write lands on a uniformly random
/// W-subset of the N replicas, each read probes a uniformly random R-subset,
/// and quorums never grow afterwards. Used to validate the closed forms
/// (Equations 1-3) and to run versioned-staleness experiments that have no
/// closed form (multi-writer k-quorums).
///
/// The estimators run on `exec.threads` workers (default: all hardware
/// threads). Trials are split into fixed-size chunks with one Jump()-derived
/// RNG sub-stream per chunk and the per-chunk tallies merged in chunk order,
/// so every estimate is a function of (seed, call sequence, exec.chunk_size)
/// only — never of the thread count.
class QuorumSampler {
 public:
  /// Write-placement strategies for versioned experiments.
  enum class WritePlacement {
    kUniformRandom,  // the probabilistic-quorum model
    kRoundRobin,     // single-writer k-quorum scheduling (Section 2.1):
                     // write i goes to a deterministic rotating W-subset
  };

  QuorumSampler(const QuorumConfig& config, uint64_t seed);

  /// Estimates Equation 1 (single-quorum miss probability) from `trials`
  /// independent write/read quorum pairs.
  double EstimateMissProbability(int trials,
                                 const PbsExecutionOptions& exec = {});

  /// Estimates Equation 2: probability that a read misses all of the last k
  /// independent write quorums.
  double EstimateKStaleness(int k, int trials,
                            const PbsExecutionOptions& exec = {});

  /// Versioned-staleness experiment. Each of the `reads` trials applies a
  /// fresh history of `versions` writes (placement per `placement`), where
  /// each replica retains the highest version that wrote it, then issues one
  /// read and records how many versions stale the result is (0 = freshest).
  /// Regenerating the history per read matters: against a single fixed
  /// history the tail probabilities are conditioned on one realization of
  /// the write-quorum union and do not converge to ps^k. Returns the
  /// histogram of staleness counts indexed by staleness (size = versions).
  std::vector<int64_t> StalenessHistogram(int versions, int reads,
                                          WritePlacement placement,
                                          const PbsExecutionOptions& exec = {});

  /// Draws a uniformly random `size`-subset of [0, n); exposed for reuse and
  /// testing (partial Fisher-Yates, O(size)).
  std::vector<int> SampleSubset(int size);

 private:
  /// Consumes one Split() from rng_ and fans it out into one sub-stream per
  /// chunk; the split keeps successive estimator calls independent, the
  /// jumps keep parallel chunks disjoint.
  std::vector<Rng> ChunkStreams(int trials, const PbsExecutionOptions& exec);

  QuorumConfig config_;
  Rng rng_;
  std::vector<int> scratch_;  // identity permutation reused across draws
};

}  // namespace pbs

#endif  // PBS_CORE_QUORUM_SAMPLER_H_
