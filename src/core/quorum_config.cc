#include "core/quorum_config.h"

namespace pbs {

std::string QuorumConfig::ToString() const {
  return "N=" + std::to_string(n) + " R=" + std::to_string(r) +
         " W=" + std::to_string(w);
}

Status ValidateQuorumConfig(const QuorumConfig& config) {
  if (config.n < 1) {
    return Status::InvalidArgument("replication factor N must be >= 1");
  }
  if (config.r < 1 || config.r > config.n) {
    return Status::InvalidArgument("read quorum R must be in [1, N]");
  }
  if (config.w < 1 || config.w > config.n) {
    return Status::InvalidArgument("write quorum W must be in [1, N]");
  }
  return Status::Ok();
}

bool operator==(const QuorumConfig& a, const QuorumConfig& b) {
  return a.n == b.n && a.r == b.r && a.w == b.w;
}

}  // namespace pbs
