#ifndef PBS_CORE_CLOSED_FORM_H_
#define PBS_CORE_CLOSED_FORM_H_

#include <vector>

#include "core/quorum_config.h"

namespace pbs {

// Closed-form PBS models (Section 3 of the paper). All functions assume the
// classical probabilistic-quorum setting: W (R) of N replicas are chosen
// uniformly at random per write (read), quorums do not expand, and the
// probabilities are independent across versions. For expanding partial
// quorums (Dynamo) these are conservative upper bounds on staleness.

/// Equation 1: probability that a random read quorum misses the most recent
/// write quorum entirely, ps = C(N-W, R) / C(N, R). Zero for strict quorums.
double SingleQuorumMissProbability(const QuorumConfig& config);

/// Equation 1 under McKenzie fractional read mixing (arXiv:1507.03162):
/// each read independently uses R = r_lo with probability `mix`, else
/// R = r_hi, so the per-read miss probability is
/// mix * ps(n, r_lo, w) + (1 - mix) * ps(n, r_hi, w). Degenerates to
/// Equation 1 when mix is 0/1 or r_lo == r_hi. This is how the analytic
/// backend lowers k-staleness queries for MixedQuorum arms.
double MixedQuorumMissProbability(int n, int r_lo, int r_hi, int w,
                                  double mix);

/// Equation 2: PBS k-staleness — probability that a read quorum intersects
/// none of the last k independent write quorums, psk = ps^k. The returned
/// value is the probability of *staleness beyond k versions*;
/// 1 - psk is the probability the read returns a value within the last k
/// committed versions. Requires k >= 1.
double KStalenessProbability(const QuorumConfig& config, int k);

/// 1 - psk: probability of reading one of the latest k versions.
double KFreshnessProbability(const QuorumConfig& config, int k);

/// Smallest k such that the probability of staleness beyond k versions is at
/// most `tolerance`. Returns -1 when no finite k achieves it (ps == 1).
int MinVersionsForTolerance(const QuorumConfig& config, double tolerance);

/// Equation 3: PBS monotonic reads — probability that a client's read
/// observes a version at least as new as its previous read, given the global
/// write rate `gamma_gw` and the client's read rate `gamma_cr` for the data
/// item. Equals k-staleness with the (possibly fractional) exponent
/// k = 1 + gamma_gw / gamma_cr. Set `strict` for strict monotonic reads
/// (exponent gamma_gw / gamma_cr: the client must see strictly newer data if
/// it exists).
double MonotonicReadsViolationProbability(const QuorumConfig& config,
                                          double gamma_gw, double gamma_cr,
                                          bool strict = false);

/// Section 3.3: lower bound on the load of an epsilon-intersecting quorum
/// system, (1 - eps)^... per Malkhi et al.: load >= (1 - sqrt(eps)) /
/// sqrt(N). Exposed for the load-improvement analysis.
double EpsilonIntersectingLoadLowerBound(int n, double epsilon);

/// Section 3.3: lower bound on load when tolerating k versions of staleness
/// with overall inconsistency probability p: each of the k constituent
/// epsilon-intersecting systems runs at eps = p^(1/k), giving
/// load >= (1 - p^(1/(2k))) / sqrt(N), which decreases toward 0 as k grows
/// (staleness tolerance lowers load / raises capacity).
double KStalenessLoadLowerBound(int n, double p, double k);

/// A write-propagation CDF: Pw(c, t) = P(at least c replicas have received
/// the version t seconds after commit), for c in [0, N]. Callers provide a
/// callable; `EmpiricalPw` in core/tvisibility.h estimates one from WARS.
using WritePropagationCdf = std::vector<double> (*)(double t);

/// Equation 4: upper bound on the probability a read started t seconds after
/// commit misses the write, given `pw_at_t[c]` = P(exactly <= c replicas
/// have the version at time t) expressed as the CDF over the replica count:
/// pw_at_t[c] = P(Wr <= c). pw_at_t must have size N+1 with pw_at_t[N] = 1.
/// At t = 0 the write quorum W is guaranteed, so P(Wr < W) = 0.
double TVisibilityStalenessBound(const QuorumConfig& config,
                                 const std::vector<double>& pw_at_t);

/// Equation 5: <k, t>-staleness upper bound — the Equation 4 bound
/// exponentiated by k (the paper's conservative rule of thumb, assuming the
/// pathological case where the last k writes committed simultaneously).
double KTStalenessBound(const QuorumConfig& config,
                        const std::vector<double>& pw_at_t, int k);

}  // namespace pbs

#endif  // PBS_CORE_CLOSED_FORM_H_
