#ifndef PBS_CORE_MULTIKEY_H_
#define PBS_CORE_MULTIKEY_H_

#include <cstdint>

#include "core/quorum_config.h"
#include "core/tvisibility.h"
#include "core/wars.h"

namespace pbs {

// Section 6 "Multi-key operations": for read-only multi-key operations over
// randomly distributed keys, each key's quorum system is independent, so
// staleness probabilities multiply. These helpers quantify the freshness of
// an m-key read-only transaction.

/// Probability that ALL `keys` values returned by a multi-key read are
/// within the newest k versions of their respective keys:
/// (1 - ps^k)^keys (closed form, non-expanding quorums).
double MultiKeyFreshnessProbability(const QuorumConfig& config, int keys,
                                    int k = 1);

/// Smallest number of keys at which the transaction's freshness probability
/// drops below `target` (how large can a read-only transaction get before
/// its all-fresh guarantee erodes?). Returns -1 if even one key misses the
/// target.
int MaxKeysForFreshnessTarget(const QuorumConfig& config, double target,
                              int k = 1);

/// Monte Carlo multi-key t-visibility: the transaction is consistent at
/// time t iff EVERY key's read is consistent, so the per-trial transaction
/// threshold is the max of `keys` independent WARS thresholds. Returns the
/// transaction-level curve (same API as the single-key one).
TVisibilityCurve EstimateMultiKeyTVisibility(const QuorumConfig& config,
                                             const ReplicaLatencyModelPtr& model,
                                             int keys, int trials,
                                             uint64_t seed);

}  // namespace pbs

#endif  // PBS_CORE_MULTIKEY_H_
