#ifndef PBS_CORE_PREDICTOR_H_
#define PBS_CORE_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/closed_form.h"
#include "core/latency.h"
#include "core/quorum_config.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "util/status.h"

namespace pbs {

/// Options controlling a PbsPredictor's engine.
struct PredictorOptions {
  /// Monte Carlo trial budget (kMonteCarlo, and kAuto's fallback).
  int trials = 100000;
  uint64_t seed = 42;
  /// Collect per-trial write-propagation times (needed for the Equation 4/5
  /// upper bounds via empirical Pw; slightly slower). Monte Carlo only —
  /// the analytic engine derives its propagation CDF from the grids.
  bool collect_propagation = true;
  /// Thread count and chunking for the Monte Carlo run; results do not
  /// depend on the thread count.
  PbsExecutionOptions exec;

  /// Which engine answers the distributional queries (DESIGN.md §12).
  PredictorBackend backend = PredictorBackend::kMonteCarlo;
  /// Grid shape for the analytic / auto backends.
  AnalyticGridOptions grid;
  /// kAuto's Monte Carlo spot-check budget and tolerances.
  AutoValidationOptions validation;
};

/// The distributional query surface of PbsPredictor, extracted so Monte
/// Carlo and analytic engines are interchangeable behind it. Closed-form
/// queries (k-staleness, monotonic reads) do not appear here: they lower
/// through core/closed_form.h identically for every backend.
class PredictionEngine {
 public:
  virtual ~PredictionEngine() = default;

  /// The engine actually answering — kAuto resolves to one of the two
  /// concrete kinds at construction, never kAuto itself.
  virtual PredictorBackend kind() const = 0;
  virtual std::string Describe() const = 0;

  // t-visibility (Definition 3).
  virtual double ProbConsistent(double t) const = 0;
  virtual double TimeForConsistency(double p) const = 0;

  // Operation latency marginals; pct in [0, 100].
  virtual double ReadLatencyPercentile(double pct) const = 0;
  virtual double WriteLatencyPercentile(double pct) const = 0;

  /// Write-propagation CDF over the replica count at time t after commit —
  /// the Equation 4/5 input (see core/closed_form.h): entry c is
  /// P(at most c replicas hold the version), size N+1. Empirical under
  /// Monte Carlo (requires collect_propagation); the documented binomial
  /// approximation under the analytic engine (AnalyticWars::ApproxPwAt).
  virtual std::vector<double> WritePropagationCdfAt(double t) const = 0;
};

/// Builds the engine selected by `options.backend` after validating the
/// inputs (quorum shape, model, trial budget, grid). kAnalytic demands an
/// IID model (ReplicaLatencyModel::IidLegs) and fails otherwise; kAuto
/// falls back to Monte Carlo for non-IID models, and for IID models keeps
/// the analytic engine only when it passes the options.validation
/// spot-check against a small MC run. When `note` is non-null it receives
/// a human-readable reason whenever kAuto resolves away from analytic.
StatusOr<std::unique_ptr<PredictionEngine>> MakePredictionEngine(
    const QuorumConfig& config, const ReplicaLatencyModelPtr& model,
    const PredictorOptions& options, std::string* note = nullptr);

/// The library's front door: one object answering every PBS question about a
/// (quorum configuration, latency model) pair.
///
///   auto model = pbs::MakeIidModel(pbs::LnkdDisk(), 3);
///   auto predictor = pbs::PbsPredictor::Create({.n = 3, .r = 1, .w = 1},
///                                              model, {});
///   predictor.value().ProbConsistent(10.0);  // P(fresh read 10ms after)
///   predictor.value().TimeForConsistency(0.999);
///   predictor.value().KFreshness(2);         // P(within 2 versions), Eq. 2
///   predictor.value().ReadLatencyPercentile(99.9);
///
/// The engine is built once, in Create: a WARS Monte Carlo run (default),
/// or the analytic grid solver (PredictorOptions::backend); every query is
/// then O(log trials), O(log bins) or O(1).
class PbsPredictor {
 public:
  /// Status-typed factory (the pbs::Config convention): rejects invalid
  /// quorum shapes, null or size-mismatched models, non-positive trial
  /// budgets, malformed grids, and kAnalytic against non-IID models.
  static StatusOr<PbsPredictor> Create(const QuorumConfig& config,
                                       ReplicaLatencyModelPtr model,
                                       const PredictorOptions& options = {});

  /// Transitional constructor, delegating to Create; invalid arguments
  /// that Create would reject abort in debug builds (the historical
  /// contract). New code should prefer Create.
  PbsPredictor(const QuorumConfig& config, ReplicaLatencyModelPtr model,
               const PredictorOptions& options);

  const QuorumConfig& config() const { return config_; }

  /// The engine kind answering distributional queries (kAuto resolved).
  PredictorBackend backend() const { return engine_->kind(); }
  /// Why kAuto resolved away from analytic (empty when unremarkable).
  const std::string& backend_note() const { return backend_note_; }
  const PredictionEngine& engine() const { return *engine_; }

  // --- t-visibility (Definition 3, via the engine) ---
  double ProbConsistent(double t) const { return engine_->ProbConsistent(t); }
  double ProbStale(double t) const { return 1.0 - ProbConsistent(t); }
  double TimeForConsistency(double p) const {
    return engine_->TimeForConsistency(p);
  }

  // --- k-staleness (Definitions 1-2, closed form for every backend) ---
  double KStaleness(int k) const {
    return KStalenessProbability(config_, k);
  }
  double KFreshness(int k) const {
    return KFreshnessProbability(config_, k);
  }
  double MonotonicReadsViolation(double gamma_gw, double gamma_cr) const {
    return MonotonicReadsViolationProbability(config_, gamma_gw, gamma_cr);
  }

  // --- <k, t>-staleness (Definition 4) ---
  /// Equation 5 upper bound evaluated with the engine's write-propagation
  /// CDF Pw(·, t). Under Monte Carlo requires collect_propagation.
  double KTStalenessUpperBound(int k, double t) const;

  // --- operation latency ---
  double ReadLatencyPercentile(double pct) const {
    return engine_->ReadLatencyPercentile(pct);
  }
  double WriteLatencyPercentile(double pct) const {
    return engine_->WriteLatencyPercentile(pct);
  }

 private:
  PbsPredictor() = default;
  friend class StatusOr<PbsPredictor>;

  QuorumConfig config_;
  ReplicaLatencyModelPtr model_;
  std::shared_ptr<const PredictionEngine> engine_;
  std::string backend_note_;
};

}  // namespace pbs

#endif  // PBS_CORE_PREDICTOR_H_
