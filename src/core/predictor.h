#ifndef PBS_CORE_PREDICTOR_H_
#define PBS_CORE_PREDICTOR_H_

#include <cstdint>
#include <memory>

#include "core/closed_form.h"
#include "core/latency.h"
#include "core/quorum_config.h"
#include "core/tvisibility.h"
#include "core/wars.h"

namespace pbs {

/// Options controlling a PbsPredictor's Monte Carlo run.
struct PredictorOptions {
  int trials = 100000;
  uint64_t seed = 42;
  /// Collect per-trial write-propagation times (needed for the Equation 4/5
  /// upper bounds via empirical Pw; slightly slower).
  bool collect_propagation = true;
  /// Thread count and chunking for the constructor's Monte Carlo run;
  /// results do not depend on the thread count.
  PbsExecutionOptions exec;
};

/// The library's front door: one object answering every PBS question about a
/// (quorum configuration, latency model) pair.
///
///   auto model = pbs::MakeIidModel(pbs::LnkdDisk(), 3);
///   pbs::PbsPredictor predictor({.n = 3, .r = 1, .w = 1}, model, {});
///   predictor.ProbConsistent(10.0);       // P(fresh read 10ms after write)
///   predictor.TimeForConsistency(0.999);  // t-visibility at 99.9%
///   predictor.KFreshness(2);              // P(within 2 versions), Eq. 2
///   predictor.ReadLatencyPercentile(99.9);
///
/// The WARS Monte Carlo run happens once, in the constructor; every query is
/// then O(log trials) or O(1).
class PbsPredictor {
 public:
  PbsPredictor(const QuorumConfig& config, ReplicaLatencyModelPtr model,
               const PredictorOptions& options);

  const QuorumConfig& config() const { return config_; }

  // --- t-visibility (Definition 3, Monte Carlo over WARS) ---
  double ProbConsistent(double t) const;
  double ProbStale(double t) const { return 1.0 - ProbConsistent(t); }
  double TimeForConsistency(double p) const;
  const TVisibilityCurve& t_visibility() const { return *t_visibility_; }

  // --- k-staleness (Definitions 1-2, closed form) ---
  double KStaleness(int k) const {
    return KStalenessProbability(config_, k);
  }
  double KFreshness(int k) const {
    return KFreshnessProbability(config_, k);
  }
  double MonotonicReadsViolation(double gamma_gw, double gamma_cr) const {
    return MonotonicReadsViolationProbability(config_, gamma_gw, gamma_cr);
  }

  // --- <k, t>-staleness (Definition 4) ---
  /// Equation 5 upper bound evaluated with the empirically estimated write
  /// propagation CDF Pw(·, t). Requires collect_propagation.
  double KTStalenessUpperBound(int k, double t) const;

  // --- operation latency ---
  double ReadLatencyPercentile(double pct) const;
  double WriteLatencyPercentile(double pct) const;
  const OperationLatencies& latencies() const { return *latencies_; }

 private:
  QuorumConfig config_;
  ReplicaLatencyModelPtr model_;
  WarsTrialSet trials_;  // kept for Pw queries
  std::unique_ptr<TVisibilityCurve> t_visibility_;
  std::unique_ptr<OperationLatencies> latencies_;
};

}  // namespace pbs

#endif  // PBS_CORE_PREDICTOR_H_
