#ifndef PBS_CORE_BACKEND_H_
#define PBS_CORE_BACKEND_H_

#include <string>

#include "util/status.h"

namespace pbs {

/// Which engine answers PBS prediction queries (DESIGN.md §12).
///
///   kMonteCarlo — the WARS trial engine (core/wars.h): exact in
///                 distribution, cost proportional to the trial budget.
///   kAnalytic   — the grid solver (core/analytic.h): exact (to grid
///                 resolution) for operation latencies, approximate for
///                 t-visibility under documented independence assumptions;
///                 microseconds per query once the scenario grids are built.
///   kAuto       — analytic where its assumptions hold, Monte Carlo where
///                 they do not: non-IID latency models fall back outright,
///                 and IID models are spot-checked against a small MC run
///                 before the analytic answer is trusted.
enum class PredictorBackend {
  kMonteCarlo,
  kAnalytic,
  kAuto,
};

/// Stable wire/CLI name: "mc" | "analytic" | "auto".
const char* PredictorBackendName(PredictorBackend backend);

/// Parses the wire form accepted by --backend= flags.
StatusOr<PredictorBackend> ParsePredictorBackend(const std::string& text);

/// Discretization grid for the analytic solver: values land on a uniform
/// grid over [0, max_ms) with `bins` cells (mass beyond max_ms lumps into
/// the last bin). Finer grids cost more to build (O(bins log bins) per leg
/// convolution) but every per-quorum query stays O(bins * n).
struct AnalyticGridOptions {
  double max_ms = 4000.0;
  int bins = 20000;

  /// When true (the default), max_ms is only a *cap*: each scenario shrinks
  /// its grid to ~2x the extreme (1 - 1e-4) quantile of its slowest leg, so
  /// the step tracks the scenario's latency scale instead of the worst-case
  /// range. A sub-millisecond SSD fit then gets micro-scale resolution from
  /// the same bin budget a heavy-tailed fsync fit spends covering seconds.
  /// Explicit grids (CLI --grid-max-ms, WithPredictorGrid) switch this off
  /// and use max_ms literally. See AutoGridMaxMs (core/analytic.h).
  bool auto_max = true;

  Status Validate() const {
    if (!(max_ms > 0.0)) {
      return Status::InvalidArgument("grid.max_ms must be > 0, got " +
                                     std::to_string(max_ms));
    }
    if (bins < 1) {
      return Status::InvalidArgument("grid.bins must be >= 1, got " +
                                     std::to_string(bins));
    }
    return Status::Ok();
  }
};

/// kAuto's cross-validation guard: the analytic answer for a probe
/// configuration is compared against a small Monte Carlo run, and the
/// analytic engine is only kept when it agrees within these tolerances.
/// The bar is deliberately looser than bench/analytic_vs_mc's CI gate
/// (2% + 0.15 ms at 500K trials): the spot-check MC run is small, so its
/// own sampling noise at the p99 is a few percent.
struct AutoValidationOptions {
  /// Trial budget of the spot-check run (small on purpose: the check runs
  /// once per engine construction, not per query).
  int trials = 20000;

  /// Latency-quantile agreement: |analytic - mc| <= rel * mc + abs_ms.
  double latency_rel_tol = 0.05;
  double latency_abs_tol_ms = 0.25;

  /// Consistency agreement on P(consistent | t) / freshness probabilities,
  /// in absolute probability. Loose by design — a few points of probability
  /// is the documented approximation error at t = 0 (bench/analytic_vs_mc),
  /// and the MC side carries sampling noise of ~1/sqrt(trials) itself.
  double consistency_tol = 0.05;

  Status Validate() const {
    if (trials < 1) {
      return Status::InvalidArgument("validation.trials must be >= 1");
    }
    if (latency_rel_tol < 0.0 || latency_abs_tol_ms < 0.0) {
      return Status::InvalidArgument(
          "validation latency tolerances must be >= 0");
    }
    if (consistency_tol <= 0.0 || consistency_tol >= 1.0) {
      return Status::InvalidArgument(
          "validation.consistency_tol must be in (0, 1)");
    }
    return Status::Ok();
  }
};

}  // namespace pbs

#endif  // PBS_CORE_BACKEND_H_
