#include "core/closed_form.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace pbs {

double SingleQuorumMissProbability(const QuorumConfig& config) {
  assert(config.IsValid());
  // ps = C(N-W, R) / C(N, R): the read quorum must be drawn entirely from
  // the N-W replicas the write did not touch.
  return BinomialRatio(config.n - config.w, config.n, config.r);
}

double MixedQuorumMissProbability(int n, int r_lo, int r_hi, int w,
                                  double mix) {
  assert(mix >= 0.0 && mix <= 1.0);
  // Per-read miss probability is linear in the mixing weight because the
  // R draw is independent of the quorum choices (arXiv:1507.03162).
  const double ps_lo = SingleQuorumMissProbability(QuorumConfig{n, r_lo, w});
  if (r_lo == r_hi) return ps_lo;
  const double ps_hi = SingleQuorumMissProbability(QuorumConfig{n, r_hi, w});
  return ClampProbability(mix * ps_lo + (1.0 - mix) * ps_hi);
}

double KStalenessProbability(const QuorumConfig& config, int k) {
  assert(k >= 1);
  const double ps = SingleQuorumMissProbability(config);
  return std::pow(ps, k);
}

double KFreshnessProbability(const QuorumConfig& config, int k) {
  return ClampProbability(1.0 - KStalenessProbability(config, k));
}

int MinVersionsForTolerance(const QuorumConfig& config, double tolerance) {
  assert(tolerance > 0.0);
  const double ps = SingleQuorumMissProbability(config);
  if (ps <= tolerance) return 1;
  if (ps >= 1.0) return -1;
  // ps^k <= tolerance  <=>  k >= ln(tolerance) / ln(ps).
  const double k = std::log(tolerance) / std::log(ps);
  return static_cast<int>(std::ceil(k - 1e-12));
}

double MonotonicReadsViolationProbability(const QuorumConfig& config,
                                          double gamma_gw, double gamma_cr,
                                          bool strict) {
  assert(gamma_gw >= 0.0);
  assert(gamma_cr > 0.0);
  const double ps = SingleQuorumMissProbability(config);
  // Order matters: a strict quorum (R + W > N) has ps == 0 and can never
  // violate monotonic reads, whatever the exponent — checking the
  // "exponent == 0 => certain violation" edge first used to return 1.0 for
  // exactly the configurations that are provably safe.
  if (ps <= 0.0) return 0.0;
  const double exponent =
      (strict ? 0.0 : 1.0) + gamma_gw / gamma_cr;  // k = 1 + gw/cr (Eq. 3)
  if (exponent == 0.0) return 1.0;  // strict monotonicity with no new writes
  return std::pow(ps, exponent);
}

double EpsilonIntersectingLoadLowerBound(int n, double epsilon) {
  assert(n >= 1);
  assert(epsilon >= 0.0 && epsilon <= 1.0);
  return (1.0 - std::sqrt(epsilon)) / std::sqrt(static_cast<double>(n));
}

double KStalenessLoadLowerBound(int n, double p, double k) {
  assert(n >= 1);
  assert(p >= 0.0 && p <= 1.0);
  assert(k >= 1.0);
  // Tolerating k versions with overall miss probability p lets each of the
  // k constituent epsilon-intersecting systems run at eps = p^(1/k), and
  // Malkhi et al.'s bound gives load >= (1 - sqrt(eps)) / sqrt(N)
  // = (1 - p^(1/(2k))) / sqrt(N). (The paper's text typesets this as
  // "(1-p)^(1/2k)/sqrt(N)", but that form *grows* with k, contradicting the
  // paper's own conclusion that staleness tolerance lowers load; we
  // implement the form consistent with the derivation. k = 1 recovers the
  // plain epsilon-intersecting bound with eps = p.)
  return (1.0 - std::pow(p, 1.0 / (2.0 * k))) /
         std::sqrt(static_cast<double>(n));
}

double TVisibilityStalenessBound(const QuorumConfig& config,
                                 const std::vector<double>& pw_at_t) {
  assert(config.IsValid());
  assert(pw_at_t.size() == static_cast<size_t>(config.n) + 1);
  // pst(t) = sum_{c=W}^{N} P(Wr = c at t) * C(N-c, R) / C(N, R).
  // pw_at_t[c] = P(Wr <= c); by definition P(Wr < W) = 0 for expanding
  // quorums (W replicas hold the version at commit time).
  KahanSum sum;
  for (int c = config.w; c <= config.n; ++c) {
    const double below =
        (c == config.w) ? 0.0 : ClampProbability(pw_at_t[c - 1]);
    const double at_or_below = ClampProbability(pw_at_t[c]);
    const double mass = std::max(0.0, at_or_below - below);
    if (mass == 0.0) continue;
    sum.Add(mass * BinomialRatio(config.n - c, config.n, config.r));
  }
  return ClampProbability(sum.value());
}

double KTStalenessBound(const QuorumConfig& config,
                        const std::vector<double>& pw_at_t, int k) {
  assert(k >= 1);
  return std::pow(TVisibilityStalenessBound(config, pw_at_t), k);
}

}  // namespace pbs
