#ifndef PBS_CORE_STALENESS_DETECTOR_H_
#define PBS_CORE_STALENESS_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace pbs {

/// Asynchronous staleness detection (Section 4.3 of the paper).
///
/// A Dynamo-style read coordinator waits for R of N replies before
/// returning, but the remaining N-R replicas still reply afterwards.
/// Instead of dropping those late messages, the coordinator can compare them
/// against the version it returned:
///  * In heuristic mode (no commit-order oracle) any newer late response
///    raises a flag. The flag may be a false positive: the newer version may
///    have been in flight (uncommitted) or committed only after the read
///    began — cases the paper's staleness semantics do not count as stale.
///  * With a commit-ordering oracle (e.g. a ZooKeeper-style service or
///    consensus, as the paper suggests), false positives are eliminated:
///    a read is stale only if some newer version committed before it began.
struct ReadObservation {
  /// Version the coordinator returned to the client (its total-order rank;
  /// larger is newer; 0 = no value).
  int64_t returned_version = 0;
  /// Time at which the read began (same clock as the commit oracle).
  double read_start_time = 0.0;
  /// Versions reported by the replicas that responded after the first R.
  std::vector<int64_t> late_response_versions;
};

enum class StalenessVerdict {
  kConsistent,      // no late response was newer
  kStale,           // a newer version committed before the read began
  kFalsePositive,   // newer-but-uncommitted (or committed after read start)
  kFlagged,         // heuristic mode: newer version seen, cause unknown
};

/// Per-read classification plus running counters.
class StalenessDetector {
 public:
  /// `commit_time_of` maps a version to its commit time, or a negative
  /// value if the version has not (yet) committed. Pass nullptr to run in
  /// heuristic mode (no oracle): every mismatch is reported as kFlagged.
  using CommitOracle = std::function<double(int64_t version)>;

  explicit StalenessDetector(CommitOracle commit_time_of = nullptr);

  /// Classifies one read and updates the counters.
  StalenessVerdict Observe(const ReadObservation& observation);

  int64_t reads() const { return reads_; }
  int64_t consistent() const { return consistent_; }
  int64_t stale() const { return stale_; }
  int64_t false_positives() const { return false_positives_; }
  int64_t flagged() const { return flagged_; }

  /// Empirical probability of consistent reads as seen by the detector.
  double EmpiricalConsistency() const;

 private:
  CommitOracle commit_time_of_;
  int64_t reads_ = 0;
  int64_t consistent_ = 0;
  int64_t stale_ = 0;
  int64_t false_positives_ = 0;
  int64_t flagged_ = 0;
};

}  // namespace pbs

#endif  // PBS_CORE_STALENESS_DETECTOR_H_
