#include "pbs/config.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace pbs {

Status QuorumOptions::Validate() const {
  return ValidateQuorumConfig(ToQuorumConfig());
}

Status WorkloadOptions::Validate() const {
  if (writes < 1) return Status::InvalidArgument("workload.writes must be >= 1");
  if (write_spacing_ms <= 0.0) {
    return Status::InvalidArgument("workload.write_spacing_ms must be > 0");
  }
  if (read_offsets_ms.empty()) {
    return Status::InvalidArgument("workload.read_offsets_ms must be non-empty");
  }
  for (double offset : read_offsets_ms) {
    if (offset < 0.0) {
      return Status::InvalidArgument("workload.read_offsets_ms must be >= 0");
    }
  }
  return Status::Ok();
}

Status ParseFaultSpec(const std::string& spec, double horizon_ms,
                      kvs::FaultSchedule* schedule,
                      int default_gray_replicas) {
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::map<std::string, double> kv;
  if (colon != std::string::npos) {
    const std::string rest = spec.substr(colon + 1);
    size_t pos = 0;
    while (pos < rest.size()) {
      size_t comma = rest.find(',', pos);
      if (comma == std::string::npos) comma = rest.size();
      const std::string item = rest.substr(pos, comma - pos);
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("bad fault parameter '" + item +
                                       "' in spec '" + spec + "'");
      }
      kv[item.substr(0, eq)] = std::atof(item.c_str() + eq + 1);
      pos = comma + 1;
    }
  }
  const auto get = [&kv](const std::string& key, double fallback) {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  };
  const double start = get("start", 0.0);
  const double end = get("end", horizon_ms);
  if (kind == "slow") {
    schedule->AddSlowNode(start, end, static_cast<NodeId>(get("node", 0)),
                          get("factor", 10.0), get("add", 0.0));
  } else if (kind == "lossy") {
    schedule->AddLossyLink(start, end, static_cast<NodeId>(get("src", 0)),
                           static_cast<NodeId>(get("dst", 0)),
                           get("g2b", 0.02), get("b2g", 0.2),
                           get("loss", 0.8), get("loss-good", 0.0));
  } else if (kind == "dup") {
    schedule->AddDuplicatingLink(start, end,
                                 static_cast<NodeId>(get("src", 0)),
                                 static_cast<NodeId>(get("dst", 0)),
                                 get("p", 1.0));
  } else if (kind == "flap") {
    schedule->AddFlappingNode(start, end, static_cast<NodeId>(get("node", 0)),
                              get("up", 300.0), get("down", 200.0));
  } else if (kind == "oneway") {
    schedule->AddAsymmetricPartition(start, end,
                                     static_cast<NodeId>(get("src", 0)),
                                     static_cast<NodeId>(get("dst", 0)));
  } else if (kind == "gray") {
    const kvs::FaultSchedule random = kvs::FaultSchedule::RandomGrayFailures(
        static_cast<int>(
            get("replicas", static_cast<double>(default_gray_replicas))),
        horizon_ms, get("interarrival", 4000.0), get("duration", 1500.0),
        static_cast<uint64_t>(get("seed", 7.0)));
    for (const kvs::GrayFault& fault : random.faults()) {
      schedule->Add(fault);
    }
  } else {
    return Status::InvalidArgument(
        "unknown fault kind '" + kind +
        "' (expected slow|lossy|dup|flap|oneway|gray)");
  }
  return Status::Ok();
}

namespace {

Status ParseFaultSpecs(const std::string& specs, double horizon_ms,
                       kvs::FaultSchedule* schedule,
                       int default_gray_replicas) {
  size_t pos = 0;
  while (pos < specs.size()) {
    size_t semi = specs.find(';', pos);
    if (semi == std::string::npos) semi = specs.size();
    const Status status =
        ParseFaultSpec(specs.substr(pos, semi - pos), horizon_ms, schedule,
                       default_gray_replicas);
    if (!status.ok()) return status;
    pos = semi + 1;
  }
  return Status::Ok();
}

}  // namespace

Status FaultOptions::Validate() const {
  if (!any()) return Status::Ok();
  kvs::FaultSchedule throwaway;
  return ParseFaultSpecs(specs, /*horizon_ms=*/1.0, &throwaway,
                         /*default_gray_replicas=*/3);
}

StatusOr<kvs::FaultSchedule> FaultOptions::Build(
    double horizon_ms, int default_gray_replicas) const {
  kvs::FaultSchedule schedule;
  const Status status =
      ParseFaultSpecs(specs, horizon_ms, &schedule, default_gray_replicas);
  if (!status.ok()) return status;
  return schedule;
}

StatusOr<WarsDistributions> ScenarioLegs(const std::string& name) {
  if (name == "lnkd-ssd") return LnkdSsd();
  if (name == "lnkd-disk") return LnkdDisk();
  if (name == "ymmr") return Ymmr();
  if (name == "wan") return WanLocalBase();  // per-replica model: ScenarioModel
  return Status::InvalidArgument(
      "unknown scenario '" + name +
      "' (expected lnkd-ssd|lnkd-disk|ymmr|wan)");
}

StatusOr<ReplicaLatencyModelPtr> ScenarioModel(const std::string& name,
                                               int n) {
  if (n < 1) return Status::InvalidArgument("scenario model needs n >= 1");
  if (name == "wan") return MakeWanModel(WanLocalBase(), n);
  StatusOr<WarsDistributions> legs = ScenarioLegs(name);
  if (!legs.ok()) return legs.status();
  return MakeIidModel(legs.value(), n);
}

Status Config::Validate() const {
  Status status = quorum.Validate();
  if (!status.ok()) return status;
  status = workload.Validate();
  if (!status.ok()) return status;
  const StatusOr<WarsDistributions> legs = ScenarioLegs(scenario);
  if (!legs.ok()) return legs.status();
  if (request_timeout_ms <= 0.0) {
    return Status::InvalidArgument("request_timeout_ms must be > 0");
  }
  if (anti_entropy_interval_ms < 0.0) {
    return Status::InvalidArgument("anti_entropy_interval_ms must be >= 0");
  }
  status = hedge.Validate();
  if (!status.ok()) return status;
  status = retry.Validate();
  if (!status.ok()) return status;
  status = faults.Validate();
  if (!status.ok()) return status;
  status = cluster.Validate();
  if (!status.ok()) return status;
  if (cluster.num_nodes != 0 && cluster.num_nodes < quorum.n) {
    return Status::InvalidArgument(
        "cluster.num_nodes must be 0 (= N) or >= quorum.n");
  }
  status = sla.Validate();
  if (!status.ok()) return status;
  status = controller.Validate();
  if (!status.ok()) return status;
  if (controller.enabled && !sla.enabled()) {
    return Status::InvalidArgument(
        "controller.enabled requires a declared sla (use WithSla / "
        "WithControlLoop)");
  }
  if (obs.monitor_enabled && !sla.enabled()) {
    return Status::InvalidArgument(
        "obs.monitor_enabled requires a declared sla (use WithSla / "
        "WithControlLoop before WithMonitor)");
  }
  return obs.Validate();
}

double Config::HorizonMs() const {
  double max_offset = 0.0;
  for (double offset : workload.read_offsets_ms) {
    max_offset = std::max(max_offset, offset);
  }
  return static_cast<double>(workload.writes + 1) *
             workload.write_spacing_ms +
         max_offset + 3.0 * request_timeout_ms;
}

StatusOr<kvs::KvsConfig> Config::BuildKvsConfig() const {
  const Status status = Validate();
  if (!status.ok()) return status;
  kvs::KvsConfig config;
  config.quorum = quorum.ToQuorumConfig();
  config.legs = ScenarioLegs(scenario).value();
  config.read_fanout = quorum.fanout;
  config.read_repair = read_repair;
  config.anti_entropy_interval_ms = anti_entropy_interval_ms;
  config.request_timeout_ms = request_timeout_ms;
  config.hedge = hedge;
  config.retry = retry;
  config.obs = obs;
  config.num_storage_nodes = cluster.num_nodes;
  config.vnodes_per_node = cluster.vnodes;
  config.rebalance = cluster.rebalance;
  config.seed = seed;
  config.sla = sla;
  config.controller = controller;
  if (phi_detector) {
    config.failure_detector = kvs::KvsConfig::FailureDetectorKind::kPhiAccrual;
  }
  return config;
}

StatusOr<kvs::StalenessExperimentOptions> Config::BuildExperiment() const {
  StatusOr<kvs::KvsConfig> cluster = BuildKvsConfig();
  if (!cluster.ok()) return cluster.status();
  kvs::StalenessExperimentOptions options;
  options.cluster = std::move(cluster.value());
  options.writes = workload.writes;
  options.write_spacing_ms = workload.write_spacing_ms;
  options.read_offsets_ms = workload.read_offsets_ms;
  options.seed = seed;
  return options;
}

StatusOr<kvs::FaultSchedule> Config::BuildFaultSchedule() const {
  return faults.Build(HorizonMs(), quorum.n);
}

}  // namespace pbs
