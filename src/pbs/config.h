#ifndef PBS_PBS_CONFIG_H_
#define PBS_PBS_CONFIG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive.h"
#include "core/quorum_config.h"
#include "core/wars.h"
#include "dist/production.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "kvs/options.h"
#include "obs/options.h"
#include "util/parallel.h"
#include "util/status.h"

namespace pbs {

/// Public name for the parallel execution policy (threads / chunk_size);
/// see util/parallel.h for the (seed, chunk_size) determinism contract.
using ExecutionOptions = PbsExecutionOptions;

/// Quorum shape plus the read fan-out policy it runs under.
struct QuorumOptions {
  int n = 3;
  int r = 1;
  int w = 1;

  /// Dynamo (kAllN: N requests, first R responses) vs Voldemort
  /// (kQuorumOnly: R requests to a random R-subset, wait for all).
  ReadFanout fanout = ReadFanout::kAllN;

  QuorumConfig ToQuorumConfig() const { return QuorumConfig{n, r, w}; }
  Status Validate() const;
};

/// The Section 5.2 write-then-probe workload knobs.
struct WorkloadOptions {
  /// Versions written (the paper used 50,000 per configuration).
  int writes = 5000;

  /// Time between consecutive write starts; must comfortably exceed typical
  /// write latency so writes do not overlap.
  double write_spacing_ms = 250.0;

  /// Probe offsets t (ms after commit) at which reads are issued.
  std::vector<double> read_offsets_ms = {0.0,  1.0,  2.0,  5.0,
                                         10.0, 25.0, 50.0, 100.0};

  Status Validate() const;
};

/// Gray-failure injection, specified as ';'-separated text specs:
///   slow:node=2,factor=10[,add=0]      outbound delays scaled/shifted
///   lossy:src=0,dst=4,loss=0.8[,g2b=0.02,b2g=0.2]  Gilbert-Elliott bursts
///   dup:src=0,dst=4[,p=1]              duplicate delivery on a link
///   flap:node=2,up=300,down=200        crash/recover cycling
///   oneway:src=0,dst=4                 one-way partition (src->dst)
///   gray:seed=7[,interarrival=4000,duration=1500]  seeded random mix
/// Every spec accepts start= / end= (ms; defaults: the whole run).
struct FaultOptions {
  std::string specs;

  bool any() const { return !specs.empty(); }

  /// Dry-run parse of every spec (against a throwaway schedule).
  Status Validate() const;

  /// Builds the fault schedule for a run draining at `horizon_ms`.
  /// `default_gray_replicas` seeds the gray: spec's replicas= fallback.
  StatusOr<kvs::FaultSchedule> Build(double horizon_ms,
                                     int default_gray_replicas = 3) const;
};

/// Elastic-cluster shape: how many storage nodes sit on the consistent-hash
/// ring, how many virtual tokens each owns, and how rebalances behave.
struct ClusterOptions {
  /// Storage nodes on the ring. 0 = exactly N (the minimal single-shard
  /// deployment most experiments use); larger values shard the key space.
  int num_nodes = 0;

  /// Virtual tokens per node (placement smoothness; balance error shrinks
  /// roughly as 1/sqrt(vnodes)).
  int vnodes = 16;

  /// Migration pacing / retry / decommission policy for membership changes.
  RebalanceOptions rebalance;

  Status Validate() const {
    if (num_nodes < 0) {
      return Status::InvalidArgument("cluster.num_nodes must be >= 0");
    }
    if (vnodes < 1) {
      return Status::InvalidArgument("cluster.vnodes must be >= 1");
    }
    return rebalance.Validate();
  }
};

/// Parses one `kind:key=val,...` fault spec into `schedule`.
Status ParseFaultSpec(const std::string& spec, double horizon_ms,
                      kvs::FaultSchedule* schedule,
                      int default_gray_replicas = 3);

/// Table 3 leg fits by name: lnkd-ssd | lnkd-disk | ymmr | wan.
StatusOr<WarsDistributions> ScenarioLegs(const std::string& name);

/// The matching replica latency model (wan gets the per-replica WAN model,
/// everything else IID over the scenario legs).
StatusOr<ReplicaLatencyModelPtr> ScenarioModel(const std::string& name, int n);

/// Unified public configuration for PBS cluster experiments: one nested,
/// builder-style struct replacing the scattered option plumbing that grew
/// across KvsConfig / StalenessExperimentOptions / CLI flags. Groups:
///
///   quorum     — N/R/W and read fan-out            (QuorumOptions)
///   workload   — writes, spacing, probe offsets    (WorkloadOptions)
///   execution  — threads / chunk determinism       (ExecutionOptions)
///   hedge      — rapid read protection             (HedgeOptions)
///   retry      — client backoff/deadline policy    (RetryOptions)
///   faults     — gray-failure spec strings         (FaultOptions)
///   obs        — causal tracing policy             (ObsOptions)
///   cluster    — ring nodes / vnodes / rebalance   (ClusterOptions)
///
/// Everything validates through Status (no constructor asserts on the public
/// path) and lowers onto the internal structs via the Build* methods. The
/// With* setters chain:
///
///   auto experiment = Config{}
///       .WithScenario("lnkd-disk").WithQuorum(3, 1, 2)
///       .WithTracing(true).BuildExperiment();
struct Config {
  uint64_t seed = 7;

  /// WARS leg scenario: lnkd-ssd | lnkd-disk | ymmr | wan.
  std::string scenario = "lnkd-disk";

  QuorumOptions quorum;
  WorkloadOptions workload;
  ExecutionOptions execution;
  HedgeOptions hedge;
  RetryOptions retry;
  FaultOptions faults;
  ObsOptions obs;
  ClusterOptions cluster;

  /// Cluster mechanics (KvsConfig passthroughs).
  bool read_repair = false;
  double anti_entropy_interval_ms = 0.0;
  double request_timeout_ms = 1000.0;
  bool phi_detector = false;

  /// Declared staleness/latency SLA and the closed-loop controller policy
  /// steering toward it (KvsConfig passthroughs; see kvs/controller.h).
  SlaTarget sla;
  ControllerOptions controller;

  // -- Builder-style setters (each returns *this for chaining) --------------

  Config& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  Config& WithScenario(std::string name) {
    scenario = std::move(name);
    return *this;
  }
  Config& WithQuorum(int n, int r, int w) {
    quorum.n = n;
    quorum.r = r;
    quorum.w = w;
    return *this;
  }
  Config& WithFanout(ReadFanout fanout) {
    quorum.fanout = fanout;
    return *this;
  }
  Config& WithWorkload(int writes, double spacing_ms) {
    workload.writes = writes;
    workload.write_spacing_ms = spacing_ms;
    return *this;
  }
  Config& WithHedge(const HedgeOptions& options) {
    hedge = options;
    return *this;
  }
  Config& WithRetry(const RetryOptions& options) {
    retry = options;
    return *this;
  }
  Config& WithFaults(std::string fault_specs) {
    faults.specs = std::move(fault_specs);
    return *this;
  }
  Config& WithTracing(bool enabled) {
    obs.trace_enabled = enabled;
    return *this;
  }
  Config& WithObs(const ObsOptions& options) {
    obs = options;
    return *this;
  }
  Config& WithCluster(int num_nodes, int vnodes = 16) {
    cluster.num_nodes = num_nodes;
    cluster.vnodes = vnodes;
    return *this;
  }
  Config& WithRebalance(const RebalanceOptions& options) {
    cluster.rebalance = options;
    return *this;
  }
  Config& WithSla(const SlaTarget& target) {
    sla = target;
    return *this;
  }
  Config& WithController(const ControllerOptions& options) {
    controller = options;
    return *this;
  }
  /// Engine behind the controller's per-epoch quorum predictor
  /// (kvs/options.h: ControllerOptions::backend). The default kMonteCarlo
  /// preserves historical decision streams bit-for-bit.
  Config& WithPredictorBackend(PredictorBackend backend) {
    controller.backend = backend;
    return *this;
  }
  /// Explicit analytic grid shape for the kAnalytic / kAuto controller
  /// backends (disables the default tail-aware auto-scaling of the bound;
  /// see AnalyticGridOptions::auto_max).
  Config& WithPredictorGrid(double max_ms, int bins) {
    controller.grid_max_ms = max_ms;
    controller.grid_bins = bins;
    controller.grid_auto_max = false;
    return *this;
  }
  /// Shorthand: declare the SLA and switch the closed loop on in one call.
  Config& WithControlLoop(const SlaTarget& target) {
    sla = target;
    controller.enabled = true;
    return *this;
  }
  /// Windowed time-series telemetry (DESIGN.md §13): cut a registry delta
  /// into the telemetry ring every `window_ms` of simulator time.
  /// `capacity` windows are retained (oldest roll off); 0 window disables.
  Config& WithTelemetry(double window_ms, size_t capacity = 512) {
    obs.telemetry_window_ms = window_ms;
    obs.timeseries_capacity = capacity;
    return *this;
  }
  /// Live predictor-drift monitor on top of telemetry. Requires a window
  /// cadence (WithTelemetry) and a declared SLA (WithSla/WithControlLoop);
  /// Validate enforces both.
  Config& WithMonitor(const obs::MonitorOptions& options = {}) {
    obs.monitor_enabled = true;
    obs.monitor = options;
    return *this;
  }

  // -- Validation and lowering ----------------------------------------------

  /// Validates every group (quorum shape, workload, scenario name, hedge /
  /// retry / obs ranges, fault-spec syntax). First failure wins.
  Status Validate() const;

  /// The scenario's leg distributions / replica model.
  StatusOr<WarsDistributions> ResolveLegs() const { return ScenarioLegs(scenario); }
  StatusOr<ReplicaLatencyModelPtr> ResolveModel() const {
    return ScenarioModel(scenario, quorum.n);
  }

  /// The harness drain bound: last write start + slowest probe offset +
  /// 3 request timeouts (the same formula the experiment runner uses, so
  /// fault schedules built against it cover the whole run).
  double HorizonMs() const;

  /// Lowers onto the internal cluster config (validating first).
  StatusOr<kvs::KvsConfig> BuildKvsConfig() const;

  /// Lowers onto the staleness-experiment harness options.
  StatusOr<kvs::StalenessExperimentOptions> BuildExperiment() const;

  /// Builds the configured fault schedule against HorizonMs(); an empty
  /// FaultOptions yields an empty schedule.
  StatusOr<kvs::FaultSchedule> BuildFaultSchedule() const;
};

}  // namespace pbs

#endif  // PBS_PBS_CONFIG_H_
