#include "dist/primitives.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/fastmath.h"
#include "util/stats.h"

namespace pbs {
namespace {

double StdNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

// Batched samplers process the output span in fixed-size tiles so the scratch
// array lives in registers/L1 and each transform pass autovectorizes.
constexpr int kBatchTile = 64;

// Largest double strictly below 1.0 on the 53-bit uniform grid. Quantile
// arguments are clamped here in sampling paths so that a 1-in-2^53 edge draw
// (or internal rounding up to exactly 1.0) cannot produce an infinite
// latency.
constexpr double kMaxOpenUniform = 0x1.fffffffffffffp-1;  // 1 - 2^-53

constexpr double kLn2 = 0.6931471805599453;

// FastExp2's exponent bit trick wraps outside roughly +-1022; keep a margin.
constexpr double kExp2Limit = 1020.0;

}  // namespace

// ---------------------------------------------------------------------------
// Exponential

ExponentialDistribution::ExponentialDistribution(double lambda)
    : lambda_(lambda) {
  assert(lambda > 0.0);
}

double ExponentialDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-lambda_ * x);
}

void ExponentialDistribution::SampleBatch(Rng& rng,
                                          std::span<double> out) const {
  // out = -ln(1-u)/lambda = (-ln2/lambda) * log2(1-u). The RNG fill is one
  // pass (a serial dependence through the generator state); the log pass is
  // branch-free arithmetic the autovectorizer handles.
  const double c = -kLn2 / lambda_;
  double v[kBatchTile];
  size_t done = 0;
  while (done < out.size()) {
    const int n =
        static_cast<int>(std::min<size_t>(kBatchTile, out.size() - done));
    for (int i = 0; i < n; ++i) v[i] = 1.0 - rng.NextDouble();
    for (int i = 0; i < n; ++i) v[i] = FastLog2(v[i]);
    double* o = out.data() + done;
    for (int i = 0; i < n; ++i) o[i] = c * v[i];
    done += static_cast<size_t>(n);
  }
}

double ExponentialDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return -std::log1p(-p) / lambda_;
}

std::string ExponentialDistribution::Describe() const {
  return "Exponential(lambda=" + FormatDouble(lambda_, 4) + ")";
}

// ---------------------------------------------------------------------------
// Pareto

ParetoDistribution::ParetoDistribution(double xm, double alpha)
    : xm_(xm), alpha_(alpha) {
  assert(xm > 0.0);
  assert(alpha > 0.0);
}

double ParetoDistribution::Cdf(double x) const {
  if (x < xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

void ParetoDistribution::SampleBatch(Rng& rng, std::span<double> out) const {
  // out = xm * (1-u)^(-1/alpha) = xm * exp2((-1/alpha) * log2(1-u)).
  // log2(1-u) is in [-53, 0], so the exp2 argument is in [0, 53/alpha];
  // clamp it so a pathological alpha cannot wrap FastExp2's exponent trick.
  const double c = -1.0 / alpha_;
  double v[kBatchTile];
  size_t done = 0;
  while (done < out.size()) {
    const int n =
        static_cast<int>(std::min<size_t>(kBatchTile, out.size() - done));
    for (int i = 0; i < n; ++i) v[i] = 1.0 - rng.NextDouble();
    for (int i = 0; i < n; ++i) v[i] = FastLog2(v[i]);
    double* o = out.data() + done;
    for (int i = 0; i < n; ++i) {
      const double t = c * v[i];
      o[i] = xm_ * FastExp2(t < kExp2Limit ? t : kExp2Limit);
    }
    done += static_cast<size_t>(n);
  }
}

double ParetoDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return xm_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double ParetoDistribution::Mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

std::string ParetoDistribution::Describe() const {
  return "Pareto(xm=" + FormatDouble(xm_, 4) +
         ", alpha=" + FormatDouble(alpha_, 4) + ")";
}

// ---------------------------------------------------------------------------
// Uniform

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  assert(hi > lo);
}

double UniformDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

void UniformDistribution::SampleBatch(Rng& rng, std::span<double> out) const {
  const double range = hi_ - lo_;
  for (double& x : out) x = lo_ + rng.NextDouble() * range;
}

double UniformDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  return lo_ + p * (hi_ - lo_);
}

std::string UniformDistribution::Describe() const {
  return "Uniform(" + FormatDouble(lo_, 4) + ", " + FormatDouble(hi_, 4) +
         ")";
}

// ---------------------------------------------------------------------------
// TruncatedNormal

TruncatedNormalDistribution::TruncatedNormalDistribution(double mu,
                                                         double sigma)
    : mu_(mu), sigma_(sigma), below_zero_(StdNormalCdf(-mu / sigma)) {
  assert(sigma > 0.0);
}

double TruncatedNormalDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double untruncated = StdNormalCdf((x - mu_) / sigma_);
  return (untruncated - below_zero_) / (1.0 - below_zero_);
}

void TruncatedNormalDistribution::SampleBatch(Rng& rng,
                                              std::span<double> out) const {
  // InverseNormalCdf is a three-region rational approximation that does not
  // vectorize; the win here is devirtualization (class is final, so the
  // Quantile call below is direct and inlinable).
  for (double& x : out) x = Quantile(rng.NextDouble());
}

double TruncatedNormalDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // For p within one ulp of 1, the affine map below can round to exactly 1.0
  // even though p < 1 (e.g. p = 1 - 2^-53 from a uniform edge draw). Clamp
  // inside the open interval so the result stays finite.
  const double adjusted =
      std::min(below_zero_ + p * (1.0 - below_zero_), kMaxOpenUniform);
  return mu_ + sigma_ * InverseNormalCdf(adjusted);
}

double TruncatedNormalDistribution::Mean() const {
  // E[X | X > 0] for X ~ N(mu, sigma): mu + sigma * phi(a) / (1 - Phi(a)),
  // a = -mu/sigma.
  const double a = -mu_ / sigma_;
  const double phi =
      std::exp(-0.5 * a * a) / std::sqrt(2.0 * 3.14159265358979323846);
  return mu_ + sigma_ * phi / (1.0 - below_zero_);
}

std::string TruncatedNormalDistribution::Describe() const {
  return "TruncNormal(mu=" + FormatDouble(mu_, 4) +
         ", sigma=" + FormatDouble(sigma_, 4) + ")";
}

// ---------------------------------------------------------------------------
// LogNormal

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  assert(sigma > 0.0);
}

double LogNormalDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return StdNormalCdf((std::log(x) - mu_) / sigma_);
}

void LogNormalDistribution::SampleBatch(Rng& rng,
                                        std::span<double> out) const {
  for (double& x : out) x = Quantile(rng.NextDouble());
}

double LogNormalDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return std::exp(mu_ + sigma_ * InverseNormalCdf(p));
}

double LogNormalDistribution::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string LogNormalDistribution::Describe() const {
  return "LogNormal(mu=" + FormatDouble(mu_, 4) +
         ", sigma=" + FormatDouble(sigma_, 4) + ")";
}

// ---------------------------------------------------------------------------
// Weibull

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  assert(shape > 0.0);
  assert(scale > 0.0);
}

double WeibullDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

void WeibullDistribution::SampleBatch(Rng& rng, std::span<double> out) const {
  // out = scale * (-ln(1-u))^(1/shape)
  //     = scale * exp2((1/shape) * log2(-ln2 * log2(1-u))).
  // An edge draw u == 0 makes t == 0; flooring t keeps FastLog2 in its
  // domain, and the exp2-argument clamp then maps the result to ~0 (the
  // mathematically correct Quantile(0)) instead of wrapping the exponent.
  const double inv_shape = 1.0 / shape_;
  double v[kBatchTile];
  size_t done = 0;
  while (done < out.size()) {
    const int n =
        static_cast<int>(std::min<size_t>(kBatchTile, out.size() - done));
    for (int i = 0; i < n; ++i) v[i] = 1.0 - rng.NextDouble();
    for (int i = 0; i < n; ++i) v[i] = FastLog2(v[i]);
    for (int i = 0; i < n; ++i) {
      const double t = std::max(-kLn2 * v[i], 1e-300);
      v[i] = FastLog2(t);
    }
    double* o = out.data() + done;
    for (int i = 0; i < n; ++i) {
      const double t =
          std::clamp(inv_shape * v[i], -kExp2Limit, kExp2Limit);
      o[i] = scale_ * FastExp2(t);
    }
    done += static_cast<size_t>(n);
  }
}

double WeibullDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double WeibullDistribution::Mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

std::string WeibullDistribution::Describe() const {
  return "Weibull(shape=" + FormatDouble(shape_, 4) +
         ", scale=" + FormatDouble(scale_, 4) + ")";
}

// ---------------------------------------------------------------------------
// PointMass

PointMassDistribution::PointMassDistribution(double value) : value_(value) {}

double PointMassDistribution::Cdf(double x) const {
  return x >= value_ ? 1.0 : 0.0;
}

void PointMassDistribution::SampleBatch(Rng& rng,
                                        std::span<double> out) const {
  // Consumes one draw per sample like Sample() does, so that interleaved
  // sequences stay aligned with the scalar path.
  for (double& x : out) {
    rng.NextDouble();
    x = value_;
  }
}

double PointMassDistribution::Quantile(double) const { return value_; }

std::string PointMassDistribution::Describe() const {
  return "PointMass(" + FormatDouble(value_, 4) + ")";
}

// ---------------------------------------------------------------------------
// Shifted

ShiftedDistribution::ShiftedDistribution(DistributionPtr base, double offset)
    : base_(std::move(base)), offset_(offset) {
  assert(base_ != nullptr);
}

double ShiftedDistribution::Sample(Rng& rng) const {
  return base_->Sample(rng) + offset_;
}

void ShiftedDistribution::SampleBatch(Rng& rng, std::span<double> out) const {
  base_->SampleBatch(rng, out);
  for (double& x : out) x += offset_;
}

double ShiftedDistribution::Cdf(double x) const {
  return base_->Cdf(x - offset_);
}

double ShiftedDistribution::Quantile(double p) const {
  return base_->Quantile(p) + offset_;
}

double ShiftedDistribution::Mean() const { return base_->Mean() + offset_; }

std::string ShiftedDistribution::Describe() const {
  return base_->Describe() + " + " + FormatDouble(offset_, 4);
}

// ---------------------------------------------------------------------------
// Scaled

ScaledDistribution::ScaledDistribution(DistributionPtr base, double factor)
    : base_(std::move(base)), factor_(factor) {
  assert(base_ != nullptr);
  assert(factor > 0.0);
}

double ScaledDistribution::Sample(Rng& rng) const {
  return base_->Sample(rng) * factor_;
}

void ScaledDistribution::SampleBatch(Rng& rng, std::span<double> out) const {
  base_->SampleBatch(rng, out);
  for (double& x : out) x *= factor_;
}

double ScaledDistribution::Cdf(double x) const {
  return base_->Cdf(x / factor_);
}

double ScaledDistribution::Quantile(double p) const {
  return base_->Quantile(p) * factor_;
}

double ScaledDistribution::Mean() const { return base_->Mean() * factor_; }

std::string ScaledDistribution::Describe() const {
  return base_->Describe() + " * " + FormatDouble(factor_, 4);
}

// ---------------------------------------------------------------------------
// Factories

DistributionPtr Exponential(double lambda) {
  return std::make_shared<ExponentialDistribution>(lambda);
}
DistributionPtr Pareto(double xm, double alpha) {
  return std::make_shared<ParetoDistribution>(xm, alpha);
}
DistributionPtr Uniform(double lo, double hi) {
  return std::make_shared<UniformDistribution>(lo, hi);
}
DistributionPtr TruncatedNormal(double mu, double sigma) {
  return std::make_shared<TruncatedNormalDistribution>(mu, sigma);
}
DistributionPtr LogNormal(double mu, double sigma) {
  return std::make_shared<LogNormalDistribution>(mu, sigma);
}
DistributionPtr Weibull(double shape, double scale) {
  return std::make_shared<WeibullDistribution>(shape, scale);
}
DistributionPtr PointMass(double value) {
  return std::make_shared<PointMassDistribution>(value);
}
DistributionPtr Shifted(DistributionPtr base, double offset) {
  return std::make_shared<ShiftedDistribution>(std::move(base), offset);
}
DistributionPtr Scaled(DistributionPtr base, double factor) {
  return std::make_shared<ScaledDistribution>(std::move(base), factor);
}

}  // namespace pbs
