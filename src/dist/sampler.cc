#include "dist/sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dist/primitives.h"
#include "util/fastmath.h"

namespace pbs {
namespace {

constexpr int kBatchTile = 64;
constexpr double kLn2 = 0.6931471805599453;
constexpr double kExp2Limit = 1020.0;
// Smallest admissible 1-u (and largest admissible u) after rescaling a
// selection draw: keeps log arguments positive and quantiles finite.
constexpr double kMinOpenComplement = 0x1.0p-53;
constexpr double kMaxOpenUniform = 0x1.fffffffffffffp-1;  // 1 - 2^-53

double StdNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace

CompiledSampler::CompiledSampler(DistributionPtr dist)
    : source_(std::move(dist)) {
  assert(source_ != nullptr);

  // Fold affine wrappers: X = scale * inner + offset.
  double scale = 1.0;
  const Distribution* d = source_.get();
  while (true) {
    if (const auto* sh = dynamic_cast<const ShiftedDistribution*>(d)) {
      offset_ += scale * sh->offset();
      d = sh->base().get();
    } else if (const auto* sc = dynamic_cast<const ScaledDistribution*>(d)) {
      scale *= sc->factor();
      d = sc->base().get();
    } else {
      break;
    }
  }

  if (const auto* pm = dynamic_cast<const PointMassDistribution*>(d)) {
    kind_ = Kind::kPointMass;
    c0_ = scale * pm->value() + offset_;
    return;
  }
  if (const auto* un = dynamic_cast<const UniformDistribution*>(d)) {
    kind_ = Kind::kUniform;
    c0_ = scale * un->lo() + offset_;
    c1_ = scale * (un->hi() - un->lo());
    return;
  }
  if (const auto* ex = dynamic_cast<const ExponentialDistribution*>(d)) {
    kind_ = Kind::kExponential;
    c0_ = -scale * kLn2 / ex->lambda();
    return;
  }
  if (const auto* pa = dynamic_cast<const ParetoDistribution*>(d)) {
    kind_ = Kind::kPareto;
    c0_ = scale * pa->xm();
    c1_ = -1.0 / pa->alpha();
    return;
  }
  if (const auto* wb = dynamic_cast<const WeibullDistribution*>(d)) {
    kind_ = Kind::kWeibull;
    c0_ = scale * wb->scale();
    c1_ = 1.0 / wb->shape();
    return;
  }
  if (const auto* ln = dynamic_cast<const LogNormalDistribution*>(d)) {
    kind_ = Kind::kLogNormal;
    // scale * exp(mu + sigma z) = exp(mu + ln(scale) + sigma z).
    c0_ = ln->mu() + std::log(scale);
    c1_ = ln->sigma();
    return;
  }
  if (const auto* tn = dynamic_cast<const TruncatedNormalDistribution*>(d)) {
    kind_ = Kind::kTruncatedNormal;
    c0_ = tn->mu();
    c1_ = tn->sigma();
    c2_ = scale;
    c3_ = StdNormalCdf(-tn->mu() / tn->sigma());
    return;
  }
  if (const auto* mx = dynamic_cast<const MixtureDistribution*>(d)) {
    const auto& comps = mx->components();
    if (comps.size() == 2) {
      // The paper's production fits: Pareto body + exponential tail, in
      // either component order.
      const ParetoDistribution* pareto = nullptr;
      const ExponentialDistribution* expo = nullptr;
      double w_pareto = 0.0;
      for (const auto& c : comps) {
        if (const auto* p =
                dynamic_cast<const ParetoDistribution*>(c.distribution.get());
            p != nullptr && pareto == nullptr) {
          pareto = p;
          w_pareto = c.weight;
        } else if (const auto* e = dynamic_cast<const ExponentialDistribution*>(
                       c.distribution.get());
                   e != nullptr && expo == nullptr) {
          expo = e;
        }
      }
      if (pareto != nullptr && expo != nullptr) {
        kind_ = Kind::kParetoExpMixture;
        mix_wp_ = w_pareto;
        mix_sub_[0] = 0.0;
        mix_sub_[1] = w_pareto;
        mix_inv_[0] = 1.0 / w_pareto;
        mix_inv_[1] = 1.0 / (1.0 - w_pareto);
        pe_s_ = scale * pareto->xm();
        pe_c_ = -1.0 / pareto->alpha();
        pe_e_ = -scale * kLn2 / expo->lambda();
        return;
      }
    }
    // General mixture: one-draw alias selection + per-component quantile.
    // Only usable when every component has a closed-form quantile that is
    // finite on [0, 1) — true for all the primitives; nested mixtures or
    // empiricals push the whole node to the generic path.
    bool invertible = true;
    for (const auto& c : comps) {
      const Distribution* cd = c.distribution.get();
      invertible = invertible &&
                   (dynamic_cast<const PointMassDistribution*>(cd) ||
                    dynamic_cast<const UniformDistribution*>(cd) ||
                    dynamic_cast<const ExponentialDistribution*>(cd) ||
                    dynamic_cast<const ParetoDistribution*>(cd) ||
                    dynamic_cast<const WeibullDistribution*>(cd) ||
                    dynamic_cast<const LogNormalDistribution*>(cd) ||
                    dynamic_cast<const TruncatedNormalDistribution*>(cd));
    }
    if (invertible) {
      kind_ = Kind::kAliasMixture;
      // Aliasing the source keeps the mixture (and its alias table) alive
      // even when the caller drops the outer affine wrappers.
      alias_mix_ = std::shared_ptr<const MixtureDistribution>(source_, mx);
      alias_scale_ = scale;
      return;
    }
  }

  kind_ = Kind::kGeneric;
  generic_ = source_;
  offset_ = 0.0;  // generic path samples the original tree, nothing folded
}

void CompiledSampler::SampleBatch(Rng& rng, double* out, int n) const {
  assert(n >= 0);
  double v[kBatchTile];
  double msk[kBatchTile];
  // Hoist member constants into locals: stores through `out` could alias
  // `this` as far as the compiler knows, and per-element member reloads both
  // cost cycles and block vectorization of the transform passes.
  const double c0 = c0_;
  const double c1 = c1_;
  const double off = offset_;

  switch (kind_) {
    case Kind::kPointMass:
      for (int i = 0; i < n; ++i) {
        rng.NextDouble();  // burn one draw per sample (see class contract)
        out[i] = c0;
      }
      return;

    case Kind::kUniform:
      for (int i = 0; i < n; ++i) out[i] = c0 + c1 * rng.NextDouble();
      return;

    case Kind::kExponential:
      for (int done = 0; done < n; done += kBatchTile) {
        const int m = std::min(kBatchTile, n - done);
        for (int i = 0; i < m; ++i) v[i] = rng.NextDouble();
        for (int i = 0; i < m; ++i) v[i] = 1.0 - v[i];
        for (int i = 0; i < m; ++i) v[i] = FastLog2(v[i]);
        double* o = out + done;
        for (int i = 0; i < m; ++i) o[i] = c0 * v[i] + off;
      }
      return;

    case Kind::kPareto:
      for (int done = 0; done < n; done += kBatchTile) {
        const int m = std::min(kBatchTile, n - done);
        for (int i = 0; i < m; ++i) v[i] = rng.NextDouble();
        for (int i = 0; i < m; ++i) v[i] = 1.0 - v[i];
        for (int i = 0; i < m; ++i) v[i] = FastLog2(v[i]);
        double* o = out + done;
        for (int i = 0; i < m; ++i) {
          const double t = std::min(c1 * v[i], kExp2Limit);
          o[i] = c0 * FastExp2(t) + off;
        }
      }
      return;

    case Kind::kWeibull:
      for (int done = 0; done < n; done += kBatchTile) {
        const int m = std::min(kBatchTile, n - done);
        for (int i = 0; i < m; ++i) v[i] = rng.NextDouble();
        for (int i = 0; i < m; ++i) v[i] = 1.0 - v[i];
        for (int i = 0; i < m; ++i) v[i] = FastLog2(v[i]);
        for (int i = 0; i < m; ++i) {
          v[i] = FastLog2(std::max(-kLn2 * v[i], 1e-300));
        }
        double* o = out + done;
        for (int i = 0; i < m; ++i) {
          const double t = std::clamp(c1 * v[i], -kExp2Limit, kExp2Limit);
          o[i] = c0 * FastExp2(t) + off;
        }
      }
      return;

    case Kind::kLogNormal:
      for (int i = 0; i < n; ++i) {
        const double z = InverseNormalCdf(rng.NextDouble());
        out[i] = std::exp(c0 + c1 * z) + off;
      }
      return;

    case Kind::kTruncatedNormal: {
      const double scale = c2_;
      const double below_zero = c3_;
      for (int i = 0; i < n; ++i) {
        const double p = rng.NextDouble();
        const double adjusted =
            std::min(below_zero + p * (1.0 - below_zero), kMaxOpenUniform);
        const double q =
            p <= 0.0 ? 0.0 : c0 + c1 * InverseNormalCdf(adjusted);
        out[i] = scale * q + off;
      }
      return;
    }

    case Kind::kParetoExpMixture: {
      // Pass 1: fused RNG fill + branch-free threshold select. Pass 2: one
      // log over the whole tile (autovectorizes). Pass 3: both transforms
      // computed, arithmetic blend by the selection mask (autovectorizes).
      const double wp = mix_wp_;
      const double sub[2] = {mix_sub_[0], mix_sub_[1]};
      const double inv[2] = {mix_inv_[0], mix_inv_[1]};
      const double pe_s = pe_s_;
      const double pe_c = pe_c_;
      const double pe_e = pe_e_;
      for (int done = 0; done < n; done += kBatchTile) {
        const int m = std::min(kBatchTile, n - done);
        // RNG fill is inherently scalar (sequential state); keeping it in
        // its own pass leaves the select below branch-free straight-line FP
        // ops the autovectorizer handles. The ternaries compile to blends
        // and compute exactly what the sub[b]/inv[b] lookups did.
        for (int i = 0; i < m; ++i) v[i] = rng.NextDouble();
        for (int i = 0; i < m; ++i) {
          const double u = v[i];
          const bool b = u >= wp;
          const double uu = (u - (b ? sub[1] : sub[0])) * (b ? inv[1] : inv[0]);
          v[i] = std::max(1.0 - uu, kMinOpenComplement);
          msk[i] = b ? 1.0 : 0.0;
        }
        for (int i = 0; i < m; ++i) v[i] = FastLog2(v[i]);
        double* o = out + done;
        for (int i = 0; i < m; ++i) {
          const double L = v[i];
          const double pareto = pe_s * FastExp2(std::min(pe_c * L, kExp2Limit));
          o[i] = pareto + msk[i] * (pe_e * L - pareto) + off;
        }
      }
      return;
    }

    case Kind::kAliasMixture: {
      const auto& comps = alias_mix_->components();
      for (int i = 0; i < n; ++i) {
        const double u = rng.NextDouble();
        const size_t k = alias_mix_->PickComponent(u);
        // Reuse the fractional bits of the selection draw as the component's
        // uniform (exact: frac | cell is uniform), clamped inside [0, 1).
        const size_t kk = comps.size();
        const double scaled = u * static_cast<double>(kk);
        const double frac = scaled - std::floor(scaled);
        const double p = alias_mix_->alias_prob()[std::min(
            static_cast<size_t>(scaled), kk - 1)];
        const double uu = frac < p ? frac / p : (frac - p) / (1.0 - p);
        const double uc = std::min(uu, kMaxOpenUniform);
        out[i] =
            alias_scale_ * comps[k].distribution->Quantile(uc) + offset_;
      }
      return;
    }

    case Kind::kGeneric:
      generic_->SampleBatch(rng, std::span<double>(out, static_cast<size_t>(n)));
      return;
  }
}

std::string CompiledSampler::Describe() const {
  const char* name = "Generic";
  switch (kind_) {
    case Kind::kPointMass: name = "PointMass"; break;
    case Kind::kUniform: name = "Uniform"; break;
    case Kind::kExponential: name = "Exponential"; break;
    case Kind::kPareto: name = "Pareto"; break;
    case Kind::kWeibull: name = "Weibull"; break;
    case Kind::kLogNormal: name = "LogNormal"; break;
    case Kind::kTruncatedNormal: name = "TruncatedNormal"; break;
    case Kind::kParetoExpMixture: name = "ParetoExpMixture"; break;
    case Kind::kAliasMixture: name = "AliasMixture"; break;
    case Kind::kGeneric: name = "Generic"; break;
  }
  return std::string(kind_ == Kind::kGeneric ? "virtual(" : "compiled(") +
         name + ")";
}

SamplerPlan::SamplerPlan(const WarsDistributions& wars) {
  const DistributionPtr legs[4] = {wars.w, wars.a, wars.r, wars.s};
  int leg_sampler[4];
  for (int leg = 0; leg < 4; ++leg) {
    assert(legs[leg] != nullptr);
    int found = -1;
    for (size_t j = 0; j < samplers_.size(); ++j) {
      if (samplers_[j].source().get() == legs[leg].get()) {
        found = static_cast<int>(j);
        break;
      }
    }
    if (found < 0) {
      samplers_.emplace_back(legs[leg]);
      found = static_cast<int>(samplers_.size()) - 1;
    }
    leg_sampler[leg] = found;
  }
  // Merge consecutive legs sharing a sampler into single runs; with draws
  // consumed leg-major this is draw-order neutral, and it turns e.g. the
  // LNKD-SSD fit (one object for all four legs) into one 4n-sample batch.
  for (int leg = 0; leg < 4;) {
    int end = leg + 1;
    while (end < 4 && leg_sampler[end] == leg_sampler[leg]) ++end;
    runs_.push_back(Run{leg_sampler[leg], leg, end - leg});
    leg = end;
  }
}

void SamplerPlan::SampleLegs(Rng& rng, int n, double* legs) const {
  assert(!runs_.empty());
  for (const Run& run : runs_) {
    samplers_[run.sampler].SampleBatch(rng, legs + run.first_leg * n,
                                       run.num_legs * n);
  }
}

bool SamplerPlan::fully_compiled() const {
  for (const auto& s : samplers_) {
    if (!s.is_compiled()) return false;
  }
  return true;
}

std::string SamplerPlan::Describe() const {
  std::string out = "SamplerPlan[";
  const char* leg_names = "WARS";
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (i) out += ", ";
    for (int l = runs_[i].first_leg; l < runs_[i].first_leg + runs_[i].num_legs;
         ++l) {
      out += leg_names[l];
    }
    out += "=" + samplers_[runs_[i].sampler].Describe();
  }
  out += "]";
  return out;
}

}  // namespace pbs
