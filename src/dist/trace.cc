#include "dist/trace.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "dist/empirical.h"
#include "util/csv.h"

namespace pbs {

StatusOr<std::vector<double>> LoadLatencyTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open latency trace: " + path);
  }
  std::vector<double> samples;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim leading whitespace; skip blanks and comments.
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + first, &end);
    if (end == line.c_str() + first) {
      return Status::InvalidArgument("unparsable latency at " + path + ":" +
                                     std::to_string(line_number));
    }
    if (value < 0.0) {
      return Status::InvalidArgument("negative latency at " + path + ":" +
                                     std::to_string(line_number));
    }
    samples.push_back(value);
  }
  if (samples.empty()) {
    return Status::InvalidArgument("latency trace has no samples: " + path);
  }
  return samples;
}

StatusOr<DistributionPtr> LoadTraceDistribution(const std::string& path) {
  auto samples = LoadLatencyTrace(path);
  if (!samples.ok()) return samples.status();
  return DistributionPtr(Empirical(std::move(samples.value())));
}

Status SaveLatencyTrace(const std::string& path,
                        const std::vector<double>& samples) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) EnsureDirectory(parent.string());
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot write latency trace: " + path);
  }
  out << "# latency samples (ms), one per line\n";
  for (double sample : samples) out << sample << '\n';
  return Status::Ok();
}

}  // namespace pbs
