#ifndef PBS_DIST_TRACE_H_
#define PBS_DIST_TRACE_H_

#include <string>
#include <vector>

#include "dist/distribution.h"
#include "util/status.h"

namespace pbs {

/// Latency trace I/O: operators plug their own measured latencies into the
/// predictors by exporting one sample per line (plain text, milliseconds;
/// '#'-prefixed lines and blank lines ignored). This is the file-format
/// counterpart of the paper's "measure the WARS distributions online".

/// Reads a trace file into samples. Fails on unreadable files, files with
/// no samples, or unparsable/negative values (the offending line is
/// reported).
StatusOr<std::vector<double>> LoadLatencyTrace(const std::string& path);

/// Convenience: LoadLatencyTrace + EmpiricalDistribution.
StatusOr<DistributionPtr> LoadTraceDistribution(const std::string& path);

/// Writes samples, one per line, creating parent directories. Fails if the
/// file cannot be opened.
Status SaveLatencyTrace(const std::string& path,
                        const std::vector<double>& samples);

}  // namespace pbs

#endif  // PBS_DIST_TRACE_H_
