#ifndef PBS_DIST_EMPIRICAL_H_
#define PBS_DIST_EMPIRICAL_H_

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace pbs {

/// Empirical distribution over a sample vector: CDF is the ECDF, quantiles
/// interpolate between order statistics, and sampling resamples with
/// replacement. Used to turn measured delays (e.g. from the event-driven
/// cluster) back into a Distribution that can drive WARS — mirroring the
/// paper's "measure the WARS distributions, then predict" validation loop.
class EmpiricalDistribution final : public Distribution {
 public:
  explicit EmpiricalDistribution(std::vector<double> samples);

  double Sample(Rng& rng) const override;
  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override { return mean_; }
  std::string Describe() const override;

  size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_;
};

DistributionPtr Empirical(std::vector<double> samples);

}  // namespace pbs

#endif  // PBS_DIST_EMPIRICAL_H_
