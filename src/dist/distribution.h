#ifndef PBS_DIST_DISTRIBUTION_H_
#define PBS_DIST_DISTRIBUTION_H_

#include <memory>
#include <span>
#include <string>

#include "util/rng.h"

namespace pbs {

/// A one-dimensional, non-negative latency distribution.
///
/// All of PBS's t-visibility machinery is parameterized by four such
/// distributions (W, A, R, S — the one-way message delays of the WARS model),
/// and the Dynamo-style simulator draws every message delay from one.
///
/// Implementations must be immutable after construction so a single instance
/// can be shared by many samplers/threads (each caller supplies its own Rng).
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample. The default implementation applies the inverse-CDF
  /// transform to a uniform variate; subclasses may override with a direct
  /// sampler (e.g. mixtures pick a branch first).
  virtual double Sample(Rng& rng) const;

  /// Fills `out` with independent samples distributed like Sample(rng).
  /// Overrides exist so the per-sample virtual dispatch (and, for the
  /// primitives, the libm calls) can be hoisted out of Monte Carlo hot loops.
  /// Two contractual requirements on overrides:
  ///   - consume exactly the same number of Rng draws per sample as Sample()
  ///     so interleaved scalar/batch sequences stay deterministic;
  ///   - match Sample()'s distribution to within the fast-math tolerance of
  ///     util/fastmath.h (relative error ~4e-6, far below Monte Carlo noise;
  ///     equivalence is pinned by KS tests in tests/dist_sampler_test.cc).
  /// Individual values may therefore differ from Sample() in the last few
  /// digits; batch results remain bit-reproducible run-to-run.
  virtual void SampleBatch(Rng& rng, std::span<double> out) const;

  /// P(X <= x).
  virtual double Cdf(double x) const = 0;

  /// Inverse CDF at p in [0, 1]. Implementations must satisfy
  /// Cdf(Quantile(p)) ~= p wherever the CDF is continuous.
  virtual double Quantile(double p) const = 0;

  /// Expected value; +infinity when the mean does not exist (e.g. Pareto
  /// with alpha <= 1).
  virtual double Mean() const = 0;

  /// Short human-readable description, e.g. "Exponential(lambda=0.183)".
  virtual std::string Describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Generic quantile-by-bisection helper for distributions whose CDF is easy
/// but whose inverse is not (mixtures, truncated normals). Finds x with
/// Cdf(x) ~= p by expanding an upper bracket then bisecting to `tol`.
double QuantileByBisection(const Distribution& dist, double p, double lo_hint,
                           double hi_hint, double tol = 1e-10);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Exposed for the normal/lognormal primitives
/// and for confidence-interval computations. Returns -infinity for p <= 0 and
/// +infinity for p >= 1 so that quantile edge cases degrade gracefully
/// instead of asserting (p == 1.0 can arise from rounding in truncated
/// distributions even when the uniform draw is strictly below 1).
double InverseNormalCdf(double p);

}  // namespace pbs

#endif  // PBS_DIST_DISTRIBUTION_H_
