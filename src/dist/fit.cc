#include "dist/fit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dist/mixture.h"
#include "dist/primitives.h"

namespace pbs {
namespace {

// Unconstrained <-> constrained parameter transforms.
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double Logit(double p) { return std::log(p / (1.0 - p)); }

struct Params {
  double weight_body;
  double xm;
  double alpha;
  double lambda;
};

Params Decode(const std::vector<double>& x) {
  Params p;
  p.weight_body = Sigmoid(x[0]);
  p.xm = std::exp(x[1]);
  p.alpha = std::exp(x[2]);
  p.lambda = std::exp(x[3]);
  return p;
}

std::vector<double> Encode(const Params& p) {
  return {Logit(p.weight_body), std::log(p.xm), std::log(p.alpha),
          std::log(p.lambda)};
}

double Objective(const std::vector<double>& x,
                 const std::vector<PercentilePoint>& points) {
  const Params p = Decode(x);
  if (!std::isfinite(p.xm) || !std::isfinite(p.alpha) ||
      !std::isfinite(p.lambda) || p.weight_body <= 1e-6 ||
      p.weight_body >= 1.0 - 1e-6) {
    return std::numeric_limits<double>::max();
  }
  const auto dist =
      ParetoExponentialMixture(p.weight_body, p.xm, p.alpha, p.lambda);
  return QuantileNRmse(*dist, points);
}

}  // namespace

DistributionPtr ParetoExpFit::ToDistribution() const {
  return ParetoExponentialMixture(weight_body, xm, alpha, lambda);
}

std::string ParetoExpFit::Describe() const {
  return FormatDouble(100.0 * weight_body, 2) + "% Pareto(xm=" +
         FormatDouble(xm, 3) + ", alpha=" + FormatDouble(alpha, 3) + ") + " +
         FormatDouble(100.0 * (1.0 - weight_body), 2) +
         "% Exponential(lambda=" + FormatDouble(lambda, 4) +
         "), N-RMSE=" + FormatDouble(100.0 * n_rmse, 3) + "%";
}

double QuantileNRmse(const Distribution& dist,
                     const std::vector<PercentilePoint>& points) {
  std::vector<double> target;
  std::vector<double> model;
  target.reserve(points.size());
  model.reserve(points.size());
  for (const auto& pt : points) {
    target.push_back(pt.value);
    model.push_back(dist.Quantile(pt.percentile / 100.0));
  }
  return NormalizedRmse(target, model);
}

std::vector<double> NelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, double step, int max_iters) {
  const size_t n = x0.size();
  assert(n > 0);
  // Build the initial simplex.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (size_t i = 0; i < n; ++i) simplex[i + 1][i] += step;
  std::vector<double> values(n + 1);
  for (size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;

  for (int iter = 0; iter < max_iters; ++iter) {
    // Order vertices by objective value.
    std::vector<size_t> order(n + 1);
    for (size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const size_t best = order[0];
    const size_t worst = order[n];
    const size_t second_worst = order[n - 1];

    if (std::abs(values[worst] - values[best]) < 1e-14) break;

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](const std::vector<double>& from, double coeff) {
      std::vector<double> out(n);
      for (size_t d = 0; d < n; ++d) {
        out[d] = centroid[d] + coeff * (centroid[d] - from[d]);
      }
      return out;
    };

    // Reflect.
    const auto reflected = blend(simplex[worst], alpha);
    const double reflected_value = f(reflected);
    if (reflected_value < values[best]) {
      // Expand.
      const auto expanded = blend(simplex[worst], gamma);
      const double expanded_value = f(expanded);
      if (expanded_value < reflected_value) {
        simplex[worst] = expanded;
        values[worst] = expanded_value;
      } else {
        simplex[worst] = reflected;
        values[worst] = reflected_value;
      }
      continue;
    }
    if (reflected_value < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = reflected_value;
      continue;
    }
    // Contract.
    const auto contracted = blend(simplex[worst], -rho);
    const double contracted_value = f(contracted);
    if (contracted_value < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = contracted_value;
      continue;
    }
    // Shrink toward the best vertex.
    for (size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (size_t d = 0; d < n; ++d) {
        simplex[i][d] =
            simplex[best][d] + sigma * (simplex[i][d] - simplex[best][d]);
      }
      values[i] = f(simplex[i]);
    }
  }

  size_t best = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (values[i] < values[best]) best = i;
  }
  return simplex[best];
}

ParetoExpFit FitParetoExponential(const std::vector<PercentilePoint>& points,
                                  uint64_t seed, int restarts) {
  assert(points.size() >= 4);
  auto objective = [&points](const std::vector<double>& x) {
    return Objective(x, points);
  };

  // Data-driven starting guesses: the body scale near the median, the tail
  // rate near 1/(99th percentile).
  double median = points.front().value;
  double tail = points.back().value;
  for (const auto& pt : points) {
    if (pt.percentile <= 50.0) median = pt.value;
    tail = std::max(tail, pt.value);
  }
  median = std::max(median, 1e-6);
  tail = std::max(tail, median * 2.0);

  Rng rng(seed);
  std::vector<double> best_x;
  double best_value = std::numeric_limits<double>::max();
  for (int r = 0; r < restarts; ++r) {
    Params start;
    start.weight_body = 0.5 + 0.45 * (rng.NextDouble() * 2.0 - 1.0);
    start.xm = median * std::exp((rng.NextDouble() - 0.5) * 3.0);
    start.alpha = std::exp(rng.NextDouble() * 3.0 - 0.5);  // ~[0.6, 12]
    start.lambda = (1.0 / tail) * std::exp((rng.NextDouble() - 0.5) * 3.0);
    const auto x =
        NelderMead(objective, Encode(start), /*step=*/0.5, /*max_iters=*/600);
    const double value = objective(x);
    if (value < best_value) {
      best_value = value;
      best_x = x;
    }
  }

  const Params p = Decode(best_x);
  ParetoExpFit fit;
  fit.weight_body = p.weight_body;
  fit.xm = p.xm;
  fit.alpha = p.alpha;
  fit.lambda = p.lambda;
  fit.n_rmse = best_value;
  return fit;
}

}  // namespace pbs
