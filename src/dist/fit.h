#ifndef PBS_DIST_FIT_H_
#define PBS_DIST_FIT_H_

#include <functional>
#include <string>
#include <vector>

#include "dist/distribution.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pbs {

/// Result of fitting a Pareto-body + Exponential-tail mixture to a table of
/// latency percentiles — the methodology the paper uses to turn the LinkedIn
/// and Yammer summary statistics (Tables 1-2) into samplable models
/// (Table 3). The paper reports fit quality as N-RMSE over the percentile
/// points; so do we.
struct ParetoExpFit {
  double weight_body;  // mixture weight of the Pareto component
  double xm;           // Pareto scale
  double alpha;        // Pareto shape
  double lambda;       // Exponential rate of the tail component
  double n_rmse;       // normalized RMSE of model quantiles vs the table

  DistributionPtr ToDistribution() const;
  std::string Describe() const;
};

/// Fits a Pareto+Exponential mixture to (percentile, value) points by
/// minimizing the normalized RMSE of the model's quantiles at those
/// percentiles. Uses multi-start Nelder-Mead in a transformed (unconstrained)
/// parameter space; deterministic given `seed`.
///
/// `points` need at least four entries (the model has four parameters);
/// percentiles are in [0, 100] and values must be positive and
/// non-decreasing in percentile.
ParetoExpFit FitParetoExponential(const std::vector<PercentilePoint>& points,
                                  uint64_t seed = 42,
                                  int restarts = 24);

/// Normalized RMSE of `dist`'s quantiles against the percentile table;
/// the paper's fit-quality metric.
double QuantileNRmse(const Distribution& dist,
                     const std::vector<PercentilePoint>& points);

/// Generic Nelder-Mead simplex minimizer (exposed for tests and for fitting
/// other model families). Minimizes `f` starting from `x0` with initial
/// simplex step `step`; runs at most `max_iters` iterations.
std::vector<double> NelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, double step, int max_iters);

}  // namespace pbs

#endif  // PBS_DIST_FIT_H_
