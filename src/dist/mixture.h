#ifndef PBS_DIST_MIXTURE_H_
#define PBS_DIST_MIXTURE_H_

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace pbs {

/// Weighted mixture of component distributions.
///
/// Every production latency fit in the paper (Table 3) is a two-component
/// mixture: a Pareto body plus an exponential tail, e.g. LNKD-SSD is
/// "91.22% Pareto(xm=.235, alpha=10), 8.78% Exponential(lambda=1.66)".
class MixtureDistribution final : public Distribution {
 public:
  struct Component {
    double weight;  // > 0; weights are normalized at construction
    DistributionPtr distribution;
  };

  explicit MixtureDistribution(std::vector<Component> components);

  /// Samples by first picking a component (probability = weight) and then
  /// sampling it — the standard composition method.
  double Sample(Rng& rng) const override;

  double Cdf(double x) const override;
  /// Inverse CDF by bisection (mixture quantiles have no closed form).
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  const std::vector<Component>& components() const { return components_; }

 private:
  std::vector<Component> components_;
};

/// Convenience factory.
DistributionPtr Mixture(std::vector<MixtureDistribution::Component> parts);

/// The paper's recurring shape: `weight_body` Pareto(xm, alpha) +
/// (1 - weight_body) Exponential(lambda).
DistributionPtr ParetoExponentialMixture(double weight_body, double xm,
                                         double alpha, double lambda);

}  // namespace pbs

#endif  // PBS_DIST_MIXTURE_H_
