#ifndef PBS_DIST_MIXTURE_H_
#define PBS_DIST_MIXTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace pbs {

/// Weighted mixture of component distributions.
///
/// Every production latency fit in the paper (Table 3) is a two-component
/// mixture: a Pareto body plus an exponential tail, e.g. LNKD-SSD is
/// "91.22% Pareto(xm=.235, alpha=10), 8.78% Exponential(lambda=1.66)".
class MixtureDistribution final : public Distribution {
 public:
  struct Component {
    double weight;  // > 0; weights are normalized at construction
    DistributionPtr distribution;
  };

  explicit MixtureDistribution(std::vector<Component> components);

  /// Samples by first picking a component (probability = weight) and then
  /// sampling it — the standard composition method. Component selection is
  /// O(1) via a Walker/Vose alias table built once in the constructor; the
  /// selection consumes exactly one uniform draw, like the linear scan it
  /// replaced, but maps that draw to components differently, so sampled
  /// sequences differ from pre-alias-table versions for the same seed (the
  /// distribution is identical).
  double Sample(Rng& rng) const override;

  void SampleBatch(Rng& rng, std::span<double> out) const override;

  double Cdf(double x) const override;
  /// Inverse CDF by bisection (mixture quantiles have no closed form).
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  const std::vector<Component>& components() const { return components_; }

  /// Maps one uniform draw in [0, 1) to a component index with probability
  /// proportional to the component weights (alias method). Exposed so the
  /// compiled sampler plans can reuse the exact same table.
  size_t PickComponent(double u) const {
    const size_t k = components_.size();
    const double scaled = u * static_cast<double>(k);
    size_t idx = static_cast<size_t>(scaled);
    if (idx >= k) idx = k - 1;  // u < 1 always; guards rounding at the edge
    const double frac = scaled - static_cast<double>(idx);
    return frac < alias_prob_[idx] ? idx : alias_[idx];
  }

  const std::vector<double>& alias_prob() const { return alias_prob_; }
  const std::vector<uint32_t>& alias() const { return alias_; }

 private:
  std::vector<Component> components_;
  // Walker/Vose alias table over components_: cell i holds probability
  // alias_prob_[i] of choosing i itself and otherwise redirects to alias_[i].
  std::vector<double> alias_prob_;
  std::vector<uint32_t> alias_;
};

/// Convenience factory.
DistributionPtr Mixture(std::vector<MixtureDistribution::Component> parts);

/// The paper's recurring shape: `weight_body` Pareto(xm, alpha) +
/// (1 - weight_body) Exponential(lambda).
DistributionPtr ParetoExponentialMixture(double weight_body, double xm,
                                         double alpha, double lambda);

}  // namespace pbs

#endif  // PBS_DIST_MIXTURE_H_
