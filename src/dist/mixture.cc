#include "dist/mixture.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "dist/primitives.h"
#include "util/stats.h"

namespace pbs {

MixtureDistribution::MixtureDistribution(std::vector<Component> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    assert(c.weight > 0.0);
    assert(c.distribution != nullptr);
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;

  // Build the Walker/Vose alias table: O(k) setup for O(1) selection.
  // Cells with scaled weight < 1 ("small") are topped up by donors with
  // scaled weight > 1 ("large"); each cell ends up split between at most two
  // components.
  const size_t k = components_.size();
  alias_prob_.assign(k, 1.0);
  alias_.resize(k);
  std::vector<double> scaled(k);
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < k; ++i) {
    alias_[i] = static_cast<uint32_t>(i);
    scaled[i] = components_[i].weight * static_cast<double>(k);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    const uint32_t l = large.back();
    small.pop_back();
    alias_prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (either list) are within rounding of exactly 1.
  for (const uint32_t i : small) alias_prob_[i] = 1.0;
  for (const uint32_t i : large) alias_prob_[i] = 1.0;
}

double MixtureDistribution::Sample(Rng& rng) const {
  const size_t k = PickComponent(rng.NextDouble());
  return components_[k].distribution->Sample(rng);
}

void MixtureDistribution::SampleBatch(Rng& rng, std::span<double> out) const {
  // Per-sample order must match Sample() (select draw, then component
  // draws), so component draws cannot be regrouped into per-component
  // batches here; the alias select still removes the linear scan, and the
  // compiled sampler plans (dist/sampler.h) handle the closed-form mixtures
  // with a genuinely batched kernel.
  for (double& x : out) {
    const size_t k = PickComponent(rng.NextDouble());
    x = components_[k].distribution->Sample(rng);
  }
}

double MixtureDistribution::Cdf(double x) const {
  double cdf = 0.0;
  for (const auto& c : components_) cdf += c.weight * c.distribution->Cdf(x);
  return cdf;
}

double MixtureDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Bracket with component quantiles to seed bisection.
  double hi = 0.0;
  for (const auto& c : components_) {
    const double q = c.distribution->Quantile(std::min(p, 1.0 - 1e-15));
    if (std::isfinite(q)) hi = std::max(hi, q);
  }
  return QuantileByBisection(*this, p, 0.0, std::max(hi, 1.0));
}

double MixtureDistribution::Mean() const {
  double mean = 0.0;
  for (const auto& c : components_) {
    mean += c.weight * c.distribution->Mean();
  }
  return mean;
}

std::string MixtureDistribution::Describe() const {
  std::string out = "Mixture[";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i) out += ", ";
    out += FormatDouble(100.0 * components_[i].weight, 2) + "% " +
           components_[i].distribution->Describe();
  }
  out += "]";
  return out;
}

DistributionPtr Mixture(std::vector<MixtureDistribution::Component> parts) {
  return std::make_shared<MixtureDistribution>(std::move(parts));
}

DistributionPtr ParetoExponentialMixture(double weight_body, double xm,
                                         double alpha, double lambda) {
  assert(weight_body > 0.0 && weight_body < 1.0);
  return Mixture({{weight_body, Pareto(xm, alpha)},
                  {1.0 - weight_body, Exponential(lambda)}});
}

}  // namespace pbs
