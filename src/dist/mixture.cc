#include "dist/mixture.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "dist/primitives.h"
#include "util/stats.h"

namespace pbs {

MixtureDistribution::MixtureDistribution(std::vector<Component> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    assert(c.weight > 0.0);
    assert(c.distribution != nullptr);
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;
}

double MixtureDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  for (const auto& c : components_) {
    if (u < c.weight) return c.distribution->Sample(rng);
    u -= c.weight;
  }
  // Rounding fell off the end; use the last component.
  return components_.back().distribution->Sample(rng);
}

double MixtureDistribution::Cdf(double x) const {
  double cdf = 0.0;
  for (const auto& c : components_) cdf += c.weight * c.distribution->Cdf(x);
  return cdf;
}

double MixtureDistribution::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Bracket with component quantiles to seed bisection.
  double hi = 0.0;
  for (const auto& c : components_) {
    const double q = c.distribution->Quantile(std::min(p, 1.0 - 1e-15));
    if (std::isfinite(q)) hi = std::max(hi, q);
  }
  return QuantileByBisection(*this, p, 0.0, std::max(hi, 1.0));
}

double MixtureDistribution::Mean() const {
  double mean = 0.0;
  for (const auto& c : components_) {
    mean += c.weight * c.distribution->Mean();
  }
  return mean;
}

std::string MixtureDistribution::Describe() const {
  std::string out = "Mixture[";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i) out += ", ";
    out += FormatDouble(100.0 * components_[i].weight, 2) + "% " +
           components_[i].distribution->Describe();
  }
  out += "]";
  return out;
}

DistributionPtr Mixture(std::vector<MixtureDistribution::Component> parts) {
  return std::make_shared<MixtureDistribution>(std::move(parts));
}

DistributionPtr ParetoExponentialMixture(double weight_body, double xm,
                                         double alpha, double lambda) {
  assert(weight_body > 0.0 && weight_body < 1.0);
  return Mixture({{weight_body, Pareto(xm, alpha)},
                  {1.0 - weight_body, Exponential(lambda)}});
}

}  // namespace pbs
