#ifndef PBS_DIST_SAMPLER_H_
#define PBS_DIST_SAMPLER_H_

#include <memory>
#include <string>
#include <vector>

#include "dist/distribution.h"
#include "dist/mixture.h"
#include "dist/production.h"
#include "util/rng.h"

namespace pbs {

/// CompiledSampler: a devirtualized, batch-oriented sampler compiled from a
/// Distribution tree at construction time.
///
/// The WARS Monte Carlo draws 4N leg latencies per trial from a handful of
/// distribution objects. Going through Distribution::Sample costs a virtual
/// dispatch, a libm call (log/pow/exp), and — for mixtures — a per-sample
/// linear scan, per draw. CompiledSampler walks the tree once, folds affine
/// wrappers (Shifted/Scaled) into precomputed constants, classifies the
/// terminal node into a small op enum, and emits samples through pass-
/// structured loops over the fast log2/exp2 kernels in util/fastmath.h that
/// the autovectorizer can handle.
///
/// RNG-consumption contract (v2): every compiled kind consumes exactly ONE
/// NextDouble() per sample — including point masses (which burn a draw) and
/// mixtures (component selection reuses fractional bits of the same draw
/// instead of drawing twice like MixtureDistribution::Sample). kGeneric falls
/// back to Distribution::SampleBatch and consumes whatever the virtual path
/// consumes. Sampled values match the virtual path's distribution to within
/// the fastmath tolerance (~4e-6 relative), verified by KS tests; exact
/// sequences differ from the virtual path for the same seed.
class CompiledSampler {
 public:
  explicit CompiledSampler(DistributionPtr dist);

  /// Fills out[0..n) with independent samples.
  void SampleBatch(Rng& rng, double* out, int n) const;

  /// True when the hot path is fully devirtualized (no fallback on the
  /// virtual Distribution interface per sample).
  bool is_compiled() const { return kind_ != Kind::kGeneric; }

  /// The distribution this sampler was compiled from.
  const DistributionPtr& source() const { return source_; }

  /// "compiled(ParetoExpMixture)" etc. — for plan descriptions and tests.
  std::string Describe() const;

 private:
  enum class Kind : uint8_t {
    kPointMass,
    kUniform,
    kExponential,
    kPareto,
    kWeibull,
    kLogNormal,
    kTruncatedNormal,
    kParetoExpMixture,  // the paper's Table 3 shape: Pareto body + exp tail
    kAliasMixture,      // general mixture, one-draw alias select
    kGeneric,           // anything else: defer to Distribution::SampleBatch
  };

  Kind kind_ = Kind::kGeneric;

  // Affine fold: every compiled kind emits scale * raw + offset, with scale
  // pre-multiplied into the kind constants below where possible.
  double offset_ = 0.0;

  // kPointMass: out = c0_. kUniform: out = c0_ + c1_ * u.
  // kExponential: out = c0_ * log2(1-u) + offset_   (c0_ = -scale*ln2/lambda)
  // kPareto: out = c0_ * exp2(c1_ * log2(1-u)) + offset_
  //          (c0_ = scale*xm, c1_ = -1/alpha)
  // kWeibull: out = c0_ * exp2(c1_ * log2(-ln(1-u))) + offset_
  //           (c0_ = scale*scale, c1_ = 1/shape)
  // kLogNormal: out = scale*exp(c0_ + c1_*z) + offset_, z = InvNormCdf(u)
  //             (c0_ = mu, c1_ = sigma; scale folded via c2_ = scale)
  // kTruncatedNormal: c0_ = mu, c1_ = sigma, c2_ = scale,
  //                   c3_ = below-zero mass of the untruncated normal.
  double c0_ = 0.0;
  double c1_ = 0.0;
  double c2_ = 0.0;
  double c3_ = 0.0;

  // kParetoExpMixture: one-draw threshold select between the Pareto body and
  // the exponential tail, then the three-pass fused kernel.
  double mix_wp_ = 0.0;      // probability of the Pareto side
  double mix_sub_[2] = {0.0, 0.0};
  double mix_inv_[2] = {0.0, 0.0};
  double pe_s_ = 0.0;        // scale * xm
  double pe_c_ = 0.0;        // -1/alpha
  double pe_e_ = 0.0;        // -scale*ln2/lambda

  // kAliasMixture: alias table + components live in the mixture object.
  std::shared_ptr<const MixtureDistribution> alias_mix_;
  double alias_scale_ = 1.0;

  DistributionPtr source_;   // always the original tree
  DistributionPtr generic_;  // kGeneric fallback target (== source_)
};

/// SamplerPlan: the four WARS legs compiled into a flat run-length table.
///
/// A plan maps each leg (W, A, R, S) to a deduplicated CompiledSampler and
/// merges consecutive legs that share a distribution object into one run, so
/// e.g. LNKD-SSD (all four legs share one mixture) samples all 4N leg values
/// of a trial in a single batched kernel invocation.
///
/// SampleLegs fills a leg-major SoA block: legs[0..n) = W, legs[n..2n) = A,
/// legs[2n..3n) = R, legs[3n..4n) = S. Draws are consumed in exactly that
/// order (leg-major, one draw per value), regardless of how runs are merged.
class SamplerPlan {
 public:
  SamplerPlan() = default;
  explicit SamplerPlan(const WarsDistributions& wars);

  /// Fills legs[0..4n) with one trial's leg latencies for n replicas,
  /// leg-major: [w_0..w_{n-1} | a_* | r_* | s_*].
  void SampleLegs(Rng& rng, int n, double* legs) const;

  /// True when every leg runs on a devirtualized kernel.
  bool fully_compiled() const;

  /// Number of batched kernel invocations per trial (1 when all four legs
  /// share one distribution, up to 4 otherwise).
  int num_runs() const { return static_cast<int>(runs_.size()); }

  std::string Describe() const;

 private:
  struct Run {
    int sampler;    // index into samplers_
    int first_leg;  // 0 = W, 1 = A, 2 = R, 3 = S
    int num_legs;   // consecutive legs sharing this sampler
  };

  std::vector<CompiledSampler> samplers_;  // deduped by source object
  std::vector<Run> runs_;
};

}  // namespace pbs

#endif  // PBS_DIST_SAMPLER_H_
