#include "dist/empirical.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/stats.h"

namespace pbs {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  assert(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::Sample(Rng& rng) const {
  return sorted_[rng.NextBounded(sorted_.size())];
}

void EmpiricalDistribution::SampleBatch(Rng& rng,
                                        std::span<double> out) const {
  // Resampling is a bounded-integer draw plus a gather; nothing to fuse, but
  // the devirtualized loop drops a virtual call per sample.
  const size_t n = sorted_.size();
  for (double& x : out) x = sorted_[rng.NextBounded(n)];
}

double EmpiricalDistribution::Cdf(double x) const {
  return EcdfSorted(sorted_, x);
}

double EmpiricalDistribution::Quantile(double p) const {
  return QuantileSorted(sorted_, p);
}

std::string EmpiricalDistribution::Describe() const {
  return "Empirical(n=" + std::to_string(sorted_.size()) + ")";
}

DistributionPtr Empirical(std::vector<double> samples) {
  return std::make_shared<EmpiricalDistribution>(std::move(samples));
}

}  // namespace pbs
