#include "dist/production.h"

#include "dist/mixture.h"

namespace pbs {
namespace {

DistributionPtr LnkdSsdLeg() {
  // Table 3, LNKD-SSD: 91.22% Pareto(xm=.235, alpha=10),
  // 8.78% Exponential(lambda=1.66).
  return ParetoExponentialMixture(0.9122, 0.235, 10.0, 1.66);
}

DistributionPtr LnkdDiskWrite() {
  // Table 3, LNKD-DISK W: 38% Pareto(xm=1.05, alpha=1.51),
  // 62% Exponential(lambda=.183).
  return ParetoExponentialMixture(0.38, 1.05, 1.51, 0.183);
}

DistributionPtr YmmrWrite() {
  // Table 3, YMMR W: 93.9% Pareto(xm=3, alpha=3.35),
  // 6.1% Exponential(lambda=.0028).
  return ParetoExponentialMixture(0.939, 3.0, 3.35, 0.0028);
}

DistributionPtr YmmrArs() {
  // Table 3, YMMR A=R=S: 98.2% Pareto(xm=1.5, alpha=3.8),
  // 1.8% Exponential(lambda=.0217).
  return ParetoExponentialMixture(0.982, 1.5, 3.8, 0.0217);
}

}  // namespace

WarsDistributions MakeWars(std::string name, DistributionPtr w,
                           DistributionPtr ars) {
  WarsDistributions out;
  out.name = std::move(name);
  out.w = std::move(w);
  out.a = ars;
  out.r = ars;
  out.s = std::move(ars);
  return out;
}

WarsDistributions LnkdSsd() {
  auto leg = LnkdSsdLeg();
  return MakeWars("LNKD-SSD", leg, leg);
}

WarsDistributions LnkdDisk() {
  return MakeWars("LNKD-DISK", LnkdDiskWrite(), LnkdSsdLeg());
}

WarsDistributions Ymmr() { return MakeWars("YMMR", YmmrWrite(), YmmrArs()); }

WarsDistributions WanLocalBase() {
  WarsDistributions base = LnkdDisk();
  base.name = "WAN";
  return base;
}

std::vector<WarsDistributions> AllIidProductionFits() {
  return {LnkdSsd(), LnkdDisk(), Ymmr()};
}

std::vector<PercentilePoint> LinkedInDiskPercentiles() {
  // Table 1, 15,000 RPM SAS disk. The paper publishes the mean (4.85 ms) and
  // two percentiles; we add the implied body points used for fitting
  // context: min latency of a disk-bound store ~ the controller overhead.
  return {{50.0, 4.85}, {95.0, 15.0}, {99.0, 25.0}, {99.9, 45.0}};
}

std::vector<PercentilePoint> LinkedInSsdPercentiles() {
  // Table 1, commodity SSD: average 0.58 ms, 95th = 1 ms, 99th = 2 ms.
  return {{50.0, 0.58}, {95.0, 1.0}, {99.0, 2.0}, {99.9, 3.0}};
}

std::vector<PercentilePoint> YammerReadPercentiles() {
  // Table 2, reads.
  return {{0.0, 1.55},   {50.0, 3.75}, {75.0, 4.17}, {95.0, 5.2},
          {98.0, 6.045}, {99.0, 6.59}, {99.9, 32.89}};
}

std::vector<PercentilePoint> YammerWritePercentiles() {
  // Table 2, writes. The 99th/99.9th capture the fsync-bound tail the paper
  // discusses ("writes rarely are [sub-millisecond]").
  return {{0.0, 1.68},   {50.0, 5.73},   {75.0, 6.50}, {95.0, 8.48},
          {98.0, 10.36}, {99.0, 131.73}, {99.9, 435.83}};
}

}  // namespace pbs
