#ifndef PBS_DIST_PRODUCTION_H_
#define PBS_DIST_PRODUCTION_H_

#include <string>
#include <vector>

#include "dist/distribution.h"
#include "util/stats.h"

namespace pbs {

/// The four one-way message delay distributions of the WARS model
/// (Section 4.1 of the paper):
///   W — coordinator -> replica write propagation,
///   A — replica -> coordinator write acknowledgment,
///   R — coordinator -> replica read request,
///   S — replica -> coordinator read response.
/// All delays are in milliseconds throughout the library.
struct WarsDistributions {
  std::string name;
  DistributionPtr w;
  DistributionPtr a;
  DistributionPtr r;
  DistributionPtr s;
};

/// Convenience: W gets its own distribution, A=R=S share one — the shape the
/// paper uses for every synthetic sweep ("W = exp(lambda_w), A=R=S =
/// exp(lambda)").
WarsDistributions MakeWars(std::string name, DistributionPtr w,
                           DistributionPtr ars);

// --------------------------------------------------------------------------
// Production latency fits (Table 3 of the paper).

/// LNKD-SSD: LinkedIn Voldemort on SSDs. W = A = R = S =
/// 91.22% Pareto(xm=.235, alpha=10) + 8.78% Exponential(lambda=1.66).
WarsDistributions LnkdSsd();

/// LNKD-DISK: LinkedIn Voldemort on 15k SAS disks. W =
/// 38% Pareto(xm=1.05, alpha=1.51) + 62% Exponential(lambda=.183);
/// A = R = S as in LNKD-SSD.
WarsDistributions LnkdDisk();

/// YMMR: Yammer Riak. W = 93.9% Pareto(xm=3, alpha=3.35) +
/// 6.1% Exponential(lambda=.0028); A = R = S = 98.2% Pareto(xm=1.5,
/// alpha=3.8) + 1.8% Exponential(lambda=.0217).
WarsDistributions Ymmr();

/// One-way inter-datacenter delay used by the paper's WAN scenario
/// (Section 5.5): remote messages are delayed by 75 ms and then experience
/// LNKD-DISK delays inside the remote datacenter.
inline constexpr double kWanOneWayDelayMs = 75.0;

/// The local-datacenter component of the WAN scenario (= LNKD-DISK). The
/// per-replica WAN latency model lives in core/wars.h; it shifts every
/// message leg of each remote replica by kWanOneWayDelayMs.
WarsDistributions WanLocalBase();

/// All four named production scenarios in paper order:
/// LNKD-SSD, LNKD-DISK, YMMR (WAN is constructed via
/// MakeWanLatencyModel in core/wars.h because it is per-replica).
std::vector<WarsDistributions> AllIidProductionFits();

// --------------------------------------------------------------------------
// Raw published percentile tables (Tables 1-2 of the paper); ground truth
// for the fitting experiment (bench/table3_fits).

/// Table 1, spinning disk: single-node Voldemort latencies (ms).
std::vector<PercentilePoint> LinkedInDiskPercentiles();

/// Table 1, commodity SSD.
std::vector<PercentilePoint> LinkedInSsdPercentiles();

/// Table 2, Riak read latency percentiles (ms).
std::vector<PercentilePoint> YammerReadPercentiles();

/// Table 2, Riak write latency percentiles (ms). The paper fits the 98th
/// percentile knee conservatively; the full table is provided here.
std::vector<PercentilePoint> YammerWritePercentiles();

}  // namespace pbs

#endif  // PBS_DIST_PRODUCTION_H_
