#ifndef PBS_DIST_PRIMITIVES_H_
#define PBS_DIST_PRIMITIVES_H_

#include <string>

#include "dist/distribution.h"

namespace pbs {

/// Exponential(lambda): rate parameterization; mean = 1/lambda. The paper
/// writes e.g. "W = lambda in {0.05, 0.1, 0.2} (means 20ms, 10ms, 5ms)".
class ExponentialDistribution final : public Distribution {
 public:
  explicit ExponentialDistribution(double lambda);

  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override { return 1.0 / lambda_; }
  std::string Describe() const override;

  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// Pareto(xm, alpha): support [xm, inf), Cdf(x) = 1 - (xm/x)^alpha. The body
/// of every production latency fit in Table 3 of the paper.
class ParetoDistribution final : public Distribution {
 public:
  ParetoDistribution(double xm, double alpha);

  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  double xm() const { return xm_; }
  double alpha() const { return alpha_; }

 private:
  double xm_;
  double alpha_;
};

/// Uniform on [lo, hi].
class UniformDistribution final : public Distribution {
 public:
  UniformDistribution(double lo, double hi);

  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  std::string Describe() const override;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

/// Normal(mu, sigma) truncated below at zero (latencies are non-negative).
/// Cdf/Quantile/Mean account for the truncation.
class TruncatedNormalDistribution final : public Distribution {
 public:
  TruncatedNormalDistribution(double mu, double sigma);

  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
  double below_zero_;  // mass of the untruncated normal below 0
};

/// LogNormal: log X ~ Normal(mu, sigma).
class LogNormalDistribution final : public Distribution {
 public:
  LogNormalDistribution(double mu, double sigma);

  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Weibull(shape, scale).
class WeibullDistribution final : public Distribution {
 public:
  WeibullDistribution(double shape, double scale);

  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Degenerate distribution: always `value`. Useful for tests and for
/// modeling fixed network delays.
class PointMassDistribution final : public Distribution {
 public:
  explicit PointMassDistribution(double value);

  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override { return value_; }
  std::string Describe() const override;

  double value() const { return value_; }

 private:
  double value_;
};

/// base + offset (offset >= 0): e.g. a WAN hop adds a fixed 75 ms to every
/// one-way message delay.
class ShiftedDistribution final : public Distribution {
 public:
  ShiftedDistribution(DistributionPtr base, double offset);

  double Sample(Rng& rng) const override;
  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  const DistributionPtr& base() const { return base_; }
  double offset() const { return offset_; }

 private:
  DistributionPtr base_;
  double offset_;
};

/// base * factor (factor > 0).
class ScaledDistribution final : public Distribution {
 public:
  ScaledDistribution(DistributionPtr base, double factor);

  double Sample(Rng& rng) const override;
  void SampleBatch(Rng& rng, std::span<double> out) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;
  std::string Describe() const override;

  const DistributionPtr& base() const { return base_; }
  double factor() const { return factor_; }

 private:
  DistributionPtr base_;
  double factor_;
};

// Factory helpers (return shared, immutable instances).
DistributionPtr Exponential(double lambda);
DistributionPtr Pareto(double xm, double alpha);
DistributionPtr Uniform(double lo, double hi);
DistributionPtr TruncatedNormal(double mu, double sigma);
DistributionPtr LogNormal(double mu, double sigma);
DistributionPtr Weibull(double shape, double scale);
DistributionPtr PointMass(double value);
DistributionPtr Shifted(DistributionPtr base, double offset);
DistributionPtr Scaled(DistributionPtr base, double factor);

}  // namespace pbs

#endif  // PBS_DIST_PRIMITIVES_H_
