#include "dist/distribution.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace pbs {

double Distribution::Sample(Rng& rng) const {
  return Quantile(rng.NextDouble());
}

void Distribution::SampleBatch(Rng& rng, std::span<double> out) const {
  for (double& x : out) x = Sample(rng);
}

double QuantileByBisection(const Distribution& dist, double p, double lo_hint,
                           double hi_hint, double tol) {
  assert(p >= 0.0 && p <= 1.0);
  double lo = lo_hint;
  double hi = hi_hint;
  // Expand the bracket until it contains the target probability.
  while (dist.Cdf(hi) < p && hi < 1e18) hi = (hi == 0.0) ? 1.0 : hi * 2.0;
  while (dist.Cdf(lo) > p && lo > -1e18) {
    lo = (lo == 0.0) ? -1.0 : (lo > 0.0 ? lo / 2.0 : lo * 2.0);
  }
  for (int i = 0; i < 200 && (hi - lo) > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (dist.Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double InverseNormalCdf(double p) {
  // Peter Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace pbs
