// pbs — command-line front end to the PBS library.
//
//   pbs predict  --n=3 --r=1 --w=1 [--scenario=lnkd-disk] [--trials=200000]
//   pbs sla      --max-t=15 --prob=0.999 [--min-w=1] [--max-n=5]
//                [--read-fraction=0.8] [--scenario=...]
//   pbs levels   --n=3 --read=one --write=quorum [--scenario=...]
//   pbs fit      --trace=w.txt            (fit Pareto+Exp mixture to samples)
//   pbs simulate --n=3 --r=1 --w=1 [--writes=5000] [--read-repair]
//                [--anti-entropy-ms=0] [--scenario=...]
//                [--fanout=all|quorum] [--phi-detector]
//                [--hedge] [--hedge-quantile=0.99] [--hedge-delay-ms=0]
//                [--deadline-ms=0] [--retries=1] [--downgrade-on-retry]
//                [--fault=SPEC[;SPEC...]]
//   pbs predict-trace --w=w.txt --a=a.txt --rr=r.txt --s=s.txt --n=3 --r=1
//                --w-quorum=1       (predict from measured leg traces)
//
// Fault SPECs (gray-failure injection; times default to the whole run):
//   slow:node=2,factor=10[,add=0]      outbound delays of node scaled/shifted
//   lossy:src=0,dst=4,loss=0.8[,g2b=0.02,b2g=0.2]   Gilbert-Elliott bursts
//   dup:src=0,dst=4[,p=1]              duplicate delivery on a link
//   flap:node=2,up=300,down=200        crash/recover cycling
//   oneway:src=0,dst=4                 one-way partition (src->dst dropped)
//   gray:seed=7[,interarrival=4000,duration=1500]   seeded random mix
// Example: --fault=slow:node=2,factor=10 --hedge --hedge-quantile=0.99
//
// Scenarios: lnkd-ssd | lnkd-disk | ymmr | wan (Table 3 fits of the paper).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/analytic.h"
#include "core/predictor.h"
#include "core/sla.h"
#include "dist/fit.h"
#include "dist/trace.h"
#include "kvs/consistency_level.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pbs;

/// Minimal --key=value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        ok_ = false;
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  bool ok() const { return ok_; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return values_.count(key) && values_.at(key) != "false";
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

WarsDistributions ScenarioLegs(const std::string& name) {
  if (name == "lnkd-ssd") return LnkdSsd();
  if (name == "lnkd-disk") return LnkdDisk();
  if (name == "ymmr") return Ymmr();
  if (name == "wan") return WanLocalBase();  // per-replica model added below
  std::cerr << "unknown scenario '" << name
            << "' (expected lnkd-ssd|lnkd-disk|ymmr|wan); using lnkd-disk\n";
  return LnkdDisk();
}

ReplicaLatencyModelPtr ScenarioModel(const std::string& name, int n) {
  if (name == "wan") return MakeWanModel(WanLocalBase(), n);
  return MakeIidModel(ScenarioLegs(name), n);
}

StatusOr<kvs::ConsistencyLevel> ParseLevel(const std::string& text) {
  if (text == "one") return kvs::ConsistencyLevel::kOne;
  if (text == "two") return kvs::ConsistencyLevel::kTwo;
  if (text == "three") return kvs::ConsistencyLevel::kThree;
  if (text == "quorum") return kvs::ConsistencyLevel::kQuorum;
  if (text == "all") return kvs::ConsistencyLevel::kAll;
  return Status::InvalidArgument("unknown consistency level: " + text);
}

void PrintPrediction(const QuorumConfig& config,
                     const ReplicaLatencyModelPtr& model, int trials) {
  PredictorOptions options;
  options.trials = trials;
  PbsPredictor predictor(config, model, options);
  std::printf("%s (%s)\n", config.ToString().c_str(),
              config.IsStrict() ? "strict" : "partial");
  TextTable table({"metric", "value"});
  table.AddRow({"P(consistent, t=0)",
                FormatDouble(predictor.ProbConsistent(0.0), 4)});
  table.AddRow({"P(consistent, t=10ms)",
                FormatDouble(predictor.ProbConsistent(10.0), 4)});
  table.AddRow({"t-visibility @ 99.9% (ms)",
                FormatDouble(predictor.TimeForConsistency(0.999), 2)});
  table.AddRow({"P(within 2 versions)",
                FormatDouble(predictor.KFreshness(2), 4)});
  table.AddRow({"read latency p99.9 (ms)",
                FormatDouble(predictor.ReadLatencyPercentile(99.9), 2)});
  table.AddRow({"write latency p99.9 (ms)",
                FormatDouble(predictor.WriteLatencyPercentile(99.9), 2)});
  table.Print(std::cout);
}

int CmdPredict(const Args& args) {
  const QuorumConfig config{args.GetInt("n", 3), args.GetInt("r", 1),
                            args.GetInt("w", 1)};
  const Status valid = ValidateQuorumConfig(config);
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  PrintPrediction(config, ScenarioModel(scenario, config.n),
                  args.GetInt("trials", 200000));
  return 0;
}

int CmdSla(const Args& args) {
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  SlaOptimizer optimizer(
      [&scenario](int n) { return ScenarioModel(scenario, n); },
      args.GetInt("trials", 50000), /*seed=*/42);
  SlaConstraints constraints;
  constraints.min_n = args.GetInt("min-n", 2);
  constraints.max_n = args.GetInt("max-n", 5);
  constraints.min_write_quorum = args.GetInt("min-w", 1);
  constraints.consistency_probability = args.GetDouble("prob", 0.999);
  constraints.max_t_visibility_ms = args.GetDouble("max-t", 10.0);
  SlaObjective objective;
  const double read_fraction = args.GetDouble("read-fraction", 0.5);
  objective.read_weight = read_fraction;
  objective.write_weight = 1.0 - read_fraction;
  const auto best = optimizer.Optimize(constraints, objective);
  if (!best.ok()) {
    std::cout << "no configuration satisfies the SLA: "
              << best.status().message() << "\n";
    return 1;
  }
  const auto& c = best.value();
  std::printf(
      "best: %s — t@%.2f%%: %.2f ms, Lr %.2f ms, Lw %.2f ms "
      "(objective %.2f ms)\n",
      c.config.ToString().c_str(),
      100.0 * constraints.consistency_probability, c.t_visibility_ms,
      c.read_latency_ms, c.write_latency_ms, c.objective);
  return 0;
}

int CmdLevels(const Args& args) {
  const int n = args.GetInt("n", 3);
  const auto read_level = ParseLevel(args.GetString("read", "one"));
  const auto write_level = ParseLevel(args.GetString("write", "one"));
  if (!read_level.ok() || !write_level.ok()) {
    std::cerr << (read_level.ok() ? write_level.status().message()
                                  : read_level.status().message())
              << "\n";
    return 1;
  }
  const auto config =
      kvs::MakeQuorumConfig(n, read_level.value(), write_level.value());
  if (!config.ok()) {
    std::cerr << config.status().message() << "\n";
    return 1;
  }
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  std::printf("consistency levels %s/%s at N=%d =>\n",
              kvs::ToString(read_level.value()).c_str(),
              kvs::ToString(write_level.value()).c_str(), n);
  PrintPrediction(config.value(), ScenarioModel(scenario, n),
                  args.GetInt("trials", 200000));
  return 0;
}

int CmdFit(const Args& args) {
  const std::string path = args.GetString("trace", "");
  if (path.empty()) {
    std::cerr << "--trace=<file> required (one latency per line)\n";
    return 1;
  }
  const auto samples = LoadLatencyTrace(path);
  if (!samples.ok()) {
    std::cerr << samples.status().message() << "\n";
    return 1;
  }
  std::vector<PercentilePoint> points;
  auto sorted = samples.value();
  std::sort(sorted.begin(), sorted.end());
  for (double pct : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    points.push_back({pct, QuantileSorted(sorted, pct / 100.0)});
  }
  const ParetoExpFit fit = FitParetoExponential(points);
  std::cout << "fit over " << sorted.size() << " samples:\n  "
            << fit.Describe() << "\n";
  return 0;
}

/// Parses one `kind:key=val,key=val` fault spec into `schedule`. Returns
/// false (with a message on stderr) on malformed input.
bool ParseFaultSpec(const std::string& spec, double horizon,
                    kvs::FaultSchedule* schedule) {
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::map<std::string, double> kv;
  if (colon != std::string::npos) {
    std::string rest = spec.substr(colon + 1);
    size_t pos = 0;
    while (pos < rest.size()) {
      size_t comma = rest.find(',', pos);
      if (comma == std::string::npos) comma = rest.size();
      const std::string item = rest.substr(pos, comma - pos);
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        std::cerr << "bad fault parameter '" << item << "' in " << spec
                  << "\n";
        return false;
      }
      kv[item.substr(0, eq)] = std::atof(item.c_str() + eq + 1);
      pos = comma + 1;
    }
  }
  const auto get = [&kv](const std::string& key, double fallback) {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  };
  const double start = get("start", 0.0);
  const double end = get("end", horizon);
  if (kind == "slow") {
    schedule->AddSlowNode(start, end, static_cast<NodeId>(get("node", 0)),
                          get("factor", 10.0), get("add", 0.0));
  } else if (kind == "lossy") {
    schedule->AddLossyLink(start, end, static_cast<NodeId>(get("src", 0)),
                           static_cast<NodeId>(get("dst", 0)),
                           get("g2b", 0.02), get("b2g", 0.2),
                           get("loss", 0.8), get("loss-good", 0.0));
  } else if (kind == "dup") {
    schedule->AddDuplicatingLink(start, end,
                                 static_cast<NodeId>(get("src", 0)),
                                 static_cast<NodeId>(get("dst", 0)),
                                 get("p", 1.0));
  } else if (kind == "flap") {
    schedule->AddFlappingNode(start, end, static_cast<NodeId>(get("node", 0)),
                              get("up", 300.0), get("down", 200.0));
  } else if (kind == "oneway") {
    schedule->AddAsymmetricPartition(start, end,
                                     static_cast<NodeId>(get("src", 0)),
                                     static_cast<NodeId>(get("dst", 0)));
  } else if (kind == "gray") {
    const kvs::FaultSchedule random = kvs::FaultSchedule::RandomGrayFailures(
        static_cast<int>(get("replicas", 3)), horizon,
        get("interarrival", 4000.0), get("duration", 1500.0),
        static_cast<uint64_t>(get("seed", 7.0)));
    for (const kvs::GrayFault& fault : random.faults()) {
      schedule->Add(fault);
    }
  } else {
    std::cerr << "unknown fault kind '" << kind
              << "' (expected slow|lossy|dup|flap|oneway|gray)\n";
    return false;
  }
  return true;
}

int CmdSimulate(const Args& args) {
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = {args.GetInt("n", 3), args.GetInt("r", 1),
                            args.GetInt("w", 1)};
  const Status valid = ValidateQuorumConfig(options.cluster.quorum);
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  options.cluster.legs = ScenarioLegs(args.GetString("scenario", "lnkd-disk"));
  options.cluster.read_repair = args.GetBool("read-repair");
  options.cluster.anti_entropy_interval_ms =
      args.GetDouble("anti-entropy-ms", 0.0);
  options.cluster.request_timeout_ms = args.GetDouble("timeout-ms", 1000.0);
  options.writes = args.GetInt("writes", 5000);
  options.write_spacing_ms = args.GetDouble("spacing-ms", 250.0);
  if (args.GetString("fanout", "all") == "quorum") {
    options.cluster.read_fanout = ReadFanout::kQuorumOnly;
  }
  if (args.GetBool("phi-detector")) {
    options.cluster.failure_detector =
        kvs::KvsConfig::FailureDetectorKind::kPhiAccrual;
  }
  options.cluster.hedged_reads = args.GetBool("hedge");
  options.cluster.hedge_quantile = args.GetDouble("hedge-quantile", 0.99);
  options.cluster.hedge_delay_ms = args.GetDouble("hedge-delay-ms", 0.0);
  options.cluster.client_retry.max_attempts = args.GetInt("retries", 1);
  options.cluster.client_retry.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  options.cluster.client_retry.downgrade_reads_on_retry =
      args.GetBool("downgrade-on-retry");

  // Horizon mirrors the harness drain bound (the fault schedule needs it).
  double max_offset = 0.0;
  for (double offset : options.read_offsets_ms) {
    max_offset = std::max(max_offset, offset);
  }
  const double horizon = static_cast<double>(options.writes + 1) *
                             options.write_spacing_ms +
                         max_offset + 3.0 * options.cluster.request_timeout_ms;
  kvs::FaultSchedule faults;
  const std::string fault_arg = args.GetString("fault", "");
  if (!fault_arg.empty()) {
    size_t pos = 0;
    while (pos < fault_arg.size()) {
      size_t semi = fault_arg.find(';', pos);
      if (semi == std::string::npos) semi = fault_arg.size();
      if (!ParseFaultSpec(fault_arg.substr(pos, semi - pos), horizon,
                          &faults)) {
        return 1;
      }
      pos = semi + 1;
    }
  }

  const auto result =
      fault_arg.empty() ? kvs::RunStalenessExperiment(options)
                        : kvs::RunStalenessExperimentWithFaults(options,
                                                               faults);
  std::printf("event-driven cluster, %d writes, %s:\n", options.writes,
              options.cluster.quorum.ToString().c_str());
  TextTable table({"t after commit (ms)", "P(consistent)", "probes"});
  for (const auto& point : result.t_visibility) {
    table.AddRow({FormatDouble(point.t, 1),
                  FormatDouble(point.ProbConsistent(), 4),
                  std::to_string(point.trials)});
  }
  table.Print(std::cout);
  std::printf("detector: %lld consistent, %lld stale, %lld false-positive\n",
              static_cast<long long>(result.detector_consistent),
              static_cast<long long>(result.detector_stale),
              static_cast<long long>(result.detector_false_positives));
  const kvs::ClusterMetrics& metrics = result.final_metrics;
  if (!result.read_latencies.empty()) {
    const std::vector<double> q =
        Quantiles(result.read_latencies, {0.5, 0.99, 0.999});
    std::printf("read latency (ms): p50=%.3f p99=%.3f p99.9=%.3f\n", q[0],
                q[1], q[2]);
  }
  if (!fault_arg.empty() || options.cluster.hedged_reads ||
      options.cluster.client_retry.max_attempts > 1) {
    std::printf(
        "chaos: hedges=%lld won=%lld dup-suppressed=%lld+%lld "
        "retries=%lld+%lld deadline-misses=%lld downgrades=%lld "
        "dropped=%lld duplicated=%lld monotonic-violations=%lld\n",
        static_cast<long long>(metrics.hedged_reads_sent),
        static_cast<long long>(metrics.hedged_reads_won),
        static_cast<long long>(metrics.duplicate_responses_suppressed),
        static_cast<long long>(metrics.duplicate_acks_suppressed),
        static_cast<long long>(metrics.client_read_retries),
        static_cast<long long>(metrics.client_write_retries),
        static_cast<long long>(metrics.client_deadline_misses),
        static_cast<long long>(metrics.consistency_downgrades),
        static_cast<long long>(result.network_messages_dropped),
        static_cast<long long>(result.network_messages_duplicated),
        static_cast<long long>(metrics.monotonic_read_violations));
  }
  return 0;
}

int CmdAnalytic(const Args& args) {
  const QuorumConfig config{args.GetInt("n", 3), args.GetInt("r", 1),
                            args.GetInt("w", 1)};
  const Status valid = ValidateQuorumConfig(config);
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  if (scenario == "wan") {
    std::cerr << "the analytic solver assumes IID replicas; WAN is "
                 "per-replica — use `predict --scenario=wan`\n";
    return 1;
  }
  const AnalyticWars analytic(config, ScenarioLegs(scenario),
                              args.GetDouble("max-ms", 4000.0),
                              args.GetInt("bins", 20000));
  std::printf("analytic (grid) WARS for %s over %s:\n",
              config.ToString().c_str(), scenario.c_str());
  TextTable table({"metric", "value"});
  table.AddRow({"write latency p50 (ms, exact)",
                FormatDouble(analytic.WriteLatencyQuantile(0.5), 3)});
  table.AddRow({"write latency p99.9 (ms, exact)",
                FormatDouble(analytic.WriteLatencyQuantile(0.999), 3)});
  table.AddRow({"read latency p99.9 (ms, exact)",
                FormatDouble(analytic.ReadLatencyQuantile(0.999), 3)});
  table.AddRow({"P(consistent, t=0) (approx)",
                FormatDouble(analytic.ApproxProbConsistent(0.0), 4)});
  table.AddRow({"P(consistent, t=10ms) (approx)",
                FormatDouble(analytic.ApproxProbConsistent(10.0), 4)});
  table.AddRow({"t @ 99.9% (ms, approx)",
                FormatDouble(analytic.ApproxTimeForConsistency(0.999), 2)});
  table.Print(std::cout);
  std::cout << "latencies are exact order statistics; consistency uses the "
               "documented independence approximation (see "
               "bench/analytic_vs_mc for its error envelope).\n";
  return 0;
}

int CmdPredictTrace(const Args& args) {
  WarsDistributions legs;
  legs.name = "trace";
  struct LegArg {
    const char* flag;
    DistributionPtr* slot;
  };
  LegArg leg_args[] = {{"w", &legs.w}, {"a", &legs.a},
                       {"rr", &legs.r}, {"s", &legs.s}};
  for (auto& leg : leg_args) {
    const std::string path = args.GetString(leg.flag, "");
    if (path.empty()) {
      std::cerr << "--" << leg.flag << "=<trace file> required "
                << "(legs: --w --a --rr --s)\n";
      return 1;
    }
    auto dist = LoadTraceDistribution(path);
    if (!dist.ok()) {
      std::cerr << dist.status().message() << "\n";
      return 1;
    }
    *leg.slot = dist.value();
  }
  const QuorumConfig config{args.GetInt("n", 3), args.GetInt("r", 1),
                            args.GetInt("w-quorum", 1)};
  const Status valid = ValidateQuorumConfig(config);
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  PrintPrediction(config, MakeIidModel(legs, config.n),
                  args.GetInt("trials", 200000));
  return 0;
}

void Usage() {
  std::cout <<
      "pbs <command> [--key=value ...]\n"
      "commands:\n"
      "  predict        PBS predictions for one (N, R, W) configuration\n"
      "  analytic       grid-solver predictions (no Monte Carlo)\n"
      "  sla            cheapest configuration meeting a staleness SLA\n"
      "  levels         predictions for Cassandra-style consistency levels\n"
      "  fit            fit a Pareto+Exp mixture to a latency trace file\n"
      "  simulate       run the event-driven Dynamo-style cluster\n"
      "  predict-trace  predictions from measured W/A/R/S leg traces\n"
      "run a command with no flags to use paper defaults; see the header\n"
      "comment of tools/pbs_cli.cc for the full flag list.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (!args.ok()) return 1;
  if (command == "predict") return CmdPredict(args);
  if (command == "analytic") return CmdAnalytic(args);
  if (command == "sla") return CmdSla(args);
  if (command == "levels") return CmdLevels(args);
  if (command == "fit") return CmdFit(args);
  if (command == "simulate") return CmdSimulate(args);
  if (command == "predict-trace") return CmdPredictTrace(args);
  Usage();
  return command == "help" || command == "--help" ? 0 : 1;
}
