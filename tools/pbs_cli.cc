// pbs — command-line front end to the PBS library.
//
//   pbs predict  --n=3 --r=1 --w=1 [--scenario=lnkd-disk] [--trials=200000]
//                [--backend=mc|analytic|auto] [--grid-bins=20000]
//                [--grid-max-ms=4000]
//   pbs sla      --max-t=15 --prob=0.999 [--min-w=1] [--max-n=5]
//                [--read-fraction=0.8] [--scenario=...]
//   pbs levels   --n=3 --read=one --write=quorum [--scenario=...]
//   pbs fit      --trace=w.txt            (fit Pareto+Exp mixture to samples)
//   pbs simulate --n=3 --r=1 --w=1 [--writes=5000] [--read-repair]
//                [--anti-entropy-ms=0] [--scenario=...] [--seed=7]
//                [--fanout=all|quorum] [--phi-detector]
//                [--hedge] [--hedge-quantile=0.99] [--hedge-delay-ms=0]
//                [--deadline-ms=0] [--retries=1] [--downgrade-on-retry]
//                [--sla="p=0.999,t=10,p99<=15"] [--controller]
//                [--controller-epoch-ms=2000]
//                [--backend=mc|analytic|auto] [--grid-bins=8000]
//                [--grid-max-ms=2000]
//                [--fault=SPEC[;SPEC...]]
//                [--trace[=trace.json]] [--audit[=audit.jsonl]]
//                [--metrics-out[=metrics.jsonl]] [--trace-sample-every=1]
//                [--window-ms=500] [--monitor]
//                [--timeseries-out[=telemetry.jsonl]]
//                [--dashboard-out[=dashboard.html]]
//   pbs report   --telemetry=pbs_telemetry.jsonl [--out=pbs_report.html]
//                [--title=...]      (render the dashboard from an artifact)
//   pbs predict-trace --w=w.txt --a=a.txt --rr=r.txt --s=s.txt --n=3 --r=1
//                --w-quorum=1       (predict from measured leg traces)
//
// Fault SPECs (gray-failure injection; times default to the whole run):
//   slow:node=2,factor=10[,add=0]      outbound delays of node scaled/shifted
//   lossy:src=0,dst=4,loss=0.8[,g2b=0.02,b2g=0.2]   Gilbert-Elliott bursts
//   dup:src=0,dst=4[,p=1]              duplicate delivery on a link
//   flap:node=2,up=300,down=200        crash/recover cycling
//   oneway:src=0,dst=4                 one-way partition (src->dst dropped)
//   gray:seed=7[,interarrival=4000,duration=1500]   seeded random mix
// Example: --fault=slow:node=2,factor=10 --hedge --hedge-quantile=0.99
//
// Closed-loop control (simulate): --sla declares "fraction p of reads fresher
// than t ms at read p99 <= L ms"; --controller switches on the in-cluster
// consistency controller that tunes R/W mixing, hedging and retries toward
// it (kvs/controller.h). Audit output then carries the active config and
// decision id per read.
//
// Observability (simulate): --trace writes a Chrome trace_event file
// (load via chrome://tracing or ui.perfetto.dev), --audit a per-stale-read
// JSONL explanation, --metrics-out the run's instrument registry as JSONL.
// Bare flags pick default file names; --flag=path overrides.
//
// Streaming telemetry (simulate; DESIGN.md §13): --window-ms cuts the
// instrument registry into fixed windows on the sim clock; --monitor adds
// the live predictor-drift monitor (requires --sla); --timeseries-out
// writes the composed telemetry JSONL (windows + monitor samples/alerts +
// controller decisions); --dashboard-out renders the same artifact as a
// self-contained HTML dashboard. `pbs report` re-renders a saved artifact.
//
// Scenarios: lnkd-ssd | lnkd-disk | ymmr | wan (Table 3 fits of the paper).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "core/analytic.h"
#include "core/predictor.h"
#include "core/sla.h"
#include "dist/fit.h"
#include "dist/trace.h"
#include "kvs/consistency_level.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "obs/dashboard.h"
#include "obs/exporters.h"
#include "obs/monitor.h"
#include "pbs/config.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pbs;

/// Minimal --key=value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        ok_ = false;
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  bool ok() const { return ok_; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return values_.count(key) && values_.at(key) != "false";
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

// Library scenario lookup (pbs/config.h), CLI-flavored: warn and fall back
// to the paper's LNKD-DISK fits on an unknown name.
WarsDistributions ScenarioLegsOrDefault(const std::string& name) {
  const StatusOr<WarsDistributions> legs = pbs::ScenarioLegs(name);
  if (legs.ok()) return legs.value();
  std::cerr << legs.status().message() << "; using lnkd-disk\n";
  return LnkdDisk();
}

ReplicaLatencyModelPtr ScenarioModelOrDefault(const std::string& name, int n) {
  const StatusOr<ReplicaLatencyModelPtr> model = pbs::ScenarioModel(name, n);
  if (model.ok()) return model.value();
  std::cerr << model.status().message() << "; using lnkd-disk\n";
  return pbs::ScenarioModel("lnkd-disk", n).value();
}

StatusOr<kvs::ConsistencyLevel> ParseLevel(const std::string& text) {
  if (text == "one") return kvs::ConsistencyLevel::kOne;
  if (text == "two") return kvs::ConsistencyLevel::kTwo;
  if (text == "three") return kvs::ConsistencyLevel::kThree;
  if (text == "quorum") return kvs::ConsistencyLevel::kQuorum;
  if (text == "all") return kvs::ConsistencyLevel::kAll;
  return Status::InvalidArgument("unknown consistency level: " + text);
}

/// Parses the engine-selection flags shared by predict / levels /
/// predict-trace into `options`. False (with a message) on a bad value.
bool ParseBackendFlags(const Args& args, PredictorOptions* options) {
  const std::string backend = args.GetString("backend", "mc");
  const StatusOr<PredictorBackend> parsed = ParsePredictorBackend(backend);
  if (!parsed.ok()) {
    std::cerr << parsed.status().message() << "\n";
    return false;
  }
  options->backend = parsed.value();
  options->grid.bins = args.GetInt("grid-bins", options->grid.bins);
  const double max_ms = args.GetDouble("grid-max-ms", -1.0);
  if (max_ms >= 0.0) {
    // An explicit bound is used literally (no tail-aware auto-scaling).
    options->grid.max_ms = max_ms;
    options->grid.auto_max = false;
  }
  return true;
}

int PrintPrediction(const QuorumConfig& config,
                    const ReplicaLatencyModelPtr& model,
                    PredictorOptions options) {
  const StatusOr<PbsPredictor> created =
      PbsPredictor::Create(config, model, options);
  if (!created.ok()) {
    std::cerr << created.status().message() << "\n";
    return 1;
  }
  const PbsPredictor& predictor = created.value();
  std::printf("%s (%s), backend=%s\n", config.ToString().c_str(),
              config.IsStrict() ? "strict" : "partial",
              PredictorBackendName(predictor.backend()));
  if (!predictor.backend_note().empty()) {
    std::printf("  %s\n", predictor.backend_note().c_str());
  }
  TextTable table({"metric", "value"});
  table.AddRow({"P(consistent, t=0)",
                FormatDouble(predictor.ProbConsistent(0.0), 4)});
  table.AddRow({"P(consistent, t=10ms)",
                FormatDouble(predictor.ProbConsistent(10.0), 4)});
  table.AddRow({"t-visibility @ 99.9% (ms)",
                FormatDouble(predictor.TimeForConsistency(0.999), 2)});
  table.AddRow({"P(within 2 versions)",
                FormatDouble(predictor.KFreshness(2), 4)});
  table.AddRow({"read latency p99.9 (ms)",
                FormatDouble(predictor.ReadLatencyPercentile(99.9), 2)});
  table.AddRow({"write latency p99.9 (ms)",
                FormatDouble(predictor.WriteLatencyPercentile(99.9), 2)});
  table.Print(std::cout);
  return 0;
}

int CmdPredict(const Args& args) {
  const QuorumConfig config{args.GetInt("n", 3), args.GetInt("r", 1),
                            args.GetInt("w", 1)};
  const Status valid = ValidateQuorumConfig(config);
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  PredictorOptions options;
  options.trials = args.GetInt("trials", 200000);
  if (!ParseBackendFlags(args, &options)) return 1;
  return PrintPrediction(config, ScenarioModelOrDefault(scenario, config.n),
                         options);
}

int CmdSla(const Args& args) {
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  SlaOptimizer optimizer(
      [&scenario](int n) { return ScenarioModelOrDefault(scenario, n); },
      args.GetInt("trials", 50000), /*seed=*/42);
  SlaConstraints constraints;
  constraints.min_n = args.GetInt("min-n", 2);
  constraints.max_n = args.GetInt("max-n", 5);
  constraints.min_write_quorum = args.GetInt("min-w", 1);
  constraints.consistency_probability = args.GetDouble("prob", 0.999);
  constraints.max_t_visibility_ms = args.GetDouble("max-t", 10.0);
  SlaObjective objective;
  const double read_fraction = args.GetDouble("read-fraction", 0.5);
  objective.read_weight = read_fraction;
  objective.write_weight = 1.0 - read_fraction;
  const auto best = optimizer.Optimize(constraints, objective);
  if (!best.ok()) {
    std::cout << "no configuration satisfies the SLA: "
              << best.status().message() << "\n";
    return 1;
  }
  const auto& c = best.value();
  std::printf(
      "best: %s — t@%.2f%%: %.2f ms, Lr %.2f ms, Lw %.2f ms "
      "(objective %.2f ms)\n",
      c.config.ToString().c_str(),
      100.0 * constraints.consistency_probability, c.t_visibility_ms,
      c.read_latency_ms, c.write_latency_ms, c.objective);
  return 0;
}

int CmdLevels(const Args& args) {
  const int n = args.GetInt("n", 3);
  const auto read_level = ParseLevel(args.GetString("read", "one"));
  const auto write_level = ParseLevel(args.GetString("write", "one"));
  if (!read_level.ok() || !write_level.ok()) {
    std::cerr << (read_level.ok() ? write_level.status().message()
                                  : read_level.status().message())
              << "\n";
    return 1;
  }
  const auto config =
      kvs::MakeQuorumConfig(n, read_level.value(), write_level.value());
  if (!config.ok()) {
    std::cerr << config.status().message() << "\n";
    return 1;
  }
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  std::printf("consistency levels %s/%s at N=%d =>\n",
              kvs::ToString(read_level.value()).c_str(),
              kvs::ToString(write_level.value()).c_str(), n);
  PredictorOptions options;
  options.trials = args.GetInt("trials", 200000);
  if (!ParseBackendFlags(args, &options)) return 1;
  return PrintPrediction(config.value(), ScenarioModelOrDefault(scenario, n),
                         options);
}

int CmdFit(const Args& args) {
  const std::string path = args.GetString("trace", "");
  if (path.empty()) {
    std::cerr << "--trace=<file> required (one latency per line)\n";
    return 1;
  }
  const auto samples = LoadLatencyTrace(path);
  if (!samples.ok()) {
    std::cerr << samples.status().message() << "\n";
    return 1;
  }
  std::vector<PercentilePoint> points;
  auto sorted = samples.value();
  std::sort(sorted.begin(), sorted.end());
  for (double pct : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    points.push_back({pct, QuantileSorted(sorted, pct / 100.0)});
  }
  const ParetoExpFit fit = FitParetoExponential(points);
  std::cout << "fit over " << sorted.size() << " samples:\n  "
            << fit.Describe() << "\n";
  return 0;
}

/// Resolves a path-valued flag that may also be passed bare: absent -> "",
/// bare `--flag` -> `fallback`, `--flag=path` -> path.
std::string PathFlag(const Args& args, const std::string& key,
                     const std::string& fallback) {
  const std::string value = args.GetString(key, "");
  return value == "true" ? fallback : value;
}

/// Writes an exporter artifact, echoing where it went.
bool WriteArtifact(const std::string& path, const std::string& payload,
                   const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  out << payload;
  std::printf("%s -> %s\n", what, path.c_str());
  return true;
}

int CmdSimulate(const Args& args) {
  Config config;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  config.scenario = args.GetString("scenario", "lnkd-disk");
  config.quorum.n = args.GetInt("n", 3);
  config.quorum.r = args.GetInt("r", 1);
  config.quorum.w = args.GetInt("w", 1);
  if (args.GetString("fanout", "all") == "quorum") {
    config.quorum.fanout = ReadFanout::kQuorumOnly;
  }
  config.workload.writes = args.GetInt("writes", 5000);
  config.workload.write_spacing_ms = args.GetDouble("spacing-ms", 250.0);
  config.read_repair = args.GetBool("read-repair");
  config.anti_entropy_interval_ms = args.GetDouble("anti-entropy-ms", 0.0);
  config.request_timeout_ms = args.GetDouble("timeout-ms", 1000.0);
  config.phi_detector = args.GetBool("phi-detector");
  config.hedge.enabled = args.GetBool("hedge");
  config.hedge.quantile = args.GetDouble("hedge-quantile", 0.99);
  config.hedge.delay_ms = args.GetDouble("hedge-delay-ms", 0.0);
  config.retry.max_attempts = args.GetInt("retries", 1);
  config.retry.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  config.retry.downgrade_reads = args.GetBool("downgrade-on-retry");
  config.faults.specs = args.GetString("fault", "");

  // --sla="p=0.999,t=10,p99<=15" declares the staleness/latency target;
  // --controller switches the closed loop on against it (see kvs/controller.h).
  const std::string sla_spec = args.GetString("sla", "");
  if (!sla_spec.empty()) {
    const StatusOr<SlaTarget> target = SlaTarget::Parse(sla_spec);
    if (!target.ok()) {
      std::cerr << target.status().message() << "\n";
      return 1;
    }
    config.WithSla(target.value());
  }
  if (args.GetBool("controller")) {
    if (sla_spec.empty()) {
      std::cerr << "--controller requires --sla=\"p=...,t=...,p99<=...\"\n";
      return 1;
    }
    config.controller.enabled = true;
    config.controller.epoch_ms = args.GetDouble("controller-epoch-ms", 2000.0);
    // --backend steers the controller's per-epoch predictor (mc keeps the
    // historical bitwise-deterministic decision streams; analytic/auto run
    // the grid solver over the sensed legs).
    const StatusOr<PredictorBackend> backend =
        ParsePredictorBackend(args.GetString("backend", "mc"));
    if (!backend.ok()) {
      std::cerr << backend.status().message() << "\n";
      return 1;
    }
    config.WithPredictorBackend(backend.value());
    config.controller.grid_bins =
        args.GetInt("grid-bins", config.controller.grid_bins);
    const double grid_max = args.GetDouble("grid-max-ms", -1.0);
    if (grid_max >= 0.0) {
      // WithPredictorGrid pins the bound literally; the default keeps the
      // tail-aware auto-scaled grid.
      config.WithPredictorGrid(grid_max, config.controller.grid_bins);
    }
  }

  const std::string trace_out = PathFlag(args, "trace", "pbs_trace.json");
  const std::string audit_out = PathFlag(args, "audit", "pbs_audit.jsonl");
  const std::string metrics_out =
      PathFlag(args, "metrics-out", "pbs_metrics.jsonl");
  config.obs.trace_enabled = !trace_out.empty() || !audit_out.empty();
  config.obs.trace_sample_every = args.GetInt("trace-sample-every", 1);

  // Streaming telemetry: --window-ms switches the windowed time-series on;
  // --monitor layers the drift monitor on top (Validate enforces --sla).
  // Asking for a telemetry artifact without a cadence implies the default.
  const std::string timeseries_out =
      PathFlag(args, "timeseries-out", "pbs_telemetry.jsonl");
  const std::string dashboard_out =
      PathFlag(args, "dashboard-out", "pbs_dashboard.html");
  double window_ms = args.GetDouble("window-ms", 0.0);
  if (window_ms <= 0.0 && (!timeseries_out.empty() || !dashboard_out.empty() ||
                           args.GetBool("monitor"))) {
    window_ms = 500.0;
  }
  if (window_ms > 0.0) {
    config.WithTelemetry(window_ms,
                         static_cast<size_t>(args.GetInt("windows", 512)));
  }
  if (args.GetBool("monitor")) config.WithMonitor();

  const Status valid = config.Validate();
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  const kvs::StalenessExperimentOptions options =
      config.BuildExperiment().value();
  const kvs::FaultSchedule faults = config.BuildFaultSchedule().value();

  const auto result =
      config.faults.any()
          ? kvs::RunStalenessExperimentWithFaults(options, faults)
          : kvs::RunStalenessExperiment(options);
  std::printf("event-driven cluster, %d writes, %s:\n", options.writes,
              options.cluster.quorum.ToString().c_str());
  TextTable table({"t after commit (ms)", "P(consistent)", "probes"});
  for (const auto& point : result.t_visibility) {
    table.AddRow({FormatDouble(point.t, 1),
                  FormatDouble(point.ProbConsistent(), 4),
                  std::to_string(point.trials)});
  }
  table.Print(std::cout);
  std::printf("detector: %lld consistent, %lld stale, %lld false-positive\n",
              static_cast<long long>(result.detector_consistent),
              static_cast<long long>(result.detector_stale),
              static_cast<long long>(result.detector_false_positives));
  const kvs::ClusterMetrics& metrics = result.final_metrics;
  if (!result.read_latencies.empty()) {
    const std::vector<double> q =
        Quantiles(result.read_latencies, {0.5, 0.99, 0.999});
    std::printf("read latency (ms): p50=%.3f p99=%.3f p99.9=%.3f\n", q[0],
                q[1], q[2]);
  }
  if (config.faults.any() || config.hedge.enabled ||
      config.retry.max_attempts > 1) {
    std::printf(
        "chaos: hedges=%lld won=%lld dup-suppressed=%lld+%lld "
        "retries=%lld+%lld deadline-misses=%lld downgrades=%lld "
        "dropped=%lld duplicated=%lld monotonic-violations=%lld\n",
        static_cast<long long>(metrics.hedged_reads_sent),
        static_cast<long long>(metrics.hedged_reads_won),
        static_cast<long long>(metrics.duplicate_responses_suppressed),
        static_cast<long long>(metrics.duplicate_acks_suppressed),
        static_cast<long long>(metrics.client_read_retries),
        static_cast<long long>(metrics.client_write_retries),
        static_cast<long long>(metrics.client_deadline_misses),
        static_cast<long long>(metrics.consistency_downgrades),
        static_cast<long long>(result.network_messages_dropped),
        static_cast<long long>(result.network_messages_duplicated),
        static_cast<long long>(metrics.monotonic_read_violations));
  }
  if (config.controller.enabled) {
    std::printf(
        "controller: epochs=%lld steps=%lld rollbacks=%lld holds=%lld "
        "fresh=%lld stale=%lld digest=%016llx\n",
        static_cast<long long>(metrics.controller_epochs),
        static_cast<long long>(metrics.controller_steps),
        static_cast<long long>(metrics.controller_rollbacks),
        static_cast<long long>(metrics.controller_holds),
        static_cast<long long>(metrics.reads_fresh_measured),
        static_cast<long long>(metrics.reads_stale_measured),
        static_cast<unsigned long long>(result.controller_digest));
    if (!result.controller_history.empty()) {
      const obs::AdaptationRecord& last = result.controller_history.back();
      std::printf(
          "controller final config: R=[%d..%d] mix=%.2f W=%d hedge=%s@%.2f "
          "retries=%d\n",
          last.r_lo, last.r_hi, last.mix, last.w,
          last.hedge_enabled ? "on" : "off", last.hedge_quantile,
          last.retry_max_attempts);
    }
  }

  if (config.obs.monitor_enabled) {
    std::printf("monitor: windows=%zu alerts=%zu\n",
                result.monitor_samples.size(), result.monitor_alerts.size());
    for (const obs::Alert& alert : result.monitor_alerts) {
      std::printf("  [%s] window=%lld t=%.0fms %s\n",
                  obs::AlertKindName(alert.kind),
                  static_cast<long long>(alert.window_id), alert.time_ms,
                  alert.detail.c_str());
    }
  }

  bool exported_ok = true;
  if (!metrics_out.empty()) {
    exported_ok &= WriteArtifact(
        metrics_out, obs::MetricsJsonl(result.registry, result.metrics_header),
        "metrics (jsonl)");
  }
  if (!trace_out.empty()) {
    exported_ok &= WriteArtifact(trace_out, obs::ChromeTraceJson(result.trace),
                                 "chrome trace");
  }
  if (!audit_out.empty()) {
    exported_ok &= WriteArtifact(
        audit_out,
        obs::StalenessAuditJsonl(result.trace, result.controller_history,
                                 /*stale_only=*/true,
                                 config.obs.telemetry_window_ms),
        "staleness audit (jsonl)");
  }
  if (window_ms > 0.0 && !timeseries_out.empty()) {
    exported_ok &= WriteArtifact(timeseries_out, result.telemetry_jsonl,
                                 "telemetry time-series (jsonl)");
  }
  if (window_ms > 0.0 && !dashboard_out.empty()) {
    exported_ok &= WriteArtifact(
        dashboard_out,
        obs::RenderDashboardHtml(result.telemetry_jsonl,
                                 "pbs simulate — " +
                                     options.cluster.quorum.ToString()),
        "consistency dashboard (html)");
  }
  return exported_ok ? 0 : 1;
}

int CmdReport(const Args& args) {
  const std::string in_path = args.GetString("telemetry", "pbs_telemetry.jsonl");
  const std::string out_path = args.GetString("out", "pbs_report.html");
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "cannot open " << in_path
              << " (run `pbs simulate --timeseries-out=...` first)\n";
    return 1;
  }
  std::string telemetry((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const std::string title = args.GetString("title", "PBS consistency report");
  return WriteArtifact(out_path, obs::RenderDashboardHtml(telemetry, title),
                       "consistency dashboard (html)")
             ? 0
             : 1;
}

int CmdAnalytic(const Args& args) {
  const QuorumConfig config{args.GetInt("n", 3), args.GetInt("r", 1),
                            args.GetInt("w", 1)};
  const Status valid = ValidateQuorumConfig(config);
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  const std::string scenario = args.GetString("scenario", "lnkd-disk");
  if (scenario == "wan") {
    std::cerr << "the analytic solver assumes IID replicas; WAN is "
                 "per-replica — use `predict --scenario=wan`\n";
    return 1;
  }
  const AnalyticWars analytic(config, ScenarioLegsOrDefault(scenario),
                              args.GetDouble("max-ms", 4000.0),
                              args.GetInt("bins", 20000));
  std::printf("analytic (grid) WARS for %s over %s:\n",
              config.ToString().c_str(), scenario.c_str());
  TextTable table({"metric", "value"});
  table.AddRow({"write latency p50 (ms, exact)",
                FormatDouble(analytic.WriteLatencyQuantile(0.5), 3)});
  table.AddRow({"write latency p99.9 (ms, exact)",
                FormatDouble(analytic.WriteLatencyQuantile(0.999), 3)});
  table.AddRow({"read latency p99.9 (ms, exact)",
                FormatDouble(analytic.ReadLatencyQuantile(0.999), 3)});
  table.AddRow({"P(consistent, t=0) (approx)",
                FormatDouble(analytic.ApproxProbConsistent(0.0), 4)});
  table.AddRow({"P(consistent, t=10ms) (approx)",
                FormatDouble(analytic.ApproxProbConsistent(10.0), 4)});
  table.AddRow({"t @ 99.9% (ms, approx)",
                FormatDouble(analytic.ApproxTimeForConsistency(0.999), 2)});
  table.Print(std::cout);
  std::cout << "latencies are exact order statistics; consistency uses the "
               "documented independence approximation (see "
               "bench/analytic_vs_mc for its error envelope).\n";
  return 0;
}

int CmdPredictTrace(const Args& args) {
  WarsDistributions legs;
  legs.name = "trace";
  struct LegArg {
    const char* flag;
    DistributionPtr* slot;
  };
  LegArg leg_args[] = {{"w", &legs.w}, {"a", &legs.a},
                       {"rr", &legs.r}, {"s", &legs.s}};
  for (auto& leg : leg_args) {
    const std::string path = args.GetString(leg.flag, "");
    if (path.empty()) {
      std::cerr << "--" << leg.flag << "=<trace file> required "
                << "(legs: --w --a --rr --s)\n";
      return 1;
    }
    auto dist = LoadTraceDistribution(path);
    if (!dist.ok()) {
      std::cerr << dist.status().message() << "\n";
      return 1;
    }
    *leg.slot = dist.value();
  }
  const QuorumConfig config{args.GetInt("n", 3), args.GetInt("r", 1),
                            args.GetInt("w-quorum", 1)};
  const Status valid = ValidateQuorumConfig(config);
  if (!valid.ok()) {
    std::cerr << valid.message() << "\n";
    return 1;
  }
  PredictorOptions options;
  options.trials = args.GetInt("trials", 200000);
  if (!ParseBackendFlags(args, &options)) return 1;
  return PrintPrediction(config, MakeIidModel(legs, config.n), options);
}

void Usage() {
  std::cout <<
      "pbs <command> [--key=value ...]\n"
      "commands:\n"
      "  predict        PBS predictions for one (N, R, W) configuration\n"
      "  analytic       grid-solver predictions (no Monte Carlo)\n"
      "  sla            cheapest configuration meeting a staleness SLA\n"
      "  levels         predictions for Cassandra-style consistency levels\n"
      "  fit            fit a Pareto+Exp mixture to a latency trace file\n"
      "  simulate       run the event-driven Dynamo-style cluster\n"
      "  report         render the HTML dashboard from a telemetry artifact\n"
      "  predict-trace  predictions from measured W/A/R/S leg traces\n"
      "run a command with no flags to use paper defaults; see the header\n"
      "comment of tools/pbs_cli.cc for the full flag list.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (!args.ok()) return 1;
  if (command == "predict") return CmdPredict(args);
  if (command == "analytic") return CmdAnalytic(args);
  if (command == "sla") return CmdSla(args);
  if (command == "levels") return CmdLevels(args);
  if (command == "fit") return CmdFit(args);
  if (command == "simulate") return CmdSimulate(args);
  if (command == "report") return CmdReport(args);
  if (command == "predict-trace") return CmdPredictTrace(args);
  Usage();
  return command == "help" || command == "--help" ? 0 : 1;
}
